"""Cross-process telemetry through the exec pipeline.

The decisive property: the **same job** run by the in-process
SerialRunner and by a ProcessPoolRunner worker must ship back the
byte-identical span stream, and the engine must merge per-job payloads
independently of pool scheduling order.
"""

import time

import pytest

from repro.core import instrument
from repro.core.events import Simulator
from repro.core.instrument import MetricsRegistry
from repro.exec import (
    ExecutionEngine,
    Job,
    JobGraph,
    ProcessPoolRunner,
    SerialRunner,
    run_jobs,
)
from repro.obs.spans import span_stream_digest
from repro.obs.telemetry import (
    TelemetryOptions,
    begin_worker,
    merge_job_telemetry,
    payload_spans,
)


def _sim_job(config):
    """A tiny kernel model: N no-op events + one counter + a histogram."""
    sim = Simulator()
    scope = sim.metrics.scoped("tel.job")
    n = config["n"]
    for i in range(n):
        sim.schedule(float(i + 1), _tick, i)
    sim.run()
    scope.counter("events").inc(n)
    scope.histogram("t").observe_many([float(i + 1) for i in range(n)])
    tracer = getattr(sim.metrics, "tracer", None)
    if tracer is not None:
        tracer.emit("tel.mark", 0.0, float(n), n=n)
    return {"n": n, "end": sim.now}


def _tick(sim, payload):
    pass


class TestWorkerScope:
    def test_fresh_session_installed_and_restored(self):
        outer = MetricsRegistry(enabled=True)
        prev = instrument.install_session(outer)
        try:
            scope = begin_worker(TelemetryOptions())
            assert instrument.current_session() is scope.registry
            assert instrument.current_session() is not outer
            payload = scope.finish()
            assert instrument.current_session() is outer
            assert payload["spans"] == [] and payload["spans_dropped"] == 0
        finally:
            instrument.install_session(prev)

    def test_double_finish_raises(self):
        scope = begin_worker(TelemetryOptions())
        scope.finish()
        with pytest.raises(RuntimeError):
            scope.finish()

    def test_simulators_born_in_scope_are_traced(self):
        scope = begin_worker(TelemetryOptions())
        try:
            result = _sim_job({"n": 5})
        finally:
            payload = scope.finish()
        assert result["n"] == 5
        names = [r.name for r in payload_spans(payload)]
        assert "kernel.run" in names and "tel.mark" in names
        assert payload["metrics"]["counters"]["tel.job.events"] == 5

    def test_foreign_registry_sim_stays_out_of_capture(self):
        scope = begin_worker(TelemetryOptions())
        try:
            own = Simulator(metrics=MetricsRegistry(enabled=True))
            own.schedule(1.0, _tick)
            own.run()
        finally:
            payload = scope.finish()
        assert payload_spans(payload) == []

    def test_profiler_capture(self):
        scope = begin_worker(TelemetryOptions(profile_period=1))
        try:
            _sim_job({"n": 7})
        finally:
            payload = scope.finish()
        assert sum(payload["profile"].values()) == 7

    def test_trace_disabled_still_ships_metrics(self):
        scope = begin_worker(TelemetryOptions(trace=False))
        try:
            _sim_job({"n": 2})
        finally:
            payload = scope.finish()
        assert payload["spans"] == []
        assert payload["metrics"]["counters"]["tel.job.events"] == 2


def _run_one(runner, options):
    runner.submit(Job(id="j", fn=_sim_job, config={"n": 6}),
                  {"n": 6}, None, telemetry=options)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        done = runner.poll()
        if done:
            return done[0]
        time.sleep(0.005)
    raise AssertionError("attempt did not complete")


class TestRunners:
    def test_serial_attempt_carries_payload(self):
        attempt = _run_one(SerialRunner(), TelemetryOptions())
        assert attempt.status == "ok"
        assert attempt.telemetry is not None
        assert any(r.name == "tel.mark"
                   for r in payload_spans(attempt.telemetry))

    def test_pool_attempt_carries_payload(self):
        runner = ProcessPoolRunner(max_workers=1)
        try:
            attempt = _run_one(runner, TelemetryOptions())
        finally:
            runner.shutdown()
        assert attempt.status == "ok"
        assert attempt.telemetry is not None

    def test_serial_and_pool_span_streams_identical(self):
        serial = _run_one(SerialRunner(), TelemetryOptions())
        runner = ProcessPoolRunner(max_workers=1)
        try:
            pooled = _run_one(runner, TelemetryOptions())
        finally:
            runner.shutdown()
        assert (span_stream_digest(payload_spans(serial.telemetry))
                == span_stream_digest(payload_spans(pooled.telemetry)))
        assert serial.telemetry["metrics"] == pooled.telemetry["metrics"]

    def test_no_telemetry_means_no_payload(self):
        runner = SerialRunner()
        runner.submit(Job(id="j", fn=_sim_job, config={"n": 1}), {"n": 1}, None)
        (attempt,) = runner.poll()
        assert attempt.telemetry is None


class TestEngineMerge:
    def _graph(self, ns=(3, 5)):
        graph = JobGraph()
        for n in ns:
            graph.add(Job(id=f"j{n}", fn=_sim_job, config={"n": n}))
        return graph

    def test_report_telemetry_merged_in_sorted_job_order(self):
        report = run_jobs(self._graph(), telemetry=TelemetryOptions())
        merged = report.telemetry
        assert merged is not None
        assert sorted(merged["spans"]) == ["j3", "j5"]
        assert merged["metrics"]["counters"]["tel.job.events"] == 8
        assert merged["missing"] == []

    def test_serial_and_pool_reports_agree(self):
        serial = run_jobs(self._graph(), jobs=1,
                          telemetry=TelemetryOptions()).telemetry
        pooled = run_jobs(self._graph(), jobs=2,
                          telemetry=TelemetryOptions()).telemetry
        assert serial["metrics"] == pooled["metrics"]
        for jid in ("j3", "j5"):
            assert (span_stream_digest(payload_spans({"spans": serial["spans"][jid]}))
                    == span_stream_digest(payload_spans({"spans": pooled["spans"][jid]})))

    def test_exec_job_spans_emitted_on_session_tracer(self):
        from repro.obs.spans import Tracer

        registry = MetricsRegistry(enabled=True)
        registry.tracer = Tracer()
        prev = instrument.install_session(registry)
        try:
            engine = ExecutionEngine(runner=SerialRunner(),
                                     telemetry=TelemetryOptions())
            engine.run(self._graph())
        finally:
            instrument.install_session(prev)
        exec_spans = registry.tracer.sink.records("exec")
        assert sorted(dict(r.attrs)["job"] for r in exec_spans) == ["j3", "j5"]
        assert all(r.status == "ok" for r in exec_spans)
        assert all(dict(r.attrs)["job_status"] == "succeeded"
                   for r in exec_spans)

    def test_telemetry_off_leaves_report_field_none(self):
        assert run_jobs(self._graph()).telemetry is None

    def test_merge_job_telemetry_lists_missing_payloads(self):
        scope = begin_worker(TelemetryOptions())
        _sim_job({"n": 2})
        payload = scope.finish()
        merged = merge_job_telemetry({"b": payload, "a": None})
        assert merged["missing"] == ["a"]
        assert list(merged["spans"]) == ["b"]
