"""Unit tests for the sampling sim-profiler."""

import pytest

from repro.core.events import Simulator
from repro.core.instrument import MetricsRegistry
from repro.obs.profile import SimProfiler


def _noop(sim, payload):
    pass


def _drive(profiler: SimProfiler, n_events: int) -> Simulator:
    sim = Simulator(metrics=MetricsRegistry(enabled=True))
    profiler.attach(sim)
    for i in range(n_events):
        sim.schedule(float(i + 1), _noop)
    sim.run()
    return sim


class TestSampling:
    def test_period_one_counts_every_event(self):
        prof = SimProfiler(period=1)
        _drive(prof, 10)
        (frames,) = prof.samples
        assert prof.samples[frames] == 10
        assert prof.event_weight(frames) == 10

    def test_period_n_samples_every_nth(self):
        prof = SimProfiler(period=4)
        _drive(prof, 10)
        (frames,) = prof.samples
        assert prof.samples[frames] == 2  # events 4 and 8
        assert prof.event_weight(frames) == 8

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            SimProfiler(period=0)

    def test_detach_stops_sampling(self):
        prof = SimProfiler(period=1)
        sim = _drive(prof, 3)
        prof.detach(sim)
        sim.schedule(100.0, _noop)
        sim.run()
        (frames,) = prof.samples
        assert prof.samples[frames] == 3

    def test_sim_time_charged_between_samples(self):
        prof = SimProfiler(period=1)
        _drive(prof, 4)  # events at t=1..4
        (frames,) = prof.sim_time
        assert prof.sim_time[frames] == pytest.approx(3.0)  # t=1 -> t=4


class TestFrames:
    def test_closure_renders_as_stack(self):
        def outer():
            def inner(sim, payload):
                pass
            return inner

        prof = SimProfiler(period=1)
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        prof.attach(sim)
        sim.schedule(1.0, outer())
        sim.run()
        (frames,) = prof.samples
        # qualname "...test_closure_renders_as_stack.<locals>.outer.<locals>
        # .inner" splits into one frame per lexical nesting level.
        assert frames[-2:] == ("outer", "inner")
        assert frames[-3].endswith("test_closure_renders_as_stack")
        assert ";" in prof.collapsed()

    def test_unhashable_callback_is_profiled_uncached(self):
        class Cb:
            __hash__ = None  # type: ignore[assignment]

            def __call__(self, sim, payload):
                pass

        prof = SimProfiler(period=1)
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        prof.attach(sim)
        sim.schedule(1.0, Cb())
        sim.run()
        (frames,) = prof.samples
        assert frames[-1] == "Cb"


class TestOutput:
    def test_stacks_and_merge_round_trip(self):
        a = SimProfiler(period=1)
        _drive(a, 5)
        b = SimProfiler(period=1)
        _drive(b, 3)
        b.merge(a.stacks())
        (frames,) = b.samples
        assert b.samples[frames] == 8

    def test_collapsed_weights(self):
        prof = SimProfiler(period=2)
        _drive(prof, 4)
        line_samples = prof.collapsed("samples")
        line_events = prof.collapsed("events")
        assert line_samples.endswith(" 2")
        assert line_events.endswith(" 4")
        assert prof.collapsed("sim_time")  # nonempty, integer microunits
        with pytest.raises(ValueError):
            prof.collapsed("bogus")

    def test_merged_collapsed_is_sorted_text(self):
        text = SimProfiler.merged_collapsed({"b;y": 2, "a;x": 1})
        assert text.splitlines() == ["a;x 1", "b;y 2"]
