"""Unit tests for repro.obs.spans: records, sink, tracer, attachment."""

import math

import pytest

from repro.core.events import Simulator
from repro.core.instrument import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import (
    SpanRecord,
    SpanSink,
    Tracer,
    attach_tracer,
    canonical_spans,
    maybe_span,
    span_stream_digest,
)


def _tracer(capacity: int = 64) -> Tracer:
    """Tracer with a deterministic (counting) wall clock."""
    ticks = iter(range(10_000))
    return Tracer(sink=SpanSink(capacity), wall_clock=lambda: float(next(ticks)))


class TestSpanRecord:
    def test_canonical_excludes_wall_times(self):
        a = SpanRecord("n", "sim", "", 1.0, 2.0, 10.0, 11.0, "ok", ())
        b = SpanRecord("n", "sim", "", 1.0, 2.0, 99.0, 123.0, "ok", ())
        assert a.canonical() == b.canonical()

    def test_dict_round_trip(self):
        rec = SpanRecord("n", "model", "p", 0.5, 2.5, 1.0, 2.0, "error",
                         (("k", 3), ("z", "v")))
        assert SpanRecord.from_dict(rec.to_dict()) == rec

    def test_canonical_distinguishes_float_precision(self):
        a = SpanRecord("n", "sim", "", 0.1 + 0.2, None, 0, 0, "ok", ())
        b = SpanRecord("n", "sim", "", 0.3, None, 0, 0, "ok", ())
        assert a.canonical() != b.canonical()


class TestSpanSink:
    def test_bounded_with_drop_accounting(self):
        sink = SpanSink(capacity=3)
        for i in range(5):
            sink.emit(SpanRecord(f"s{i}", "sim", "", float(i), float(i),
                                 0.0, 0.0, "ok", ()))
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [r.name for r in sink.records()] == ["s2", "s3", "s4"]

    def test_category_filter_and_clear(self):
        sink = SpanSink(capacity=8)
        sink.emit(SpanRecord("a", "sim", "", 0, 0, 0, 0, "ok", ()))
        sink.emit(SpanRecord("b", "kernel", "", 0, 0, 0, 0, "ok", ()))
        assert [r.name for r in sink.records("sim")] == ["a"]
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanSink(capacity=0)

    def test_restore_truncates_to_snapshot_point(self):
        sink = SpanSink(capacity=16)
        rec = lambda i: SpanRecord(f"s{i}", "sim", "", 0, 0, 0, 0, "ok", ())  # noqa: E731
        sink.emit(rec(0))
        sink.emit(rec(1))
        state = sink.snapshot_state()
        sink.emit(rec(2))
        sink.emit(rec(3))
        sink.restore_state(state)
        assert [r.name for r in sink.records()] == ["s0", "s1"]

    def test_restore_after_ring_wrap_is_best_effort(self):
        sink = SpanSink(capacity=2)
        rec = lambda i: SpanRecord(f"s{i}", "sim", "", 0, 0, 0, 0, "ok", ())  # noqa: E731
        sink.emit(rec(0))
        state = sink.snapshot_state()
        for i in range(1, 4):
            sink.emit(rec(i))  # wraps: s0 evicted, exact prefix gone
        sink.restore_state(state)
        # Keeps what it has rather than fabricating history.
        assert sink.dropped == 0
        assert len(sink) == 2


class TestTracer:
    def test_nesting_provides_parent_names(self):
        tr = _tracer()
        with tr.span("outer"):
            assert tr.current_parent() == "outer"
            with tr.span("inner"):
                tr.emit("leaf", 1.0, 2.0)
        by_name = {r.name: r for r in tr.sink.records()}
        assert by_name["leaf"].parent == "inner"
        assert by_name["inner"].parent == "outer"
        assert by_name["outer"].parent == ""
        # Children complete (and land in the sink) before their parents.
        assert [r.name for r in tr.sink.records()] == ["leaf", "inner", "outer"]

    def test_span_records_error_status_on_exception(self):
        tr = _tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (rec,) = tr.sink.records()
        assert rec.status == "error"
        assert tr.current_parent() == ""  # stack unwound

    def test_out_of_order_end_does_not_corrupt_stack(self):
        tr = _tracer()
        a = tr.begin("a")
        b = tr.begin("b")
        tr.end(a)  # ended under b: removed from mid-stack
        assert tr.current_parent() == "b"
        tr.end(b)
        assert tr.current_parent() == ""

    def test_end_merges_and_sorts_attrs(self):
        tr = _tracer()
        h = tr.begin("s", z=1, a=2)
        rec = tr.end(h, m=3)
        assert rec.attrs == (("a", 2), ("z", 1), ("m", 3))

    def test_emit_uses_zero_length_wall_interval(self):
        tr = _tracer()
        rec = tr.emit("mark", 5.0, 5.0)
        assert rec.t0_wall == rec.t1_wall
        assert rec.category == "sim"

    def test_sim_argument_supplies_sim_times(self):
        tr = _tracer()
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        sim.schedule(1.5, lambda s, p: None)
        with tr.span("drain", sim=sim, category="model"):
            sim.run()
        (rec,) = tr.sink.records()
        assert rec.t0_sim == 0.0 and rec.t1_sim == 1.5


class TestAttachTracer:
    def test_refuses_null_registry(self):
        sim = Simulator()  # no session -> NULL_REGISTRY
        if sim.metrics is not NULL_REGISTRY:
            pytest.skip("a session registry is active")
        with pytest.raises(ValueError, match="NULL registry"):
            attach_tracer(sim)

    def test_attaches_and_rides_checkpoints(self):
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        tracer = attach_tracer(sim)
        assert sim.metrics.tracer is tracer
        tracer.emit("before", 0.0, 0.0)
        snap = sim.snapshot()
        tracer.emit("after", 1.0, 1.0)
        sim.restore(snap)
        assert [r.name for r in tracer.sink.records()] == ["before"]

    def test_kernel_run_span_emitted(self):
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        tracer = attach_tracer(sim)
        sim.schedule(1.0, lambda s, p: None)
        sim.run()
        (rec,) = tracer.sink.records("kernel")
        assert rec.name == "kernel.run"
        assert rec.status == "ok"
        assert dict(rec.attrs)["events"] == 1

    def test_kernel_run_span_error_status_on_raise(self):
        sim = Simulator(metrics=MetricsRegistry(enabled=True))
        tracer = attach_tracer(sim)

        def boom(s, p):
            raise ValueError("x")

        sim.schedule(1.0, boom)
        with pytest.raises(ValueError):
            sim.run()
        (rec,) = tracer.sink.records("kernel")
        assert rec.status == "error"


class TestMaybeSpan:
    def test_none_tracer_is_inert(self):
        with maybe_span(None, "whatever"):
            pass  # no tracer, no sink, no error

    def test_real_tracer_records(self):
        tr = _tracer()
        with maybe_span(tr, "phase", category="model"):
            pass
        (rec,) = tr.sink.records()
        assert (rec.name, rec.category) == ("phase", "model")


class TestDigest:
    def _records(self):
        tr = _tracer()
        with tr.span("run", category="model"):
            tr.emit("req", 0.25, 1.5, i=0)
            tr.emit("req", 0.5, 2.0, i=1)
        return tr.sink.records()

    def test_digest_stable_across_wall_clocks(self):
        assert (span_stream_digest(self._records())
                == span_stream_digest(self._records()))

    def test_digest_sensitive_to_attrs_and_times(self):
        base = self._records()
        tr = _tracer()
        with tr.span("run", category="model"):
            tr.emit("req", 0.25, 1.5, i=0)
            tr.emit("req", 0.5, 2.0, i=2)  # differs
        assert span_stream_digest(base) != span_stream_digest(tr.sink.records())

    def test_category_filter(self):
        recs = self._records()
        sim_only = canonical_spans(recs, categories=["sim"])
        assert len(sim_only) == 2
        assert span_stream_digest(recs, ["sim"]) != span_stream_digest(recs)

    def test_nan_sim_time_is_representable(self):
        tr = _tracer()
        tr.emit("odd", math.nan, None)
        assert span_stream_digest(tr.sink.records())  # no raise
