"""CLI tests: ``python -m repro obs`` and the --trace/--profile flags."""

import json
import subprocess
import sys

import pytest

from repro.obs.cli import MODEL_JOBS, MODEL_SEEDS, build_report, main

#: The straight-run golden digests (tests/obs/test_golden_traces.py);
#: the CLI's per-job worker streams must be the very same streams.
from .test_golden_traces import GOLDEN_TRACES


class TestBuildReport:
    def test_report_structure_and_digests(self):
        report = build_report(["harvest"], profile_period=8)
        assert report["ok"] is True
        assert report["jobs"]["obs-harvest"]["status"] == "succeeded"
        assert report["jobs"]["obs-harvest"]["result"]["committed"] > 0
        assert report["span_digests"]["obs-harvest"] == GOLDEN_TRACES["harvest"][0]
        assert report["telemetry"]["profile"]

    def test_worker_streams_match_goldens_for_all_models(self):
        report = build_report(sorted(MODEL_JOBS), profile_period=0)
        for model in MODEL_JOBS:
            assert report["span_digests"][f"obs-{model}"] == GOLDEN_TRACES[model][0], model

    def test_seed_offset_changes_streams(self):
        base = build_report(["cluster"])
        moved = build_report(["cluster"], seed_offset=1)
        assert (base["span_digests"]["obs-cluster"]
                != moved["span_digests"]["obs-cluster"])


class TestMain:
    def test_writes_all_artifacts(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        blob = tmp_path / "r.json"
        flame = tmp_path / "p.flame"
        rc = main(["--models", "harvest,noc", "--prom", str(prom),
                   "--json", str(blob), "--flame", str(flame), "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "obs sweep: 2 jobs, 2 succeeded" in out
        assert "obs-harvest" in out and "obs-noc" in out
        text = prom.read_text()
        assert "# TYPE repro_sensor_intermittent_checkpoints_total counter" in text
        parsed = json.loads(blob.read_text())
        assert parsed["ok"] is True
        assert set(parsed["span_digests"]) == {"obs-harvest", "obs-noc"}
        assert flame.read_text().strip()  # collapsed stacks present

    def test_json_artifact_is_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            p = tmp_path / f"r{i}.json"
            assert main(["--models", "noc", "--json", str(p),
                         "--profile-period", "0"]) == 0
            paths.append(p)
        a, b = (json.loads(p.read_text()) for p in paths)
        # Wall-clock fields differ; the deterministic projection must not.
        assert a["span_digests"] == b["span_digests"]
        assert a["telemetry"]["metrics"] == b["telemetry"]["metrics"]

    def test_pool_matches_serial_digests(self, tmp_path):
        digests = []
        for jobs in ("1", "2"):
            p = tmp_path / f"r{jobs}.json"
            assert main(["--models", "cluster,harvest", "-j", jobs,
                         "--json", str(p)]) == 0
            digests.append(json.loads(p.read_text())["span_digests"])
        assert digests[0] == digests[1]

    def test_rejects_unknown_model_and_bad_args(self, capsys):
        for argv in (["--models", "nope"], ["--jobs", "0"],
                     ["--trace-capacity", "0"], ["--profile-period", "-1"]):
            with pytest.raises(SystemExit):
                main(argv)
            capsys.readouterr()

    def test_seeds_cover_all_models(self):
        assert set(MODEL_SEEDS) == set(MODEL_JOBS)


class TestModuleEntry:
    def test_python_dash_m_repro_obs(self, tmp_path):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "obs", "--models", "harvest",
             "--json", str(tmp_path / "r.json")],
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert "obs sweep: 1 jobs, 1 succeeded" in out.stdout

    def test_python_dash_m_repro_trace_flag(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "E07", "--trace"],
            capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert "Span traces (per experiment):" in out.stdout
        assert "E07" in out.stdout
