"""Exporter tests: Prometheus exposition text and canonical JSON."""

import json
import math

import numpy as np

from repro.core.instrument import MetricsRegistry
from repro.obs.export import canonical_json, registry_state_to_prometheus


def _state():
    reg = MetricsRegistry(enabled=True)
    reg.scoped("noc").counter("hops").inc(42)
    reg.gauge("queue.depth").set(3.5)
    hist = reg.histogram("lat.s")
    for v in range(1, 101):
        hist.observe(float(v))
    return reg.to_state()


class TestPrometheus:
    def test_counter_gauge_summary_rendering(self):
        text = registry_state_to_prometheus(_state())
        assert "# TYPE repro_noc_hops_total counter" in text
        assert "repro_noc_hops_total 42" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3.5" in text
        assert "# TYPE repro_lat_s summary" in text
        assert 'repro_lat_s{quantile="0.5"}' in text
        assert "repro_lat_s_sum 5050.0" in text
        assert "repro_lat_s_count 100" in text
        assert "repro_lat_s_min 1.0" in text
        assert "repro_lat_s_max 100.0" in text
        assert text.endswith("\n")

    def test_dots_and_dashes_sanitized(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a.b-c/d").inc()
        text = registry_state_to_prometheus(reg.to_state())
        assert "repro_a_b_c_d_total 1" in text

    def test_leading_digit_prefixed(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("99s").inc()
        assert "repro__99s_total" in registry_state_to_prometheus(reg.to_state())

    def test_nan_gauge_renders_prometheus_nan(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g")  # unset: NaN
        text = registry_state_to_prometheus(reg.to_state())
        assert "repro_g NaN" in text

    def test_empty_histogram_skips_min_max(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("h")
        text = registry_state_to_prometheus(reg.to_state())
        assert "repro_h_count 0" in text
        assert "repro_h_min" not in text
        # Empty quantiles are NaN, rendered as Prometheus NaN.
        assert 'repro_h{quantile="0.5"} NaN' in text

    def test_empty_state_is_empty_string(self):
        assert registry_state_to_prometheus({}) == ""

    def test_custom_prefix(self):
        text = registry_state_to_prometheus(_state(), prefix="x")
        assert "x_noc_hops_total" in text


class TestCanonicalJson:
    def test_sorted_keys_and_trailing_newline(self):
        out = canonical_json({"b": 1, "a": 2})
        assert out.index('"a"') < out.index('"b"')
        assert out.endswith("\n")

    def test_deterministic_across_insertion_orders(self):
        assert canonical_json({"a": 1, "b": [2, 3]}) == canonical_json(
            {"b": [2, 3], "a": 1}
        )

    def test_non_finite_floats_become_null(self):
        parsed = json.loads(canonical_json(
            {"nan": math.nan, "inf": math.inf, "ninf": -math.inf, "ok": 1.5}
        ))
        assert parsed == {"nan": None, "inf": None, "ninf": None, "ok": 1.5}

    def test_numpy_scalars_and_tuples_serialized(self):
        parsed = json.loads(canonical_json(
            {"n": np.float64(2.5), "i": np.int64(3), "t": (1, 2)}
        ))
        assert parsed == {"n": 2.5, "i": 3, "t": [1, 2]}

    def test_non_string_keys_coerced_and_sorted(self):
        parsed = json.loads(canonical_json({2: "b", 1: "a"}))
        assert parsed == {"1": "a", "2": "b"}

    def test_registry_state_round_trips(self):
        state = _state()
        parsed = json.loads(canonical_json(state))
        assert parsed["counters"]["noc.hops"] == 42
        assert parsed["histograms"]["lat.s"]["count"] == 100
