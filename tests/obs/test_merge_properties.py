"""Property-based tests for cross-process metric merge (PR5 satellite).

The engine folds worker registries together with
:meth:`MetricsRegistry.merge_state`; for the merged report to be
independent of pool scheduling the merge must be **commutative**, and
for multi-level merges (worker -> engine -> fleet) it must be
**associative**.  These properties are exercised over randomly drawn
registry states.

Draws use integer-valued floats so float-addition round-off cannot
muddy exact equality: associativity of the *merge rules* is what is
under test, not IEEE addition.  Histogram reservoirs stay under
capacity in the associativity draw (the documented regime where the
sorted-multiset union is exact); commutativity holds at any size.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrument import Histogram, MetricsRegistry

names = st.sampled_from(["a", "b", "c", "lat", "q"])
int_floats = st.integers(-1000, 1000).map(float)


@st.composite
def registry_states(draw, max_hist_values=20, hist_capacity=4096):
    """A random ``MetricsRegistry.to_state()`` blob, built organically."""
    reg = MetricsRegistry(enabled=True)
    for name in draw(st.lists(names, max_size=3, unique=True)):
        reg.counter(name).inc(draw(st.integers(0, 10_000)))
    for name in draw(st.lists(names, max_size=3, unique=True)):
        reg.gauge(f"g.{name}").set(draw(int_floats))
    for name in draw(st.lists(names, max_size=2, unique=True)):
        hist = reg.histogram(f"h.{name}", capacity=hist_capacity)
        for value in draw(st.lists(int_floats, max_size=max_hist_values)):
            hist.observe(value)
    return reg.to_state()


def merge(*states: dict) -> dict:
    out = MetricsRegistry(enabled=True)
    for state in states:
        out.merge_state(state)
    return out.to_state()


@given(registry_states(), registry_states())
@settings(max_examples=60, deadline=None)
def test_merge_commutative(a, b):
    assert merge(a, b) == merge(b, a)


@given(registry_states(), registry_states(), registry_states())
@settings(max_examples=60, deadline=None)
def test_merge_associative(a, b, c):
    assert merge(merge(a, b), c) == merge(a, merge(b, c))


@given(registry_states())
@settings(max_examples=30, deadline=None)
def test_empty_state_is_identity(a):
    empty = MetricsRegistry(enabled=True).to_state()
    assert merge(a, empty) == merge(empty, a) == merge(a)


@given(registry_states())
@settings(max_examples=30, deadline=None)
def test_round_trip_through_from_state(a):
    assert MetricsRegistry.from_state(a).to_state() == merge(a)


@given(st.lists(int_floats, min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_reservoir_deterministic_for_fixed_name_and_order(values):
    """Same metric name + same observation order => identical state,
    including the (seeded-xorshift) reservoir."""

    def build():
        h = Histogram("lat", capacity=32)
        for v in values:
            h.observe(v)
        return h.to_state()

    assert build() == build()


@given(st.lists(int_floats, min_size=1, max_size=50),
       st.lists(int_floats, min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_histogram_merge_exact_for_count_total_min_max(xs, ys):
    h = Histogram("lat", capacity=8)  # small: reservoir subsampling active
    for v in xs:
        h.observe(v)
    h.merge_state(_hist_state(ys))
    assert h.count == len(xs) + len(ys)
    assert h.total == sum(xs) + sum(ys)
    assert h.min == min(xs + ys)
    assert h.max == max(xs + ys)
    assert len(h.to_state()["reservoir"]) <= 8


def _hist_state(values, capacity=8):
    h = Histogram("lat", capacity=capacity)
    for v in values:
        h.observe(v)
    return h.to_state()


def test_gauge_merge_keeps_peak_and_sums_samples():
    a = MetricsRegistry(enabled=True)
    a.gauge("depth").set(3.0)
    a.gauge("depth").set(1.0)  # last value 1.0, samples 2
    b = MetricsRegistry(enabled=True)
    b.gauge("depth").set(7.0)
    merged = merge(a.to_state(), b.to_state())
    assert merged["gauges"]["depth"] == {"value": 7.0, "samples": 3}


def test_gauge_nan_never_beats_a_real_value():
    a = MetricsRegistry(enabled=True)
    a.gauge("g").set(float("nan"))
    b = MetricsRegistry(enabled=True)
    b.gauge("g").set(-5.0)
    for first, second in [(a, b), (b, a)]:
        merged = merge(first.to_state(), second.to_state())
        assert merged["gauges"]["g"]["value"] == -5.0
        assert merged["gauges"]["g"]["samples"] == 2


def test_gauge_all_nan_merge_stays_nan():
    a = MetricsRegistry(enabled=True)
    a.gauge("g").set(float("nan"))
    merged = merge(a.to_state(), a.to_state())
    assert math.isnan(merged["gauges"]["g"]["value"])
    assert merged["gauges"]["g"]["samples"] == 2


def test_unset_gauge_does_not_overwrite():
    a = MetricsRegistry(enabled=True)
    a.gauge("g")  # created, never set: samples == 0
    b = MetricsRegistry(enabled=True)
    b.gauge("g").set(2.0)
    merged = merge(b.to_state(), a.to_state())
    assert merged["gauges"]["g"] == {"value": 2.0, "samples": 1}


def test_merged_instrument_order_is_sorted_and_stable():
    a = MetricsRegistry(enabled=True)
    a.counter("z").inc()
    b = MetricsRegistry(enabled=True)
    b.counter("a").inc()
    ab = merge(a.to_state(), b.to_state())
    ba = merge(b.to_state(), a.to_state())
    assert list(ab["counters"]) == list(ba["counters"]) == ["a", "z"]
