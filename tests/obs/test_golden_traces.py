"""Golden-trace suite (PR5 satellite): span streams are part of the
reproducibility contract.

Two layers of pinning:

1. **Straight-run goldens** — for each seeded kernel model, the sha256
   of the full canonical span stream (model + kernel + sim categories,
   wall-clock excluded) recorded through an attached tracer.  These are
   the observability twin of the executed-event-stream goldens in
   ``tests/integration/test_golden_determinism.py``: if one moves, the
   observable behaviour changed, not just the timing.
2. **Crash+resume equivalence** — a run that crashes mid-flight and
   resumes from the last checkpoint must emit the *identical*
   ``"sim"``-category span stream as a run that never crashed
   (lifecycle spans legitimately differ: the resumed run has an extra
   ``kernel.run``).  This extends the PR4 determinism guarantee to the
   telemetry channel: a resumed experiment's trace *is* the
   experiment's trace.

Regenerate the goldens after an intentional semantic change with::

    PYTHONPATH=src python tests/obs/test_golden_traces.py
"""

import pytest

from repro.core.events import Simulator
from repro.core.instrument import MetricsRegistry
from repro.datacenter.cluster import Balancer, ClusterConfig, ClusterSimulator
from repro.datacenter.hedging import kernel_hedged_latencies
from repro.datacenter.latency import lognormal_latency
from repro.interconnect.noc import MeshNoC, NoCConfig
from repro.interconnect.traffic import make_pattern, poisson_injection_times
from repro.obs.spans import attach_tracer, canonical_spans, span_stream_digest
from repro.resilience import CheckpointManager, SimulatedCrash
from repro.sensor.harvest import (
    Harvester,
    IntermittentConfig,
    simulate_intermittent,
)


def _traced_sim():
    sim = Simulator(metrics=MetricsRegistry(enabled=True))
    return sim, attach_tracer(sim)


def _model_cluster(sim):
    ClusterSimulator(ClusterConfig(
        n_servers=8,
        balancer=Balancer.JSQ,
        slow_server_fraction=0.25,
        slow_factor=3.0,
    )).run(arrival_rate=6.0, n_requests=400, rng=123, sim=sim)


def _model_hedging(sim):
    dist = lognormal_latency(median_ms=10.0, sigma=0.8)
    kernel_hedged_latencies(dist, 300, trigger_quantile=0.9, rng=7, sim=sim)


_NOC_CFG = NoCConfig(width=4, height=4)


def _model_noc(sim):
    pairs = make_pattern("uniform", 300, _NOC_CFG.width, _NOC_CFG.height, rng=5)
    times = poisson_injection_times(300, rate_per_cycle=0.8, rng=5)
    MeshNoC(_NOC_CFG).run(pairs, injection_times=times, sim=sim)


def _model_harvest(sim):
    simulate_intermittent(
        Harvester(),
        IntermittentConfig(),
        checkpoint_interval_quanta=10,
        n_intervals=2_000,
        rng=3,
        sim=sim,
    )


_MODELS = {
    "cluster": _model_cluster,
    "hedging": _model_hedging,
    "noc": _model_noc,
    "harvest": _model_harvest,
}


def _run_traced(name) -> tuple[str, int]:
    sim, tracer = _traced_sim()
    _MODELS[name](sim)
    records = tracer.sink.records()
    return span_stream_digest(records), len(records)


#: (full-stream sha256, span count) per seeded model.
GOLDEN_TRACES = {
    "cluster": (
        "a475df33dc9735ae9bd8ba2467bcead387944ef5f2c27c52838f48ad9ff36f8d",
        402,
    ),
    "hedging": (
        "a8394987fc40bd14fe5fc60a3b434bdebaea9361eaf56cfe2f40152b53a5576e",
        302,
    ),
    "noc": (
        "f01ff68e07169ce87cde1638e2f0c2c785fbee18d6bb0a6dca344d0b73bb7852",
        302,
    ),
    "harvest": (
        # Re-recorded in PR8: the tick train is pre-scheduled with
        # exact accumulated times (t_{i+1} = t_i + interval) instead of
        # the self-rescheduling PeriodicSource's now+period chain, so
        # span sim-timestamps carry the accumulated floats (same span
        # count, same structure).  Called out alongside the harvest
        # golden in tests/integration/test_golden_determinism.py.
        "a39e63e0bc71da9705b169be86417aed176d1c2bce1a6d686fe6560474c5eed8",
        102,
    ),
}


@pytest.mark.parametrize("name", sorted(_MODELS))
def test_straight_run_trace_matches_golden(name):
    assert _run_traced(name) == GOLDEN_TRACES[name]


def test_traces_reproducible_run_to_run():
    for name in _MODELS:
        assert _run_traced(name) == _run_traced(name), name


# -- crash + resume ---------------------------------------------------------


def _crash_once(sim, box):
    if box["armed"]:
        box["armed"] = False
        raise SimulatedCrash(f"injected crash at t={sim.now:g}")


def _run_with_crash(model_fn, period, crash_at, armed, resume_until):
    """One traced run; the crash event is scheduled (armed or disarmed)
    in both variants so sequence numbers stay aligned."""
    sim, tracer = _traced_sim()
    mgr = CheckpointManager(period=period, keep=2)
    mgr.arm(sim)
    sim.schedule_at(crash_at, _crash_once, {"armed": armed})
    if not armed:
        model_fn(sim)
    else:
        with pytest.raises(SimulatedCrash):
            model_fn(sim)
        assert mgr.taken > 0
        sim.restore(mgr.latest)
        if resume_until is None:
            sim.run()
        else:
            sim.run(until=resume_until)
    return tracer.sink.records()


_CRASH_PARAMS = {
    "cluster": dict(period=10.0, crash_at=35.0, resume_until=None),
    "hedging": dict(period=1000.0, crash_at=4500.0, resume_until=None),
    "noc": dict(period=60.0, crash_at=210.0, resume_until=200_000.0),
    "harvest": dict(period=3.0, crash_at=11.0,
                    resume_until=(2_000 - 0.5) * 0.01),
}


@pytest.mark.parametrize("name", sorted(_MODELS))
def test_crash_resume_sim_spans_equal_straight_run(name):
    params = _CRASH_PARAMS[name]
    straight = _run_with_crash(_MODELS[name], armed=False, **params)
    resumed = _run_with_crash(_MODELS[name], armed=True, **params)
    straight_sim = canonical_spans(straight, ["sim"])
    resumed_sim = canonical_spans(resumed, ["sim"])
    assert resumed_sim == straight_sim
    assert span_stream_digest(resumed, ["sim"]) == span_stream_digest(
        straight, ["sim"]
    )
    # Lifecycle span counts also line up: the crashed drain's
    # ``kernel.run`` span is emitted after the snapshot point, so the
    # restore truncates it out of the sink, and only the resume drain's
    # span remains — matching the straight run's single drain.
    straight_kernel = [r for r in straight if r.category == "kernel"]
    resumed_kernel = [r for r in resumed if r.category == "kernel"]
    assert len(resumed_kernel) == len(straight_kernel)
    assert all(r.status == "ok" for r in resumed_kernel)


def test_checkpoint_spans_present_and_replayed(name="cluster"):
    params = _CRASH_PARAMS[name]
    resumed = _run_with_crash(_MODELS[name], armed=True, **params)
    marks = [r for r in resumed if r.name == "resilience.checkpoint"]
    assert marks, "checkpoint ticks must leave trace marks"
    taken = [dict(r.attrs)["taken"] for r in marks]
    assert taken == sorted(set(taken)), "restore must not duplicate marks"


if __name__ == "__main__":
    # Regeneration helper:
    #   PYTHONPATH=src python tests/obs/test_golden_traces.py
    for name in _MODELS:
        print(f'    "{name}": {_run_traced(name)!r},')
