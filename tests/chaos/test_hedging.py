"""Hedged dispatch: duplicate the straggler, keep the first answer.

Unit tests drive the router against a scriptable in-process backend so
every race is deterministic; one end-to-end test runs a real straggler
through the process pool and checks the hedge actually beats it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec.backends.router import BackendRouter, HedgePolicy
from repro.exec.engine import ExecutionEngine
from repro.exec.job import Job, JobGraph
from repro.exec.runners import ATTEMPT_OK, Attempt, ProcessPoolRunner


class FakeBackend:
    """Scriptable Runner: completions happen when the test says so."""

    def __init__(self, slots: int = 4, worker: str = "w0"):
        self.slots = slots
        self.worker = worker
        self.inflight: dict[str, Job] = {}
        self.results: list[Attempt] = []
        self.cancelled: list[str] = []
        self.quarantined: list[str] = []

    def capacity(self) -> int:
        return self.slots - len(self.inflight)

    def active(self) -> int:
        return len(self.inflight)

    def submit(self, job, config, timeout_s, **extras) -> None:
        self.inflight[job.id] = job

    def complete(
        self, sub_id: str, result=None, status: str = ATTEMPT_OK,
        worker: str | None = None, duration_s: float = 0.01,
    ) -> None:
        self.inflight.pop(sub_id, None)
        self.results.append(
            Attempt(
                sub_id, status, result,
                None if status == ATTEMPT_OK else "boom",
                duration_s, worker=worker or self.worker,
            )
        )

    def poll(self) -> list[Attempt]:
        out, self.results = self.results, []
        return out

    def cancel(self, sub_id: str) -> bool:
        self.cancelled.append(sub_id)
        return self.inflight.pop(sub_id, None) is not None

    def quarantine_worker(self, name: str) -> None:
        self.quarantined.append(name)

    def shutdown(self) -> None:
        pass


def _job(jid: str = "j1") -> Job:
    return Job(id=jid, fn=lambda c: c)


def test_policy_validation():
    with pytest.raises(ValueError, match="delay_s"):
        HedgePolicy(delay_s=-1.0)
    with pytest.raises(ValueError, match="quantile"):
        HedgePolicy(quantile=1.0)
    with pytest.raises(ValueError, match="min_observations"):
        HedgePolicy(min_observations=0)


def test_hedge_wins_and_primary_is_cancelled():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, hedge=HedgePolicy(delay_s=0.0))
    router.submit(_job(), None, None)
    assert router.poll() == []  # launches the hedge, nothing done yet
    assert set(fake.inflight) == {"j1", "j1~~h1"}
    assert router.hedges_launched == 1

    fake.complete("j1~~h1", {"answer": 42}, worker="w-hedge")
    (attempt,) = router.poll()
    assert attempt.job_id == "j1"  # rewritten to the real id
    assert attempt.ok and attempt.result == {"answer": 42}
    assert router.hedges_won == 1
    assert router.hedged["j1"]["won_by"] == "hedge"
    assert router.hedged["j1"]["worker"] == "w-hedge"
    assert "j1" in fake.cancelled  # the straggling primary

    # The cancelled primary straggles in anyway: dropped, not delivered.
    fake.results.append(Attempt("j1", ATTEMPT_OK, {"answer": 41}, None, 9.9))
    assert router.poll() == []


def test_primary_wins_and_hedge_is_cancelled():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, hedge=HedgePolicy(delay_s=0.0))
    router.submit(_job(), None, None)
    router.poll()
    fake.complete("j1", {"answer": 1})
    (attempt,) = router.poll()
    assert attempt.job_id == "j1" and attempt.ok
    assert router.hedged["j1"]["won_by"] == "primary"
    assert router.hedges_won == 0
    assert "j1~~h1" in fake.cancelled


def test_unexpired_flight_is_not_hedged():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, hedge=HedgePolicy(delay_s=60.0))
    router.submit(_job(), None, None)
    router.poll()
    assert set(fake.inflight) == {"j1"}
    assert router.hedges_launched == 0
    fake.complete("j1", {"x": 1})
    (attempt,) = router.poll()
    assert attempt.ok
    assert "j1" not in router.hedged  # never hedged, no provenance entry


def test_max_hedges_caps_duplicates():
    fake = FakeBackend(slots=8)
    router = BackendRouter(
        {"a": fake}, hedge=HedgePolicy(delay_s=0.0, max_hedges=1)
    )
    router.submit(_job("j1"), None, None)
    router.submit(_job("j2"), None, None)
    router.poll()
    hedges = [sub for sub in fake.inflight if "~~h" in sub]
    assert len(hedges) == 1
    assert router.hedges_launched == 1


def test_hedge_never_displaces_first_attempts():
    fake = FakeBackend(slots=1)  # the primary fills the only slot
    router = BackendRouter({"a": fake}, hedge=HedgePolicy(delay_s=0.0))
    router.submit(_job(), None, None)
    router.poll()
    assert set(fake.inflight) == {"j1"}
    assert router.hedges_launched == 0


def test_adaptive_delay_needs_observations_then_tracks_quantile():
    fake = FakeBackend()
    router = BackendRouter(
        {"a": fake},
        hedge=HedgePolicy(quantile=0.5, min_observations=4),
    )
    assert router._hedge_delay() is None  # noqa: SLF001 - not enough data
    for i, duration in enumerate((0.01, 0.02, 0.03, 0.04)):
        jid = f"q{i}"
        router.submit(_job(jid), None, None)
        fake.complete(jid, {"i": i}, duration_s=duration)
        router.poll()
    assert router._hedge_delay() == pytest.approx(0.03)  # noqa: SLF001


# ---------------------------------------------------------------------------
# End to end: a real straggler through the pool, hedged away
# ---------------------------------------------------------------------------


def _transient_straggler(config: dict) -> dict:
    """Slow on the first placement, fast on any later one."""
    marker = config["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        time.sleep(0.6)
    else:
        time.sleep(0.01)
    return {"tag": config["tag"]}


def test_hedged_pool_run_beats_the_straggler(tmp_path):
    router = BackendRouter(
        {"pool": ProcessPoolRunner(2)},
        hedge=HedgePolicy(delay_s=0.08),
    )
    engine = ExecutionEngine(runner=router)
    graph = JobGraph([
        Job(
            id="straggle",
            fn=_transient_straggler,
            config={"marker": str(tmp_path / "m"), "tag": "t"},
        )
    ])
    report = engine.run(graph)
    assert report.ok
    assert report.result("straggle") == {"tag": "t"}
    assert report.routing is not None
    hedges = report.routing["hedges"]
    assert hedges["launched"] == 1
    assert hedges["won"] == 1
    assert hedges["by_job"]["straggle"]["won_by"] == "hedge"
    assert "1 hedged (1 won)" in report.one_line()
