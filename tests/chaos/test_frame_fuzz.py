"""Frame-decoder fuzz: hostile bytes must yield typed errors, never
crashes or hangs.

``recv_frame`` sits directly on the network; anything a damaged or
malicious peer can put on the wire must surface as a
:class:`FrameError` subclass (or a clean EOF ``None``) — no unhandled
``struct``/``pickle``/``Unicode`` exceptions, no wedged reads.
"""

from __future__ import annotations

import pickle
import random
import socket
import struct
import zlib

import pytest

from repro.exec.backends.frames import (
    FRAME_MAGIC,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    FrameProtocolError,
    FrameVersionError,
    recv_frame,
)

_HEADER = struct.Struct("!BBBII")


def _frame(
    tag: str = "res",
    payload=("job-1", "ok", {"x": 1}, None),
    magic: int = FRAME_MAGIC,
    version: int = PROTOCOL_VERSION,
    body_len: int | None = None,
    crc: int | None = None,
) -> bytes:
    """A frame, well-formed by default, malformable field by field."""
    tag_bytes = tag.encode("ascii")
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if crc is None:
        crc = zlib.crc32(tag_bytes + body) & 0xFFFFFFFF
    header = _HEADER.pack(
        magic, version, len(tag_bytes),
        len(body) if body_len is None else body_len, crc,
    )
    return header + tag_bytes + body


def _feed(blob: bytes) -> list:
    """Write ``blob`` to a real socket, read frames until EOF."""
    a, b = socket.socketpair()
    b.settimeout(5.0)  # a hang is a failure, not a wait
    try:
        a.sendall(blob)
        a.close()
        frames = []
        while True:
            frame = recv_frame(b)
            if frame is None:
                return frames
            frames.append(frame)
    finally:
        b.close()


def test_wellformed_frame_roundtrips():
    assert _feed(_frame()) == [("res", ("job-1", "ok", {"x": 1}, None))]


def test_random_garbage_never_escapes_the_frame_error_type():
    rng = random.Random(0xC0FFEE)
    outcomes = {"frames": 0, "errors": 0}
    for _ in range(200):
        blob = rng.randbytes(rng.randrange(0, 96))
        try:
            _feed(blob)
            outcomes["frames"] += 1
        except FrameError:
            outcomes["errors"] += 1
        # Anything else (struct.error, UnicodeDecodeError, pickle
        # exceptions, socket.timeout) propagates and fails the test.
    assert outcomes["errors"] > 0  # the corpus did exercise the checks


def test_every_truncation_point_fails_loud_or_clean():
    raw = _frame()
    for cut in range(len(raw)):
        if cut == 0:
            assert _feed(b"") == []  # clean EOF at a frame boundary
            continue
        with pytest.raises(FrameError):
            _feed(raw[:cut])


def test_single_bit_flips_are_always_detected():
    raw = _frame()
    rng = random.Random(20140215)
    for _ in range(150):
        victim = rng.randrange(len(raw) * 8)
        damaged = bytearray(raw)
        damaged[victim // 8] ^= 1 << (victim % 8)
        with pytest.raises(FrameError):
            _feed(bytes(damaged))


def test_oversized_body_length_is_rejected_before_allocation():
    with pytest.raises(FrameProtocolError, match="cap"):
        _feed(_frame(body_len=MAX_BODY_BYTES + 1))


def test_bad_magic_is_rejected():
    with pytest.raises(FrameProtocolError, match="magic"):
        _feed(_frame(magic=0x00))


def test_version_skew_is_a_distinct_loud_error():
    with pytest.raises(FrameVersionError, match="upgrade"):
        _feed(_frame(version=PROTOCOL_VERSION + 1))


def test_unpicklable_body_with_valid_checksum_is_typed():
    # A peer can checksum garbage correctly; decode still must not
    # leak a raw pickle exception.
    tag = b"res"
    body = b"certainly not a pickle"
    header = _HEADER.pack(
        FRAME_MAGIC, PROTOCOL_VERSION, len(tag), len(body),
        zlib.crc32(tag + body) & 0xFFFFFFFF,
    )
    with pytest.raises(FrameProtocolError, match="undecodable"):
        _feed(header + tag + body)


def test_non_ascii_tag_is_typed():
    tag = b"\xff\xfe"
    body = pickle.dumps(None)
    header = _HEADER.pack(
        FRAME_MAGIC, PROTOCOL_VERSION, len(tag), len(body),
        zlib.crc32(tag + body) & 0xFFFFFFFF,
    )
    with pytest.raises(FrameProtocolError):
        _feed(header + tag + body)
