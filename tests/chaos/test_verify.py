"""Result cross-checking: DMR/vote replication, the masked/SDC/detected
taxonomy, and quarantine of workers that keep losing votes."""

from __future__ import annotations

import pytest

from repro.exec.backends.router import (
    BackendRouter,
    VerifyPolicy,
    result_hash,
)
from repro.exec.engine import ExecutionEngine
from repro.exec.job import Job, JobGraph
from repro.exec.runners import ATTEMPT_ERROR, ProcessPoolRunner

from .test_hedging import FakeBackend


def _job(jid: str = "j1", **kwargs) -> Job:
    return Job(id=jid, fn=lambda c: c, **kwargs)


def test_policy_validation():
    with pytest.raises(ValueError, match="mode"):
        VerifyPolicy(mode="tmr")
    with pytest.raises(ValueError, match="quarantine_after"):
        VerifyPolicy(quarantine_after=0)
    assert VerifyPolicy(mode="dmr").replicas == 2
    assert VerifyPolicy(mode="vote").replicas == 3


def test_job_verify_field_is_validated():
    with pytest.raises(ValueError, match="verify"):
        Job(id="x", fn=lambda c: c, verify="bogus")


def test_result_hash_is_order_insensitive():
    assert result_hash({"a": 1, "b": 2}) == result_hash({"b": 2, "a": 1})
    assert result_hash({"a": 1}) != result_hash({"a": 2})


def test_dmr_agreement_is_masked():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="dmr"))
    router.submit(_job(), None, None)
    assert set(fake.inflight) == {"j1~~r0", "j1~~r1"}
    fake.complete("j1~~r0", {"x": 1}, worker="w0")
    fake.complete("j1~~r1", {"x": 1}, worker="w1")
    (attempt,) = router.poll()
    assert attempt.job_id == "j1" and attempt.ok
    assert attempt.result == {"x": 1}
    assert router.verified["j1"]["outcome"] == "masked"
    assert router.verify_outcomes == {"masked": 1, "sdc": 0, "detected": 0}
    assert fake.quarantined == []


def test_vote_outvotes_silent_corruption_and_quarantines():
    fake = FakeBackend()
    router = BackendRouter(
        {"a": fake},
        verify=VerifyPolicy(mode="vote", quarantine_after=1),
    )
    router.submit(_job(), None, None)
    assert len(fake.inflight) == 3
    fake.complete("j1~~r0", {"x": 1}, worker="honest-0")
    fake.complete("j1~~r1", {"x": 999}, worker="liar")  # the SDC
    fake.complete("j1~~r2", {"x": 1}, worker="honest-1")
    (attempt,) = router.poll()
    assert attempt.ok and attempt.result == {"x": 1}  # majority answer
    assert router.verified["j1"]["outcome"] == "sdc"
    assert router.verified["j1"]["suspects"] == ["liar"]
    assert router.suspects == ["liar"]
    assert fake.quarantined == ["liar"]  # pushed down to the backend
    report = router.routing_report()
    assert report["verification"]["outcomes"]["sdc"] == 1
    assert report["verification"]["suspects"] == ["liar"]


def test_failed_replica_with_agreeing_survivor_is_detected():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="dmr"))
    router.submit(_job(), None, None)
    fake.complete("j1~~r0", None, status=ATTEMPT_ERROR, worker="w0")
    fake.complete("j1~~r1", {"x": 5}, worker="w1")
    (attempt,) = router.poll()
    assert attempt.ok and attempt.result == {"x": 5}
    assert router.verified["j1"]["outcome"] == "detected"


def test_all_replicas_failing_is_detected_and_fails_the_job():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="dmr"))
    router.submit(_job(), None, None)
    fake.complete("j1~~r0", None, status=ATTEMPT_ERROR)
    fake.complete("j1~~r1", None, status=ATTEMPT_ERROR)
    (attempt,) = router.poll()
    assert not attempt.ok
    assert "replicas failed" in (attempt.error or "")
    assert router.verified["j1"]["outcome"] == "detected"


def test_dmr_tie_gets_one_tiebreak_reexecution():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="dmr"))
    router.submit(_job(), None, None)
    fake.complete("j1~~r0", {"x": 1}, worker="w0")
    fake.complete("j1~~r1", {"x": 2}, worker="w1")
    assert router.poll() == []  # 1-vs-1: the vote stays open
    assert "j1~~tb1" in fake.inflight  # tie-breaking re-execution
    fake.complete("j1~~tb1", {"x": 1}, worker="w2")
    (attempt,) = router.poll()
    assert attempt.ok and attempt.result == {"x": 1}
    assert router.verified["j1"]["outcome"] == "sdc"
    assert router.verified["j1"]["suspects"] == ["w1"]


def test_unresolvable_disagreement_refuses_to_guess():
    fake = FakeBackend()
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="vote"))
    router.submit(_job(), None, None)
    fake.complete("j1~~r0", {"x": 1}, worker="w0")
    fake.complete("j1~~r1", {"x": 2}, worker="w1")
    fake.complete("j1~~r2", {"x": 3}, worker="w2")
    assert router.poll() == []  # three-way split: one tiebreak allowed
    fake.complete("j1~~tb1", {"x": 4}, worker="w3")  # still no majority
    (attempt,) = router.poll()
    assert not attempt.ok
    assert "refusing to pick one" in (attempt.error or "")
    assert router.verified["j1"]["outcome"] == "sdc"


def test_per_job_verify_overrides_router_default():
    fake = FakeBackend()
    router = BackendRouter({"a": fake})  # no router-wide verification
    router.submit(_job("plain"), None, None)
    assert set(fake.inflight) == {"plain"}
    router.submit(_job("checked", verify="dmr"), None, None)
    assert {"checked~~r0", "checked~~r1"} <= set(fake.inflight)


def test_capacity_fans_down_under_verification():
    fake = FakeBackend(slots=6)
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="vote"))
    assert router.capacity() == 2  # 6 slots / 3 replicas


def test_replicas_defer_rather_than_overrun_capacity():
    fake = FakeBackend(slots=2)
    router = BackendRouter({"a": fake}, verify=VerifyPolicy(mode="vote"))
    router.submit(_job(), None, None)
    assert len(fake.inflight) == 2  # third replica parked, not forced
    assert router.active() == 3  # but still counted as in flight
    fake.complete("j1~~r0", {"x": 1}, worker="w0")
    assert router.poll() == []  # frees a slot; deferred replica flushes
    assert "j1~~r2" in fake.inflight
    fake.complete("j1~~r1", {"x": 1}, worker="w1")
    fake.complete("j1~~r2", {"x": 1}, worker="w2")
    (attempt,) = router.poll()
    assert attempt.ok and attempt.result == {"x": 1}
    assert router.verified["j1"]["outcome"] == "masked"


# ---------------------------------------------------------------------------
# Through the engine: provenance lands in the report
# ---------------------------------------------------------------------------


def _identity(config: dict) -> dict:
    return {"i": config["i"]}


def test_engine_run_records_verification_provenance():
    router = BackendRouter(
        {"pool": ProcessPoolRunner(2)}, verify=VerifyPolicy(mode="dmr")
    )
    engine = ExecutionEngine(runner=router)
    graph = JobGraph(
        Job(id=f"v{i}", fn=_identity, config={"i": i}) for i in range(2)
    )
    report = engine.run(graph)
    assert report.ok
    assert report.result("v0") == {"i": 0}
    verification = report.routing["verification"]
    assert verification["mode"] == "dmr"
    assert verification["outcomes"]["masked"] == 2
    assert verification["by_job"]["v1"]["outcome"] == "masked"
