"""Transport chaos: injector determinism, fault kinds, digest parity.

The contract under test is PR9's trust claim: a seeded
:class:`ChaosSocket` replays the exact same fault schedule for the
same (seed, salt), every fault kind produces a *detected* outcome at
the frame layer (typed error or clean EOF — never a hang, never bad
data delivered), and a socket-backend sweep run under chaos finishes
with a ``RunReport.digest()`` identical to a clean run's.
"""

from __future__ import annotations

import os
import signal
import socket
import time

import pytest

from repro.exec.backends.chaos import (
    CHAOS_ENV,
    ChaosConfig,
    ChaosSocket,
    chaos_from_env,
    wrap_socket,
)
from repro.exec.backends.frames import FrameError, recv_frame, send_frame
from repro.exec.backends.socket_worker import SocketWorkerBackend
from repro.exec.engine import ExecutionEngine
from repro.exec.job import Job, JobGraph


# ---------------------------------------------------------------------------
# ChaosConfig: validation, spec strings, env inheritance
# ---------------------------------------------------------------------------


def test_config_rejects_non_probabilities():
    with pytest.raises(ValueError, match="drop"):
        ChaosConfig(drop=1.5)
    with pytest.raises(ValueError, match="bitflip"):
        ChaosConfig(bitflip=-0.1)
    with pytest.raises(ValueError, match="max_delay_ms"):
        ChaosConfig(max_delay_ms=-1.0)


def test_spec_roundtrip():
    config = ChaosConfig(
        seed=7, drop=0.02, duplicate=0.05, bitflip=0.01, max_delay_ms=5.0
    )
    assert ChaosConfig.from_spec(config.to_spec()) == config


def test_spec_unknown_key_fails_loud():
    # A typoed fault name must never silently run a clean campaign.
    with pytest.raises(ValueError, match="bad chaos spec"):
        ChaosConfig.from_spec("seed=1,dorp=0.5")


def test_chaos_from_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    assert chaos_from_env() is None
    monkeypatch.setenv(CHAOS_ENV, "seed=9,drop=0.25")
    config = chaos_from_env()
    assert config is not None and config.seed == 9 and config.drop == 0.25
    monkeypatch.setenv(CHAOS_ENV, "seed=9")  # no fault armed
    assert chaos_from_env() is None


def test_wrap_socket_passthrough_when_inactive():
    sock = socket.socket()
    try:
        assert wrap_socket(sock, None) is sock
        assert wrap_socket(sock, ChaosConfig(seed=1)) is sock
        wrapped = wrap_socket(sock, ChaosConfig(seed=1, drop=0.5))
        assert isinstance(wrapped, ChaosSocket)
    finally:
        sock.close()


# ---------------------------------------------------------------------------
# ChaosSocket: deterministic schedule, observable fault kinds
# ---------------------------------------------------------------------------


class _Recorder:
    """Just enough socket for ChaosSocket's send path."""

    def __init__(self):
        self.sent: list[bytes] = []

    def sendall(self, data):
        self.sent.append(bytes(data))

    def shutdown(self, how):
        pass

    def close(self):
        pass


def _drive(seed: int, salt: int, frames: int = 120) -> tuple[list, dict]:
    config = ChaosConfig(
        seed=seed, drop=0.25, duplicate=0.25, bitflip=0.25, max_delay_ms=0.0
    )
    recorder = _Recorder()
    chaos = ChaosSocket(recorder, config, salt=salt)  # type: ignore[arg-type]
    for i in range(frames):
        chaos.sendall(f"frame-{i:04d}".encode())
    return recorder.sent, dict(chaos.injected)


def test_same_seed_same_salt_replays_identically():
    sent_a, counts_a = _drive(seed=42, salt=3)
    sent_b, counts_b = _drive(seed=42, salt=3)
    assert sent_a == sent_b
    assert counts_a == counts_b
    assert sum(counts_a.values()) > 0  # chaos actually fired


def test_different_salt_draws_a_different_schedule():
    sent_a, _ = _drive(seed=42, salt=1)
    sent_b, _ = _drive(seed=42, salt=2)
    assert sent_a != sent_b


def _chaos_pair(config: ChaosConfig):
    a, b = socket.socketpair()
    b.settimeout(5.0)
    return wrap_socket(a, config), b


def test_duplicate_delivers_the_frame_twice():
    sender, receiver = _chaos_pair(ChaosConfig(seed=1, duplicate=1.0))
    try:
        send_frame(sender, "res", ("job-1", "ok", {"x": 1}, None))
        assert recv_frame(receiver) == ("res", ("job-1", "ok", {"x": 1}, None))
        assert recv_frame(receiver) == ("res", ("job-1", "ok", {"x": 1}, None))
        assert sender.injected["duplicate"] == 1
    finally:
        sender.close()
        receiver.close()


def test_drop_is_a_clean_nothing():
    sender, receiver = _chaos_pair(ChaosConfig(seed=1, drop=1.0))
    try:
        send_frame(sender, "res", ("job-1", "ok", None, None))
        sender.close()
        assert recv_frame(receiver) is None  # clean EOF, nothing delivered
    finally:
        receiver.close()


def test_bitflip_is_detected_never_delivered():
    sender, receiver = _chaos_pair(ChaosConfig(seed=1, bitflip=1.0))
    try:
        send_frame(sender, "res", ("job-1", "ok", {"deep": [1, 2, 3]}, None))
        sender.close()
        # A flipped bit lands in the header (malformed) or in tag/body
        # (checksum mismatch) — either way a typed FrameError, never a
        # frame that parses into different content.
        with pytest.raises(FrameError):
            recv_frame(receiver)
    finally:
        receiver.close()


def test_truncate_tears_down_and_fails_loud():
    sender, receiver = _chaos_pair(ChaosConfig(seed=1, truncate=1.0))
    try:
        send_frame(sender, "res", ("job-1", "ok", {"x": 1}, None))
        with pytest.raises(FrameError, match="closed"):
            recv_frame(receiver)
    finally:
        receiver.close()


# ---------------------------------------------------------------------------
# End to end: a chaos sweep answers exactly like a clean one
# ---------------------------------------------------------------------------


def _point(config: dict) -> dict:
    i = int(config["i"])
    time.sleep(0.003)
    return {"i": i, "y": (i * 31 + 7) % 101}


def _graph(n: int = 12) -> JobGraph:
    return JobGraph(
        Job(id=f"j{i:02d}", fn=_point, config={"i": i}) for i in range(n)
    )


def _sweep(chaos):
    backend = SocketWorkerBackend(
        spawn=2,
        chaos=chaos,
        worker_chaos=chaos,
        respawn=chaos is not None,
        breaker_threshold=6,
    )
    engine = ExecutionEngine(
        runner=backend, default_retries=8, default_timeout_s=10.0
    )
    return engine.run(_graph())


def test_chaos_sweep_digest_matches_clean_sweep():
    clean = _sweep(None)
    chaotic = _sweep(
        ChaosConfig(
            seed=1234,
            drop=0.01,
            duplicate=0.05,
            delay=0.2,
            truncate=0.02,
            bitflip=0.02,
            max_delay_ms=3.0,
        )
    )
    assert clean.ok and chaotic.ok
    assert clean.digest() == chaotic.digest()


# ---------------------------------------------------------------------------
# Satellite: the last worker dying mid-sweep fails fast, not a hang
# ---------------------------------------------------------------------------


def test_last_worker_death_fails_fast_with_clear_error():
    backend = SocketWorkerBackend(spawn=1, no_worker_timeout_s=60.0)
    try:
        deadline = time.perf_counter() + 10.0
        while time.perf_counter() < deadline:
            workers = backend.describe()["workers"]
            if workers:
                break
            time.sleep(0.01)
        assert workers, "spawned worker never registered"
        os.kill(workers[0]["pid"], signal.SIGKILL)
        # Wait for the coordinator to notice the death (roster empties)
        # so the job is *queued with nobody to run it*, the stranding
        # case, not assigned to a corpse (that is the evict path).
        while time.perf_counter() < deadline:
            if not backend.describe()["workers"]:
                break
            time.sleep(0.01)
        assert not backend.describe()["workers"], "death never noticed"

        backend.submit(Job(id="stranded", fn=_point, config={"i": 1}), None, None)
        start = time.perf_counter()
        attempts = []
        while not attempts and time.perf_counter() - start < 15.0:
            attempts = backend.poll()
            time.sleep(0.01)
        elapsed = time.perf_counter() - start

        assert attempts, "stranded job never failed"
        (attempt,) = attempts
        assert attempt.status == "crash"
        assert "last socket worker died mid-sweep" in (attempt.error or "")
        # The whole point: far faster than the no-worker wall timeout.
        assert elapsed < 10.0
    finally:
        backend.shutdown()
