"""Tests for the tamper-proof-memory overhead model."""

import numpy as np
import pytest

from repro.crosscut import (
    IntegrityTreeConfig,
    overhead_vs_arity,
    overhead_vs_cache_hit_rate,
    secure_access_overhead,
)


class TestGeometry:
    def test_default_tree_shape(self):
        cfg = IntegrityTreeConfig()
        assert cfg.n_lines == pytest.approx(2**27)  # 8 GiB / 64 B
        assert cfg.n_counter_blocks == pytest.approx(2**24)
        assert cfg.tree_levels == 8  # log8(2^24)

    def test_storage_overhead_sgx_class(self):
        # SGX-class designs pay ~25% metadata; the model should land
        # in that band.
        cfg = IntegrityTreeConfig()
        assert 0.2 <= cfg.storage_overhead_fraction <= 0.35

    def test_wider_tree_is_shallower(self):
        narrow = IntegrityTreeConfig(tree_arity=2)
        wide = IntegrityTreeConfig(tree_arity=32)
        assert wide.tree_levels < narrow.tree_levels

    def test_validation(self):
        with pytest.raises(ValueError):
            IntegrityTreeConfig(tree_arity=1)
        with pytest.raises(ValueError):
            IntegrityTreeConfig(metadata_cache_hit_rate=1.5)
        with pytest.raises(ValueError):
            IntegrityTreeConfig(protected_bytes=0.0)


class TestOverheads:
    def test_perfect_metadata_cache_nearly_free(self):
        cfg = IntegrityTreeConfig(metadata_cache_hit_rate=1.0)
        out = secure_access_overhead(cfg)
        assert out["bandwidth_overhead"] == pytest.approx(0.0)
        # Only the crypto pipeline latency remains.
        assert out["latency_overhead"] == pytest.approx(
            cfg.crypto_latency_ns / 60.0
        )

    def test_no_cache_pays_the_full_walk(self):
        cfg = IntegrityTreeConfig(metadata_cache_hit_rate=0.0)
        out = secure_access_overhead(cfg)
        assert out["bandwidth_overhead"] == pytest.approx(
            1.0 + cfg.tree_levels
        )

    def test_hit_rate_sweep_monotone(self):
        out = overhead_vs_cache_hit_rate(np.array([0.0, 0.5, 0.9, 1.0]))
        assert np.all(np.diff(out["latency_overhead"]) < 0)
        assert np.all(np.diff(out["bandwidth_overhead"]) < 0)

    def test_arity_sweep(self):
        out = overhead_vs_arity((2, 8, 32))
        assert np.all(np.diff(out["tree_levels"]) < 0)
        assert np.all(np.diff(out["latency_overhead"]) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            secure_access_overhead(dram_latency_ns=0.0)
        with pytest.raises(ValueError):
            overhead_vs_cache_hit_rate(np.array([2.0]))
        with pytest.raises(ValueError):
            overhead_vs_arity(())
