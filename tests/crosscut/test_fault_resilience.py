"""Fault-injector lifecycle guards and deterministic outcome classification.

PR4 satellites: the :class:`KernelFaultInjector` arm/disarm guard (a
double arm would silently double the fault rate), its RNG's
participation in kernel checkpoint/restore (replayed fault events must
redraw identical parameters), and a classification test for
:func:`injection_campaign` built on *constructed* flips whose outcomes
are known a priori — plus the checker-mutation hazard that motivates
the "checkers must not mutate the live register list" contract in
``execute_registers``.
"""

import pytest

from repro.core.events import FunctionCheckpoint, Simulator
from repro.crosscut.faults import (
    KernelFaultInjector,
    Outcome,
    execute_registers,
    injection_campaign,
)
from repro.crosscut.invariants import range_invariant_checker
from repro.processor.isa import Instruction, Opcode


class RecordingTarget:
    """FaultTarget that logs each delivery's rng draw."""

    def __init__(self):
        self.hits = []

    def inject_fault(self, sim, rng):
        self.hits.append((round(sim.now, 9), float(rng.uniform())))


class TestInjectorLifecycle:
    def test_double_arm_raises(self):
        sim = Simulator()
        injector = KernelFaultInjector(mean_interval=5.0, rng=1)
        injector.register(RecordingTarget())
        assert not injector.armed
        injector.arm(sim, horizon=100.0)
        assert injector.armed
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm(sim, horizon=100.0)

    def test_disarm_is_idempotent_and_allows_rearm(self):
        sim = Simulator()
        injector = KernelFaultInjector(mean_interval=5.0, rng=1)
        injector.register(RecordingTarget())
        scheduled = injector.arm(sim, horizon=100.0)
        assert injector.disarm() == scheduled
        assert injector.disarm() == 0  # second disarm: no-op
        assert not injector.armed
        injector.arm(sim, horizon=100.0)  # legal again after disarm
        assert injector.armed

    def test_disarm_before_arm_is_a_noop(self):
        injector = KernelFaultInjector(mean_interval=5.0)
        assert injector.disarm() == 0

    def test_bad_target_rejected(self):
        injector = KernelFaultInjector(mean_interval=5.0)
        with pytest.raises(TypeError, match="inject_fault"):
            injector.register(object())


class TestInjectorCheckpointing:
    def test_restore_replays_identical_fault_train(self):
        """The injector's RNG advances on every delivery, so it rides
        in kernel snapshots: a restored run must redraw the identical
        per-fault parameters, or crash-resume determinism breaks."""
        sim = Simulator()
        target = RecordingTarget()
        injector = KernelFaultInjector(mean_interval=3.0, rng=42)
        injector.register(target)
        # The hit log is state too: roll it back with the kernel.
        sim.register_checkpointable(FunctionCheckpoint(
            lambda: len(target.hits),
            lambda n: target.hits.__delitem__(slice(n, None)),
        ))
        injector.arm(sim, horizon=60.0)  # arm() registers the injector
        snap = sim.snapshot(label="pre-run")

        sim.run()
        first = list(target.hits)
        assert injector.injected == len(first) > 3

        sim.restore(snap)
        assert target.hits == []
        assert injector.injected == 0
        sim.run()
        assert target.hits == first
        assert injector.injected == len(first)


# -- deterministic classification -------------------------------------------
#
# regs start as [1, 2, 3, ..., 32] (regs[i] = i + 1).  The two-ALU
# trace below makes each outcome constructible:
#   i0: r0 <- r1 + r2   (= 5)
#   i1: r3 <- r0 + r1   (= 7)

_TRACE = [
    Instruction(opcode=Opcode.ALU, dst=0, srcs=(1, 2)),
    Instruction(opcode=Opcode.ALU, dst=3, srcs=(0, 1)),
]

#: Flip r0 before i0: i0 overwrites r0 without reading it -> MASKED.
_MASKED_FLIP = (0, 0, 4)
#: Flip r10 (never read, never written) -> survives to the end -> SDC.
_SDC_FLIP = (0, 10, 3)
#: Flip a high bit of r10: busts the 2^20 range invariant -> DETECTED.
_HIGH_FLIP = (0, 10, 40)


class TestDeterministicClassification:
    def test_masked_flip(self):
        result = injection_campaign(_TRACE, flips=[_MASKED_FLIP])
        assert result.outcomes[Outcome.MASKED] == 1

    def test_sdc_flip(self):
        result = injection_campaign(_TRACE, flips=[_SDC_FLIP])
        assert result.outcomes[Outcome.SDC] == 1

    def test_detected_flip(self):
        result = injection_campaign(
            _TRACE,
            flips=[_HIGH_FLIP],
            checker=range_invariant_checker(bound=1 << 20),
        )
        assert result.outcomes[Outcome.DETECTED] == 1

    def test_mixed_flips_partition_exactly(self):
        result = injection_campaign(
            _TRACE,
            flips=[_MASKED_FLIP, _SDC_FLIP, _HIGH_FLIP, _MASKED_FLIP],
            checker=range_invariant_checker(bound=1 << 20),
        )
        assert result.outcomes == {
            Outcome.MASKED: 2, Outcome.SDC: 1, Outcome.DETECTED: 1,
        }
        assert result.total == 4

    def test_flips_override_is_rng_free(self):
        """Explicit flips draw nothing from rng: any seed, same answer."""
        a = injection_campaign(_TRACE, flips=[_SDC_FLIP], rng=0)
        b = injection_campaign(_TRACE, flips=[_SDC_FLIP], rng=999)
        assert a.outcomes == b.outcomes

    def test_empty_flips_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            injection_campaign(_TRACE, flips=[])


class TestCheckerMutationHazard:
    """``execute_registers`` hands checkers the *live* register list
    (keeping the hot path copy-free).  These tests pin down both sides
    of that contract: a well-behaved checker leaves classification
    intact, and a mutating checker visibly corrupts it — which is why
    the docstring forbids mutation."""

    def test_read_only_checker_preserves_masking(self):
        result = injection_campaign(
            _TRACE,
            flips=[_MASKED_FLIP],
            checker=range_invariant_checker(bound=1 << 20),
        )
        assert result.outcomes[Outcome.MASKED] == 1

    def test_mutating_checker_corrupts_classification(self):
        def vandal(regs):
            regs[20] = 0  # mutates the live register file
            return True

        result = injection_campaign(_TRACE, flips=[_MASKED_FLIP], checker=vandal)
        # The flip itself is masked, but the checker's write survives
        # into the final state, so the run misclassifies as SDC.
        assert result.outcomes[Outcome.SDC] == 1

    def test_mutation_visible_in_final_registers(self):
        def vandal(regs):
            regs[20] = 0
            return True

        final, detected = execute_registers(_TRACE, checker=vandal)
        assert not detected
        assert final[20] == 0  # golden value would be 21
