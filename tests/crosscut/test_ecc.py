"""Tests for the SECDED codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crosscut import SECDED, random_word, residual_error_rate


@pytest.fixture(scope="module")
def code():
    return SECDED(64)


class TestGeometry:
    def test_standard_72_64(self, code):
        assert code.hamming_parity_bits == 7
        assert code.code_bits == 72
        assert code.overhead_fraction == pytest.approx(0.125)

    def test_small_codes(self):
        # Hamming(7,4) + overall parity = SECDED(8,4).
        c4 = SECDED(4)
        assert c4.hamming_parity_bits == 3
        assert c4.code_bits == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SECDED(0)


class TestRoundTrip:
    def test_clean_round_trip(self, code):
        for seed in range(10):
            data = random_word(rng=seed)
            decoded, status = code.decode(code.encode(data))
            assert status == "clean"
            np.testing.assert_array_equal(decoded, data)

    def test_single_error_corrected_every_position(self, code):
        data = random_word(rng=0)
        word = code.encode(data)
        for pos in range(code.code_bits):
            corrupted = word.copy()
            corrupted[pos] = ~corrupted[pos]
            decoded, status = code.decode(corrupted)
            assert status == "corrected", pos
            np.testing.assert_array_equal(decoded, data)

    def test_double_errors_detected(self, code):
        data = random_word(rng=1)
        word = code.encode(data)
        rng = np.random.default_rng(2)
        for _ in range(50):
            i, j = rng.choice(code.code_bits, size=2, replace=False)
            corrupted = word.copy()
            corrupted[[i, j]] = ~corrupted[[i, j]]
            _, status = code.decode(corrupted)
            assert status == "detected_uncorrectable", (i, j)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_encode_decode_identity(self, seed):
        c = SECDED(64)
        data = random_word(rng=seed)
        decoded, status = c.inject_and_decode(data, 0, rng=seed)
        assert status == "clean"
        np.testing.assert_array_equal(decoded, data)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_single_flip_always_corrected(self, seed):
        c = SECDED(64)
        data = random_word(rng=seed)
        decoded, status = c.inject_and_decode(data, 1, rng=seed)
        assert status == "corrected"
        np.testing.assert_array_equal(decoded, data)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_double_flip_always_detected(self, seed):
        c = SECDED(64)
        data = random_word(rng=seed)
        _, status = c.inject_and_decode(data, 2, rng=seed)
        assert status == "detected_uncorrectable"

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(32, dtype=bool))
        with pytest.raises(ValueError):
            code.decode(np.zeros(64, dtype=bool))
        with pytest.raises(ValueError):
            code.inject_and_decode(random_word(rng=0), -1)


class TestResidualRates:
    def test_low_ber_mostly_clean(self):
        out = residual_error_rate(1e-9)
        assert out["clean_or_corrected"] > 1 - 1e-12
        assert out["potentially_silent"] < 1e-20

    def test_rates_sum_to_one(self):
        out = residual_error_rate(1e-3)
        total = (
            out["clean_or_corrected"] + out["detected"]
            + out["potentially_silent"]
        )
        assert total == pytest.approx(1.0)

    def test_silent_rate_grows_with_ber(self):
        low = residual_error_rate(1e-6)["potentially_silent"]
        high = residual_error_rate(1e-3)["potentially_silent"]
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            residual_error_rate(2.0)
