"""Tests for fault injection, invariant checking, IFT, and QoS (E19)."""

import numpy as np
import pytest

from repro.crosscut import (
    Application,
    Outcome,
    TaintTracker,
    address_range_policy,
    compare_protection_schemes,
    equal_partition,
    evaluate_partition,
    execute_registers,
    ift_overhead_model,
    injection_campaign,
    isolation_tax,
    proportional_partition,
    qos_first_partition,
    range_invariant_checker,
)
from repro.processor import Instruction, Opcode, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(300, rng=0)


class TestExecution:
    def test_deterministic(self, trace):
        a, _ = execute_registers(trace)
        b, _ = execute_registers(trace)
        np.testing.assert_array_equal(a, b)

    def test_flip_changes_state_or_not(self, trace):
        golden, _ = execute_registers(trace)
        flipped, _ = execute_registers(trace, flip=(0, 0, 10))
        # May be masked or not, but execution must complete.
        assert flipped.shape == golden.shape

    def test_values_stay_bounded(self, trace):
        regs, _ = execute_registers(trace)
        assert np.all(np.abs(regs) < (1 << 20))

    def test_flip_validation(self, trace):
        with pytest.raises(ValueError):
            execute_registers(trace, flip=(0, 99, 0))
        with pytest.raises(ValueError):
            execute_registers(trace, flip=(0, 0, 70))


class TestCampaign:
    def test_outcome_partition(self, trace):
        result = injection_campaign(trace, n_injections=100, rng=0)
        assert result.total == 100
        assert sum(result.outcomes.values()) == 100
        # Without a checker nothing is detected.
        assert result.outcomes[Outcome.DETECTED] == 0

    def test_most_faults_masked(self, trace):
        # Classic ACE-analysis result: most flips hit dead state.
        result = injection_campaign(trace, n_injections=200, rng=1)
        assert result.rate(Outcome.MASKED) > 0.5
        assert result.sdc_rate > 0.0

    def test_checker_detects_high_bit_flips(self, trace):
        result = injection_campaign(
            trace, n_injections=200,
            checker=range_invariant_checker(1 << 20), rng=2,
        )
        assert result.outcomes[Outcome.DETECTED] > 0
        assert result.coverage > 0.5

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            injection_campaign(trace, n_injections=0)
        with pytest.raises(ValueError):
            injection_campaign([], n_injections=1)
        with pytest.raises(ValueError):
            injection_campaign(
                trace, 10,
                checker=lambda r: True,
                checker_factory=lambda: (lambda r: True),
            )


class TestProtectionComparison:
    def test_paper_shape(self, trace):
        out = compare_protection_schemes(trace, n_injections=200, rng=0)
        # DMR: full coverage, no SDC, but 100% energy overhead.
        assert out["dmr"]["sdc_rate"] == 0.0
        assert out["dmr"]["energy_overhead"] == 1.0
        # Invariant checking: most of the SDC reduction at a fraction
        # of the energy — Section 2.4's "lower-overhead approaches".
        tight = out["invariant_tight"]
        assert tight["sdc_rate"] < out["none"]["sdc_rate"]
        assert tight["energy_overhead"] < 0.1
        assert (
            tight["sdc_reduction_per_overhead"]
            > out["dmr"]["sdc_reduction_per_overhead"]
        )

    def test_tight_beats_loose(self, trace):
        out = compare_protection_schemes(trace, n_injections=200, rng=0)
        assert (
            out["invariant_tight"]["coverage"]
            >= out["invariant_loose"]["coverage"]
        )

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            compare_protection_schemes(trace, schemes=[])


class TestIFT:
    def make_trace(self):
        return [
            Instruction(Opcode.LOAD, dst=1, address=100, pc=0),  # tainted
            Instruction(Opcode.ALU, dst=2, srcs=(1, 3), pc=4),  # propagates
            Instruction(Opcode.ALU, dst=4, srcs=(5, 6), pc=8),  # clean
            Instruction(Opcode.STORE, srcs=(2,), address=1 << 20, pc=12),
        ]

    def test_taint_propagates_to_sink(self):
        policy = address_range_policy((0, 4096), (1 << 20, 1 << 21))
        tracker = TaintTracker(policy)
        result = tracker.run(self.make_trace())
        assert result.violated
        assert result.violations == [3]
        assert result.tainted_instructions == 3  # load, alu, store

    def test_clean_flow_no_violation(self):
        policy = address_range_policy((1 << 30, 1 << 31), (1 << 20, 1 << 21))
        tracker = TaintTracker(policy)
        result = tracker.run(self.make_trace())
        assert not result.violated
        assert result.taint_fraction == 0.0

    def test_memory_taint_round_trip(self):
        policy = address_range_policy((0, 64), (1 << 30, 1 << 31))
        trace = [
            Instruction(Opcode.LOAD, dst=1, address=0, pc=0),  # tainted
            Instruction(Opcode.STORE, srcs=(1,), address=8192, pc=4),
            Instruction(Opcode.LOAD, dst=2, address=8192, pc=8),  # re-tainted
        ]
        tracker = TaintTracker(policy)
        result = tracker.run(trace)
        assert tracker.reg_taint[2]
        assert result.tainted_memory_lines == 1

    def test_reset(self):
        policy = address_range_policy((0, 64), (1 << 30, 1 << 31))
        tracker = TaintTracker(policy)
        tracker.run(self.make_trace())
        tracker.reset()
        assert not tracker.reg_taint.any()

    def test_overhead_model(self):
        eager = ift_overhead_model(0.1, lazy_propagation=False)
        lazy = ift_overhead_model(0.1, lazy_propagation=True)
        assert lazy["energy_overhead"] < eager["energy_overhead"]
        assert eager["hardware_advantage"] > 10.0
        with pytest.raises(ValueError):
            ift_overhead_model(2.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            address_range_policy((10, 0), (0, 1))
        with pytest.raises(ValueError):
            TaintTracker(
                address_range_policy((0, 1), (2, 3)), line_bytes=0
            )


class TestQoS:
    def apps(self):
        return [
            Application("critical", 1.0, 0.5, qos_target=0.9),
            Application("batch", 2.0, 0.7),
        ]

    def test_equal_partition(self):
        shares = equal_partition(self.apps())
        np.testing.assert_allclose(shares, [0.5, 0.5])

    def test_proportional(self):
        shares = proportional_partition(self.apps(), [3.0, 1.0])
        np.testing.assert_allclose(shares, [0.75, 0.25])
        with pytest.raises(ValueError):
            proportional_partition(self.apps(), [0.0, 0.0])

    def test_qos_first_meets_target(self):
        apps = self.apps()
        shares = qos_first_partition(apps)
        out = evaluate_partition(apps, shares)
        assert out["all_qos_met"]
        assert shares.sum() == pytest.approx(1.0)

    def test_equal_violates_demanding_target(self):
        apps = self.apps()
        out = evaluate_partition(apps, equal_partition(apps))
        assert not out["qos_met"][0]  # 0.5 share gives perf 0.707 < 0.9

    def test_isolation_tax_positive_under_pressure(self):
        out = isolation_tax(self.apps())
        assert out["qos_meets_qos"] == 1.0
        assert out["equal_meets_qos"] == 0.0
        assert out["tax_fraction"] > 0.0  # throughput paid for isolation

    def test_infeasible_targets_rejected(self):
        apps = [
            Application("a", 1.0, 0.5, qos_target=0.95),
            Application("b", 1.0, 0.5, qos_target=0.95),
        ]
        with pytest.raises(ValueError):
            qos_first_partition(apps)

    def test_share_for_target_inverts(self):
        app = Application("x", 2.0, 0.5, qos_target=1.0)
        share = app.share_for_target()
        assert app.performance(share) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Application("bad", peak_performance=0.0)
        with pytest.raises(ValueError):
            Application("bad", alpha=0.0)
        with pytest.raises(ValueError):
            Application("bad", qos_target=2.0)
        with pytest.raises(ValueError):
            equal_partition([])
        apps = self.apps()
        with pytest.raises(ValueError):
            evaluate_partition(apps, np.array([0.9, 0.9]))
