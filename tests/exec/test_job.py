"""Tests for the job model and job graph."""

import functools

import pytest

from repro.exec import Job, JobGraph, callable_name, derive_seed


def sample_job():
    return {"ok": True}


class TestJob:
    def test_valid_job(self):
        job = Job(id="a", fn=sample_job, deps=["b", "c"])
        assert job.deps == ("b", "c")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Job(id="", fn=sample_job)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            Job(id="a", fn=42)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            Job(id="a", fn=sample_job, timeout_s=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            Job(id="a", fn=sample_job, retries=-1)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError):
            Job(id="a", fn=sample_job, deps=("a",))


class TestCallableName:
    def test_plain_function(self):
        assert callable_name(sample_job).endswith("test_job.sample_job")

    def test_partial_unwrapped(self):
        wrapped = functools.partial(sample_job)
        assert callable_name(wrapped) == callable_name(sample_job)

    def test_nested_partial(self):
        wrapped = functools.partial(functools.partial(sample_job))
        assert callable_name(wrapped) == callable_name(sample_job)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(0x21C3, "E07") == derive_seed(0x21C3, "E07")

    def test_distinct_per_job(self):
        seeds = {derive_seed(0x21C3, f"job-{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_per_base_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        s = derive_seed(0, "x")
        assert 0 <= s < 2**63


class TestJobGraph:
    def test_duplicate_id_rejected(self):
        graph = JobGraph([Job(id="a", fn=sample_job)])
        with pytest.raises(ValueError):
            graph.add(Job(id="a", fn=sample_job))

    def test_unknown_dep_rejected(self):
        graph = JobGraph([Job(id="a", fn=sample_job, deps=("ghost",))])
        with pytest.raises(ValueError, match="ghost"):
            graph.topo_order()

    def test_cycle_detected(self):
        graph = JobGraph(
            [
                Job(id="a", fn=sample_job, deps=("b",)),
                Job(id="b", fn=sample_job, deps=("a",)),
            ]
        )
        with pytest.raises(ValueError, match="cycle"):
            graph.topo_order()

    def test_topo_respects_deps(self):
        graph = JobGraph(
            [
                Job(id="c", fn=sample_job, deps=("a", "b")),
                Job(id="b", fn=sample_job, deps=("a",)),
                Job(id="a", fn=sample_job),
            ]
        )
        order = graph.topo_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topo_deterministic_insertion_order(self):
        graph = JobGraph([Job(id=f"j{i}", fn=sample_job) for i in range(5)])
        assert graph.topo_order() == [f"j{i}" for i in range(5)]

    def test_add_call_and_contains(self):
        graph = JobGraph()
        graph.add_call("a", sample_job)
        assert "a" in graph and len(graph) == 1
        assert graph.get("a").fn is sample_job
        with pytest.raises(KeyError):
            graph.get("nope")

    def test_dependents(self):
        graph = JobGraph(
            [
                Job(id="a", fn=sample_job),
                Job(id="b", fn=sample_job, deps=("a",)),
            ]
        )
        assert graph.dependents()["a"] == ["b"]
