"""Tests for the elastic socket-worker backend.

Worker processes are real (forked, speaking the framed TCP protocol
over loopback), so these tests exercise the same machinery as
``--backend socket`` — including the mid-sweep worker-kill path that
the checkpoint/resume stack makes free.
"""

import os
import time

import pytest

from repro.exec import ExecutionEngine, Job, JobGraph, JobStatus
from repro.exec.backends.socket_worker import (
    SocketWorkerBackend,
    spawn_local_worker,
)
from repro.exec.heartbeat import heartbeat


def value_job(config):
    return {"value": config["x"] * 2}


def raising_job():
    raise RuntimeError("injected fault")


def slow_beating_job(config):
    for step in range(20):
        heartbeat(progress=float(step))
        time.sleep(0.05)
    return {"steps": 20}


def checkpointing_job(config):
    """Resumable work: progress survives worker death via a file."""
    path = config["checkpoint_path"]
    os.makedirs(os.path.dirname(path), exist_ok=True)
    done = 0
    if os.path.exists(path):
        with open(path) as fh:
            done = int(fh.read().strip() or 0)
    for step in range(done, config["steps"]):
        heartbeat(progress=float(step + 1))
        time.sleep(0.03)
        with open(path, "w") as fh:
            fh.write(str(step + 1))
    return {"steps": config["steps"]}


def unpicklable_result_job():
    return lambda: None


@pytest.fixture()
def backend():
    b = SocketWorkerBackend(spawn=2)
    yield b
    b.shutdown()


def _run(backend, graph, **engine_kwargs):
    engine = ExecutionEngine(runner=backend, **engine_kwargs)
    return engine.run(graph)


class TestSocketSweep:
    def test_sweep_completes_across_two_workers(self, backend):
        graph = JobGraph()
        for i in range(8):
            graph.add(Job(id=f"j{i}", fn=value_job, config={"x": i}))
        report = _run(backend, graph)
        assert report.ok
        assert report.backend == "socket"
        assert report["j3"].result == {"value": 6}

    def test_job_error_is_contained(self, backend):
        graph = JobGraph()
        graph.add(Job(id="good", fn=value_job, config={"x": 1}))
        graph.add(Job(id="bad", fn=raising_job))
        report = _run(backend, graph)
        assert report["good"].status is JobStatus.SUCCEEDED
        assert report["bad"].status is JobStatus.FAILED
        assert "injected fault" in report["bad"].error

    def test_unpicklable_submit_fails_that_job_only(self, backend):
        graph = JobGraph()
        graph.add(Job(id="ok", fn=value_job, config={"x": 1}))
        graph.add(Job(id="closure", fn=lambda config: 1))
        report = _run(backend, graph)
        assert report["ok"].status is JobStatus.SUCCEEDED
        assert report["closure"].status is JobStatus.FAILED
        assert "submit failed" in report["closure"].error

    def test_unpicklable_result_reported_not_hung(self, backend):
        graph = JobGraph()
        graph.add(Job(id="j", fn=unpicklable_result_job))
        report = _run(backend, graph)
        assert report["j"].status is JobStatus.FAILED
        assert "not transferable" in report["j"].error

    def test_elastic_late_join(self):
        # Start with zero workers; one joins after jobs are queued.
        backend = SocketWorkerBackend(spawn=0, no_worker_timeout_s=20.0)
        try:
            graph = JobGraph()
            for i in range(3):
                graph.add(Job(id=f"j{i}", fn=value_job, config={"x": i}))
            late = []

            class LateJoiner:
                """Engine-facing runner shim that attaches a worker late."""

                def __getattr__(self, name):
                    return getattr(backend, name)

                def poll(self):
                    if not late:
                        late.append(spawn_local_worker(backend.address))
                    return backend.poll()

            report = ExecutionEngine(runner=LateJoiner()).run(graph)
            assert report.ok
            assert backend.workers_joined >= 1
        finally:
            backend.shutdown()

    def test_heartbeats_reach_coordinator(self, backend):
        graph = JobGraph()
        graph.add(Job(id="j", fn=slow_beating_job, config={}))
        engine = ExecutionEngine(runner=backend, hang_timeout_s=5.0)
        report = engine.run(graph)
        assert report.ok


class TestWorkerDeath:
    def test_killed_worker_job_resumes_free(self, tmp_path):
        """Kill the busy worker mid-job: checkpoint resume loses nothing."""
        backend = SocketWorkerBackend(spawn=2)
        try:
            graph = JobGraph()
            graph.add(Job(
                id="resumable",
                fn=checkpointing_job,
                config={"steps": 30},
                checkpoint_key="checkpoint_path",
                retries=0,  # only the free (progress-backed) resume path
            ))

            killed = []

            class Assassin:
                """Runner shim: kill a busy spawned worker once."""

                def __getattr__(self, name):
                    return getattr(backend, name)

                def poll(self):
                    if not killed:
                        snapshot = backend.describe()
                        busy = [w for w in snapshot["workers"]
                                if w["busy_with"]]
                        if busy:
                            pid = busy[0]["pid"]
                            for proc in backend.spawned_processes():
                                if proc.pid == pid and proc.is_alive():
                                    proc.kill()
                                    killed.append(pid)
                    return backend.poll()

            engine = ExecutionEngine(
                runner=Assassin(),
                checkpoint_root=str(tmp_path),
                hang_timeout_s=10.0,
            )
            report = engine.run(graph)
            assert killed, "test never saw a busy worker to kill"
            assert report["resumable"].status is JobStatus.SUCCEEDED
            assert report["resumable"].resumes >= 1
            assert report["resumable"].result == {"steps": 30}
            assert backend.workers_lost >= 1
        finally:
            backend.shutdown()

    def test_no_workers_fails_fast_not_forever(self):
        backend = SocketWorkerBackend(spawn=0, no_worker_timeout_s=0.3)
        try:
            graph = JobGraph()
            graph.add(Job(id="j", fn=value_job, config={"x": 1}))
            start = time.perf_counter()
            report = ExecutionEngine(runner=backend).run(graph)
            elapsed = time.perf_counter() - start
            assert report["j"].status is JobStatus.FAILED
            assert "no socket workers" in report["j"].error
            assert elapsed < 10.0
        finally:
            backend.shutdown()


class TestIntrospection:
    def test_describe_and_wait(self, backend):
        assert backend.wait_for_workers(2, timeout_s=10.0) == 2
        snapshot = backend.describe()
        assert len(snapshot["workers"]) == 2
        assert snapshot["queued"] == 0
        assert snapshot["workers_joined"] == 2

    def test_capabilities_elastic(self, backend):
        caps = backend.capabilities()
        assert caps.name == "socket"
        assert caps.max_parallelism == 0  # elastic
        assert caps.supports_heartbeat
        assert caps.supports_preemption
