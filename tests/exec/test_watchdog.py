"""Watchdog supervision, crash classification, and progress-aware retry.

The resilience contract for the execution layer (PR4):

* a worker that dies without reporting is classified ``crash``
  immediately — never waiting out the wall-clock timeout (the
  child-death race regression);
* a worker that has heartbeated and then goes silent is classified
  ``hung`` and killed well before the wall-clock timeout;
* an attempt that advanced the job's progress high-water mark before
  failing is resumed for *free* — the retry budget meters lost
  progress, not attempts.
"""

import os
import time

from repro.exec import (
    ExecutionEngine,
    Job,
    JobGraph,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
)
from repro.exec.heartbeat import heartbeat
from repro.exec.runners import ATTEMPT_HUNG
from repro.resilience import JobCheckpointStore


def crashing_job():
    os._exit(7)  # dies before any pipe write: the death-race case


def beating_job():
    for step in (0.25, 0.5, 1.0):
        heartbeat(step)
    return {"done": True}


def beat_then_hang_job():
    heartbeat(1.0)
    time.sleep(30)  # goes silent: the watchdog must catch this


def silent_hang_job():
    time.sleep(30)  # never beats: must get timeout semantics, not hung


def hang_once_job(config):
    """Checkpoints per rep; hangs (silently) once, mid-run.

    First attempt: beats rep 1, saves it, then sleeps — the watchdog
    kills it.  Second attempt (fresh process): resumes from the saved
    rep and completes.  End-to-end this is watchdog detect -> kill ->
    free resume from durable checkpoint.
    """
    store = JobCheckpointStore(config["ckpt_dir"])
    done = store.load("cell") or 0
    marker = os.path.join(config["ckpt_dir"], "hung.marker")
    for rep in range(done, 3):
        heartbeat(float(rep + 1))
        store.save("cell", rep + 1)
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("hung\n")
            time.sleep(30)
    return {"reps": 3}


def _drain(runner, timeout_s=15.0):
    deadline = time.monotonic() + timeout_s
    done = []
    while runner.active() and time.monotonic() < deadline:
        done.extend(runner.poll())
        time.sleep(0.005)
    done.extend(runner.poll())
    return done


class TestDeathRace:
    def test_crash_classified_immediately_not_at_timeout(self):
        """Regression: liveness must be sampled before draining the
        pipe, so a child dead before its first write is a ``crash`` on
        the next poll — not a 30s wait for the wall-clock deadline."""
        runner = ProcessPoolRunner(1)
        start = time.monotonic()
        runner.submit(Job(id="a", fn=crashing_job), None, 30.0)
        (attempt,) = _drain(runner)
        wall = time.monotonic() - start
        assert attempt.status == "crash"
        assert "exited with code 7" in attempt.error
        assert wall < 5.0  # nowhere near the 30s timeout
        runner.shutdown()


class TestHeartbeats:
    def test_pool_runner_receives_beats(self):
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=beating_job), None, None)
        (attempt,) = _drain(runner)
        assert attempt.ok
        assert attempt.heartbeats == 3
        assert attempt.progress == 1.0
        runner.shutdown()

    def test_serial_runner_records_beats(self):
        """Serial can't preempt, but progress accounting must agree
        with the pool backend so retry policy is backend-independent."""
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=beating_job), None, None)
        (attempt,) = runner.poll()
        assert attempt.ok
        assert attempt.heartbeats == 3
        assert attempt.progress == 1.0


class TestHangDetection:
    def test_silent_beater_killed_fast(self):
        """Detect+kill latency must be a small fraction (< 25%) of the
        wall-clock timeout — the whole point of the watchdog."""
        timeout_s = 40.0
        runner = ProcessPoolRunner(1)
        start = time.monotonic()
        runner.submit(
            Job(id="a", fn=beat_then_hang_job), None, timeout_s,
            hang_timeout_s=0.5,
        )
        (attempt,) = _drain(runner)
        wall = time.monotonic() - start
        assert attempt.status == ATTEMPT_HUNG
        assert attempt.progress == 1.0
        assert "no heartbeat" in attempt.error
        assert wall < timeout_s * 0.25
        assert runner.active() == 0  # worker actually killed
        runner.shutdown()

    def test_never_beating_job_is_not_watchdogged(self):
        """Jobs that never beat keep plain timeout semantics: silence
        from a non-participant is not evidence of a hang."""
        runner = ProcessPoolRunner(1)
        runner.submit(
            Job(id="a", fn=silent_hang_job), None, 0.3, hang_timeout_s=0.1
        )
        (attempt,) = _drain(runner)
        assert attempt.status == "timeout"
        runner.shutdown()


# Module-level mutable state for the serial-runner engine tests (the
# engine re-invokes the same fn in-process on retry).
_FLAKY_CALLS = {"n": 0}
_TREADMILL_CALLS = {"n": 0}


def flaky_after_progress_job():
    _FLAKY_CALLS["n"] += 1
    heartbeat(1.0)
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("worker lost after checkpoint")
    return {"ok": True}


def treadmill_job():
    """Always advances progress, always fails: must hit max_resumes."""
    _TREADMILL_CALLS["n"] += 1
    heartbeat(float(_TREADMILL_CALLS["n"]))
    raise RuntimeError("always fails")


class TestProgressAwareRetry:
    def test_progress_backed_failure_resumes_for_free(self):
        """retries=0, yet the job succeeds: the first attempt beat
        progress before dying, so its retry is free (not charged)."""
        _FLAKY_CALLS["n"] = 0
        graph = JobGraph()
        graph.add(Job(id="a", fn=flaky_after_progress_job, retries=0))
        engine = ExecutionEngine(runner=SerialRunner(), backoff_s=0.0)
        report = engine.run(graph)
        record = report.records["a"]
        assert record.ok
        assert record.attempts == 2
        assert record.resumes == 1

    def test_max_resumes_caps_the_treadmill(self):
        """A job that inches forward forever cannot pin the sweep."""
        _TREADMILL_CALLS["n"] = 0
        graph = JobGraph()
        graph.add(Job(id="a", fn=treadmill_job, retries=0))
        engine = ExecutionEngine(
            runner=SerialRunner(), backoff_s=0.0, max_resumes=2
        )
        report = engine.run(graph)
        record = report.records["a"]
        assert record.status.value == "failed"
        assert record.resumes == 2
        assert record.attempts == 3  # 1 initial + 2 free resumes

    def test_no_progress_failure_charges_retry_budget(self):
        """Failures without any heartbeat stay on the charged path."""
        graph = JobGraph()

        def always_fails():
            raise RuntimeError("no beat, no mercy")

        graph.add(Job(id="a", fn=always_fails, retries=1))
        engine = ExecutionEngine(runner=SerialRunner(), backoff_s=0.0)
        report = engine.run(graph)
        record = report.records["a"]
        assert record.status.value == "failed"
        assert record.attempts == 2  # initial + 1 charged retry
        assert record.resumes == 0


def checkpoint_echo_job(config):
    return {"checkpoint_path": config.get("checkpoint_path")}


class TestCheckpointInjection:
    def test_checkpoint_path_injected_for_declared_jobs(self, tmp_path):
        graph = JobGraph()
        graph.add(Job(
            id="cell/1", fn=checkpoint_echo_job, config={},
            checkpoint_key="checkpoint_path",
        ))
        engine = ExecutionEngine(
            runner=SerialRunner(), checkpoint_root=str(tmp_path)
        )
        report = engine.run(graph)
        path = report.records["cell/1"].result["checkpoint_path"]
        assert path == os.path.join(str(tmp_path), "cell_1")  # sanitized

    def test_no_injection_without_checkpoint_key(self, tmp_path):
        graph = JobGraph()
        graph.add(Job(id="a", fn=checkpoint_echo_job, config={}))
        engine = ExecutionEngine(
            runner=SerialRunner(), checkpoint_root=str(tmp_path)
        )
        report = engine.run(graph)
        assert report.records["a"].result["checkpoint_path"] is None

    def test_checkpoint_path_not_in_cache_key(self, tmp_path):
        """Moving the checkpoint root must not change cache identity:
        a run with root B gets a warm hit on a result cached under
        root A."""
        def run_with_root(root):
            graph = JobGraph()
            graph.add(Job(
                id="a", fn=checkpoint_echo_job, config={"x": 1},
                checkpoint_key="checkpoint_path",
            ))
            engine = ExecutionEngine(
                runner=SerialRunner(),
                cache=ResultCache(str(tmp_path / "cache")),
                checkpoint_root=str(root),
            )
            return engine.run(graph).records["a"]

        cold = run_with_root(tmp_path / "rootA")
        warm = run_with_root(tmp_path / "rootB")
        assert not cold.cached
        assert warm.cached
        assert warm.cache_key == cold.cache_key


class TestWatchdogResumeIntegration:
    def test_hang_kill_resume_completes_from_checkpoint(self, tmp_path):
        """Full loop: worker beats, checkpoints rep 1, goes silent;
        watchdog kills it as ``hung``; the engine grants a free resume
        (retries=0); the fresh worker resumes from the durable
        checkpoint and finishes — all well under the wall timeout."""
        graph = JobGraph()
        graph.add(Job(
            id="sweep", fn=hang_once_job,
            config={"ckpt_dir": str(tmp_path)},
            timeout_s=60.0, retries=0,
        ))
        engine = ExecutionEngine(
            runner=ProcessPoolRunner(1),
            hang_timeout_s=0.5,
            backoff_s=0.0,
        )
        start = time.monotonic()
        report = engine.run(graph)
        wall = time.monotonic() - start
        record = report.records["sweep"]
        assert record.ok
        assert record.result == {"reps": 3}
        assert record.resumes == 1
        assert record.attempts == 2
        assert wall < 15.0  # nowhere near the 30s hang or 60s timeout
