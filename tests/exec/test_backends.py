"""Tests for the Backend protocol, capabilities, factory, and router."""

import pytest

from repro.exec import Job, JobGraph
from repro.exec.backends import (
    ArrayBackend,
    Backend,
    BackendCapabilities,
    BackendRouter,
    RoutingError,
    RoutingPolicy,
    SocketWorkerBackend,
    available_backends,
    capabilities_of,
    make_backend,
)
from repro.exec.backends import BACKEND_NAMES
from repro.exec.runners import Attempt, ProcessPoolRunner, SerialRunner


def value_job(config):
    return {"value": config["x"]}


class TestCapabilities:
    def test_serial_capabilities(self):
        caps = SerialRunner().capabilities()
        assert caps.name == "serial"
        assert caps.max_parallelism == 1
        assert not caps.supports_heartbeat
        assert not caps.supports_preemption
        assert "local" in caps.locality

    def test_pool_capabilities(self):
        caps = ProcessPoolRunner(3).capabilities()
        assert caps.name == "pool"
        assert caps.max_parallelism == 3
        assert caps.supports_heartbeat
        assert caps.supports_preemption

    def test_builtin_runners_are_backends(self):
        assert isinstance(SerialRunner(), Backend)
        assert isinstance(ProcessPoolRunner(1), Backend)

    def test_satisfies_subset_semantics(self):
        caps = BackendCapabilities(
            name="x", max_parallelism=1,
            supports_heartbeat=False, supports_preemption=False,
            locality=("local", "socket"),
        )
        assert caps.satisfies(())
        assert caps.satisfies(("local",))
        assert caps.satisfies(("socket", "local"))
        assert not caps.satisfies(("batch",))

    def test_capabilities_of_passthrough(self):
        assert capabilities_of(SerialRunner()).name == "serial"

    def test_capabilities_of_infers_for_legacy_runner(self):
        class Legacy:
            def capacity(self):
                return 2

            def active(self):
                return 1

            def submit(self, *a, **k):
                pass

            def poll(self):
                return []

            def shutdown(self):
                pass

        caps = capabilities_of(Legacy())
        assert caps.name == "Legacy"
        assert caps.max_parallelism == 3  # capacity + active, conservative
        assert not caps.supports_heartbeat
        assert caps.locality == ("local",)


class TestMakeBackend:
    def test_names_and_descriptions_agree(self):
        assert set(available_backends()) == set(BACKEND_NAMES)

    def test_serial_and_pool(self):
        assert isinstance(make_backend("serial"), SerialRunner)
        pool = make_backend("pool", jobs=4)
        assert isinstance(pool, ProcessPoolRunner)
        assert pool.max_workers == 4

    def test_array(self, tmp_path):
        backend = make_backend("array", jobs=3, array_root=str(tmp_path))
        assert isinstance(backend, ArrayBackend)
        assert backend.shard_size == 3
        backend.shutdown()

    def test_socket_no_spawn(self):
        backend = make_backend("socket", jobs=2, spawn=0)
        try:
            assert isinstance(backend, SocketWorkerBackend)
            assert backend.spawned_processes() == []
        finally:
            backend.shutdown()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("slurm")


class _StubBackend:
    """Scriptable backend for router unit tests."""

    def __init__(self, caps, capacity=4):
        self._caps = caps
        self._capacity = capacity
        self.submitted = []

    def capabilities(self):
        return self._caps

    def capacity(self):
        return self._capacity - len(self.submitted)

    def active(self):
        return len(self.submitted)

    def submit(self, job, config, timeout_s, hang_timeout_s=None,
               telemetry=None):
        self.submitted.append(job.id)

    def poll(self):
        done = [Attempt(jid, "ok", None, None, 0.0) for jid in self.submitted]
        self.submitted = []
        return done

    def shutdown(self):
        pass


def _caps(name, locality, heartbeat=True, parallelism=4):
    return BackendCapabilities(
        name=name, max_parallelism=parallelism,
        supports_heartbeat=heartbeat, supports_preemption=True,
        locality=locality,
    )


class TestRouter:
    def test_locality_pins_placement(self):
        local = _StubBackend(_caps("local", ("local",)))
        batch = _StubBackend(_caps("batch", ("batch",)))
        router = BackendRouter({"local": local, "batch": batch})
        assert router.route(Job(id="a", fn=value_job,
                                locality=("batch",))) == "batch"
        assert router.route(Job(id="b", fn=value_job,
                                locality=("local",))) == "local"

    def test_strict_locality_fails_loud(self):
        router = BackendRouter(
            {"local": _StubBackend(_caps("local", ("local",)))}
        )
        with pytest.raises(RoutingError, match="gpu"):
            router.route(Job(id="a", fn=value_job, locality=("gpu",)))

    def test_lenient_locality_falls_back(self):
        router = BackendRouter(
            {"local": _StubBackend(_caps("local", ("local",)))},
            policy=RoutingPolicy(strict_locality=False),
        )
        assert router.route(
            Job(id="a", fn=value_job, locality=("gpu",))
        ) == "local"

    def test_watchdog_prefers_heartbeat_backends(self):
        silent = _StubBackend(_caps("silent", ("local",), heartbeat=False,
                                    parallelism=100), capacity=100)
        beating = _StubBackend(_caps("beating", ("local",)), capacity=1)
        router = BackendRouter({"silent": silent, "beating": beating})
        # Without a watchdog, free capacity wins (silent has more).
        assert router.route(Job(id="a", fn=value_job)) == "silent"
        # With the watchdog armed, only heartbeat backends qualify.
        assert router.route(
            Job(id="a", fn=value_job), hang_timeout_s=1.0
        ) == "beating"

    def test_most_free_capacity_wins_then_policy(self):
        a = _StubBackend(_caps("a", ("local",)), capacity=2)
        b = _StubBackend(_caps("b", ("local",)), capacity=8)
        router = BackendRouter({"a": a, "b": b})
        assert router.route(Job(id="x", fn=value_job)) == "b"
        # Equal capacity: the policy's prefer order breaks the tie.
        even = BackendRouter(
            {"a": _StubBackend(_caps("a", ("local",)), capacity=4),
             "b": _StubBackend(_caps("b", ("local",)), capacity=4)},
            policy=RoutingPolicy(prefer=("b", "a")),
        )
        assert even.route(Job(id="x", fn=value_job)) == "b"

    def test_plan_previews_whole_graph(self):
        router = BackendRouter(
            {
                "local": _StubBackend(_caps("local", ("local",))),
                "batch": _StubBackend(_caps("batch", ("batch",))),
            },
            # Untagged jobs prefer local; only locality pins to batch.
            policy=RoutingPolicy(prefer=("local", "batch")),
        )
        graph = JobGraph()
        graph.add(Job(id="a", fn=value_job, config={"x": 1}))
        graph.add(Job(id="b", fn=value_job, config={"x": 2},
                      locality=("batch",)))
        plan = router.plan(graph)
        assert "b" in plan["batch"]
        assert "a" in plan["local"]

    def test_router_runs_a_graph_end_to_end(self):
        from repro.exec import ExecutionEngine

        router = BackendRouter({"serial": SerialRunner()})
        graph = JobGraph()
        for i in range(3):
            graph.add(Job(id=f"j{i}", fn=value_job, config={"x": i}))
        report = ExecutionEngine(runner=router).run(graph)
        assert report.ok
        assert report.backend == "router"
        assert set(router.placements) == {"j0", "j1", "j2"}
        assert set(router.placements.values()) == {"serial"}

    def test_unroutable_job_becomes_failed_row(self):
        from repro.exec import ExecutionEngine, JobStatus

        router = BackendRouter({"serial": SerialRunner()})
        graph = JobGraph()
        graph.add(Job(id="ok", fn=value_job, config={"x": 1}))
        graph.add(Job(id="bad", fn=value_job, config={"x": 2},
                      locality=("gpu",)))
        report = ExecutionEngine(runner=router).run(graph)
        assert report["ok"].status is JobStatus.SUCCEEDED
        assert report["bad"].status is JobStatus.FAILED
        assert "gpu" in report["bad"].error

    def test_router_capabilities_aggregate(self):
        caps = BackendRouter(
            {"serial": SerialRunner(), "pool": ProcessPoolRunner(2)}
        ).capabilities()
        assert caps.name == "router"
        assert caps.max_parallelism == 3
        assert caps.supports_heartbeat  # the pool member beats
        assert set(("local", "serial", "pool")) <= set(caps.locality)

    def test_empty_router_rejected(self):
        with pytest.raises(ValueError):
            BackendRouter({})


class TestJobLocality:
    def test_locality_defaults_empty_and_normalizes(self):
        assert Job(id="a", fn=value_job).locality == ()
        assert Job(id="b", fn=value_job,
                   locality=["batch"]).locality == ("batch",)

    def test_locality_excluded_from_cache_keys(self, tmp_path):
        # Placement must never change what result a job is keyed
        # under: retagging a job's locality still hits the warm cache.
        from repro.exec import run_jobs

        def build(locality):
            graph = JobGraph()
            graph.add(Job(id="a", fn=value_job, config={"x": 7},
                          locality=locality))
            return graph

        cold = run_jobs(build(()), cache_dir=str(tmp_path))
        warm = run_jobs(build(("local",)), cache_dir=str(tmp_path))
        assert cold.cache_stats["writes"] == 1
        assert warm.cache_stats["hits"] == 1
        assert warm["a"].cached
