"""Tests for the content-addressed result cache.

Covers the satellite requirements: a corrupted/truncated artifact is a
miss (and gets rewritten, not crashed on), and the cache key changes
when the library version changes.
"""

import json

import numpy as np
import pytest

from repro.core.instrument import MetricsRegistry
from repro.exec import ResultCache, cache_key, canonicalize, repro_version


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", version="1.test")


def _cached_job(config):
    return {"value": config["x"]}


class TestCanonicalize:
    def test_key_order_normalized(self):
        assert canonicalize({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_tuples_become_lists(self):
        assert canonicalize((1, 2, (3,))) == [1, 2, [3]]

    def test_numpy_scalars_collapsed(self):
        out = canonicalize({"x": np.float64(1.5), "n": np.int32(3), "b": np.bool_(True)})
        assert out == {"b": True, "n": 3, "x": 1.5}
        assert type(out["x"]) is float and type(out["n"]) is int

    def test_sets_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_arrays_hashed_by_full_content(self):
        """No truncated-repr aliasing: big arrays canonicalize elementwise."""
        a = np.zeros(10_000)
        b = np.zeros(10_000)
        b[5_000] = 1.0  # identical truncated repr, different content
        assert canonicalize(a) != canonicalize(b)
        assert canonicalize(np.array([1, 2, 3])) == [1, 2, 3]

    def test_exotic_objects_raise_not_repr(self):
        """Default reprs embed memory addresses: unstable, so rejected."""
        with pytest.raises(TypeError):
            canonicalize(object())
        with pytest.raises(TypeError):
            cache_key("m.f", {"x": object()}, "1.0")


class TestCacheKey:
    def test_config_order_irrelevant(self):
        a = cache_key("m.f", {"x": 1, "y": 2}, "1.0")
        b = cache_key("m.f", {"y": 2, "x": 1}, "1.0")
        assert a == b

    def test_config_value_changes_key(self):
        assert cache_key("m.f", {"x": 1}, "1.0") != cache_key("m.f", {"x": 2}, "1.0")

    def test_fn_name_changes_key(self):
        assert cache_key("m.f", {"x": 1}, "1.0") != cache_key("m.g", {"x": 1}, "1.0")

    def test_version_changes_key(self):
        """Bumping repro.__version__ invalidates every artifact."""
        assert cache_key("m.f", {"x": 1}, "1.0") != cache_key("m.f", {"x": 1}, "1.1")

    def test_job_id_changes_key(self):
        """Same callable + config under different job ids: distinct
        artifacts (e.g. every registry experiment runs Experiment.execute)."""
        assert cache_key("m.f", None, "1.0", job_id="E01") != cache_key(
            "m.f", None, "1.0", job_id="E02"
        )

    def test_array_content_changes_key(self):
        a = np.zeros(10_000)
        b = np.zeros(10_000)
        b[5_000] = 1.0
        assert cache_key("m.f", {"w": a}, "1.0") != cache_key("m.f", {"w": b}, "1.0")

    def test_unkeyable_config_counted_and_none(self, tmp_path):
        cache = ResultCache(tmp_path, version="1.0")
        assert cache.try_key_for("m.f", {"x": object()}, job_id="j") is None
        assert cache.unkeyable == 1
        assert cache.try_key_for("m.f", {"x": 1}, job_id="j") is not None

    def test_default_version_is_repro_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.version == repro_version()


class TestResultCache:
    def test_miss_then_hit(self, cache):
        key = cache.key_for("m.f", {"x": 1})
        assert cache.get(key) is None
        assert cache.put(key, "m.f", {"x": 1}, {"value": 2.0}, wall_time_s=0.5)
        artifact = cache.get(key)
        assert artifact["result"] == {"value": 2.0}
        assert artifact["wall_time_s"] == 0.5
        assert cache.stats() == {
            "hits": 1, "misses": 1, "corrupt": 0, "writes": 1,
            "rejected": 0, "unkeyable": 0, "coalesced": 0,
        }

    def test_put_returns_stored_canonical_artifact(self, cache):
        """The cold path reports exactly what a warm hit would report."""
        key = cache.key_for("m.f", None)
        artifact = cache.put(key, "m.f", None, {"t": (1, 2)})
        assert artifact["result"] == {"t": [1, 2]}
        assert cache.get(key)["result"] == artifact["result"]

    def test_numpy_results_cacheable(self, cache):
        key = cache.key_for("m.f", None)
        assert cache.put(key, "m.f", None, {"holds": np.bool_(True), "v": np.float64(1)})
        assert cache.get(key)["result"] == {"holds": True, "v": 1.0}

    def test_unserializable_result_rejected_not_raised(self, cache):
        key = cache.key_for("m.f", None)
        assert not cache.put(key, "m.f", None, {"bad": object()})
        assert cache.rejected == 1
        assert cache.get(key) is None  # nothing was written

    def test_corrupted_artifact_is_miss_and_rewritten(self, cache):
        key = cache.key_for("m.f", {"x": 1})
        cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        path = cache.path_for(key)
        path.write_text("{ this is not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        # The job reruns and rewrites the artifact; subsequent gets hit.
        assert cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        assert cache.get(key)["result"] == {"value": 1.0}

    def test_corrupt_artifact_quarantined_and_counted_once(self, cache):
        """Satellite: corruption is counted, quarantined, and visible."""
        key = cache.key_for("m.f", {"x": 1})
        cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        path = cache.path_for(key)
        path.write_text("{ torn write", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        # The bad bytes were moved aside for post-mortem...
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        assert quarantined.exists()
        assert quarantined.read_text(encoding="utf-8") == "{ torn write"
        # ...so a second get is a plain miss, never double-counted.
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert cache.misses == 2

    def test_corrupt_counted_in_metrics_registry(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        cache = ResultCache(tmp_path, version="1.test", metrics=registry)
        key = cache.key_for("m.f", {"x": 1})
        cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        cache.path_for(key).write_text("garbage", encoding="utf-8")
        cache.get(key)
        assert registry.counter("exec.cache.corrupt").value == 1
        assert registry.counter("exec.cache.miss").value == 1

    def test_corrupt_surfaces_in_run_report(self, tmp_path):
        """A sweep over a corrupted cache says so in its one-liner."""
        from repro.exec import Job, JobGraph, run_jobs

        graph = JobGraph()
        graph.add(Job(id="a", fn=_cached_job, config={"x": 1}))
        cold = run_jobs(graph, cache_dir=str(tmp_path))
        assert "corrupt" not in cold.one_line()
        cache = ResultCache(str(tmp_path))
        key = cold["a"].cache_key
        cache.path_for(key).write_text("torn", encoding="utf-8")
        rerun = run_jobs(graph, cache_dir=str(tmp_path))
        assert rerun.ok
        assert rerun.cache_stats["corrupt"] == 1
        assert "1 corrupt quarantined" in rerun.one_line()

    def test_truncated_artifact_is_miss(self, cache):
        key = cache.key_for("m.f", {"x": 1})
        cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        path = cache.path_for(key)
        payload = path.read_text(encoding="utf-8")
        path.write_text(payload[: len(payload) // 2], encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_wrong_key_inside_artifact_is_miss(self, cache):
        """An artifact whose recorded key mismatches its path is corrupt."""
        key = cache.key_for("m.f", {"x": 1})
        cache.put(key, "m.f", {"x": 1}, {"value": 1.0})
        path = cache.path_for(key)
        artifact = json.loads(path.read_text(encoding="utf-8"))
        artifact["key"] = "0" * 64
        path.write_text(json.dumps(artifact), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_artifact_missing_result_is_miss(self, cache):
        key = cache.key_for("m.f", None)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"key": key}), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_version_partitions_artifacts(self, tmp_path):
        """Same root, different versions: no cross-version hits."""
        old = ResultCache(tmp_path, version="1.0")
        new = ResultCache(tmp_path, version="2.0")
        key_old = old.key_for("m.f", {"x": 1})
        key_new = new.key_for("m.f", {"x": 1})
        assert key_old != key_new
        old.put(key_old, "m.f", {"x": 1}, {"value": 1.0})
        assert new.get(key_new) is None

    def test_sharded_layout(self, cache):
        key = cache.key_for("m.f", None)
        cache.put(key, "m.f", None, {"v": 1})
        assert cache.path_for(key).parent.name == key[:2]

    def test_instrument_counters(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, version="1.0", metrics=registry)
        key = cache.key_for("m.f", None)
        cache.get(key)
        cache.put(key, "m.f", None, {"v": 1})
        cache.get(key)
        snap = registry.snapshot()
        assert snap["exec.cache.miss"]["value"] == 1
        assert snap["exec.cache.write"]["value"] == 1
        assert snap["exec.cache.hit"]["value"] == 1
