"""Tests for the execution engine: scheduling, cache, retries, report."""

import time

import pytest

from repro.core.instrument import MetricsRegistry
from repro.exec import (
    ExecutionEngine,
    Job,
    JobGraph,
    JobStatus,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
    run_jobs,
)

_FLAKY_CALLS = {"n": 0}


def ok_job():
    return {"value": 1.0}


def config_echo(config):
    return dict(config)


def raising_job():
    raise ValueError("always fails")


def tuple_result_job():
    return {"pair": (1, 2)}


def hanging_job():
    time.sleep(30)


def flaky_job():
    """Fails on the first call, succeeds afterwards (serial runner only)."""
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] < 2:
        raise RuntimeError("transient")
    return {"attempt": _FLAKY_CALLS["n"]}


def flaky_file_job(config):
    """Cross-process flaky job: fails until a marker file exists."""
    import pathlib

    marker = pathlib.Path(config["marker"])
    if marker.exists():
        return {"recovered": True}
    marker.write_text("tried once")
    raise RuntimeError("transient (first attempt)")


class TestEngineBasics:
    def test_all_succeed(self):
        graph = JobGraph([Job(id=f"j{i}", fn=ok_job) for i in range(3)])
        report = ExecutionEngine().run(graph)
        assert report.ok and len(report) == 3
        assert report.counts()["succeeded"] == 3
        assert report["j0"].attempts == 1

    def test_result_accessor(self):
        graph = JobGraph([Job(id="a", fn=ok_job), Job(id="b", fn=raising_job)])
        report = ExecutionEngine().run(graph)
        assert report.result("a") == {"value": 1.0}
        with pytest.raises(RuntimeError):
            report.result("b")

    def test_failure_contained_and_reported(self):
        graph = JobGraph([Job(id="bad", fn=raising_job), Job(id="good", fn=ok_job)])
        report = ExecutionEngine().run(graph)
        assert report["bad"].status is JobStatus.FAILED
        assert "always fails" in report["bad"].error
        assert report["good"].ok
        assert not report.ok

    def test_dependency_order(self):
        order_seen = []

        def track(config):
            order_seen.append(config["name"])
            return {}

        graph = JobGraph(
            [
                Job(id="late", fn=track, config={"name": "late"}, deps=("early",)),
                Job(id="early", fn=track, config={"name": "early"}),
            ]
        )
        report = ExecutionEngine().run(graph)
        assert report.ok
        assert order_seen == ["early", "late"]

    def test_failed_dependency_skips_dependents_transitively(self):
        graph = JobGraph(
            [
                Job(id="root", fn=raising_job),
                Job(id="mid", fn=ok_job, deps=("root",)),
                Job(id="leaf", fn=ok_job, deps=("mid",)),
                Job(id="free", fn=ok_job),
            ]
        )
        report = ExecutionEngine().run(graph)
        assert report["root"].status is JobStatus.FAILED
        assert report["mid"].status is JobStatus.SKIPPED
        assert report["leaf"].status is JobStatus.SKIPPED
        assert report["free"].ok
        assert "root" in report["mid"].error

    def test_seed_injection_deterministic(self):
        graph = JobGraph(
            [Job(id="a", fn=config_echo, config={"x": 1}, seed_key="seed")]
        )
        first = ExecutionEngine(base_seed=7).run(graph).result("a")
        graph2 = JobGraph(
            [Job(id="a", fn=config_echo, config={"x": 1}, seed_key="seed")]
        )
        second = ExecutionEngine(base_seed=7).run(graph2).result("a")
        third = ExecutionEngine(base_seed=8).run(
            JobGraph([Job(id="a", fn=config_echo, config={"x": 1}, seed_key="seed")])
        ).result("a")
        assert first == second
        assert first["seed"] != third["seed"]

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        graph = JobGraph([Job(id="a", fn=ok_job), Job(id="b", fn=raising_job)])
        ExecutionEngine(metrics=registry).run(graph)
        snap = registry.snapshot()
        assert snap["exec.jobs.succeeded"]["value"] == 1
        assert snap["exec.jobs.failed"]["value"] == 1

    def test_report_rendering(self):
        graph = JobGraph([Job(id="a", fn=ok_job), Job(id="b", fn=raising_job)])
        report = ExecutionEngine().run(graph)
        text = report.summary()
        assert "succeeded" in text and "failed" in text
        assert "2 jobs" in report.one_line()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionEngine(default_retries=-1)
        with pytest.raises(ValueError):
            run_jobs(JobGraph(), jobs=0)


class TestEngineRetries:
    def test_flaky_job_recovers_serial(self):
        _FLAKY_CALLS["n"] = 0
        graph = JobGraph([Job(id="flaky", fn=flaky_job, retries=2)])
        report = ExecutionEngine(backoff_s=0.001).run(graph)
        record = report["flaky"]
        assert record.ok and record.attempts == 2

    def test_flaky_job_recovers_across_processes(self, tmp_path):
        marker = tmp_path / "marker"
        graph = JobGraph(
            [
                Job(
                    id="flaky",
                    fn=flaky_file_job,
                    config={"marker": str(marker)},
                    retries=1,
                )
            ]
        )
        report = ExecutionEngine(
            runner=ProcessPoolRunner(2), backoff_s=0.001
        ).run(graph)
        assert report["flaky"].ok and report["flaky"].attempts == 2

    def test_retries_exhausted_is_failed(self):
        graph = JobGraph([Job(id="bad", fn=raising_job, retries=2)])
        report = ExecutionEngine(backoff_s=0.001).run(graph)
        assert report["bad"].status is JobStatus.FAILED
        assert report["bad"].attempts == 3  # 1 try + 2 retries

    def test_engine_default_retries_apply(self):
        _FLAKY_CALLS["n"] = 0
        graph = JobGraph([Job(id="flaky", fn=flaky_job)])
        report = ExecutionEngine(default_retries=1, backoff_s=0.001).run(graph)
        assert report["flaky"].ok


class TestEngineTimeout:
    def test_hung_job_times_out_but_sweep_finishes(self):
        graph = JobGraph(
            [
                Job(id="hang", fn=hanging_job, timeout_s=0.3),
                Job(id="good", fn=ok_job),
            ]
        )
        start = time.monotonic()
        report = ExecutionEngine(runner=ProcessPoolRunner(2)).run(graph)
        assert time.monotonic() - start < 10.0
        assert report["hang"].status is JobStatus.TIMEOUT
        assert report["good"].ok


class TestEngineCache:
    def _graph(self):
        return JobGraph(
            [Job(id=f"j{i}", fn=config_echo, config={"x": i}) for i in range(3)]
        )

    def test_cold_then_warm(self, tmp_path):
        cold = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(
            self._graph()
        )
        assert cold.ok and cold.cache_hits() == 0
        warm_cache = ResultCache(tmp_path, version="t")
        warm = ExecutionEngine(cache=warm_cache).run(self._graph())
        assert warm.ok and warm.cache_hits() == 3
        assert all(r.cached for r in warm.records.values())
        assert warm.cache_stats["hits"] == 3
        assert warm.cache_stats["misses"] == 0
        # Results survive the JSON round-trip intact.
        assert warm.result("j2") == {"x": 2}

    def test_version_bump_invalidates(self, tmp_path):
        ExecutionEngine(cache=ResultCache(tmp_path, version="v1")).run(self._graph())
        rerun = ExecutionEngine(cache=ResultCache(tmp_path, version="v2")).run(
            self._graph()
        )
        assert rerun.cache_hits() == 0

    def test_corrupt_artifact_reruns_job(self, tmp_path):
        cache = ResultCache(tmp_path, version="t")
        ExecutionEngine(cache=cache).run(self._graph())
        # Truncate one artifact in place.
        paths = list(tmp_path.rglob("*.json"))
        assert len(paths) == 3
        paths[0].write_text("{truncated", encoding="utf-8")
        warm_cache = ResultCache(tmp_path, version="t")
        warm = ExecutionEngine(cache=warm_cache).run(self._graph())
        assert warm.ok
        assert warm.cache_hits() == 2  # two hits, one rerun
        assert warm_cache.corrupt == 1
        # The rewritten artifact hits again on the next pass.
        final = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(
            self._graph()
        )
        assert final.cache_hits() == 3

    def test_same_fn_same_config_distinct_jobs_distinct_artifacts(self, tmp_path):
        """Jobs sharing a callable and config must not share a cache key.

        This is the registry shape: every experiment is a bound
        Experiment.execute with config=None.  Warm reruns must hand each
        job its *own* result, not the first job's.
        """

        def build():
            return JobGraph(
                [
                    Job(id="j0", fn=config_echo, config={"x": 0}, seed_key="seed"),
                    Job(id="j1", fn=config_echo, config={"x": 0}, seed_key="seed"),
                ]
            )

        cold = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(build())
        assert cold.ok and cold.cache_hits() == 0
        # Distinct derived seeds → distinct results; a shared artifact
        # would have completed j1 from j0's cached (or just-written) row.
        assert cold.result("j0") != cold.result("j1")
        warm = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(build())
        assert warm.cache_hits() == 2
        assert warm.result("j0") == cold.result("j0")
        assert warm.result("j1") == cold.result("j1")

    def test_unkeyable_config_runs_uncached_not_crash(self, tmp_path):
        cache = ResultCache(tmp_path, version="t")
        graph = JobGraph([Job(id="odd", fn=len, config={"x": object()})])
        report = ExecutionEngine(cache=cache).run(graph)
        assert report["odd"].ok
        assert report["odd"].cache_key is None
        assert cache.unkeyable == 1
        assert cache.writes == 0

    def test_cold_and_warm_results_agree_on_types(self, tmp_path):
        """A cached job's cold run reports the JSON-canonical result."""

        def build():
            return JobGraph([Job(id="t", fn=tuple_result_job)])

        cold = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(build())
        warm = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(build())
        assert warm.cache_hits() == 1
        assert cold.result("t") == {"pair": [1, 2]}  # tuple → list, cold too
        assert cold.result("t") == warm.result("t")

    def test_failed_jobs_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path, version="t")
        graph = JobGraph([Job(id="bad", fn=raising_job)])
        ExecutionEngine(cache=cache).run(graph)
        assert cache.writes == 0
        rerun = ExecutionEngine(cache=ResultCache(tmp_path, version="t")).run(
            JobGraph([Job(id="bad", fn=raising_job)])
        )
        assert rerun["bad"].status is JobStatus.FAILED


class TestRunJobs:
    def test_serial_convenience(self):
        report = run_jobs(JobGraph([Job(id="a", fn=ok_job)]))
        assert report.ok

    def test_parallel_convenience_with_cache(self, tmp_path):
        graph = JobGraph(
            [Job(id=f"j{i}", fn=config_echo, config={"x": i}) for i in range(4)]
        )
        report = run_jobs(graph, jobs=2, cache_dir=str(tmp_path))
        assert report.ok
        graph2 = JobGraph(
            [Job(id=f"j{i}", fn=config_echo, config={"x": i}) for i in range(4)]
        )
        warm = run_jobs(graph2, jobs=2, cache_dir=str(tmp_path))
        assert warm.cache_hits() == 4


class TestEngineParallel:
    def test_speedup_on_sleep_bound_jobs(self):
        def build():
            return JobGraph(
                [
                    Job(id=f"j{i}", fn=sleep_echo, config={"s": 0.15})
                    for i in range(4)
                ]
            )

        t0 = time.monotonic()
        serial = ExecutionEngine(runner=SerialRunner()).run(build())
        serial_wall = time.monotonic() - t0
        t0 = time.monotonic()
        parallel = ExecutionEngine(runner=ProcessPoolRunner(4)).run(build())
        parallel_wall = time.monotonic() - t0
        assert serial.ok and parallel.ok
        assert parallel_wall < serial_wall / 1.5


def sleep_echo(config):
    time.sleep(config["s"])
    return {"s": config["s"]}
