"""Tests for the serial and multiprocessing runner backends."""

import os
import time

import pytest

from repro.exec import Job, ProcessPoolRunner, Runner, SerialRunner


def ok_job():
    return {"value": 42}


def config_job(config):
    return {"doubled": config["x"] * 2}


def raising_job():
    raise RuntimeError("injected fault")


def hanging_job():
    time.sleep(30)


def crashing_job():
    os._exit(7)  # simulates a segfault / OOM kill: no exception, no result


def unpicklable_result_job():
    return lambda: None


def lingering_job():
    """Returns promptly but leaves a non-daemon thread keeping the child
    process alive well after the result is sent."""
    import threading

    threading.Thread(target=time.sleep, args=(2.0,), daemon=False).start()
    return {"value": 1}


def _drain(runner, timeout_s=10.0):
    """Poll until every submitted attempt is reaped."""
    deadline = time.monotonic() + timeout_s
    done = []
    while runner.active() and time.monotonic() < deadline:
        done.extend(runner.poll())
        time.sleep(0.005)
    done.extend(runner.poll())
    return done


class TestSerialRunner:
    def test_protocol_conformance(self):
        assert isinstance(SerialRunner(), Runner)
        assert isinstance(ProcessPoolRunner(1), Runner)

    def test_success(self):
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=ok_job), None, None)
        (attempt,) = runner.poll()
        assert attempt.ok and attempt.result == {"value": 42}
        assert runner.poll() == []

    def test_config_passed(self):
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=config_job), {"x": 3}, None)
        (attempt,) = runner.poll()
        assert attempt.result == {"doubled": 6}

    def test_error_contained(self):
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=raising_job), None, None)
        (attempt,) = runner.poll()
        assert attempt.status == "error"
        assert "injected fault" in attempt.error

    def test_post_hoc_timeout(self):
        """Serial can't interrupt; an overrun is classified after the fact."""
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=lambda: time.sleep(0.05)), None, 0.01)
        (attempt,) = runner.poll()
        assert attempt.status == "timeout"

    def test_closures_allowed(self):
        """The serial fallback must handle unpicklable callables."""
        captured = {"x": 5}
        runner = SerialRunner()
        runner.submit(Job(id="a", fn=lambda: captured["x"]), None, None)
        (attempt,) = runner.poll()
        assert attempt.result == 5


class TestProcessPoolRunner:
    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(0)

    def test_success_roundtrip(self):
        runner = ProcessPoolRunner(2)
        runner.submit(Job(id="a", fn=config_job), {"x": 21}, None)
        (attempt,) = _drain(runner)
        assert attempt.ok and attempt.result == {"doubled": 42}
        runner.shutdown()

    def test_worker_error_contained(self):
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=raising_job), None, None)
        (attempt,) = _drain(runner)
        assert attempt.status == "error"
        assert "injected fault" in attempt.error
        runner.shutdown()

    def test_worker_crash_contained(self):
        """A worker dying without reporting must not raise in the parent."""
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=crashing_job), None, None)
        (attempt,) = _drain(runner)
        assert attempt.status == "crash"
        runner.shutdown()

    def test_hung_worker_terminated_on_timeout(self):
        runner = ProcessPoolRunner(1)
        start = time.monotonic()
        runner.submit(Job(id="a", fn=hanging_job), None, 0.3)
        (attempt,) = _drain(runner)
        assert attempt.status == "timeout"
        assert time.monotonic() - start < 10.0  # nowhere near the 30s sleep
        assert runner.active() == 0
        runner.shutdown()

    def test_unpicklable_result_reported_as_error(self):
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=unpicklable_result_job), None, None)
        (attempt,) = _drain(runner)
        assert attempt.status == "error"
        assert "not transferable" in attempt.error
        runner.shutdown()

    def test_capacity_accounting(self):
        runner = ProcessPoolRunner(2)
        assert runner.capacity() == 2
        runner.submit(Job(id="a", fn=hanging_job), None, 5.0)
        assert runner.capacity() == 1 and runner.active() == 1
        with pytest.raises(RuntimeError):
            runner.submit(Job(id="a", fn=ok_job), None, None)  # duplicate id
        runner.shutdown()
        assert runner.active() == 0

    def test_overcommit_rejected(self):
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=hanging_job), None, 5.0)
        with pytest.raises(RuntimeError):
            runner.submit(Job(id="b", fn=ok_job), None, None)
        runner.shutdown()

    def test_lingering_child_does_not_block_poll(self):
        """A child that stays alive after sending its result must not
        stall poll(); it is parked as a zombie and reaped later."""
        runner = ProcessPoolRunner(1)
        runner.submit(Job(id="a", fn=lingering_job), None, None)
        start = time.monotonic()
        (attempt,) = _drain(runner)
        reap_wall = time.monotonic() - start
        assert attempt.ok and attempt.result == {"value": 1}
        # The child lingers ~2s; the old inline join(5.0) blocked here.
        assert reap_wall < 1.0
        assert runner.capacity() == 1  # slot freed even though child lives
        runner.shutdown()
        """4 sleep-bound jobs on 4 workers finish ~concurrently."""
        runner = ProcessPoolRunner(4)
        start = time.monotonic()
        for i in range(4):
            runner.submit(Job(id=f"j{i}", fn=sleep_job), {"s": 0.25}, None)
        attempts = _drain(runner)
        wall = time.monotonic() - start
        assert len(attempts) == 4 and all(a.ok for a in attempts)
        assert wall < 0.25 * 4 * 0.8  # clearly faster than serial
        runner.shutdown()


def sleep_job(config):
    time.sleep(config["s"])
    return {"slept": config["s"]}
