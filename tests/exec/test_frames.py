"""Tests for the versioned tagged-frame wire format (satellite 2).

Covers both transports: the socket frames themselves (roundtrip,
version mismatch fails loud, unknown tags survive) and the process-pool
pipe drain loop's unknown-tag skip.
"""

import multiprocessing as mp
import socket
import struct
import time
import zlib

import pytest

from repro.exec.backends import frames
from repro.exec.job import Job
from repro.exec.runners import ProcessPoolRunner, _Running

_HEADER = struct.Struct("!BBBII")


def _pack_header(version, tag, body_len, crc=None):
    """Hand-pack a v2 header; crc defaults to the tag-only checksum."""
    if crc is None:
        crc = zlib.crc32(tag) & 0xFFFFFFFF
    return _HEADER.pack(frames.FRAME_MAGIC, version, len(tag), body_len, crc)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrameRoundtrip:
    def test_roundtrip_payload(self, pair):
        a, b = pair
        frames.send_frame(a, frames.TAG_RESULT, ("ok", {"x": 1}, None))
        tag, payload = frames.recv_frame(b)
        assert tag == frames.TAG_RESULT
        assert payload == ("ok", {"x": 1}, None)

    def test_roundtrip_none_payload(self, pair):
        a, b = pair
        frames.send_frame(a, frames.TAG_BYE)
        assert frames.recv_frame(b) == (frames.TAG_BYE, None)

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            frames.send_frame(a, frames.TAG_HEARTBEAT, float(i))
        got = [frames.recv_frame(b) for _ in range(5)]
        assert got == [(frames.TAG_HEARTBEAT, float(i)) for i in range(5)]

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert frames.recv_frame(b) is None

    def test_mid_frame_eof_is_loud(self, pair):
        a, b = pair
        header = _pack_header(frames.PROTOCOL_VERSION, b"hb", 100)
        a.sendall(header + b"hb")  # promises a 100-byte body, sends none
        a.close()
        with pytest.raises(frames.FrameProtocolError):
            frames.recv_frame(b)


class TestFrameVersioning:
    def test_version_mismatch_fails_loud(self, pair):
        a, b = pair
        header = _pack_header(frames.PROTOCOL_VERSION + 1, b"hb", 0)
        a.sendall(header + b"hb")
        with pytest.raises(frames.FrameVersionError) as excinfo:
            frames.recv_frame(b)
        # The error must say which versions disagreed — it is the one
        # message an operator sees when mixing old and new workers.
        assert str(frames.PROTOCOL_VERSION) in str(excinfo.value)

    def test_bad_magic_fails_loud(self, pair):
        a, b = pair
        a.sendall(b"\x00" * _HEADER.size)
        with pytest.raises(frames.FrameProtocolError):
            frames.recv_frame(b)

    def test_absurd_body_length_rejected(self, pair):
        a, b = pair
        header = _pack_header(
            frames.PROTOCOL_VERSION, b"hb", frames.MAX_BODY_BYTES + 1
        )
        a.sendall(header + b"hb")
        with pytest.raises(frames.FrameProtocolError):
            frames.recv_frame(b)

    def test_corrupt_body_detected_by_checksum(self, pair):
        # A flipped bit in the body must raise FrameCorruptError — wire
        # rot becomes a detected fault, never silently unpickled data.
        a, b = pair
        body = b"\x80\x04N."  # pickled None
        crc = zlib.crc32(b"hb" + body) & 0xFFFFFFFF
        corrupted = bytearray(body)
        corrupted[0] ^= 0x01
        a.sendall(
            _pack_header(frames.PROTOCOL_VERSION, b"hb", len(body), crc)
            + b"hb" + bytes(corrupted)
        )
        with pytest.raises(frames.FrameCorruptError):
            frames.recv_frame(b)

    def test_unknown_tag_is_returned_not_fatal(self, pair):
        # recv_frame hands unknown-but-well-formed tags to the caller;
        # drain loops decide to skip them (forward compatibility).
        a, b = pair
        frames.send_frame(a, "future-frame", {"new": "field"})
        tag, payload = frames.recv_frame(b)
        assert tag == "future-frame"
        assert tag not in frames.FRAME_TAGS
        frames.send_frame(a, frames.TAG_RESULT, ("ok", 1, None))
        assert frames.recv_frame(b)[0] == frames.TAG_RESULT


def _noop():
    return None


class TestPipeUnknownTagSkip:
    """The pool runner's pipe drain applies the same skip rule."""

    def _drained_attempt(self, messages):
        """Feed raw pipe messages to _reap via a finished dummy child."""
        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_noop)
        process.start()
        process.join(5.0)
        for message in messages:
            child_conn.send(message)
        child_conn.close()
        runner = ProcessPoolRunner(1)
        run = _Running(
            job=Job(id="j", fn=_noop),
            process=process,
            conn=parent_conn,
            started=time.perf_counter(),
            deadline=None,
            timeout_s=None,
        )
        try:
            return runner._reap(run, time.perf_counter())
        finally:
            parent_conn.close()

    def test_unknown_tagged_tuple_skipped(self):
        attempt = self._drained_attempt(
            [("future-tag", {"optional": True}), ("res", "ok", 42, None)]
        )
        assert attempt.status == "ok"
        assert attempt.result == 42

    def test_untagged_garbage_still_classifies_crash(self):
        attempt = self._drained_attempt([[1, 2, 3]])
        assert attempt.status == "crash"
        assert "unrecognized" in attempt.error
