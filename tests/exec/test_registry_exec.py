"""Integration: the experiment registry running on the execution engine.

Covers the satellite bugfix — a raising experiment no longer aborts
``run_all`` and loses completed results; it becomes a FAILED row and
the sweep finishes — plus parallel and cached registry sweeps.
"""

import time

import pytest

from repro.analysis import REGISTRY, Experiment, ExperimentRegistry
from repro.exec import JobStatus, ProcessPoolRunner


def run_good():
    return {"value": 1.0, "holds": True}


def run_value_a():
    return {"value": 1.0, "which": "A", "holds": True}


def run_value_b():
    return {"value": 2.0, "which": "B", "holds": True}


def run_bad():
    raise RuntimeError("experiment blew up")


def run_no_verdict():
    return {"value": 1.0}


def run_hang():
    time.sleep(30)


def _experiment(eid, run):
    return Experiment(id=eid, title=f"title {eid}", paper_anchor="a", claim="c", run=run)


class TestRunAllFaultContainment:
    def test_raising_experiment_becomes_failed_row(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        reg.register(_experiment("X2", run_bad))
        reg.register(_experiment("X3", run_good))
        results = reg.run_all()
        # The sweep finished: completed results are not lost.
        assert results["X1"]["holds"] and results["X3"]["holds"]
        assert results["X2"]["holds"] is False
        assert results["X2"]["status"] == "FAILED"
        assert "experiment blew up" in results["X2"]["error"]

    def test_missing_holds_verdict_becomes_failed_row(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_no_verdict))
        results = reg.run_all()
        assert results["X1"]["status"] == "FAILED"
        assert "verdict" in results["X1"]["error"]

    def test_summary_renders_failed_rows(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        reg.register(_experiment("X2", run_bad))
        summary = reg.summary(reg.run_all())
        assert "FAILED" in summary
        assert "1/2 claims hold" in summary
        assert "1 experiment(s) did not complete" in summary

    def test_unknown_id_still_raises_before_running(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        with pytest.raises(KeyError):
            reg.run_all(only=["NOPE"])

    def test_last_report_is_kept(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        reg.run_all()
        assert reg.last_report is not None
        assert reg.last_report["X1"].status is JobStatus.SUCCEEDED

    def test_duplicate_selection_deduped(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        results = reg.run_all(only=["X1", "X1"])
        assert list(results) == ["X1"]

    def test_hung_experiment_timeout_with_processes(self):
        reg = ExperimentRegistry()
        reg.register(_experiment("X1", run_good))
        reg.register(_experiment("XH", run_hang))
        results = reg.run_all(timeout_s=0.3, runner=ProcessPoolRunner(2))
        assert results["X1"]["holds"]
        assert results["XH"]["status"] == "TIMEOUT"


class TestRegistrySweepModes:
    def test_parallel_matches_serial(self):
        subset = ["E01", "E03", "E13"]
        serial = REGISTRY.run_all(only=subset)
        parallel = REGISTRY.run_all(only=subset, jobs=2)
        assert set(serial) == set(parallel)
        for eid in subset:
            assert serial[eid]["holds"] == parallel[eid]["holds"]

    def test_cached_rerun_hits_everything(self, tmp_path):
        subset = ["E01", "E13"]
        cold = REGISTRY.run_all(only=subset, cache_dir=str(tmp_path))
        assert REGISTRY.last_report.cache_hits() == 0
        warm = REGISTRY.run_all(only=subset, cache_dir=str(tmp_path))
        assert REGISTRY.last_report.cache_hits() == len(subset)
        assert all(warm[eid]["holds"] for eid in subset)
        # Hit counts are not enough: each experiment must get its own
        # artifact back, not another experiment's.
        assert warm == cold

    def test_each_experiment_gets_its_own_cached_result(self, tmp_path):
        """All experiments share the Experiment.execute callable with no
        config; per-job cache-key salting must keep artifacts distinct."""
        reg = ExperimentRegistry()
        reg.register(_experiment("XA", run_value_a))
        reg.register(_experiment("XB", run_value_b))
        cold = reg.run_all(cache_dir=str(tmp_path))
        assert cold["XA"]["which"] == "A" and cold["XB"]["which"] == "B"
        warm = reg.run_all(cache_dir=str(tmp_path))
        assert reg.last_report.cache_hits() == 2
        assert warm == cold
        assert warm["XA"]["value"] == 1.0 and warm["XB"]["value"] == 2.0
