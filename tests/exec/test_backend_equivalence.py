"""Backend-equivalence suite (satellite 3).

The whole point of the routed execution layer is that *where* a sweep
runs is an operational choice, not a scientific one: the same seeded
sweep must produce identical results, merged telemetry, and span
digests on the serial runner, the process pool, and a 2-worker socket
backend.  ``RunReport.digest()`` pins exactly that, and these tests pin
``digest()``.

The model jobs are the observability CLI's (cluster / hedging / NoC /
harvest) — real simulators with canonical seeds, not toy lambdas.
"""

import pytest

from repro.exec import Job, JobGraph, run_jobs
from repro.obs.cli import MODEL_JOBS, MODEL_SEEDS
from repro.obs.telemetry import TelemetryOptions

#: (backend name, jobs) cells every equivalence test sweeps over.
BACKENDS = [("serial", 1), ("pool", 2), ("socket", 2)]


def _graph():
    graph = JobGraph()
    for model in sorted(MODEL_JOBS):
        graph.add(Job(
            id=f"eq-{model}",
            fn=MODEL_JOBS[model],
            config={"seed": MODEL_SEEDS[model]},
        ))
    return graph


def _run(backend, jobs, telemetry=None):
    return run_jobs(_graph(), jobs=jobs, backend=backend,
                    telemetry=telemetry)


@pytest.fixture(scope="module")
def reports():
    """One sweep per backend, with full telemetry capture."""
    telemetry = TelemetryOptions(profile_period=0)
    return {
        name: _run(name, jobs, telemetry=telemetry)
        for name, jobs in BACKENDS
    }


class TestEquivalence:
    def test_all_backends_succeed(self, reports):
        for name, report in reports.items():
            assert report.ok, f"{name}: {report.one_line()}"
            assert report.backend == name

    def test_identical_result_rows(self, reports):
        serial = reports["serial"]
        for name, report in reports.items():
            for jid, record in serial.records.items():
                other = report[jid]
                assert other.status is record.status, (name, jid)
                assert other.result == record.result, (name, jid)

    def test_identical_merged_telemetry_metrics(self, reports):
        states = {
            name: report.telemetry["metrics"]
            for name, report in reports.items()
        }
        assert states["pool"] == states["serial"]
        assert states["socket"] == states["serial"]

    def test_identical_span_digests(self, reports):
        from repro.obs.spans import span_stream_digest
        from repro.obs.telemetry import payload_spans

        digests = {}
        for name, report in reports.items():
            digests[name] = {
                jid: span_stream_digest(payload_spans({"spans": spans}))
                for jid, spans in report.telemetry["spans"].items()
            }
        assert digests["pool"] == digests["serial"]
        assert digests["socket"] == digests["serial"]

    def test_report_digests_identical(self, reports):
        digests = {n: r.digest() for n, r in reports.items()}
        assert len(set(digests.values())) == 1, digests

    def test_no_telemetry_left_behind(self, reports):
        for name, report in reports.items():
            assert report.telemetry["missing"] == [], name


class TestDigestSensitivity:
    """digest() must change when results change — else it pins nothing."""

    def test_digest_differs_across_seeds(self):
        graph1 = JobGraph()
        graph1.add(Job(id="j", fn=MODEL_JOBS["hedging"],
                       config={"seed": 1}))
        graph2 = JobGraph()
        graph2.add(Job(id="j", fn=MODEL_JOBS["hedging"],
                       config={"seed": 2}))
        assert run_jobs(graph1).digest() != run_jobs(graph2).digest()

    def test_digest_ignores_wall_time(self):
        graph = JobGraph()
        graph.add(Job(id="j", fn=MODEL_JOBS["noc"], config={"seed": 5}))
        a, b = run_jobs(graph), run_jobs(graph)
        assert a.digest() == b.digest()  # wall clocks differ; digests don't


class TestArrayConsistency:
    """The array backend reports the same rows (it has no live
    telemetry channel, so only result rows are compared)."""

    def test_array_rows_match_serial(self, reports):
        array_report = run_jobs(_graph(), backend="array", jobs=2)
        serial = reports["serial"]
        assert array_report.ok
        for jid, record in serial.records.items():
            assert array_report[jid].result == record.result, jid
