"""Tests for the array/batch backend: manifests, task runner, backend."""

import json
import os
import time

import pytest

from repro.exec import ExecutionEngine, Job, JobGraph, JobStatus
from repro.exec.backends.array import (
    ArrayBackend,
    collect,
    emit_submit_script,
    plan_array,
    run_array_task,
)


def value_job(config):
    return {"value": config["x"] * 10}


def seeded_job(config):
    return {"seed": config["seed"]}


def raising_job():
    raise ValueError("bad cell")


def slow_job(config):
    time.sleep(config["sleep_s"])
    return {"slept": config["sleep_s"]}


def _chain_graph():
    """a -> b (dependent pair) plus two independent jobs."""
    graph = JobGraph()
    graph.add(Job(id="a", fn=value_job, config={"x": 1}))
    graph.add(Job(id="b", fn=value_job, config={"x": 2}, deps=("a",)))
    graph.add(Job(id="c", fn=value_job, config={"x": 3}))
    graph.add(Job(id="d", fn=value_job, config={"x": 4}))
    return graph


class TestPlan:
    def test_dependent_jobs_share_a_shard(self, tmp_path):
        task_dirs = plan_array(_chain_graph(), shards=4, root=str(tmp_path))
        by_task = {}
        for task_dir in task_dirs:
            with open(os.path.join(task_dir, "manifest.json")) as fh:
                manifest = json.load(fh)
            for job in manifest["jobs"]:
                by_task[job["id"]] = manifest["task"]
        assert by_task["a"] == by_task["b"]  # dep edge pins the shard
        assert len(by_task) == 4

    def test_root_manifest_counts(self, tmp_path):
        task_dirs = plan_array(_chain_graph(), shards=2, root=str(tmp_path))
        with open(tmp_path / "manifest.json") as fh:
            manifest = json.load(fh)
        assert manifest["tasks"] == len(task_dirs) == 2
        assert manifest["jobs"] == 4

    def test_seed_injection_at_plan_time(self, tmp_path):
        graph = JobGraph()
        graph.add(Job(id="s1", fn=seeded_job, seed_key="seed"))
        graph.add(Job(id="s2", fn=seeded_job, seed_key="seed"))
        plan_array(graph, shards=1, root=str(tmp_path), base_seed=42)
        rows = run_array_task(str(tmp_path), 0)
        seeds = {r["job_id"]: r["result"]["seed"] for r in rows}
        assert seeds["s1"] != seeds["s2"]  # per-job derived seeds
        # Replanning with the same base seed reproduces them.
        plan_array(graph, shards=1, root=str(tmp_path), base_seed=42)
        rows2 = run_array_task(str(tmp_path), 0)
        assert {r["job_id"]: r["result"]["seed"] for r in rows2} == seeds

    def test_submit_script_renders(self, tmp_path):
        plan_array(_chain_graph(), shards=2, root=str(tmp_path))
        script = emit_submit_script(str(tmp_path))
        assert "#SBATCH --array=0-1" in script
        assert "repro.exec.backends.array" in script
        assert "SLURM_ARRAY_TASK_ID" in script


class TestRunTask:
    def test_offline_plan_run_collect(self, tmp_path):
        plan_array(_chain_graph(), shards=2, root=str(tmp_path))
        for index in range(2):
            run_array_task(str(tmp_path), index)
        rows = collect(str(tmp_path))
        assert set(rows) == {"a", "b", "c", "d"}
        assert all(r["status"] == "ok" for r in rows.values())
        assert rows["b"]["result"] == {"value": 20}

    def test_in_shard_dep_failure_skips_dependent(self, tmp_path):
        graph = JobGraph()
        graph.add(Job(id="boom", fn=raising_job))
        graph.add(Job(id="after", fn=value_job, config={"x": 1},
                      deps=("boom",)))
        plan_array(graph, shards=1, root=str(tmp_path))
        rows = {r["job_id"]: r for r in run_array_task(str(tmp_path), 0)}
        assert rows["boom"]["status"] == "error"
        assert "bad cell" in rows["boom"]["error"]
        assert rows["after"]["status"] == "error"
        assert "dependency" in rows["after"]["error"]

    def test_shared_cache_reuse(self, tmp_path):
        root = tmp_path / "root"
        cache_dir = tmp_path / "cache"
        graph = JobGraph()
        graph.add(Job(id="a", fn=value_job, config={"x": 5}))
        plan_array(graph, shards=1, root=str(root))
        run_array_task(str(root), 0, cache_dir=str(cache_dir))
        # A second run of the same shard is served from the cache.
        rows = {r["job_id"]: r for r in run_array_task(
            str(root), 0, cache_dir=str(cache_dir))}
        assert rows["a"].get("cached") is True
        assert rows["a"]["result"] == {"value": 50}

    def test_newer_manifest_version_refused(self, tmp_path):
        plan_array(_chain_graph(), shards=1, root=str(tmp_path))
        manifest_path = tmp_path / "task-0000" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RuntimeError, match="newer"):
            run_array_task(str(tmp_path), 0)

    def test_collect_tolerates_missing_and_corrupt(self, tmp_path):
        plan_array(_chain_graph(), shards=2, root=str(tmp_path))
        run_array_task(str(tmp_path), 0)  # task 1 never ran
        (tmp_path / "task-0001" / "result.pkl").write_bytes(b"garbage")
        rows = collect(str(tmp_path))
        assert rows  # task 0's rows present
        assert len(rows) < 4  # corrupt/missing shard simply absent


class TestArrayBackend:
    def test_engine_driven_sweep(self, tmp_path):
        backend = ArrayBackend(str(tmp_path), shard_size=2, max_parallel=2)
        graph = JobGraph()
        for i in range(6):
            graph.add(Job(id=f"j{i}", fn=value_job, config={"x": i}))
        report = ExecutionEngine(runner=backend).run(graph)
        assert report.ok
        assert report.backend == "array"
        assert report["j5"].result == {"value": 50}

    def test_partial_tail_shard_launches_after_linger(self, tmp_path):
        backend = ArrayBackend(str(tmp_path), shard_size=4, max_parallel=1,
                               linger_s=0.02)
        graph = JobGraph()
        graph.add(Job(id="only", fn=value_job, config={"x": 1}))
        report = ExecutionEngine(runner=backend).run(graph)
        assert report.ok

    def test_task_timeout_kills_whole_shard(self, tmp_path):
        backend = ArrayBackend(str(tmp_path), shard_size=2, max_parallel=1,
                               task_timeout_s=0.4)
        graph = JobGraph()
        graph.add(Job(id="slow1", fn=slow_job, config={"sleep_s": 30.0}))
        graph.add(Job(id="slow2", fn=slow_job, config={"sleep_s": 30.0}))
        start = time.perf_counter()
        report = ExecutionEngine(runner=backend).run(graph)
        assert time.perf_counter() - start < 15.0
        for jid in ("slow1", "slow2"):
            assert report[jid].status is JobStatus.TIMEOUT
            assert "shard killed" in report[jid].error

    def test_unpicklable_submit_fails_loud(self, tmp_path):
        backend = ArrayBackend(str(tmp_path), shard_size=1)
        graph = JobGraph()
        graph.add(Job(id="closure", fn=lambda: 1))
        report = ExecutionEngine(runner=backend).run(graph)
        assert report["closure"].status is JobStatus.FAILED
        assert "submit failed" in report["closure"].error

    def test_capabilities(self, tmp_path):
        backend = ArrayBackend(str(tmp_path), shard_size=3, max_parallel=2)
        caps = backend.capabilities()
        assert caps.name == "array"
        assert caps.max_parallelism == 6
        assert not caps.supports_heartbeat  # files, not frames
        assert "batch" in caps.locality
