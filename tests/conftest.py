"""Test-suite-wide configuration: deterministic hypothesis runs."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,  # bit-identical property runs, matching the
    deadline=None,     # library's reproducibility policy
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
