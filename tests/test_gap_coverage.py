"""Gap-filling tests for public API surface not hit elsewhere."""

import networkx as nx
import numpy as np
import pytest

from repro.accelerator import system_energy_gain, system_speedup
from repro.crosscut import relation_invariant_checker
from repro.crosscut.faults import execute_registers
from repro.memory import MemoryHierarchy, default_hierarchy
from repro.processor import generate_trace
from repro.workloads import population_graph


class TestSystemSpeedup:
    def test_same_algebra_as_energy_gain(self):
        assert system_speedup(50.0, 0.4) == pytest.approx(
            system_energy_gain(50.0, 0.4)
        )

    def test_bounds(self):
        assert system_speedup(10.0, 1.0) == pytest.approx(10.0)
        assert system_speedup(10.0, 0.0) == pytest.approx(1.0)


class TestRelationInvariantChecker:
    def test_clean_run_passes(self):
        trace = generate_trace(200, rng=0)
        checker = relation_invariant_checker(max_jump=1 << 22)
        _, detected = execute_registers(trace, checker=checker)
        assert not detected

    def test_big_jump_detected(self):
        trace = generate_trace(200, rng=0)
        checker = relation_invariant_checker(max_jump=1 << 22)
        # Flip a very high bit mid-trace: a huge state jump.
        _, detected = execute_registers(
            trace, flip=(100, 3, 30), checker=checker
        )
        # Detection depends on register liveness; at minimum it must
        # not crash and must return a boolean verdict.
        assert detected in (True, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            relation_invariant_checker(max_jump=0)


class TestPopulationGraph:
    def test_structure(self):
        g = population_graph(1000, n_communities=10, rng=0)
        assert isinstance(g, nx.Graph)
        assert g.number_of_nodes() == 1000
        # Hubs exist: max degree well above the median community degree.
        degrees = np.array([d for _, d in g.degree])
        assert degrees.max() > 1.8 * np.median(degrees)

    def test_validation(self):
        with pytest.raises(ValueError):
            population_graph(10)
        with pytest.raises(ValueError):
            population_graph(100, hub_fraction=0.5)


class TestDefaultHierarchy:
    def test_three_levels_increasing_size_and_latency(self):
        specs = default_hierarchy()
        assert [s.name for s in specs] == ["l1", "l2", "l3"]
        sizes = [s.config.size_bytes for s in specs]
        latencies = [s.latency_cycles for s in specs]
        energies = [s.energy_per_access_j for s in specs]
        assert sizes == sorted(sizes)
        assert latencies == sorted(latencies)
        assert energies == sorted(energies)

    def test_usable_directly(self):
        h = MemoryHierarchy(default_hierarchy())
        res = h.run_trace(np.zeros(4, dtype=np.int64))
        assert res.accesses == 4
        assert res.level_hits["l1"] == 3  # one cold miss


class TestMacroTwins:
    """repro.core.macro — the PR8 scalar/batch pairing contract."""

    def test_as_macro_attaches_twin_and_returns_scalar(self):
        from repro.core.macro import MACRO_ATTR, as_macro

        def scalar(sim, payload):
            return None

        def batch(sim, run):
            return 0

        out = as_macro(scalar, batch)
        assert out is scalar
        assert getattr(out, MACRO_ATTR) is batch

    def test_plain_callable_has_no_twin(self):
        from repro.core.macro import MACRO_ATTR

        assert not hasattr(lambda: None, MACRO_ATTR)


class TestFastPathMode:
    """repro.core.fastpath — mode resolution precedence + validation."""

    def test_explicit_beats_environment(self, monkeypatch):
        from repro.core.fastpath import ENV_VAR, resolve_mode

        monkeypatch.setenv(ENV_VAR, "off")
        assert resolve_mode("on") == "on"
        assert resolve_mode() == "off"

    def test_defaults_to_auto_and_normalizes(self, monkeypatch):
        from repro.core.fastpath import ENV_VAR, resolve_mode

        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_mode() == "auto"
        assert resolve_mode(" ON ") == "on"

    def test_invalid_mode_is_a_value_error_naming_choices(self):
        from repro.core.fastpath import resolve_mode

        with pytest.raises(ValueError, match="auto"):
            resolve_mode("fast")

    def test_simulator_exposes_resolved_mode(self):
        from repro.core.events import Simulator

        assert Simulator(fastpath="on").fastpath_mode == "on"


class TestTransportChaosConfig:
    """repro.exec.backends.chaos — spec parsing round-trip."""

    def test_spec_roundtrip_and_active_flag(self):
        from repro.exec.backends.chaos import ChaosConfig

        cfg = ChaosConfig(seed=7, drop=0.02, bitflip=0.01)
        assert cfg.active
        assert ChaosConfig.from_spec(cfg.to_spec()) == cfg
        assert not ChaosConfig().active

    def test_unknown_spec_key_fails_loud(self):
        from repro.exec.backends.chaos import ChaosConfig

        with pytest.raises(ValueError, match="known keys"):
            ChaosConfig.from_spec("drp=0.5")


class TestRouterTrustPolicies:
    """repro.exec.backends.router — hedge/verify policy surface."""

    def test_verify_modes_map_to_replica_counts(self):
        from repro.exec.backends.router import VerifyPolicy

        assert VerifyPolicy(mode="dmr").replicas == 2
        assert VerifyPolicy(mode="vote").replicas == 3
        with pytest.raises(ValueError, match="dmr"):
            VerifyPolicy(mode="tmr")
        with pytest.raises(ValueError):
            VerifyPolicy(quarantine_after=0)

    def test_hedge_policy_defaults(self):
        from repro.exec.backends.router import HedgePolicy

        policy = HedgePolicy()
        assert policy.delay_s is None  # adaptive until observations land
        assert 0.0 < policy.quantile < 1.0
        assert policy.min_observations >= 1
