"""Tests for adaptive mobile-cloud offload under a varying uplink."""

import numpy as np
import pytest

from repro.accelerator import (
    DevicePlatform,
    UplinkTrace,
    Workload,
    policy_comparison,
    random_walk_uplink,
    run_policy,
)


class TestUplinkTrace:
    def test_shape_and_outages(self):
        trace = random_walk_uplink(2000, outage_prob=0.1, rng=0)
        assert len(trace) == 2000
        assert np.mean(trace.bits_per_s == 0.0) > 0.05

    def test_energy_rises_when_bandwidth_falls(self):
        trace = random_walk_uplink(5000, outage_prob=0.0, rng=1)
        bw, e = trace.bits_per_s, trace.energy_per_bit_j
        # Inverse relationship: correlation of log-quantities negative.
        mask = bw > 0
        corr = np.corrcoef(np.log(bw[mask]), np.log(e[mask]))[0, 1]
        assert corr < -0.9

    def test_deterministic(self):
        a = random_walk_uplink(100, rng=7)
        b = random_walk_uplink(100, rng=7)
        np.testing.assert_array_equal(a.bits_per_s, b.bits_per_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk_uplink(0)
        with pytest.raises(ValueError):
            random_walk_uplink(10, outage_prob=2.0)
        with pytest.raises(ValueError):
            UplinkTrace(np.zeros(3), np.zeros(2))


class TestPolicies:
    def make_setup(self, n=200):
        device = DevicePlatform()
        uplink = random_walk_uplink(n, rng=0)
        tasks = [Workload(ops=1e9, input_bits=1e6) for _ in range(n)]
        return device, uplink, tasks

    def test_static_policies_behave(self):
        device, uplink, tasks = self.make_setup()
        local = run_policy("always_local", device, tasks, uplink)
        offload = run_policy("always_offload", device, tasks, uplink)
        assert local.offloaded == 0
        assert offload.offloaded + offload.failed_offloads == len(tasks)

    def test_oracle_is_lower_bound(self):
        device, uplink, tasks = self.make_setup()
        oracle = run_policy("oracle", device, tasks, uplink)
        for policy in ("always_local", "always_offload", "adaptive"):
            other = run_policy(policy, device, tasks, uplink)
            assert other.energy_j >= oracle.energy_j - 1e-9, policy

    def test_adaptive_tracks_oracle(self):
        out = policy_comparison(n_tasks=400, rng=0)
        assert out["adaptive"]["energy_vs_oracle"] < 1.15
        # And beats both static policies on this mixed workload.
        assert (
            out["adaptive"]["energy_j"] < out["always_local"]["energy_j"]
        )
        assert (
            out["adaptive"]["energy_j"] < out["always_offload"]["energy_j"]
        )

    def test_outages_punish_blind_offloading(self):
        out = policy_comparison(n_tasks=400, rng=0)
        assert out["always_offload"]["failed_offloads"] > 0
        assert out["oracle"]["failed_offloads"] == 0

    def test_validation(self):
        device, uplink, tasks = self.make_setup(10)
        with pytest.raises(ValueError):
            run_policy("psychic", device, tasks, uplink)
        with pytest.raises(ValueError):
            run_policy("oracle", device, [], uplink)
        with pytest.raises(ValueError):
            run_policy("adaptive", device, tasks, uplink,
                       estimator_window=0)
        with pytest.raises(ValueError):
            policy_comparison(n_tasks=0)
        with pytest.raises(ValueError):
            policy_comparison(intensity_spread=(10.0, 5.0))
