"""Tests for specialization economics and NRE models (E05/E09)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accelerator import (
    AcceleratorSpec,
    accelerator_portfolio,
    asic_nre_by_node,
    breakeven_volume,
    breakeven_volume_by_node,
    cheapest_target,
    cost_curves,
    coverage_required,
    default_targets,
    energy_adjusted_cost,
    heterogeneous_soc_energy,
    mechanism_breakdown,
    system_energy_gain,
)


class TestSystemGain:
    def test_full_coverage_gives_full_gain(self):
        assert system_energy_gain(100.0, 1.0) == pytest.approx(100.0)

    def test_zero_coverage_gives_nothing(self):
        assert system_energy_gain(100.0, 0.0) == pytest.approx(1.0)

    def test_paper_lament_low_coverage(self):
        # A 100x accelerator covering 30% of work: system gain ~1.4x —
        # why "no known solutions exist ... for broad classes".
        assert system_energy_gain(100.0, 0.3) == pytest.approx(1.42, abs=0.01)

    def test_gain_bounded_by_amdahl(self):
        # System gain can never exceed 1/(1-c).
        assert system_energy_gain(1e9, 0.5) <= 2.0 + 1e-9

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_gain_between_1_and_g(self, g, c):
        gain = system_energy_gain(g, c)
        assert 1.0 - 1e-9 <= gain <= g + 1e-9

    def test_coverage_required_inverts(self):
        c = coverage_required(100.0, 5.0)
        assert system_energy_gain(100.0, c) == pytest.approx(5.0)

    def test_coverage_required_validation(self):
        with pytest.raises(ValueError):
            coverage_required(10.0, 50.0)  # above ceiling
        with pytest.raises(ValueError):
            coverage_required(10.0, 0.5)

    def test_mechanism_breakdown_near_100x(self):
        out = mechanism_breakdown()
        assert 50.0 <= out["total"] <= 200.0
        factors = [v for k, v in out.items() if k != "total"]
        assert out["total"] == pytest.approx(np.prod(factors))


class TestPortfolio:
    def test_diminishing_returns(self):
        out = accelerator_portfolio(10, energy_gain=100.0)
        gains = out["system_energy_gain"]
        assert np.all(np.diff(gains) > 0)  # each accelerator helps...
        # ...but covers less and less of the workload (long tail).
        marginal_coverage = np.diff(out["cumulative_coverage"])
        assert np.all(np.diff(marginal_coverage) < 0)
        # Ten 100x accelerators still deliver well under 10x system-wide.
        assert gains[-1] < 10.0

    def test_coverage_capped(self):
        out = accelerator_portfolio(50, total_coverage=0.8)
        assert out["cumulative_coverage"][-1] <= 0.8 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            accelerator_portfolio(0)
        with pytest.raises(ValueError):
            accelerator_portfolio(5, total_coverage=0.0)

    def test_soc_composition(self):
        specs = [
            AcceleratorSpec("video", 200.0, 50.0, 0.3),
            AcceleratorSpec("crypto", 50.0, 20.0, 0.1),
        ]
        out = heterogeneous_soc_energy(specs)
        assert out["coverage"] == pytest.approx(0.4)
        assert 1.0 < out["system_gain"] < 200.0

    def test_soc_overlap_rejected(self):
        specs = [
            AcceleratorSpec("a", 10.0, 10.0, 0.7),
            AcceleratorSpec("b", 10.0, 10.0, 0.6),
        ]
        with pytest.raises(ValueError):
            heterogeneous_soc_energy(specs)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", 0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", 1.0, 1.0, 1.5)


class TestNRE:
    def test_volume_ordering_fpga_cgra_asic(self):
        # The canonical result: FPGA at low volume, CGRA in the middle,
        # ASIC at high volume.
        assert cheapest_target(1e3) == "fpga"
        assert cheapest_target(1e5) == "cgra"
        assert cheapest_target(1e7) == "asic"

    def test_breakeven_formula(self):
        t = default_targets()
        v = breakeven_volume(t["asic"], t["fpga"])
        # At the breakeven, costs match.
        assert t["asic"].cost_per_unit(v) == pytest.approx(
            t["fpga"].cost_per_unit(v)
        )

    def test_breakeven_inf_when_never_wins(self):
        from repro.accelerator import ImplementationTarget

        expensive = ImplementationTarget("x", nre_usd=1e6, unit_cost_usd=100.0,
                                         energy_overhead=1.0)
        cheap = ImplementationTarget("y", nre_usd=0.0, unit_cost_usd=1.0,
                                     energy_overhead=1.0)
        assert breakeven_volume(expensive, cheap) == float("inf")

    def test_cost_curves_decreasing(self):
        out = cost_curves([1e2, 1e4, 1e6])
        for name in ("asic", "cgra", "fpga"):
            assert np.all(np.diff(out[name]) < 0)

    def test_nre_grows_per_node(self):
        table = asic_nre_by_node()
        values = list(table.values())
        assert all(a < b for a, b in zip(values, values[1:]))
        # Table 1 row 5: NRE at recent nodes is orders above 350 nm.
        assert values[-1] > 50 * values[0]

    def test_breakeven_volume_rises_per_node(self):
        table = breakeven_volume_by_node()
        values = list(table.values())
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_energy_adjusted_cost_penalizes_fpga_at_high_duty(self):
        t = default_targets()
        lifetime_ops = 1e17  # heavy-duty deployment
        volume = 1e6
        asic = energy_adjusted_cost(t["asic"], volume, lifetime_ops)
        fpga = energy_adjusted_cost(t["fpga"], volume, lifetime_ops)
        assert asic < fpga

    def test_validation(self):
        t = default_targets()["asic"]
        with pytest.raises(ValueError):
            t.cost_per_unit(0.0)
        with pytest.raises(ValueError):
            cost_curves([0.0])
        with pytest.raises(ValueError):
            asic_nre_by_node(growth_per_node=1.0)
        with pytest.raises(KeyError):
            asic_nre_by_node(start="12nm")
        with pytest.raises(ValueError):
            energy_adjusted_cost(t, 1e3, -1.0)
