"""Tests for the SIMT model and mobile-cloud offload (E20)."""

import numpy as np
import pytest

from repro.accelerator import (
    CloudPlatform,
    DevicePlatform,
    SIMTModel,
    Workload,
    energy_breakeven_intensity,
    local_energy_j,
    local_latency_s,
    offload_decision,
    offload_energy_j,
    offload_frontier,
    offload_latency_s,
    ridge_point,
    roofline,
    should_offload_energy,
)


class TestRoofline:
    def test_bandwidth_bound_region(self):
        out = roofline(0.5, peak_flops=1e12, bandwidth_bytes_per_s=100e9)
        assert out == pytest.approx(50e9)

    def test_compute_bound_region(self):
        out = roofline(100.0, peak_flops=1e12, bandwidth_bytes_per_s=100e9)
        assert out == pytest.approx(1e12)

    def test_ridge_point(self):
        r = ridge_point(1e12, 100e9)
        assert r == pytest.approx(10.0)
        assert roofline(r, 1e12, 100e9) == pytest.approx(1e12)

    def test_vectorized_monotone(self):
        out = roofline(np.array([0.1, 1.0, 10.0, 100.0]), 1e12, 100e9)
        assert np.all(np.diff(out) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline(1.0, 0.0, 1e9)
        with pytest.raises(ValueError):
            roofline(-1.0, 1e12, 1e9)
        with pytest.raises(ValueError):
            ridge_point(1e12, 0.0)


class TestSIMT:
    def test_divergence_halves_worst_case(self):
        m = SIMTModel()
        assert m.divergence_efficiency(1.0, 1.0) == pytest.approx(0.5)
        assert m.divergence_efficiency(0.0, 1.0) == pytest.approx(1.0)

    def test_coalescing(self):
        m = SIMTModel(warp_width=32)
        assert m.coalescing_factor(1) == 1.0
        assert m.coalescing_factor(8) == 8.0
        assert m.coalescing_factor(100) == 32.0  # capped at warp width

    def test_strided_kernel_memory_bound(self):
        m = SIMTModel()
        fast = m.effective_throughput_ops(stride_elements=1)
        slow = m.effective_throughput_ops(stride_elements=32)
        assert slow < fast / 4

    def test_compute_kernel_hits_peak(self):
        m = SIMTModel(clock_hz=1e9, ops_per_warp_cycle=32)
        out = m.effective_throughput_ops(
            branch_fraction=0.0, divergence_prob=0.0, memory_fraction=0.0
        )
        assert out == pytest.approx(32e9)

    def test_validation(self):
        m = SIMTModel()
        with pytest.raises(ValueError):
            m.coalescing_factor(0)
        with pytest.raises(ValueError):
            m.divergence_efficiency(2.0, 0.5)
        with pytest.raises(ValueError):
            m.effective_throughput_ops(memory_fraction=1.5)
        with pytest.raises(ValueError):
            SIMTModel(warp_width=0)
        with pytest.raises(ValueError):
            m.efficiency_ops_per_watt(0.0)


class TestOffload:
    def make(self):
        return DevicePlatform(), CloudPlatform()

    def test_data_dense_tasks_stay_local(self):
        # Raw sensor stream: 1 op/bit — shipping costs more than crunching.
        device, _ = self.make()
        work = Workload(ops=1e6, input_bits=1e6)
        assert not should_offload_energy(device, work)

    def test_compute_dense_tasks_offload(self):
        device, _ = self.make()
        work = Workload(ops=1e12, input_bits=1e6)  # 1e6 ops/bit
        assert should_offload_energy(device, work)

    def test_breakeven_intensity(self):
        device, _ = self.make()
        b = energy_breakeven_intensity(device)
        # e_radio 100 nJ/bit over e_op 0.1 nJ/op = 1000 ops/bit.
        assert b == pytest.approx(1000.0)
        just_below = Workload(ops=b * 0.9 * 1e6, input_bits=1e6)
        just_above = Workload(ops=b * 1.1 * 1e6, input_bits=1e6)
        assert not should_offload_energy(device, just_below)
        assert should_offload_energy(device, just_above)

    def test_latency_components(self):
        device, cloud = self.make()
        work = Workload(ops=1e9, input_bits=5e6)
        t = offload_latency_s(device, cloud, work)
        expected = 5e6 / 5e6 + 0.05 + 1e9 / 1e11
        assert t == pytest.approx(expected)
        assert local_latency_s(device, work) == pytest.approx(1.0)

    def test_decision_prefers_energy_within_deadline(self):
        device, cloud = self.make()
        work = Workload(ops=1e12, input_bits=1e6)
        out = offload_decision(device, cloud, work, deadline_s=1e6)
        assert out["choice"] == "offload"
        assert out["energy_saving"] > 0

    def test_decision_respects_deadline(self):
        device, cloud = self.make()
        # Offload would win on energy but misses a tight deadline
        # because the uplink is slow.
        slow_device = DevicePlatform(uplink_bits_per_s=1e4)
        work = Workload(ops=1e12, input_bits=1e7)
        # Local takes 1000 s; offload 1010 s.  A 1005 s deadline forces
        # the energy-worse local choice.
        out = offload_decision(slow_device, cloud, work, deadline_s=1005.0)
        assert out["choice"] == "local"

    def test_frontier_flips_once(self):
        device, cloud = self.make()
        out = offload_frontier(
            device, cloud, np.geomspace(1.0, 1e6, 25)
        )
        wins = out["offload_wins"]
        assert not wins[0] and wins[-1]
        # Monotone flip: once offload wins, it keeps winning.
        first_win = int(np.argmax(wins))
        assert np.all(wins[first_win:])

    def test_radio_idle_power_counts(self):
        base = DevicePlatform()
        leaky = DevicePlatform(radio_idle_power_w=1.0)
        work = Workload(ops=1e9, input_bits=5e6)
        assert offload_energy_j(leaky, work) > offload_energy_j(base, work)

    def test_validation(self):
        device, cloud = self.make()
        with pytest.raises(ValueError):
            Workload(ops=-1.0, input_bits=0.0)
        with pytest.raises(ValueError):
            DevicePlatform(uplink_bits_per_s=0.0)
        with pytest.raises(ValueError):
            CloudPlatform(rtt_s=-1.0)
        with pytest.raises(ValueError):
            offload_decision(device, cloud, Workload(1.0, 1.0), deadline_s=0.0)
        with pytest.raises(ValueError):
            offload_frontier(device, cloud, np.array([1.0]), input_bits=0.0)

    def test_local_energy_linear_in_ops(self):
        device, _ = self.make()
        w1 = Workload(ops=1e6, input_bits=1.0)
        w2 = Workload(ops=2e6, input_bits=1.0)
        assert local_energy_j(device, w2) == pytest.approx(
            2 * local_energy_j(device, w1)
        )
