"""Tests for the seeded RNG policy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import rng as rng_mod
from repro.core.rng import resolve_rng, sobol_like_grid, spawn_rngs, stream_for


class TestResolveRng:
    def test_none_is_deterministic(self):
        a = resolve_rng(None).random(8)
        b = resolve_rng(None).random(8)
        np.testing.assert_array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(7).random(8)
        b = resolve_rng(7).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).random(8)
        b = resolve_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(3)
        assert resolve_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        out = resolve_rng(seq)
        assert isinstance(out, np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_spawned_streams_are_distinct(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(16) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStreamFor:
    def test_stable_across_calls(self):
        a = stream_for(42, "server", 17).random(4)
        b = stream_for(42, "server", 17).random(4)
        np.testing.assert_array_equal(a, b)

    def test_keys_give_distinct_streams(self):
        a = stream_for(42, "server", 1).random(4)
        b = stream_for(42, "server", 2).random(4)
        assert not np.array_equal(a, b)

    def test_none_seed_uses_default(self):
        a = stream_for(None, "x").random(4)
        b = stream_for(rng_mod.DEFAULT_SEED, "x").random(4)
        np.testing.assert_array_equal(a, b)


class TestLatinHypercube:
    def test_shape_and_bounds(self):
        pts = sobol_like_grid([0.0, 10.0], [1.0, 20.0], 50, rng=0)
        assert pts.shape == (50, 2)
        assert np.all(pts[:, 0] >= 0.0) and np.all(pts[:, 0] <= 1.0)
        assert np.all(pts[:, 1] >= 10.0) and np.all(pts[:, 1] <= 20.0)

    def test_stratification(self):
        # Each of the n slices in each dimension holds exactly one point.
        n = 40
        pts = sobol_like_grid([0.0], [1.0], n, rng=1)
        bins = np.floor(pts[:, 0] * n).astype(int)
        assert sorted(bins) == list(range(n))

    def test_validation(self):
        with pytest.raises(ValueError):
            sobol_like_grid([0.0], [1.0, 2.0], 5)
        with pytest.raises(ValueError):
            sobol_like_grid([1.0], [0.0], 5)
        with pytest.raises(ValueError):
            sobol_like_grid([0.0], [1.0], 0)

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    def test_property_points_within_box(self, n, seed):
        pts = sobol_like_grid([-2.0, 5.0], [3.0, 5.0], n, rng=seed)
        assert np.all(pts[:, 0] >= -2.0) and np.all(pts[:, 0] <= 3.0)
        # Degenerate dimension collapses to the single value.
        np.testing.assert_allclose(pts[:, 1], 5.0)
