"""Tests for the agenda (full-system) model — E06/E21 machinery."""

import pytest

from repro.core import units
from repro.core.agenda import (
    PlatformClass,
    SystemConfig,
    agenda_comparison,
    evaluate_system,
    levers_to_close_gap,
    paper_platforms,
    platform_gap_table,
    twentieth_century_design,
    twenty_first_century_design,
)
from repro.processor import BIG_OOO_CORE, LITTLE_INORDER_CORE


class TestPlatforms:
    def test_four_classes_with_paper_envelopes(self):
        platforms = paper_platforms()
        assert set(platforms) == {
            "sensor", "portable", "departmental", "datacenter"
        }
        assert platforms["portable"].power_budget_w == 10.0
        assert platforms["datacenter"].target_ops == 1e18

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformClass("bad", 0.0, 1.0)


class TestEvaluateSystem:
    def test_metrics_consistent(self):
        metrics = evaluate_system(SystemConfig(), 10.0)
        assert metrics["power_w"] <= 10.0 + 1e-9
        assert metrics["throughput_ops"] == pytest.approx(
            min(metrics["peak_ops"], metrics["power_limited_ops"])
        )
        assert metrics["energy_per_op_j"] == pytest.approx(
            metrics["compute_energy_j"] + metrics["memory_energy_j"]
        )

    def test_more_cores_more_peak(self):
        few = evaluate_system(SystemConfig(n_cores=1), 1000.0)
        many = evaluate_system(SystemConfig(n_cores=32), 1000.0)
        assert many["peak_ops"] > few["peak_ops"]

    def test_accelerators_cut_energy(self):
        plain = evaluate_system(SystemConfig(), 10.0)
        accel = evaluate_system(
            SystemConfig(accelerator_coverage=0.6, accelerator_gain=50.0),
            10.0,
        )
        assert accel["energy_per_op_j"] < plain["energy_per_op_j"]

    def test_ntv_cuts_energy_and_speed(self):
        nominal = evaluate_system(SystemConfig(n_cores=64), 1e9)
        ntv = evaluate_system(
            SystemConfig(n_cores=64, near_threshold=True), 1e9
        )
        assert ntv["compute_energy_j"] < nominal["compute_energy_j"]
        assert ntv["peak_ops"] < nominal["peak_ops"]

    def test_memory_lever(self):
        heavy = evaluate_system(SystemConfig(memory_bytes_per_op=2.0), 10.0)
        light = evaluate_system(
            SystemConfig(memory_bytes_per_op=2.0, memory_efficiency_gain=4.0),
            10.0,
        )
        assert light["memory_energy_j"] == pytest.approx(
            heavy["memory_energy_j"] / 4.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_system(SystemConfig(), 0.0)
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)
        with pytest.raises(ValueError):
            SystemConfig(accelerator_coverage=1.5)
        with pytest.raises(ValueError):
            SystemConfig(memory_efficiency_gain=0.5)


class TestTable2:
    def test_designs_match_their_columns(self):
        old = twentieth_century_design()
        new = twenty_first_century_design()
        assert old.core is BIG_OOO_CORE and old.n_cores == 1
        assert new.core is LITTLE_INORDER_CORE and new.n_cores > 1
        assert new.accelerator_coverage > 0

    def test_energy_first_wins(self):
        cmp = agenda_comparison()
        assert cmp["efficiency_gain"] > 3.0
        assert cmp["new_energy_per_op_j"] < cmp["old_energy_per_op_j"]

    def test_gap_table_shape(self):
        gaps = platform_gap_table()
        for name, rec in gaps.items():
            assert rec["gap"] > 1.0, name  # 2012 tech misses the target
            assert rec["achieved_ops"] == pytest.approx(
                rec["ops_per_watt"] * rec["power_budget_w"]
            )
        # Per-watt story is the same across classes (scale-out model).
        opw = {round(v["ops_per_watt"]) for v in gaps.values()}
        assert len(opw) == 1

    def test_levers_monotone(self):
        levers = levers_to_close_gap()
        order = [
            "baseline_little_core", "many_cores", "plus_specialization",
            "plus_ntv", "plus_memory_efficiency",
        ]
        values = [levers[k] for k in order]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert levers["paper_target"] == units.PAPER_TARGET_OPS_PER_WATT
