"""Tests for the instrumentation substrate and kernel hooks.

Covers repro.core.instrument (counters, gauges, streaming quantile
histograms, trace sink, session registry) and the kernel-side hooks
(probes, periodic samplers, SimModel attach, PeriodicSource stop).
The hypothesis property tests implement DESIGN.md §4's kernel
contract: total time ordering with seq tie-breaking, lazy-cancellation
accounting, and run(until=..., max_events=...) across back-to-back
runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import instrument
from repro.core.events import (
    PeriodicSource,
    SimModel,
    Simulator,
    trace_events,
)
from repro.core.instrument import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceSink,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("reqs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_tracks_last_value(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_exact_moments_small_stream(self):
        h = Histogram("lat")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.5) == pytest.approx(2.5)

    def test_reservoir_bounded_but_count_exact(self):
        h = Histogram("lat", capacity=128)
        n = 10_000
        for i in range(n):
            h.observe(float(i))
        assert h.count == n
        assert len(h._reservoir) == 128
        # The quantile estimate must land in the right neighbourhood.
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.25)

    def test_deterministic_across_runs(self):
        def fill():
            h = Histogram("lat", capacity=64)
            for i in range(5000):
                h.observe(float(i % 311))
            return h.quantile(0.9)

        assert fill() == fill()

    def test_empty_quantile_nan(self):
        import math

        assert math.isnan(Histogram("lat").quantile(0.5))


class TestTraceSink:
    def test_bounded_with_drop_count(self):
        sink = TraceSink(capacity=3)
        for i in range(5):
            sink.emit(float(i), "cat", "ev", i)
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e[0] for e in sink.events()] == [2.0, 3.0, 4.0]


class TestRegistry:
    def test_scoped_names_are_prefixed(self):
        reg = MetricsRegistry()
        reg.scoped("noc").counter("hops").inc(7)
        assert reg.snapshot()["noc.hops"]["value"] == 7

    def test_disabled_registry_returns_null_instruments(self):
        before = NULL_REGISTRY.snapshot()
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("y").set(1.0)
        NULL_REGISTRY.histogram("z").observe(1.0)
        NULL_REGISTRY.trace(0.0, "a", "b")
        assert NULL_REGISTRY.snapshot() == before == {}

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_merge_counts(self):
        reg = MetricsRegistry()
        reg.merge_counts([("a", 2), ("b", 3), ("a", 1)])
        snap = reg.snapshot()
        assert snap["a"]["value"] == 3 and snap["b"]["value"] == 3

    def test_report_mentions_every_instrument(self):
        reg = MetricsRegistry(trace_capacity=8)
        reg.counter("events").inc()
        reg.histogram("lat").observe(1.0)
        text = reg.report()
        assert "events" in text and "lat" in text and "[trace]" in text


class TestSessionRegistry:
    def test_enable_then_disable(self):
        try:
            reg = instrument.enable_session()
            assert instrument.default_registry() is reg
            assert Simulator().metrics is reg
        finally:
            instrument.disable_session()
        assert instrument.default_registry() is NULL_REGISTRY

    def test_explicit_metrics_wins_over_session(self):
        mine = MetricsRegistry()
        try:
            instrument.enable_session()
            assert Simulator(metrics=mine).metrics is mine
        finally:
            instrument.disable_session()


class TestProbes:
    def test_probe_sees_every_executed_event(self):
        sim = Simulator()
        seen = []
        sim.add_probe(lambda s, ev: seen.append((ev.time, ev.payload)))
        sim.schedule(1.0, lambda s, p: None, "a")
        token = sim.schedule(2.0, lambda s, p: None, "dead")
        token.cancel()
        sim.schedule(3.0, lambda s, p: None, "b")
        sim.run()
        assert seen == [(1.0, "a"), (3.0, "b")]

    def test_remove_probe(self):
        sim = Simulator()
        seen = []
        probe = lambda s, ev: seen.append(ev.time)  # noqa: E731
        sim.add_probe(probe)
        sim.schedule(1.0, lambda s, p: None)
        sim.run()
        sim.remove_probe(probe)
        sim.schedule(1.0, lambda s, p: None)
        sim.run()
        assert seen == [1.0]

    def test_trace_events_probe_fills_sink(self):
        reg = MetricsRegistry(trace_capacity=16)
        sim = Simulator(metrics=reg)
        trace_events(sim)
        sim.schedule(1.0, lambda s, p: None, "x")
        sim.run()
        assert len(reg.trace_sink) == 1


class TestSampler:
    def test_sample_every_cadence(self):
        sim = Simulator()
        samples = []
        sim.sample_every(2.0, lambda s: samples.append(s.now))
        sim.schedule(9.0, lambda s, p: None)  # keep the run alive
        sim.run(until=9.0)
        assert samples == [2.0, 4.0, 6.0, 8.0]

    def test_sampler_chain_cancel_stops_future_samples(self):
        sim = Simulator()
        samples = []
        token = sim.sample_every(1.0, lambda s: samples.append(s.now))
        sim.schedule_at(3.5, lambda s, p: token.cancel())
        sim.schedule(10.0, lambda s, p: None)
        sim.run()
        assert samples == [1.0, 2.0, 3.0]


class TestSimModelProtocol:
    def test_attach_binds_and_tracks(self):
        calls = []

        class Model:
            def bind(self, sim):
                calls.append("bind")

            def reset(self):
                calls.append("reset")

            def finish(self):
                calls.append("finish")

        sim = Simulator()
        model = Model()
        assert isinstance(model, SimModel)
        assert sim.attach(model) is model
        assert model in sim.models
        sim.finish_models()
        assert calls == ["bind", "finish"]


class TestPeriodicSourceStop:
    def test_stop_halts_future_fires(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(period=1.0, callback=lambda s, p: log.append(s.now))
        src.start(sim)
        sim.schedule_at(3.5, lambda s, p: src.stop())
        sim.schedule(10.0, lambda s, p: None)
        sim.run()
        assert log == [0.0, 1.0, 2.0, 3.0]
        assert not src.active

    def test_stop_after_is_inclusive(self):
        # A fire landing exactly at stop_after still happens; only fires
        # strictly beyond it are suppressed.
        sim = Simulator()
        log = []
        src = PeriodicSource(
            period=1.0, callback=lambda s, p: log.append(s.now), stop_after=3.0
        )
        src.start(sim)
        sim.run(until=10.0)
        assert log == [0.0, 1.0, 2.0, 3.0]

    def test_restart_after_stop(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(period=1.0, callback=lambda s, p: log.append(s.now))
        src.start(sim)
        sim.run(until=2.0)
        src.stop()
        sim.run(until=5.0)
        n_after_stop = len(log)
        src.start(sim)
        sim.run(until=7.0)
        assert len(log) > n_after_stop


# ---------------------------------------------------------------------------
# DESIGN §4 kernel contract, property-tested.
# ---------------------------------------------------------------------------

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), max_size=60
)


class TestKernelProperties:
    @given(delays)
    def test_total_order_with_seq_tiebreak(self, ds):
        """Execution observes (time, seq) lexicographic order: times are
        nondecreasing and equal-time events keep insertion order."""
        sim = Simulator()
        log = []
        for i, d in enumerate(ds):
            sim.schedule(d, lambda s, p: log.append((s.now, p)), i)
        sim.run()
        assert [t for t, _ in log] == sorted(t for t, _ in log)
        for (t1, i1), (t2, i2) in zip(log, log[1:]):
            if t1 == t2:
                assert i1 < i2

    @given(delays, st.data())
    def test_lazy_cancellation_accounting(self, ds, data):
        """After a full drain every scheduled event is accounted for
        exactly once: executed + cancelled == scheduled."""
        sim = Simulator()
        tokens = [sim.schedule(d, lambda s, p: None) for d in ds]
        to_cancel = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(len(tokens) - 1, 0)),
                max_size=len(tokens),
            )
            if tokens
            else st.just([])
        )
        for i in set(to_cancel):
            tokens[i].cancel()
        stats = sim.run()
        assert stats.events_executed + stats.events_cancelled == len(ds)
        assert stats.events_cancelled == len(set(to_cancel))
        assert len(sim) == 0

    @settings(max_examples=50)
    @given(
        delays,
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        st.integers(min_value=0, max_value=70),
    )
    def test_split_runs_equal_single_run(self, ds, horizon, budget):
        """run(until=h) + run() executes the same schedule as one run();
        max_events never overshoots and resumes cleanly."""
        one = Simulator()
        log_one = []
        for i, d in enumerate(ds):
            one.schedule(d, lambda s, p: log_one.append((s.now, p)), i)
        one.run()

        two = Simulator()
        log_two = []
        for i, d in enumerate(ds):
            two.schedule(d, lambda s, p: log_two.append((s.now, p)), i)
        two.run(until=horizon, max_events=budget)
        mid = len(log_two)
        assert mid <= budget
        assert all(t <= horizon for t, _ in log_two)
        two.run()  # drain the rest
        assert log_two == log_one
        assert two.stats.events_executed == one.stats.events_executed


class TestObserveMany:
    """The vectorized histogram path must match scalar observe exactly."""

    def _pairs(self, capacity, values):
        # Same name => same xorshift seed, so replacement decisions of
        # the two paths are comparable element for element.
        scalar = Histogram("h", capacity=capacity)
        batched = Histogram("h", capacity=capacity)
        for v in values:
            scalar.observe(float(v))
        batched.observe_many(np.asarray(values, dtype=float))
        return scalar, batched

    def test_matches_scalar_below_capacity(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(2.0, 100)
        scalar, batched = self._pairs(4096, values)
        assert batched.count == scalar.count
        assert batched.min == scalar.min
        assert batched.max == scalar.max
        assert batched._reservoir == scalar._reservoir
        assert batched.total == pytest.approx(scalar.total, rel=1e-12)

    def test_matches_scalar_through_reservoir_replacement(self):
        # Past capacity the xorshift replacement stream must stay
        # identical, element for element, to the scalar path.
        rng = np.random.default_rng(12)
        values = rng.normal(10.0, 3.0, 500)
        scalar, batched = self._pairs(64, values)
        assert batched.count == scalar.count
        assert batched._reservoir == scalar._reservoir
        assert batched.quantile(0.5) == scalar.quantile(0.5)

    def test_batches_compose_with_scalar_calls(self):
        rng = np.random.default_rng(13)
        values = rng.random(300)
        scalar = Histogram("h", capacity=32)
        mixed = Histogram("h", capacity=32)
        for v in values:
            scalar.observe(float(v))
        for v in values[:50]:
            mixed.observe(float(v))
        mixed.observe_many(values[50:250])
        mixed.observe_many(values[250:])
        assert mixed.count == scalar.count
        assert mixed._reservoir == scalar._reservoir

    def test_empty_batch_is_noop(self):
        h = Histogram("h")
        h.observe_many(np.array([]))
        assert h.count == 0

    def test_null_histogram_accepts_batches(self):
        null = NULL_REGISTRY.histogram("x")
        null.observe_many(np.arange(5.0))  # must not raise or record


class TestSessionInstallRestore:
    """install_session/current_session (PR5): the primitive worker
    telemetry uses to scope a private registry around one job attempt."""

    def test_install_returns_previous_and_restores(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        prev0 = instrument.install_session(outer)
        try:
            assert instrument.current_session() is outer
            prev = instrument.install_session(inner)
            assert prev is outer
            assert instrument.current_session() is inner
            assert instrument.default_registry() is inner
            instrument.install_session(prev)
            assert instrument.current_session() is outer
        finally:
            instrument.install_session(prev0)

    def test_install_none_clears_session(self):
        prev = instrument.install_session(MetricsRegistry())
        try:
            instrument.install_session(None)
            assert instrument.current_session() is None
            assert instrument.default_registry() is NULL_REGISTRY
        finally:
            instrument.install_session(prev)


class TestStateRoundTrip:
    """to_state/merge_state smoke coverage (deep properties live in
    tests/obs/test_merge_properties.py)."""

    def test_to_state_orders_names(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        reg.histogram("m").observe(1.0)
        state = reg.to_state()
        assert list(state["counters"]) == ["a", "z"]
        assert state["histograms"]["m"]["count"] == 1

    def test_from_state_rebuilds_equivalent_registry(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe_many([1.0, 2.0, 3.0])
        clone = MetricsRegistry.from_state(reg.to_state())
        assert clone.to_state() == reg.to_state()
        assert clone.histogram("h").quantile(0.5) == 2.0

    def test_registry_tracer_slot_defaults_to_none(self):
        assert MetricsRegistry().tracer is None
        assert NULL_REGISTRY.tracer is None
