"""Tests for the design-space exploration driver."""

import numpy as np
import pytest

from repro.core.design import Direction, Metrics, Objective
from repro.core.dse import (
    ContinuousParam,
    DiscreteParam,
    Explorer,
    grid_configs,
    local_search,
    random_configs,
)


def quadratic_evaluator(config):
    # Minimum energy at x = 2; throughput rises with x.
    x = config["x"]
    return Metrics(
        {
            "energy_j": (x - 2.0) ** 2 + 1.0,
            "throughput_ops": x,
            "power_w": 1.0,
        }
    )


class TestGridConfigs:
    def test_cartesian_product(self):
        params = [
            DiscreteParam("a", (1, 2)),
            DiscreteParam("b", ("x", "y", "z")),
        ]
        configs = list(grid_configs(params))
        assert len(configs) == 6
        assert {"a": 1, "b": "z"} in configs

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            list(grid_configs([DiscreteParam("a", (1,)), DiscreteParam("a", (2,))]))

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            DiscreteParam("a", ())


class TestRandomConfigs:
    def test_count_and_bounds(self):
        params = [ContinuousParam("x", 0.0, 4.0)]
        configs = random_configs(params, 25, rng=0)
        assert len(configs) == 25
        assert all(0.0 <= c["x"] <= 4.0 for c in configs)

    def test_log_scale_spans_decades(self):
        params = [ContinuousParam("v", 1e3, 1e9, log_scale=True)]
        configs = random_configs(params, 200, rng=0)
        values = np.array([c["v"] for c in configs])
        # Roughly uniform in log space: each decade populated.
        decades = np.floor(np.log10(values)).astype(int)
        assert set(decades) >= {3, 4, 5, 6, 7, 8}

    def test_log_scale_validation(self):
        with pytest.raises(ValueError):
            ContinuousParam("v", 0.0, 1.0, log_scale=True)
        with pytest.raises(ValueError):
            ContinuousParam("v", 2.0, 1.0)

    def test_deterministic_given_seed(self):
        params = [ContinuousParam("x", 0.0, 1.0)]
        a = random_configs(params, 10, rng=5)
        b = random_configs(params, 10, rng=5)
        assert a == b


class TestExplorer:
    def test_grid_sweep_evaluates_all(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (0.0, 1.0, 2.0, 3.0))])
        assert len(result.points) == 4
        assert not result.failures
        best = result.best("energy_j", maximize=False)
        assert best.config["x"] == 2.0

    def test_efficiency_auto_derived(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (4.0,))])
        assert result.points[0].metric(
            "efficiency_ops_per_watt"
        ) == pytest.approx(4.0)

    def test_failures_captured_not_raised(self):
        def sometimes_fails(config):
            if config["x"] < 0:
                raise ValueError("infeasible corner")
            return quadratic_evaluator(config)

        explorer = Explorer(sometimes_fails)
        result = explorer.grid([DiscreteParam("x", (-1.0, 1.0))])
        assert len(result.points) == 1
        assert len(result.failures) == 1
        assert "infeasible" in result.failures[0][1]

    def test_non_metrics_return_raises(self):
        explorer = Explorer(lambda cfg: {"oops": 1})
        with pytest.raises(TypeError):
            explorer.grid([DiscreteParam("x", (1.0,))])

    def test_front_and_columns(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (0.0, 2.0, 4.0))])
        front = result.front(
            [
                Objective("energy_j", Direction.MINIMIZE),
                Objective("throughput_ops", Direction.MAXIMIZE),
            ]
        )
        assert 1 <= len(front) <= 3
        col = result.column("throughput_ops")
        np.testing.assert_allclose(col, [0.0, 2.0, 4.0])
        assert result.config_column("x") == [0.0, 2.0, 4.0]

    def test_label_key(self):
        explorer = Explorer(quadratic_evaluator, label_key="x")
        result = explorer.grid([DiscreteParam("x", (7.0,))])
        assert result.points[0].label == "7.0"

    def test_best_on_empty_raises(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.run([])
        with pytest.raises(ValueError):
            result.best("energy_j")


class TestDeterminism:
    """Satellite coverage: same seed => identical outputs, bit for bit."""

    def test_random_configs_deterministic_across_calls(self):
        params = [
            ContinuousParam("x", 0.0, 4.0),
            ContinuousParam("v", 1e2, 1e6, log_scale=True),
        ]
        a = random_configs(params, 32, rng=1234)
        b = random_configs(params, 32, rng=1234)
        assert a == b  # exact float equality, not approx

    def test_random_configs_seed_changes_output(self):
        params = [ContinuousParam("x", 0.0, 4.0)]
        assert random_configs(params, 16, rng=1) != random_configs(params, 16, rng=2)

    def test_random_configs_deterministic_with_seed_sequence(self):
        params = [ContinuousParam("x", 0.0, 1.0)]
        a = random_configs(params, 8, rng=np.random.SeedSequence(7))
        b = random_configs(params, 8, rng=np.random.SeedSequence(7))
        assert a == b

    def test_local_search_deterministic_given_seed(self):
        params = [ContinuousParam("x", -10.0, 10.0), ContinuousParam("y", 0.0, 5.0)]

        def evaluate(config):
            return Metrics(
                {"energy_j": (config["x"] - 2.0) ** 2 + config["y"] ** 2 + 1.0}
            )

        kwargs = dict(
            start={"x": -8.0, "y": 4.0},
            params=params,
            metric="energy_j",
            maximize=False,
            iterations=150,
        )
        a = local_search(evaluate, rng=42, **kwargs)
        b = local_search(evaluate, rng=42, **kwargs)
        assert a.config == b.config  # identical trajectory, identical winner
        assert a.metrics.values == b.metrics.values

    def test_local_search_seed_changes_trajectory(self):
        params = [ContinuousParam("x", -10.0, 10.0)]
        kwargs = dict(
            start={"x": -8.0},
            params=params,
            metric="energy_j",
            maximize=False,
            iterations=25,
        )
        a = local_search(quadratic_evaluator, rng=1, **kwargs)
        b = local_search(quadratic_evaluator, rng=2, **kwargs)
        assert a.config != b.config


class TestExplorerEngine:
    """Explorer sweeps routed through repro.exec."""

    def test_engine_sweep_matches_serial(self):
        from repro.exec import SerialRunner

        params = [DiscreteParam("x", (0.0, 1.0, 2.0, 3.0))]
        explorer = Explorer(quadratic_evaluator)
        serial = explorer.grid(params)
        engined = explorer.grid(params, runner=SerialRunner())
        assert len(engined.points) == len(serial.points)
        for a, b in zip(serial.points, engined.points):
            assert a.config == b.config
            assert a.metrics.values == pytest.approx(b.metrics.values)
        assert engined.report is not None and engined.report.ok

    def test_engine_sweep_derives_efficiency(self):
        from repro.exec import SerialRunner

        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid(
            [DiscreteParam("x", (4.0,))], runner=SerialRunner()
        )
        assert result.points[0].metric("efficiency_ops_per_watt") == pytest.approx(4.0)

    def test_engine_sweep_contains_any_exception(self):
        from repro.exec import SerialRunner

        def fragile(config):
            if config["x"] > 1:
                raise OSError("engine must contain non-Value errors too")
            return quadratic_evaluator(config)

        explorer = Explorer(fragile)
        result = explorer.run(
            [{"x": 0.0}, {"x": 2.0}], runner=SerialRunner()
        )
        assert len(result.points) == 1
        assert len(result.failures) == 1
        assert "OSError" in result.failures[0][1]

    def test_engine_sweep_with_cache(self, tmp_path):
        from repro.exec import ResultCache, SerialRunner

        params = [DiscreteParam("x", (0.0, 1.0, 2.0))]
        explorer = Explorer(quadratic_evaluator)
        explorer.grid(params, runner=SerialRunner(), cache=ResultCache(tmp_path))
        warm = explorer.grid(
            params, runner=SerialRunner(), cache=ResultCache(tmp_path)
        )
        assert warm.report.cache_hits() == 3
        best = warm.best("energy_j", maximize=False)
        assert best.config["x"] == 2.0

    def test_cache_only_implies_engine_path(self, tmp_path):
        from repro.exec import ResultCache

        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid(
            [DiscreteParam("x", (1.0,))], cache=ResultCache(tmp_path)
        )
        assert result.report is not None


class TestLocalSearch:
    def test_finds_quadratic_minimum(self):
        params = [ContinuousParam("x", -10.0, 10.0)]
        point = local_search(
            quadratic_evaluator,
            start={"x": -8.0},
            params=params,
            metric="energy_j",
            maximize=False,
            iterations=400,
            rng=0,
        )
        assert point.metric("energy_j") < 1.2  # near global min of 1.0
        assert abs(point.config["x"] - 2.0) < 0.5

    def test_clamps_to_bounds(self):
        params = [ContinuousParam("x", 0.0, 1.0)]
        point = local_search(
            lambda c: Metrics({"m": c["x"]}),
            start={"x": 0.5},
            params=params,
            metric="m",
            maximize=True,
            iterations=200,
            rng=1,
        )
        assert 0.0 <= point.config["x"] <= 1.0
        assert point.config["x"] > 0.9

    def test_unknown_start_key_rejected(self):
        with pytest.raises(KeyError):
            local_search(
                quadratic_evaluator,
                start={"y": 0.0},
                params=[ContinuousParam("x", 0.0, 1.0)],
                metric="energy_j",
            )
