"""Tests for the design-space exploration driver."""

import numpy as np
import pytest

from repro.core.design import Direction, Metrics, Objective
from repro.core.dse import (
    ContinuousParam,
    DiscreteParam,
    Explorer,
    grid_configs,
    local_search,
    random_configs,
)


def quadratic_evaluator(config):
    # Minimum energy at x = 2; throughput rises with x.
    x = config["x"]
    return Metrics(
        {
            "energy_j": (x - 2.0) ** 2 + 1.0,
            "throughput_ops": x,
            "power_w": 1.0,
        }
    )


class TestGridConfigs:
    def test_cartesian_product(self):
        params = [
            DiscreteParam("a", (1, 2)),
            DiscreteParam("b", ("x", "y", "z")),
        ]
        configs = list(grid_configs(params))
        assert len(configs) == 6
        assert {"a": 1, "b": "z"} in configs

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            list(grid_configs([DiscreteParam("a", (1,)), DiscreteParam("a", (2,))]))

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            DiscreteParam("a", ())


class TestRandomConfigs:
    def test_count_and_bounds(self):
        params = [ContinuousParam("x", 0.0, 4.0)]
        configs = random_configs(params, 25, rng=0)
        assert len(configs) == 25
        assert all(0.0 <= c["x"] <= 4.0 for c in configs)

    def test_log_scale_spans_decades(self):
        params = [ContinuousParam("v", 1e3, 1e9, log_scale=True)]
        configs = random_configs(params, 200, rng=0)
        values = np.array([c["v"] for c in configs])
        # Roughly uniform in log space: each decade populated.
        decades = np.floor(np.log10(values)).astype(int)
        assert set(decades) >= {3, 4, 5, 6, 7, 8}

    def test_log_scale_validation(self):
        with pytest.raises(ValueError):
            ContinuousParam("v", 0.0, 1.0, log_scale=True)
        with pytest.raises(ValueError):
            ContinuousParam("v", 2.0, 1.0)

    def test_deterministic_given_seed(self):
        params = [ContinuousParam("x", 0.0, 1.0)]
        a = random_configs(params, 10, rng=5)
        b = random_configs(params, 10, rng=5)
        assert a == b


class TestExplorer:
    def test_grid_sweep_evaluates_all(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (0.0, 1.0, 2.0, 3.0))])
        assert len(result.points) == 4
        assert not result.failures
        best = result.best("energy_j", maximize=False)
        assert best.config["x"] == 2.0

    def test_efficiency_auto_derived(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (4.0,))])
        assert result.points[0].metric(
            "efficiency_ops_per_watt"
        ) == pytest.approx(4.0)

    def test_failures_captured_not_raised(self):
        def sometimes_fails(config):
            if config["x"] < 0:
                raise ValueError("infeasible corner")
            return quadratic_evaluator(config)

        explorer = Explorer(sometimes_fails)
        result = explorer.grid([DiscreteParam("x", (-1.0, 1.0))])
        assert len(result.points) == 1
        assert len(result.failures) == 1
        assert "infeasible" in result.failures[0][1]

    def test_non_metrics_return_raises(self):
        explorer = Explorer(lambda cfg: {"oops": 1})
        with pytest.raises(TypeError):
            explorer.grid([DiscreteParam("x", (1.0,))])

    def test_front_and_columns(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.grid([DiscreteParam("x", (0.0, 2.0, 4.0))])
        front = result.front(
            [
                Objective("energy_j", Direction.MINIMIZE),
                Objective("throughput_ops", Direction.MAXIMIZE),
            ]
        )
        assert 1 <= len(front) <= 3
        col = result.column("throughput_ops")
        np.testing.assert_allclose(col, [0.0, 2.0, 4.0])
        assert result.config_column("x") == [0.0, 2.0, 4.0]

    def test_label_key(self):
        explorer = Explorer(quadratic_evaluator, label_key="x")
        result = explorer.grid([DiscreteParam("x", (7.0,))])
        assert result.points[0].label == "7.0"

    def test_best_on_empty_raises(self):
        explorer = Explorer(quadratic_evaluator)
        result = explorer.run([])
        with pytest.raises(ValueError):
            result.best("energy_j")


class TestLocalSearch:
    def test_finds_quadratic_minimum(self):
        params = [ContinuousParam("x", -10.0, 10.0)]
        point = local_search(
            quadratic_evaluator,
            start={"x": -8.0},
            params=params,
            metric="energy_j",
            maximize=False,
            iterations=400,
            rng=0,
        )
        assert point.metric("energy_j") < 1.2  # near global min of 1.0
        assert abs(point.config["x"] - 2.0) < 0.5

    def test_clamps_to_bounds(self):
        params = [ContinuousParam("x", 0.0, 1.0)]
        point = local_search(
            lambda c: Metrics({"m": c["x"]}),
            start={"x": 0.5},
            params=params,
            metric="m",
            maximize=True,
            iterations=200,
            rng=1,
        )
        assert 0.0 <= point.config["x"] <= 1.0
        assert point.config["x"] > 0.9

    def test_unknown_start_key_rejected(self):
        with pytest.raises(KeyError):
            local_search(
                quadratic_evaluator,
                start={"y": 0.0},
                params=[ContinuousParam("x", 0.0, 1.0)],
                metric="energy_j",
            )
