"""Tests for design points and Pareto machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.design import (
    DesignPoint,
    Direction,
    Metrics,
    Objective,
    best_under_budget,
    dominated_fraction,
    knee_point,
    pareto_front,
    pareto_mask,
)

MIN_E = Objective("energy_j", Direction.MINIMIZE)
MAX_T = Objective("throughput_ops", Direction.MAXIMIZE)


def dp(energy, throughput, **config):
    return DesignPoint(
        config=config or {"e": energy},
        metrics=Metrics({"energy_j": energy, "throughput_ops": throughput}),
    )


class TestMetrics:
    def test_mapping_protocol(self):
        m = Metrics()
        m["power_w"] = 3
        assert m["power_w"] == 3.0
        assert "power_w" in m
        assert m.get("missing", -1.0) == -1.0

    def test_derive_efficiency(self):
        m = Metrics({"throughput_ops": 1e12, "power_w": 10.0})
        m.derive_efficiency()
        assert m["efficiency_ops_per_watt"] == pytest.approx(1e11)

    def test_derive_efficiency_zero_power(self):
        m = Metrics({"throughput_ops": 1e12, "power_w": 0.0})
        m.derive_efficiency()
        assert m["efficiency_ops_per_watt"] == 0.0

    def test_unevaluated_point_raises(self):
        p = DesignPoint(config={})
        assert not p.is_evaluated()
        with pytest.raises(ValueError):
            p.metric("energy_j")


class TestParetoFront:
    def test_dominated_point_removed(self):
        worse = dp(energy=2.0, throughput=1.0)
        better = dp(energy=1.0, throughput=2.0)
        front = pareto_front([worse, better], [MIN_E, MAX_T])
        assert front == [better]

    def test_tradeoff_points_all_kept(self):
        pts = [dp(energy=float(i), throughput=float(i)) for i in range(1, 6)]
        front = pareto_front(pts, [MIN_E, MAX_T])
        assert len(front) == 5

    def test_duplicate_points_all_kept(self):
        a = dp(1.0, 1.0)
        b = dp(1.0, 1.0)
        front = pareto_front([a, b], [MIN_E, MAX_T])
        assert len(front) == 2

    def test_empty_and_validation(self):
        assert pareto_front([], [MIN_E]) == []
        with pytest.raises(ValueError):
            pareto_front([dp(1, 1)], [])

    def test_single_objective_collapses_to_min(self):
        pts = [dp(e, 0.0) for e in (3.0, 1.0, 2.0)]
        front = pareto_front(pts, [MIN_E])
        assert [p.metric("energy_j") for p in front] == [1.0]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_front_is_mutually_nondominated(self, raw):
        pts = [dp(e, t) for e, t in raw]
        front = pareto_front(pts, [MIN_E, MAX_T])
        assert front  # at least one survivor
        for a in front:
            for b in front:
                strictly_better = (
                    b.metric("energy_j") <= a.metric("energy_j")
                    and b.metric("throughput_ops") >= a.metric("throughput_ops")
                    and (
                        b.metric("energy_j") < a.metric("energy_j")
                        or b.metric("throughput_ops") > a.metric("throughput_ops")
                    )
                )
                assert not strictly_better

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_every_point_dominated_by_front_member_or_on_front(
        self, raw
    ):
        pts = [dp(e, t) for e, t in raw]
        front = pareto_front(pts, [MIN_E, MAX_T])
        for p in pts:
            covered = any(
                f.metric("energy_j") <= p.metric("energy_j")
                and f.metric("throughput_ops") >= p.metric("throughput_ops")
                for f in front
            ) or p in front
            assert covered


class TestParetoMask:
    def test_mask_on_matrix(self):
        m = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        mask = pareto_mask(m)
        assert mask.tolist() == [True, False, True]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pareto_mask(np.zeros(3))


class TestKneeAndHelpers:
    def test_knee_prefers_balanced(self):
        extreme_a = dp(energy=0.0, throughput=0.0)
        extreme_b = dp(energy=10.0, throughput=10.0)
        balanced = dp(energy=1.0, throughput=9.0)
        knee = knee_point([extreme_a, extreme_b, balanced], [MIN_E, MAX_T])
        assert knee is balanced

    def test_knee_empty_raises(self):
        with pytest.raises(ValueError):
            knee_point([], [MIN_E])

    def test_dominated_fraction(self):
        pts = [dp(1.0, 2.0), dp(2.0, 1.0)]  # second dominated
        assert dominated_fraction(pts, [MIN_E, MAX_T]) == pytest.approx(0.5)
        assert dominated_fraction([], [MIN_E]) == 0.0

    def test_best_under_budget(self):
        pts = [
            dp(energy=1.0, throughput=10.0),
            dp(energy=5.0, throughput=100.0),
            dp(energy=20.0, throughput=1000.0),
        ]
        best = best_under_budget(
            pts, maximize="throughput_ops", budgets={"energy_j": 6.0}
        )
        assert best is pts[1]

    def test_best_under_budget_infeasible(self):
        pts = [dp(energy=5.0, throughput=1.0)]
        assert (
            best_under_budget(pts, "throughput_ops", {"energy_j": 1.0}) is None
        )
