"""Tests for the hierarchical energy ledger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.core.energy import (
    EnergyCost,
    EnergyLedger,
    combine_ledgers,
    energy_delay_product,
    energy_delay_squared,
)


class TestCharging:
    def test_total_accumulates(self):
        led = EnergyLedger()
        led.charge("a", 1.0)
        led.charge("a", 2.0)
        led.charge("b", 4.0)
        assert led.total() == pytest.approx(7.0)
        assert led.total("a") == pytest.approx(3.0)

    def test_prefix_matching_is_component_wise(self):
        led = EnergyLedger()
        led.charge("mem.dram", 1.0)
        led.charge("memx", 10.0)
        # "mem" must not match "memx".
        assert led.total("mem") == pytest.approx(1.0)

    def test_validation(self):
        led = EnergyLedger()
        with pytest.raises(ValueError):
            led.charge("a", -1.0)
        with pytest.raises(ValueError):
            led.charge("a", 1.0, ops=-1)
        with pytest.raises(ValueError):
            led.charge("", 1.0)

    def test_ops_tracking(self):
        led = EnergyLedger()
        led.charge("compute.fma", 1e-12, ops=10)
        led.charge("compute.add", 1e-12, ops=5)
        assert led.ops("compute") == 15
        assert led.ops() == 15


class TestBreakdown:
    def test_depth_one_groups_top_level(self):
        led = EnergyLedger()
        led.charge("memory.dram.read", 1.0)
        led.charge("memory.cache.l1", 2.0)
        led.charge("compute.fma", 3.0)
        bd = led.breakdown(1)
        assert bd == {"memory": 3.0, "compute": 3.0}

    def test_depth_two(self):
        led = EnergyLedger()
        led.charge("memory.dram.read", 1.0)
        led.charge("memory.dram.write", 2.0)
        bd = led.breakdown(2)
        assert bd == {"memory.dram": 3.0}

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            EnergyLedger().breakdown(0)

    def test_report_mentions_total(self):
        led = EnergyLedger()
        led.charge("compute", 1.0)
        assert "TOTAL" in led.report()


class TestMergeAndCombine:
    def test_merge_with_prefix(self):
        sub = EnergyLedger()
        sub.charge("link", 2.0, ops=3)
        top = EnergyLedger()
        top.merge(sub, prefix="noc")
        assert top.total("noc.link") == pytest.approx(2.0)
        assert top.ops("noc") == 3

    def test_combine_ledgers(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.charge("x", 1.0)
        b.charge("y", 2.0)
        merged = combine_ledgers({"compute": a, "memory": b})
        assert merged.total() == pytest.approx(3.0)
        assert merged.total("memory.y") == pytest.approx(2.0)

    def test_reset(self):
        led = EnergyLedger()
        led.charge("a", 1.0, ops=1)
        led.reset()
        assert led.total() == 0.0
        assert led.ops() == 0
        assert led.accounts() == []


class TestEfficiency:
    def test_ops_per_watt(self):
        led = EnergyLedger()
        led.charge("compute", 1e-9, ops=100)
        assert led.efficiency_ops_per_watt() == pytest.approx(1e11)
        assert led.meets_paper_target()

    def test_below_target(self):
        led = EnergyLedger()
        led.charge("compute", 1.0, ops=int(units.GIGA))
        assert not led.meets_paper_target()

    def test_zero_energy_edge_cases(self):
        led = EnergyLedger()
        assert led.efficiency_ops_per_watt() == 0.0
        led.charge("free", 0.0, ops=5)
        assert led.efficiency_ops_per_watt() == float("inf")

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a.x", "a.y", "b.z"]),
                st.floats(min_value=0, max_value=1e3),
            ),
            max_size=30,
        )
    )
    def test_property_total_equals_sum_of_breakdown(self, charges):
        led = EnergyLedger()
        for account, energy in charges:
            led.charge(account, energy)
        assert led.total() == pytest.approx(
            sum(led.breakdown(1).values()), abs=1e-9
        )
        assert led.total() == pytest.approx(
            led.total("a") + led.total("b"), abs=1e-9
        )


class TestEnergyCost:
    def test_total_energy(self):
        cost = EnergyCost("core", per_event_j=2e-12, leakage_w=1e-3)
        assert cost.total_energy(1000, 2.0) == pytest.approx(
            2e-9 + 2e-3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyCost("bad", per_event_j=-1.0)
        cost = EnergyCost("core", per_event_j=1.0)
        with pytest.raises(ValueError):
            cost.dynamic_energy(-1)
        with pytest.raises(ValueError):
            cost.idle_energy(-1.0)


class TestFusedMetrics:
    def test_edp_and_ed2p(self):
        assert energy_delay_product(2.0, 3.0) == pytest.approx(6.0)
        assert energy_delay_squared(2.0, 3.0) == pytest.approx(18.0)
        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 1.0)
        with pytest.raises(ValueError):
            energy_delay_squared(1.0, -1.0)
