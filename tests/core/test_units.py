"""Unit/constant sanity for :mod:`repro.core.units`."""

import math

import pytest

from repro.core import units


class TestPrefixes:
    def test_prefix_ladder_is_consistent(self):
        assert units.KILO * units.MILLI == pytest.approx(1.0)
        assert units.GIGA == pytest.approx(units.MEGA * units.KILO)
        assert units.TERA / units.GIGA == pytest.approx(units.KILO)
        assert units.EXA == pytest.approx(1e18)

    def test_binary_prefixes(self):
        assert units.MIB == units.KIB**2
        assert units.GIB == 2**30


class TestPaperTargets:
    def test_all_platform_targets_reduce_to_100_gops_per_watt(self):
        # Section 2.2: exa-op@10MW == peta-op@10kW == tera-op@10W ==
        # giga-op@10mW == 1e11 ops/s/W.
        for cls, power in units.PAPER_POWER_ENVELOPES.items():
            ops = units.PAPER_THROUGHPUT_TARGETS[cls]
            assert ops / power == pytest.approx(
                units.PAPER_TARGET_OPS_PER_WATT
            ), cls

    def test_target_is_10x_above_2012_mobile(self):
        ratio = (
            units.PAPER_TARGET_OPS_PER_WATT
            / units.PAPER_CIRCA_2012_MOBILE_OPS_PER_WATT
        )
        assert ratio == pytest.approx(10.0)

    def test_five_nines_downtime_is_about_five_minutes(self):
        downtime = units.downtime_seconds_per_year(units.FIVE_NINES)
        assert 300 <= downtime <= 320  # "all but five minutes per year"


class TestConverters:
    def test_db_round_trip(self):
        for ratio in (0.5, 1.0, 2.0, 100.0):
            assert units.from_db(units.db(ratio)) == pytest.approx(ratio)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.db(0.0)
        with pytest.raises(ValueError):
            units.db(-3.0)

    def test_ops_per_watt_inversion(self):
        assert units.joules_per_op(1e11) == pytest.approx(1e-11)
        assert units.ops_per_watt(1e-11) == pytest.approx(1e11)
        with pytest.raises(ValueError):
            units.joules_per_op(0.0)
        with pytest.raises(ValueError):
            units.ops_per_watt(-1.0)

    def test_availability_round_trip(self):
        a = 0.999
        down = units.downtime_seconds_per_year(a)
        assert units.availability_from_downtime(down) == pytest.approx(a)

    def test_availability_bounds(self):
        with pytest.raises(ValueError):
            units.downtime_seconds_per_year(1.5)
        with pytest.raises(ValueError):
            units.availability_from_downtime(-1.0)
        # Huge downtime clamps at zero availability, not negative.
        assert units.availability_from_downtime(1e12) == 0.0

    def test_thermal_voltage_magnitude(self):
        # kT/q at room temperature is ~25.85 mV.
        assert units.THERMAL_VOLTAGE_300K == pytest.approx(0.02585, rel=1e-3)


class TestSiFormat:
    def test_selects_correct_prefix(self):
        assert units.si_format(3.2e9, "op/s") == "3.2 Gop/s"
        assert units.si_format(5e-12, "J") == "5 pJ"
        assert units.si_format(10e-3, "W") == "10 mW"

    def test_handles_zero_and_nonfinite(self):
        assert units.si_format(0.0, "J") == "0 J"
        assert "inf" in units.si_format(math.inf, "J")

    def test_handles_tiny_values(self):
        out = units.si_format(1e-20, "J")
        assert "a" in out  # falls through to atto
