"""Kernel fast-path layer (PR8): macro batching, trace-JIT, guards.

The load-bearing property throughout is *observational equivalence*:
for any workload, the executed stream (order, times, payloads) and the
final :class:`~repro.core.events.SimStats` must be byte-identical with
fast paths ``off``, ``auto``, and ``on``.  Unit tests pin the
individual mechanisms (mode resolution, batch commit, partial consume,
hazard aborts, trace hotness, observer deopt, snapshot/restore
invalidation); the hypothesis test at the bottom drives randomized
guard-abort interleavings through all three modes at once.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.events import Simulator
from repro.core.instrument import MetricsRegistry
from repro.core.macro import MACRO_ATTR, MacroRun, as_macro


def _recorded_pair(log):
    """A scalar handler plus an exact macro twin, both appending to log."""

    def scalar(sim, payload):
        log.append((sim.now, payload))

    def batch(sim, run):
        for t, p in run:
            log.append((t, p))

    as_macro(scalar, batch)
    return scalar


def _train(sim, cb, n, start=0.0, step=1.0):
    times = [start + i * step for i in range(n)]
    sim.schedule_batch(times, cb, payloads=range(n))
    return [(start + i * step, i) for i in range(n)]


# -- mode resolution ---------------------------------------------------------


def test_resolve_mode_default_and_env(monkeypatch):
    monkeypatch.delenv(fastpath.ENV_VAR, raising=False)
    assert fastpath.resolve_mode() == "auto"
    monkeypatch.setenv(fastpath.ENV_VAR, "OFF")
    assert fastpath.resolve_mode() == "off"
    # An explicit argument beats the environment.
    assert fastpath.resolve_mode("on") == "on"
    with pytest.raises(ValueError, match="fastpath mode"):
        fastpath.resolve_mode("sometimes")
    monkeypatch.setenv(fastpath.ENV_VAR, "bogus")
    with pytest.raises(ValueError, match="fastpath mode"):
        Simulator()


def test_simulator_mode_property_and_set(monkeypatch):
    monkeypatch.delenv(fastpath.ENV_VAR, raising=False)
    sim = Simulator()
    assert sim.fastpath_mode == "auto"
    sim.set_fastpath("off")
    assert sim.fastpath_mode == "off"
    assert Simulator(fastpath="on").fastpath_mode == "on"


def test_as_macro_attaches_twin():
    log = []
    cb = _recorded_pair(log)
    assert getattr(cb, MACRO_ATTR, None) is not None


# -- macro batching ----------------------------------------------------------


def test_macro_batch_executes_whole_train():
    log = []
    cb = _recorded_pair(log)
    sim = Simulator(fastpath="auto")
    expected = _train(sim, cb, 100)
    stats = sim.run()
    assert log == expected
    assert stats.events_executed == 100
    assert sim.now == expected[-1][0]
    fps = sim.fastpath_stats
    assert fps.batches >= 1
    assert fps.batched_events == 100


def test_macro_matches_off_mode_stream():
    logs = {}
    for mode in ("off", "auto", "on"):
        log = logs[mode] = []
        cb = _recorded_pair(log)
        sim = Simulator(fastpath=mode)
        _train(sim, cb, 64)
        sim.run()
    assert logs["off"] == logs["auto"] == logs["on"]


def test_macro_partial_consume_counts_abort():
    log = []

    def scalar(sim, payload):
        log.append((sim.now, payload))

    def batch(sim, run):
        for k, (t, p) in enumerate(run):
            if k == 5:
                return 5
            log.append((t, p))
        return len(run)

    as_macro(scalar, batch)
    sim = Simulator(fastpath="auto")
    expected = _train(sim, scalar, 40)
    sim.run()
    assert log == expected
    fps = sim.fastpath_stats
    assert fps.aborts >= 1
    # The declined tail re-batches or drains generally; either way no
    # event is lost or duplicated (asserted by the log above).
    assert fps.batched_events < 40


def test_macro_decline_falls_back_to_scalar():
    log = []

    def scalar(sim, payload):
        log.append((sim.now, payload))

    def batch(sim, run):
        return 0  # always decline

    as_macro(scalar, batch)
    sim = Simulator(fastpath="auto")
    expected = _train(sim, scalar, 100)
    sim.run()
    assert log == expected
    assert sim.fastpath_stats.batches == 0


def test_macro_exception_is_atomic():
    log = []

    def scalar(sim, payload):
        log.append(payload)

    def batch(sim, run):
        raise RuntimeError("batch blew up before touching anything")

    as_macro(scalar, batch)
    sim = Simulator(fastpath="auto")
    _train(sim, scalar, 32)
    with pytest.raises(RuntimeError, match="blew up"):
        sim.run()
    # Atomic: the raising batch consumed nothing — no event executed,
    # every entry still pending, and a later off-mode drain runs them.
    assert log == []
    assert sim.stats.events_executed == 0
    assert len(sim) == 32
    sim.set_fastpath("off")
    sim.run()
    assert log == list(range(32))


def test_macro_contract_violation_is_loud():
    def scalar(sim, payload):
        pass

    def batch(sim, run):
        return len(run) + 7  # lies about consumption

    as_macro(scalar, batch)
    sim = Simulator(fastpath="auto")
    _train(sim, scalar, 32)
    with pytest.raises(RuntimeError, match="violates its contract"):
        sim.run()


def test_macrorun_view():
    lane = [(float(i), i, None, None, i * 10) for i in range(8)]
    run = MacroRun(lane, 2, 6)
    assert len(run) == 4
    assert run[0] == (2.0, 20)
    assert list(run) == [(float(i), i * 10) for i in range(2, 6)]
    assert run.times() == [2.0, 3.0, 4.0, 5.0]
    assert run.payloads() == [20, 30, 40, 50]


# -- trace-JIT ---------------------------------------------------------------


def test_trace_on_mode_specializes_immediately():
    log = []

    def scalar(sim, payload):  # no batch twin
        log.append((sim.now, payload))

    sim = Simulator(fastpath="on")
    expected = _train(sim, scalar, 100)
    sim.run()
    assert log == expected
    fps = sim.fastpath_stats
    assert fps.traces_installed == 1
    assert fps.batches >= 1
    assert fps.batched_events == 100


def test_trace_auto_mode_needs_heat():
    log = []

    def scalar(sim, payload):
        log.append(payload)

    sim = Simulator(fastpath="auto")
    # Two sightings warm the recorder, the third is hot.
    for _ in range(fastpath.TRACE_HOT_COUNT - 1):
        _train(sim, scalar, 64, start=sim.now)
        sim.run()
        assert sim.fastpath_stats.traces_installed == 0
    _train(sim, scalar, 64, start=sim.now)
    sim.run()
    assert sim.fastpath_stats.traces_installed == 1
    assert log == list(range(64)) * fastpath.TRACE_HOT_COUNT


def test_trace_auto_mode_long_run_is_hot_immediately():
    def scalar(sim, payload):
        pass

    sim = Simulator(fastpath="auto")
    _train(sim, scalar, fastpath.TRACE_HOT_RUN, step=0.01)
    sim.run()
    assert sim.fastpath_stats.traces_installed == 1


def test_trace_abort_on_cancellation():
    """A cancellation landing mid-trace aborts the specialized loop and
    the purge happens at general-path precision."""
    log = []
    tokens = {}

    def scalar(sim, payload):
        log.append(payload)
        if payload == 10:
            tokens[50].cancel()

    def build(mode):
        log.clear()
        tokens.clear()
        sim = Simulator(fastpath=mode)
        for i in range(100):
            tokens[i] = sim.schedule_at(float(i), scalar, i)
        return sim

    sim = build("on")
    stats = sim.run()
    assert 50 not in log
    assert log == [i for i in range(100) if i != 50]
    assert stats.events_cancelled == 1
    on_log = list(log)

    off_stats = build("off").run()
    assert log == on_log
    assert off_stats.events_cancelled == 1


def test_trace_abort_on_out_of_order_schedule():
    """A callback scheduling into the heap mid-trace aborts the loop so
    the new event interleaves at its exact (time, seq) slot."""
    logs = {}
    for mode in ("off", "on"):
        log = logs[mode] = []

        def scalar(sim, payload, _log=log):
            _log.append((sim.now, payload))
            if payload == 20:
                # Lands between the pre-scheduled entries at 30.0/31.0.
                sim.schedule_at(30.5, scalar, 999)

        sim = Simulator(fastpath=mode)
        _train(sim, scalar, 64)
        sim.run()
    assert logs["off"] == logs["on"]
    i = logs["on"].index((30.5, 999))
    assert logs["on"][i - 1] == (30.0, 30)
    assert logs["on"][i + 1] == (31.0, 31)


# -- observer-arrival deopt (the PR8 satellite regression tests) -------------


def test_probe_added_mid_trace_sees_every_subsequent_event():
    seen = []

    def probe(sim, event):
        seen.append(event.payload)

    def scalar(sim, payload):
        if payload == 10:
            sim.add_probe(probe)

    sim = Simulator(fastpath="on")
    _train(sim, scalar, 100)
    sim.run()
    # The active trace flushed at the installing event; everything after
    # it ran on the general path and was probed exactly once.
    assert seen == list(range(11, 100))
    assert sim.fastpath_stats.deopts >= 1


def test_tracer_attached_mid_run_deoptimizes():
    from repro.obs.spans import Tracer, attach_tracer

    def scalar(sim, payload):
        if payload == 10:
            attach_tracer(sim, Tracer())

    sim = Simulator(fastpath="on", metrics=MetricsRegistry())
    _train(sim, scalar, 100)
    sim.run()
    fps = sim.fastpath_stats
    # The trace committed at most the prefix through the attaching
    # event; every later event stayed on the (traceable) general path.
    assert fps.batched_events <= 11
    assert fps.deopts >= 1


def test_fault_injector_arm_blocks_batching():
    from repro.crosscut.faults import KernelFaultInjector

    class _Target:
        def inject_fault(self, sim, rng):
            pass

    injector = KernelFaultInjector(mean_interval=1e9, rng=0)
    injector.register(_Target())

    def scalar(sim, payload):
        if payload == 10:
            injector.arm(sim, horizon=1.0)

    sim = Simulator(fastpath="on")
    _train(sim, scalar, 100)
    sim.run()
    fps = sim.fastpath_stats
    assert fps.batched_events <= 11
    assert fps.deopts >= 1

    # Disarm unblocks: a fresh train on the same simulator batches again.
    injector.disarm()
    before = fps.batched_events
    _train(sim, scalar, 100, start=sim.now + 1.0)
    sim.run()
    assert fps.batched_events > before


def test_fastpath_block_is_reentrant():
    log = []
    cb = _recorded_pair(log)
    sim = Simulator(fastpath="auto")
    sim.fastpath_block()
    sim.fastpath_block()
    sim.fastpath_unblock()
    expected = _train(sim, cb, 64)
    sim.run()  # still one blocker outstanding
    assert log == expected
    assert sim.fastpath_stats.batches == 0
    sim.fastpath_unblock()
    log.clear()
    _train(sim, cb, 64, start=sim.now + 1.0)
    sim.run()
    assert sim.fastpath_stats.batches >= 1


def test_probed_run_never_batches():
    events = []
    log = []
    cb = _recorded_pair(log)
    sim = Simulator(fastpath="on")
    sim.add_probe(lambda s, e: events.append(e.payload))
    expected = _train(sim, cb, 64)
    sim.run()
    assert log == expected
    assert events == list(range(64))
    assert sim.fastpath_stats.batches == 0


# -- run(until=) and snapshot/restore ----------------------------------------


def test_until_horizon_batches_inclusively():
    log = []
    cb = _recorded_pair(log)
    sim = Simulator(fastpath="auto")
    expected = _train(sim, cb, 100)
    sim.run(until=49.0)
    # ``until`` is inclusive: the event at exactly 49.0 ran.
    assert log == expected[:50]
    assert sim.now == 49.0
    assert sim.fastpath_stats.batches >= 1
    sim.run()
    assert log == expected


def test_restore_invalidates_traces_and_replays():
    def scalar(sim, payload):
        log.append((sim.now, payload))

    for mode in ("auto", "on"):
        log = []
        sim = Simulator(fastpath=mode)
        sim.schedule_batch([float(i) for i in range(100)], scalar,
                           payloads=range(100))
        sim.run(until=30.0)
        snap = sim.snapshot()
        split = len(log)
        sim.run()
        full = list(log)

        sim.restore(snap)
        sim.run()
        assert log[len(full):] == full[split:]
        assert sim.stats.events_executed == 100


def test_schedule_batch_is_schedule_many():
    log = []
    cb = _recorded_pair(log)
    sim = Simulator(fastpath="off")
    n = sim.schedule_batch([0.0, 1.0, 2.0], cb, payloads="abc")
    assert n == 3
    assert len(sim) == 3
    sim.run()
    assert log == [(0.0, "a"), (1.0, "b"), (2.0, "c")]


# -- randomized guard-abort interleavings ------------------------------------

_MODES = ("off", "auto", "on")


@st.composite
def _programs(draw):
    """A workload: homogeneous segments + mid-run cancels/spawns/split."""
    segments = draw(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 48)),
            min_size=1,
            max_size=6,
        )
    )
    n = sum(length for _, length in segments)
    steps = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0]), min_size=n, max_size=n
        )
    )
    cancels = draw(
        st.dictionaries(
            st.integers(0, n - 1), st.integers(0, n - 1), max_size=4
        )
    )
    spawns = draw(
        st.dictionaries(
            st.integers(0, n - 1),
            st.sampled_from([0.0, 0.25, 1.5, 100.0]),
            max_size=4,
        )
    )
    split = draw(st.floats(0.0, float(n), allow_nan=False))
    return segments, steps, cancels, spawns, split


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_programs())
def test_fastpath_modes_are_observationally_identical(program):
    """Random guard-abort interleavings — cancellations, heterogeneous
    handler segments, mid-trace spawns into the heap, a mid-workload
    snapshot/restore replay — produce executed streams byte-identical
    across off/auto/on (the PR8 acceptance property)."""
    segments, steps, cancels, spawns, split = program

    def execute(mode):
        log = []
        tokens = {}
        sim = Simulator(fastpath=mode)

        def h0(s, i):
            log.append(("h0", s.now, i))
            target = cancels.get(i)
            if target is not None and target in tokens:
                tokens[target].cancel()

        def h1(s, i):
            log.append(("h1", s.now, i))
            delay = spawns.get(i)
            if delay is not None:
                s.schedule(delay, h2, 1000 + i, cancellable=False)

        def h2(s, i):
            log.append(("h2", s.now, i))

        handlers = (h0, h1, h2)
        t = 0.0
        idx = 0
        for hid, length in segments:
            for _ in range(length):
                tokens[idx] = sim.schedule_at(t, handlers[hid], idx)
                t += steps[idx]
                idx += 1

        sim.run(until=split)
        snap = sim.snapshot()
        cut = len(log)
        sim.run()
        full = list(log)
        stats = (
            sim.stats.events_executed,
            sim.stats.events_cancelled,
            sim.now,
        )
        sim.restore(snap)
        sim.run()
        tail = log[len(full):]
        assert tail == full[cut:], f"replay diverged in mode {mode}"
        return full, tail, stats

    reference = execute("off")
    for mode in ("auto", "on"):
        assert execute(mode) == reference, (
            f"mode {mode} diverged from the general path"
        )
