"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import PeriodicSource, Simulator


def record(log):
    def cb(sim, payload):
        log.append((sim.now, payload))

    return cb


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, record(log), "c")
        sim.schedule(1.0, record(log), "a")
        sim.schedule(2.0, record(log), "b")
        sim.run()
        assert [p for _, p in log] == ["a", "b", "c"]
        assert [t for t, _ in log] == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abcd":
            sim.schedule(5.0, record(log), name)
        sim.run()
        assert [p for _, p in log] == list("abcd")

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_property_execution_times_nondecreasing(self, delays):
        sim = Simulator()
        log = []
        for d in delays:
            sim.schedule(d, record(log), None)
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestScheduling:
    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, record([]))

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        log = []
        sim.schedule_at(12.5, record(log), "x")
        with pytest.raises(ValueError):
            sim.schedule_at(9.0, record(log))
        sim.run()
        assert log == [(12.5, "x")]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(s, depth):
            log.append(s.now)
            if depth > 0:
                s.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert log == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        token = sim.schedule(1.0, record(log), "dead")
        sim.schedule(2.0, record(log), "live")
        token.cancel()
        sim.run()
        assert [p for _, p in log] == ["live"]
        assert sim.stats.events_cancelled == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        token = sim.schedule(1.0, record([]))
        sim.schedule(2.0, record([]))
        token.cancel()
        assert sim.peek_time() == 2.0


class TestRunControl:
    def test_until_horizon_inclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, record(log), "in")
        sim.schedule(2.0, record(log), "at")
        sim.schedule(3.0, record(log), "beyond")
        sim.run(until=2.0)
        assert [p for _, p in log] == ["in", "at"]
        assert sim.now == 2.0
        sim.run()  # resumes
        assert [p for _, p in log] == ["in", "at", "beyond"]

    def test_max_events_budget(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i), record(log), i)
        sim.run(max_events=4)
        assert len(log) == 4

    def test_stats_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), record([]))
        stats = sim.run()
        assert stats.events_executed == 5
        assert stats.end_time == 4.0

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested(s, _):
            with pytest.raises(RuntimeError):
                s.run()

        sim.schedule(0.0, nested)
        sim.run()

    def test_len_counts_pending(self):
        sim = Simulator()
        sim.schedule(1.0, record([]))
        sim.schedule(2.0, record([]))
        assert len(sim) == 2


class TestPeriodicSource:
    def test_fires_at_period(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(period=2.0, callback=record(log), payload="tick")
        src.start(sim)
        sim.run(until=7.0)
        assert [t for t, _ in log] == [0.0, 2.0, 4.0, 6.0]
        assert src.fires == 4

    def test_stop_after(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(
            period=1.0, callback=record(log), stop_after=2.5
        )
        src.start(sim)
        sim.run(until=100.0)
        assert [t for t, _ in log] == [0.0, 1.0, 2.0]

    def test_bad_period(self):
        sim = Simulator()
        src = PeriodicSource(period=0.0, callback=record([]))
        with pytest.raises(ValueError):
            src.start(sim)


class TestFastPaths:
    """The PR3 hot-path APIs: cancellable=False and schedule_many."""

    def test_non_cancellable_returns_no_token(self):
        sim = Simulator()
        log = []
        assert sim.schedule(1.0, record(log), "a", cancellable=False) is None
        assert sim.schedule_at(2.0, record(log), "b", cancellable=False) is None
        sim.run()
        assert [p for _, p in log] == ["a", "b"]

    def test_schedule_many_matches_loop_order(self):
        times = [0.0, 1.0, 1.0, 3.0, 7.5]
        loop_log, many_log = [], []
        sim = Simulator()
        for i, t in enumerate(times):
            sim.schedule_at(t, record(loop_log), i, cancellable=False)
        sim.run()
        sim2 = Simulator()
        assert sim2.schedule_many(times, record(many_log), payloads=range(5)) == 5
        sim2.run()
        assert many_log == loop_log

    def test_schedule_many_out_of_order_batch(self):
        sim = Simulator()
        log = []
        sim.schedule_many([5.0, 1.0, 3.0, 0.5], record(log), payloads="abcd")
        sim.run()
        assert [p for _, p in log] == ["d", "b", "c", "a"]
        assert [t for t, _ in log] == [0.5, 1.0, 3.0, 5.0]

    def test_schedule_many_interleaves_with_singles(self):
        # Batch into the lane, singles into the heap and lane: the merge
        # must still fire in global (time, insertion) order.
        sim = Simulator()
        log = []
        sim.schedule_many([2.0, 4.0, 6.0], record(log), payloads="ABC")
        sim.schedule_at(3.0, record(log), "x")   # behind lane tail -> heap
        sim.schedule_at(6.0, record(log), "y")   # tie: after batch's C
        sim.schedule_at(1.0, record(log), "z")
        sim.run()
        assert [p for _, p in log] == ["z", "A", "x", "B", "C", "y"]

    def test_schedule_many_rejects_past_and_mismatch(self):
        sim = Simulator()
        sim.schedule_at(1.0, record([]), cancellable=False)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(ValueError):
            sim.schedule_many([0.5], record([]))
        with pytest.raises(ValueError):
            sim.schedule_many([2.0, 3.0], record([]), payloads=[1])

    def test_schedule_many_empty(self):
        sim = Simulator()
        assert sim.schedule_many([], record([])) == 0
        sim.run()
        assert sim.now == 0.0

    def test_callbacks_can_bulk_schedule(self):
        sim = Simulator()
        log = []

        def fanout(s, _):
            s.schedule_many([s.now + 1.0, s.now + 2.0], record(log), payloads="ab")

        sim.schedule(1.0, fanout)
        sim.run()
        assert [(t, p) for t, p in log] == [(2.0, "a"), (3.0, "b")]


class TestPendingCounts:
    """__len__ over-counts cancelled entries by design; pending_live is exact."""

    def test_len_counts_cancelled_until_purged(self):
        sim = Simulator()
        tok = sim.schedule(1.0, record([]))
        sim.schedule(2.0, record([]))
        tok.cancel()
        # The cancelled entry is still queued (lazy cancellation) ...
        assert len(sim) == 2
        assert sim.pending_live() == 1
        # ... and purging it at the head reconciles the two counts.
        assert sim.peek_time() == 2.0
        assert len(sim) == 1
        assert sim.pending_live() == 1

    def test_cancelled_head_in_heap_and_lane(self):
        sim = Simulator()
        sim.schedule_at(5.0, record([]), cancellable=False)
        tok_heap = sim.schedule_at(1.0, record([]))  # behind tail -> heap
        tok_lane = sim.schedule_at(5.0, record([]))
        tok_heap.cancel()
        tok_lane.cancel()
        assert len(sim) == 3
        assert sim.pending_live() == 1
        stats = sim.run()
        assert stats.events_executed == 1
        assert stats.events_cancelled == 2
        assert len(sim) == 0 and sim.pending_live() == 0


class TestRunGuards:
    def test_peek_and_step_rejected_mid_run(self):
        sim = Simulator()
        errors = []

        def probe_kernel(s, _):
            for fn in (s.peek_time, s.step):
                try:
                    fn()
                except RuntimeError:
                    errors.append(fn.__name__)

        sim.schedule(1.0, probe_kernel)
        sim.run()
        assert errors == ["peek_time", "step"]

    def test_step_drains_mixed_lanes(self):
        sim = Simulator()
        log = []
        sim.schedule_many([2.0, 4.0], record(log), payloads="AB")
        sim.schedule_at(3.0, record(log), "x")
        while sim.step():
            pass
        assert [p for _, p in log] == ["A", "x", "B"]
        assert sim.now == 4.0


class TestPendingCountsIncludeParked:
    """Events parked by run()'s bulk-lane mode stay visible (PR5 fix:
    ``__len__`` previously missed ``_parked``, disagreeing with
    ``pending_live`` mid-run)."""

    def test_len_and_live_count_parked_entries(self):
        sim = Simulator()

        def noop(s, p):
            pass

        seen = {}

        def check(s, p):
            seen["parked"] = len(s._parked)
            seen["len"] = len(s)
            seen["live"] = s.pending_live()

        for i in range(1, 21):
            # The checker is a *lane* event so it observes mid-stretch
            # state (parked entries rejoin the heap between stretches).
            sim.schedule_at(float(i), check if i == 5 else noop)
        sim.schedule_at(15.5, noop)  # behind the lane tail -> heap
        sim.run()
        assert seen["parked"] == 1, "far-off heap entry was not parked"
        # run() keeps its lane cursor in a local, so mid-run both counts
        # still include the consumed lane prefix (20 lane + 1 parked) —
        # but they agree with each other, parked entry included.  Before
        # the PR5 fix ``len`` read 20 while ``pending_live`` read 21.
        assert seen["len"] == seen["live"] == 21

    def test_parked_cancelled_entry_counted_by_len_not_live(self):
        sim = Simulator()

        def noop(s, p):
            pass

        seen = {}

        def check(s, p):
            seen["parked"] = len(s._parked)
            seen["len"] = len(s)
            seen["live"] = s.pending_live()

        for i in range(1, 21):
            sim.schedule_at(float(i), check if i == 5 else noop)
        token = sim.schedule_at(15.5, noop)
        token.cancel()
        sim.run()
        assert seen["parked"] == 1
        assert seen["len"] == 21  # cancelled-but-unpurged still pending
        assert seen["live"] == 20  # ...but not live, even while parked


class TestRepr:
    def test_repr_shows_pending_live_and_executed(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, record(log), "a")
        tok = sim.schedule(2.0, record(log), "b")
        tok.cancel()
        assert repr(sim) == "<Simulator t=0 pending=2 live=1 executed=0>"
        sim.run()
        assert repr(sim) == "<Simulator t=1 pending=0 live=0 executed=1>"


class TestInitHooks:
    def test_hook_fires_for_new_simulators_until_removed(self):
        from repro.core import events as events_mod

        born = []
        hook = born.append
        events_mod.add_init_hook(hook)
        try:
            sim = Simulator()
            assert born == [sim]
        finally:
            events_mod.remove_init_hook(hook)
        Simulator()
        assert born == [sim]

    def test_removing_unknown_hook_is_noop(self):
        from repro.core import events as events_mod

        events_mod.remove_init_hook(lambda s: None)
