"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import PeriodicSource, Simulator


def record(log):
    def cb(sim, payload):
        log.append((sim.now, payload))

    return cb


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, record(log), "c")
        sim.schedule(1.0, record(log), "a")
        sim.schedule(2.0, record(log), "b")
        sim.run()
        assert [p for _, p in log] == ["a", "b", "c"]
        assert [t for t, _ in log] == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abcd":
            sim.schedule(5.0, record(log), name)
        sim.run()
        assert [p for _, p in log] == list("abcd")

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_property_execution_times_nondecreasing(self, delays):
        sim = Simulator()
        log = []
        for d in delays:
            sim.schedule(d, record(log), None)
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestScheduling:
    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, record([]))

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        log = []
        sim.schedule_at(12.5, record(log), "x")
        with pytest.raises(ValueError):
            sim.schedule_at(9.0, record(log))
        sim.run()
        assert log == [(12.5, "x")]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(s, depth):
            log.append(s.now)
            if depth > 0:
                s.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert log == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        token = sim.schedule(1.0, record(log), "dead")
        sim.schedule(2.0, record(log), "live")
        token.cancel()
        sim.run()
        assert [p for _, p in log] == ["live"]
        assert sim.stats.events_cancelled == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        token = sim.schedule(1.0, record([]))
        sim.schedule(2.0, record([]))
        token.cancel()
        assert sim.peek_time() == 2.0


class TestRunControl:
    def test_until_horizon_inclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, record(log), "in")
        sim.schedule(2.0, record(log), "at")
        sim.schedule(3.0, record(log), "beyond")
        sim.run(until=2.0)
        assert [p for _, p in log] == ["in", "at"]
        assert sim.now == 2.0
        sim.run()  # resumes
        assert [p for _, p in log] == ["in", "at", "beyond"]

    def test_max_events_budget(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i), record(log), i)
        sim.run(max_events=4)
        assert len(log) == 4

    def test_stats_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), record([]))
        stats = sim.run()
        assert stats.events_executed == 5
        assert stats.end_time == 4.0

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested(s, _):
            with pytest.raises(RuntimeError):
                s.run()

        sim.schedule(0.0, nested)
        sim.run()

    def test_len_counts_pending(self):
        sim = Simulator()
        sim.schedule(1.0, record([]))
        sim.schedule(2.0, record([]))
        assert len(sim) == 2


class TestPeriodicSource:
    def test_fires_at_period(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(period=2.0, callback=record(log), payload="tick")
        src.start(sim)
        sim.run(until=7.0)
        assert [t for t, _ in log] == [0.0, 2.0, 4.0, 6.0]
        assert src.fires == 4

    def test_stop_after(self):
        sim = Simulator()
        log = []
        src = PeriodicSource(
            period=1.0, callback=record(log), stop_after=2.5
        )
        src.start(sim)
        sim.run(until=100.0)
        assert [t for t, _ in log] == [0.0, 1.0, 2.0]

    def test_bad_period(self):
        sim = Simulator()
        src = PeriodicSource(period=0.0, callback=record([]))
        with pytest.raises(ValueError):
            src.start(sim)
