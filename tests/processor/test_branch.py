"""Tests for branch predictors."""

import numpy as np
import pytest

from repro.core.rng import resolve_rng
from repro.processor import (
    BimodalPredictor,
    GSharePredictor,
    LastValuePredictor,
    StaticPredictor,
    TournamentPredictor,
    branch_outcome_stream,
    evaluate_predictor,
)


def per_site_biased_stream(n_sites=16, n=20000, seed=0):
    """Each site strongly biased (taken or not-taken), random order."""
    gen = resolve_rng(seed)
    site_bias = np.where(gen.random(n_sites) < 0.5, 0.05, 0.95)
    sites = gen.integers(0, n_sites, size=n)
    outcomes = gen.random(n) < site_bias[sites]
    return sites * 4, outcomes


def loop_pattern_stream(n=9000):
    """Single site executing a TTTN loop pattern (period 4)."""
    outcomes = branch_outcome_stream(n, pattern=[True, True, True, False])
    pcs = np.zeros(n, dtype=int)
    return pcs, outcomes


class TestStatic:
    def test_matches_global_bias(self):
        pcs = np.zeros(10000, dtype=int)
        outs = branch_outcome_stream(10000, bias=0.7, rng=0)
        ev = evaluate_predictor(StaticPredictor(taken=True), pcs, outs)
        assert ev.accuracy == pytest.approx(0.7, abs=0.02)

    def test_not_taken_variant(self):
        pcs = np.zeros(1000, dtype=int)
        outs = np.zeros(1000, dtype=bool)
        ev = evaluate_predictor(StaticPredictor(taken=False), pcs, outs)
        assert ev.accuracy == 1.0


class TestBimodal:
    def test_learns_per_site_bias(self):
        pcs, outs = per_site_biased_stream()
        static = evaluate_predictor(StaticPredictor(), pcs.copy(), outs)
        bimodal = evaluate_predictor(BimodalPredictor(), pcs, outs)
        assert bimodal.accuracy > 0.9
        assert bimodal.accuracy > static.accuracy + 0.2

    def test_counters_are_hysteretic(self):
        # A single anomalous outcome must not flip a saturated counter.
        p = BimodalPredictor()
        for _ in range(4):
            p.update(0, True)
        p.update(0, False)  # one not-taken
        assert p.predict(0) is True

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=0)


class TestGShare:
    def test_learns_patterns_bimodal_cannot(self):
        pcs, outs = loop_pattern_stream()
        bimodal = evaluate_predictor(BimodalPredictor(), pcs.copy(), outs)
        gshare = evaluate_predictor(GSharePredictor(), pcs, outs)
        # TTTN: bimodal saturates taken => 75%; gshare learns the period.
        assert bimodal.accuracy == pytest.approx(0.75, abs=0.02)
        assert gshare.accuracy > 0.95

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_bits=0)


class TestLastValue:
    def test_perfect_on_constant_streams(self):
        pcs = np.zeros(100, dtype=int)
        outs = np.ones(100, dtype=bool)
        ev = evaluate_predictor(LastValuePredictor(), pcs, outs)
        assert ev.accuracy == 1.0

    def test_half_on_alternating(self):
        pcs = np.zeros(1000, dtype=int)
        outs = np.array([i % 2 == 0 for i in range(1000)])
        ev = evaluate_predictor(LastValuePredictor(), pcs, outs)
        assert ev.accuracy < 0.1  # always one step behind


class TestTournament:
    def test_tracks_best_component(self):
        # Pattern stream (gshare's home turf): tournament ~ gshare.
        pcs, outs = loop_pattern_stream()
        tournament = evaluate_predictor(TournamentPredictor(), pcs.copy(), outs)
        assert tournament.accuracy > 0.9
        # Per-site-bias stream (bimodal's home turf): also high.
        pcs2, outs2 = per_site_biased_stream(seed=3)
        tournament2 = evaluate_predictor(TournamentPredictor(), pcs2, outs2)
        assert tournament2.accuracy > 0.88


class TestEvaluationHarness:
    def test_mpki(self):
        pcs = np.zeros(1000, dtype=int)
        outs = np.ones(1000, dtype=bool)
        ev = evaluate_predictor(
            StaticPredictor(taken=False), pcs, outs,
            instructions_per_branch=5.0,
        )
        # All 1000 branches mispredicted over 5000 instructions = 200 MPKI.
        assert ev.mpki == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_predictor(
                StaticPredictor(), np.zeros(3), np.zeros(2, dtype=bool)
            )
        with pytest.raises(ValueError):
            evaluate_predictor(
                StaticPredictor(), np.zeros(2), np.zeros(2, dtype=bool),
                instructions_per_branch=0.0,
            )

    def test_accuracy_nan_before_any_prediction(self):
        assert np.isnan(StaticPredictor().accuracy)
