"""Tests for the ISA and trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.processor import (
    FP_KERNEL_MIX,
    POINTER_CHASE_MIX,
    Instruction,
    InstructionMix,
    Opcode,
    branch_outcome_stream,
    generate_trace,
    random_addresses,
    sequential_addresses,
    strided_addresses,
    validate_trace,
    working_set_addresses,
    zipf_addresses,
)


class TestInstruction:
    def test_memory_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, dst=1)
        Instruction(Opcode.LOAD, dst=1, address=64)  # ok

    def test_branch_requires_outcome(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRANCH)
        Instruction(Opcode.BRANCH, taken=True)  # ok

    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ALU, dst=99)
        with pytest.raises(ValueError):
            Instruction(Opcode.ALU, dst=1, srcs=(50,))

    def test_flags(self):
        load = Instruction(Opcode.LOAD, dst=1, address=0)
        assert load.is_memory and not load.is_branch
        br = Instruction(Opcode.BRANCH, taken=False)
        assert br.is_branch and not br.is_memory

    def test_latency_lookup(self):
        assert Instruction(Opcode.DIV, dst=0).latency() == 20
        assert Instruction(Opcode.ALU, dst=0).latency({Opcode.ALU: 7}) == 7

    def test_validate_trace(self):
        trace = [Instruction(Opcode.ALU, dst=0), Instruction(Opcode.NOP)]
        assert validate_trace(trace) == 2
        with pytest.raises(TypeError):
            validate_trace([Instruction(Opcode.NOP), "not-an-instruction"])


class TestInstructionMix:
    def test_default_sums_to_one(self):
        InstructionMix()  # must not raise
        FP_KERNEL_MIX, POINTER_CHASE_MIX  # prebuilt mixes valid

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(alu=0.9)  # total > 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(alu=0.55, mul=-0.12, div=0.01, fpu=0.05,
                           fma=0.01, load=0.25, store=0.10, branch=0.15)


class TestGenerateTrace:
    def test_length_and_determinism(self):
        a = generate_trace(200, rng=7)
        b = generate_trace(200, rng=7)
        assert len(a) == 200
        assert a == b

    def test_mix_fractions_respected(self):
        trace = generate_trace(20000, rng=0)
        frac_load = sum(i.opcode is Opcode.LOAD for i in trace) / len(trace)
        frac_branch = sum(i.is_branch for i in trace) / len(trace)
        assert frac_load == pytest.approx(0.25, abs=0.02)
        assert frac_branch == pytest.approx(0.15, abs=0.02)

    def test_memory_ops_have_addresses(self):
        trace = generate_trace(500, rng=1)
        assert all(
            i.address is not None for i in trace if i.is_memory
        )
        assert all(i.taken is not None for i in trace if i.is_branch)

    def test_branch_sites_limited(self):
        trace = generate_trace(2000, rng=2)
        branch_pcs = {i.pc for i in trace if i.is_branch}
        assert len(branch_pcs) <= 32

    def test_dependency_distance_controls_ilp(self):
        # Tight dependencies produce more chained sources on recent dsts;
        # verified indirectly via the ILP study elsewhere; here check
        # parameter validation only.
        with pytest.raises(ValueError):
            generate_trace(10, dependency_distance=0.0)
        with pytest.raises(ValueError):
            generate_trace(10, branch_taken_bias=2.0)
        with pytest.raises(ValueError):
            generate_trace(-1)

    def test_empty_trace(self):
        assert generate_trace(0) == []


class TestAddressStreams:
    def test_sequential(self):
        addrs = sequential_addresses(5, start=100, stride=8)
        np.testing.assert_array_equal(addrs, [100, 108, 116, 124, 132])

    def test_strided(self):
        addrs = strided_addresses(4, stride_bytes=4096)
        assert addrs[1] - addrs[0] == 4096

    def test_random_within_footprint(self):
        addrs = random_addresses(1000, footprint_bytes=1 << 16, rng=0)
        assert addrs.max() < 1 << 16
        assert addrs.min() >= 0
        assert np.all(addrs % 8 == 0)

    def test_zipf_skew(self):
        addrs = zipf_addresses(50000, unique=1024, rng=0)
        _, counts = np.unique(addrs, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Hot line takes a disproportionate share.
        assert counts[0] > 10 * counts[len(counts) // 2]
        assert np.all(addrs % 64 == 0)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_addresses(10, exponent=1.0)
        with pytest.raises(ValueError):
            zipf_addresses(10, unique=0)

    def test_working_set_locality(self):
        addrs = working_set_addresses(
            20000, working_set_bytes=1 << 20, locality=0.9, rng=0
        )
        hot_bound = (1 << 20) // 8
        hot_frac = np.mean(addrs < hot_bound)
        assert hot_frac > 0.85

    def test_working_set_validation(self):
        with pytest.raises(ValueError):
            working_set_addresses(10, 1024, locality=1.5)


class TestBranchStreams:
    def test_bias(self):
        outcomes = branch_outcome_stream(20000, bias=0.8, rng=0)
        assert np.mean(outcomes) == pytest.approx(0.8, abs=0.02)

    def test_pattern(self):
        outcomes = branch_outcome_stream(7, pattern=[True, True, False])
        assert outcomes.tolist() == [True, True, False, True, True, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            branch_outcome_stream(10, bias=1.5)
        with pytest.raises(ValueError):
            branch_outcome_stream(10, pattern=[])
        with pytest.raises(ValueError):
            branch_outcome_stream(-1)

    @given(st.floats(min_value=0, max_value=1), st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_property_outcomes_boolean(self, bias, seed):
        outcomes = branch_outcome_stream(64, bias=bias, rng=seed)
        assert outcomes.dtype == bool
        assert len(outcomes) == 64
