"""Tests for the DVFS governors."""

import numpy as np
import pytest

from repro.processor import (
    DVFSCore,
    OnDemandGovernor,
    OperatingPoint,
    RaceToIdle,
    UserFeedbackGovernor,
    bursty_demand,
    default_opp_table,
    governor_comparison,
    simulate_governor,
)


class TestModels:
    def test_opp_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1.0, -1.0)

    def test_power_grows_up_the_ladder(self):
        core = DVFSCore()
        powers = [core.active_power_w(o) for o in default_opp_table()]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_energy_per_work_grows_up_the_ladder(self):
        # The whole point of DVFS: slow points are more efficient.
        core = DVFSCore()
        epw = [
            core.active_power_w(o) / core.capacity(o)
            for o in default_opp_table()
        ]
        assert all(a < b for a, b in zip(epw, epw[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            DVFSCore(c_eff_f=-1.0)
        with pytest.raises(ValueError):
            RaceToIdle(table=[])


class TestGovernors:
    def test_race_to_idle_extremes(self):
        gov = RaceToIdle()
        assert gov.choose(backlog=1.0, last_demand=0.0) == len(gov.table) - 1
        assert gov.choose(backlog=0.0, last_demand=5.0) == 0

    def test_ondemand_tracks_demand(self):
        core = DVFSCore()
        gov = OnDemandGovernor(core)
        low = gov.choose(backlog=0.0, last_demand=0.1)
        high = gov.choose(backlog=0.0, last_demand=1.8)
        assert high > low
        with pytest.raises(ValueError):
            OnDemandGovernor(core, margin=0.5)

    def test_user_feedback_boost_hysteresis(self):
        core = DVFSCore()
        gov = UserFeedbackGovernor(core, annoyance_backlog=4.0)
        assert gov.choose(backlog=5.0, last_demand=1.0) == len(gov.table) - 1
        # Still boosting above the floor...
        assert gov.choose(backlog=2.0, last_demand=1.0) == len(gov.table) - 1
        # ...stops below a quarter of the threshold.
        assert gov.choose(backlog=0.5, last_demand=0.2) < len(gov.table) - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            UserFeedbackGovernor(DVFSCore(), annoyance_backlog=-1.0)


class TestSimulation:
    def test_all_work_served_eventually(self):
        core = DVFSCore()
        demand = bursty_demand(2000, rng=0)
        res = simulate_governor(RaceToIdle(), core, demand)
        # Max capacity 2.0 vs mean demand <1: nearly everything served.
        assert res.served_work >= 0.98 * demand.sum()

    def test_energy_ordering(self):
        out = governor_comparison(n_intervals=3000, rng=0)
        # User-feedback is cheapest (tolerates backlog); race-to-idle
        # pays the high-V tax; ondemand sits between.
        assert (
            out["user_feedback"]["energy_j"]
            < out["ondemand"]["energy_j"]
            < out["race_to_idle"]["energy_j"]
        )

    def test_qos_energy_tradeoff(self):
        out = governor_comparison(n_intervals=3000, rng=0)
        # The cheap governor violates the strict bound more often.
        assert (
            out["user_feedback"]["violation_rate"]
            > out["race_to_idle"]["violation_rate"]
        )

    def test_deterministic(self):
        a = governor_comparison(n_intervals=500, rng=3)
        b = governor_comparison(n_intervals=500, rng=3)
        assert a == b

    def test_validation(self):
        core = DVFSCore()
        with pytest.raises(ValueError):
            simulate_governor(RaceToIdle(), core, np.array([-1.0]))
        with pytest.raises(ValueError):
            simulate_governor(RaceToIdle(), core, np.array([1.0]),
                              interval_s=0.0)
        with pytest.raises(ValueError):
            bursty_demand(10, burst_prob=2.0)
