"""Tests for the in-order and out-of-order core models."""

import numpy as np
import pytest

from repro.processor import (
    BIG_OOO_CORE,
    LITTLE_INORDER_CORE,
    MICROCONTROLLER_CORE,
    CoreDescriptor,
    CorePowerModel,
    InOrderConfig,
    InOrderCore,
    Instruction,
    Opcode,
    WindowConfig,
    analytic_cpi,
    core_performance,
    core_power,
    efficiency_vs_area,
    equal_power_core_count,
    generate_trace,
    ilp_vs_window,
    marginal_ipc_gain,
    schedule_trace,
    throughput_ratio_many_small_vs_one_big,
    window_energy_cost,
)


def alu_chain(n, dependent=True):
    """n ALU ops, either a serial chain or fully independent."""
    trace = []
    for i in range(n):
        srcs = (0,) if dependent else ()
        trace.append(Instruction(Opcode.ALU, dst=0 if dependent else i % 32,
                                 srcs=srcs, pc=i * 4))
    return trace


class TestInOrder:
    def test_independent_alu_stream_cpi_one(self):
        trace = [Instruction(Opcode.ALU, dst=i % 32, pc=i * 4) for i in range(100)]
        res = InOrderCore(InOrderConfig(miss_rate=0.0)).run(trace)
        assert res.cpi == pytest.approx(1.0, abs=0.01)

    def test_dependent_divs_are_slow(self):
        trace = []
        for i in range(50):
            trace.append(Instruction(Opcode.DIV, dst=1, srcs=(1,), pc=i * 4))
        res = InOrderCore(InOrderConfig(miss_rate=0.0)).run(trace)
        assert res.cpi > 15.0  # ~div latency each

    def test_miss_rate_adds_stalls(self):
        trace = generate_trace(3000, rng=0)
        clean = InOrderCore(InOrderConfig(miss_rate=0.0)).run(trace)
        missy = InOrderCore(InOrderConfig(miss_rate=0.10)).run(trace)
        assert missy.cpi > clean.cpi + 0.5
        assert missy.stall_cycles_memory > 0

    def test_explicit_miss_flags(self):
        trace = [
            Instruction(Opcode.LOAD, dst=1, address=0, pc=0),
            Instruction(Opcode.LOAD, dst=2, address=64, pc=4),
        ]
        cfg = InOrderConfig(miss_rate=0.0, miss_penalty=100)
        all_hit = InOrderCore(cfg).run(trace, miss_flags=[False, False])
        one_miss = InOrderCore(cfg).run(trace, miss_flags=[True, False])
        assert one_miss.cycles >= all_hit.cycles + 100

    def test_energy_accounting(self):
        trace = generate_trace(1000, rng=0)
        res = InOrderCore().run(trace)
        assert res.ledger.ops() == 1000
        assert res.energy_per_instruction_j > 0
        assert res.ledger.total("memory") > 0

    def test_determinism(self):
        trace = generate_trace(1000, rng=3)
        a = InOrderCore().run(trace)
        b = InOrderCore().run(trace)
        assert a.cycles == b.cycles

    def test_ipc_cpi_inverse(self):
        trace = generate_trace(500, rng=0)
        res = InOrderCore().run(trace)
        assert res.ipc == pytest.approx(1.0 / res.cpi)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InOrderConfig(miss_rate=1.5)
        with pytest.raises(ValueError):
            InOrderConfig(mispredict_penalty=-1)


class TestAnalyticCPI:
    def test_formula(self):
        cpi = analytic_cpi(
            mix_load=0.2, mix_store=0.1, mix_branch=0.2,
            miss_rate=0.1, miss_penalty=100.0,
            mispredict_rate=0.05, mispredict_penalty=10.0,
            base_cpi=1.0,
        )
        assert cpi == pytest.approx(1.0 + 0.3 * 0.1 * 100 + 0.2 * 0.05 * 10)

    def test_agrees_with_simulation_shape(self):
        # The trace-driven core under matching parameters lands within
        # ~35% of the closed form (their stall models differ slightly).
        trace = generate_trace(20000, rng=0)
        sim = InOrderCore(InOrderConfig(miss_rate=0.03)).run(trace)
        closed = analytic_cpi(miss_rate=0.03, base_cpi=1.3)
        assert sim.cpi == pytest.approx(closed, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_cpi(base_cpi=0.5)
        with pytest.raises(ValueError):
            analytic_cpi(miss_rate=2.0)


class TestSuperscalar:
    def test_serial_chain_ipc_bounded_by_latency(self):
        trace = alu_chain(200, dependent=True)
        res = schedule_trace(trace, WindowConfig(window=64, width=8))
        assert res.ipc <= 1.05  # serialized by the dependence chain

    def test_independent_stream_hits_width(self):
        trace = alu_chain(4000, dependent=False)
        res = schedule_trace(trace, WindowConfig(window=256, width=4))
        assert res.ipc == pytest.approx(4.0, rel=0.05)

    def test_ilp_curve_monotone_and_saturating(self):
        trace = generate_trace(6000, dependency_distance=16.0, rng=0)
        curve = ilp_vs_window(trace)
        ipc = curve["ipc"]
        assert np.all(np.diff(ipc) >= -1e-9)  # monotone nondecreasing
        gains = marginal_ipc_gain(curve)
        # Early doublings help much more than late ones.
        assert gains[0] > gains[-1]
        assert gains[-1] == pytest.approx(1.0, abs=0.02)  # saturated

    def test_wider_machine_never_slower(self):
        trace = generate_trace(3000, rng=1)
        narrow = schedule_trace(trace, WindowConfig(window=64, width=1))
        wide = schedule_trace(trace, WindowConfig(window=64, width=8))
        assert wide.ipc >= narrow.ipc

    def test_mispredictions_reduce_ipc(self):
        from repro.processor import BimodalPredictor

        trace = generate_trace(5000, rng=2)
        perfect = schedule_trace(trace, WindowConfig(window=128, width=4))
        real = schedule_trace(
            trace, WindowConfig(window=128, width=4),
            predictor=BimodalPredictor(),
        )
        assert real.ipc < perfect.ipc

    def test_empty_trace(self):
        res = schedule_trace([], WindowConfig())
        assert res.instructions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(window=0)
        with pytest.raises(ValueError):
            ilp_vs_window([], windows=())
        with pytest.raises(ValueError):
            marginal_ipc_gain({"ipc": np.array([1.0])})

    def test_window_energy_superlinear(self):
        e32 = window_energy_cost(32)
        e256 = window_energy_cost(256)
        assert e256 > 8 * e32  # superlinear: 8x window, >8x energy
        with pytest.raises(ValueError):
            window_energy_cost(0)


class TestPollack:
    def test_sqrt_rule(self):
        assert core_performance(4.0) == pytest.approx(2.0)
        assert core_performance(1.0) == pytest.approx(1.0)

    def test_power_linear(self):
        assert core_power(4.0) == pytest.approx(4.0)

    def test_perf_per_watt_decreasing(self):
        out = efficiency_vs_area(np.array([1.0, 2.0, 4.0, 8.0]))
        assert np.all(np.diff(out["perf_per_watt"]) < 0)

    def test_equal_power_core_count(self):
        assert equal_power_core_count(4.0) == pytest.approx(4.0)

    def test_multicore_wins_when_parallel(self):
        ratio = throughput_ratio_many_small_vs_one_big(
            big_core_area=16.0, parallel_fraction=0.99
        )
        assert ratio > 1.0

    def test_big_core_wins_when_serial(self):
        ratio = throughput_ratio_many_small_vs_one_big(
            big_core_area=16.0, parallel_fraction=0.2
        )
        assert ratio < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            core_performance(-1.0)
        with pytest.raises(ValueError):
            core_performance(1.0, exponent=1.5)
        with pytest.raises(ValueError):
            throughput_ratio_many_small_vs_one_big(0.5)


class TestCorePower:
    def test_big_core_costs_more_per_instruction(self):
        model = CorePowerModel("22nm")
        ratio = model.overhead_ratio(BIG_OOO_CORE, LITTLE_INORDER_CORE)
        assert ratio > 2.0  # the heterogeneity argument

    def test_voltage_scaling_reduces_power(self):
        model = CorePowerModel("22nm")
        nominal = model.evaluate(LITTLE_INORDER_CORE)
        scaled = model.evaluate(LITTLE_INORDER_CORE, vdd_v=0.6)
        assert scaled.total_power_w < nominal.total_power_w

    def test_microcontroller_power_tiny(self):
        model = CorePowerModel("45nm")
        report = model.evaluate(MICROCONTROLLER_CORE, frequency_hz=50e6)
        assert report.total_power_w < 0.05  # tens of mW at most

    def test_report_fields_consistent(self):
        model = CorePowerModel("22nm")
        r = model.evaluate(LITTLE_INORDER_CORE)
        assert r.total_power_w == pytest.approx(
            r.dynamic_power_w + r.leakage_power_w
        )
        assert r.energy_per_instruction_j == pytest.approx(
            r.total_power_w / r.instructions_per_second
        )
        assert r.useful_energy_per_instruction_j < r.energy_per_instruction_j

    def test_validation(self):
        model = CorePowerModel("22nm")
        with pytest.raises(ValueError):
            model.evaluate(LITTLE_INORDER_CORE, frequency_hz=0.0)
        with pytest.raises(ValueError):
            model.evaluate(LITTLE_INORDER_CORE, vdd_v=-1.0)
        with pytest.raises(ValueError):
            CoreDescriptor("bad", transistors=0.0)
        with pytest.raises(ValueError):
            CoreDescriptor("bad", transistors=1e6, overhead_fraction=1.0)
