"""Tests for the NoC simulator and link energy models."""

import numpy as np
import pytest

from repro.core import units
from repro.interconnect import (
    ElectricalLink,
    MeshNoC,
    NoCConfig,
    PhotonicLink,
    TSVLink,
    latency_vs_load,
    link_technology_sweep,
    photonic_crossover_distance_mm,
    poisson_injection_times,
    stacking_comparison,
    uniform_random_pairs,
)


class TestNoCBasics:
    def test_single_packet_latency_is_hops_times_hop_latency(self):
        cfg = NoCConfig(width=4, height=4, router_delay_cycles=2,
                        link_delay_cycles=1)
        noc = MeshNoC(cfg)
        res = noc.run([((0, 0), (3, 0))])  # 3 hops
        assert len(res.delivered) == 1
        assert res.delivered[0].latency == pytest.approx(3 * 3)

    def test_all_packets_delivered_at_low_load(self):
        cfg = NoCConfig(width=4, height=4)
        pairs = uniform_random_pairs(300, 4, 4, rng=0)
        times = poisson_injection_times(300, 0.5, rng=0)
        res = MeshNoC(cfg).run(pairs, injection_times=times)
        assert len(res.delivered) == 300
        assert res.dropped == 0

    def test_energy_proportional_to_hops(self):
        cfg = NoCConfig(width=8, height=8)
        noc = MeshNoC(cfg)
        short = noc.run([((0, 0), (1, 0))])
        long = noc.run([((0, 0), (7, 7))])  # 14 hops
        per_hop = cfg.energy_per_hop_router_j + cfg.energy_per_hop_link_j
        assert short.ledger.total() == pytest.approx(per_hop)
        assert long.ledger.total() == pytest.approx(14 * per_hop)

    def test_contention_increases_latency(self):
        cfg = NoCConfig(width=4, height=1)
        noc = MeshNoC(cfg)
        # Ten packets down the same line at once must serialize.
        pairs = [((0, 0), (3, 0))] * 10
        res = noc.run(pairs)
        latencies = sorted(p.latency for p in res.delivered)
        assert latencies[-1] > latencies[0]

    def test_latency_rises_with_load(self):
        curve = latency_vs_load(
            NoCConfig(width=4, height=4),
            rates=[0.05, 0.5, 1.2],
            n_packets=1000,
        )
        lat = curve["mean_latency"]
        assert lat[2] > lat[0] * 1.3

    def test_validation(self):
        noc = MeshNoC(NoCConfig(width=4, height=4))
        with pytest.raises(ValueError):
            noc.run([((0, 0), (9, 9))])
        with pytest.raises(ValueError):
            noc.run([((1, 1), (1, 1))])
        with pytest.raises(ValueError):
            noc.run([((0, 0), (1, 0))], injection_times=np.zeros(2))
        with pytest.raises(ValueError):
            NoCConfig(width=0)
        with pytest.raises(ValueError):
            NoCConfig(router_delay_cycles=0)
        with pytest.raises(ValueError):
            latency_vs_load(NoCConfig(), rates=[])

    def test_result_statistics(self):
        noc = MeshNoC(NoCConfig(width=4, height=4))
        pairs = uniform_random_pairs(100, 4, 4, rng=1)
        res = noc.run(pairs)
        assert res.p99_latency >= res.mean_latency
        assert res.mean_hops >= 1.0
        assert res.energy_per_packet_j() > 0
        assert res.throughput_packets_per_cycle > 0


class TestElectricalLink:
    def test_energy_linear_in_distance(self):
        link = ElectricalLink()
        assert link.energy_per_bit_j(10.0) == pytest.approx(
            10 * link.energy_per_bit_j(1.0)
        )

    def test_off_chip_tax(self):
        on = ElectricalLink(off_chip=False)
        off = ElectricalLink(off_chip=True)
        assert off.energy_per_bit_j(1.0) > on.energy_per_bit_j(1.0) + 1e-12

    def test_latency_components(self):
        link = ElectricalLink(bandwidth_gbps=64.0)
        # Serialization of 64 bits at 64 Gbps = 1 ns; ToF tiny at 1 mm.
        lat = link.latency_s(1.0, bits=64)
        assert lat == pytest.approx(1e-9, rel=0.05)

    def test_power_scales_with_utilization(self):
        link = ElectricalLink(off_chip=True)
        assert link.power_w(10.0, 1.0) == pytest.approx(
            2 * link.power_w(10.0, 0.5)
        )

    def test_validation(self):
        link = ElectricalLink()
        with pytest.raises(ValueError):
            link.energy_per_bit_j(-1.0)
        with pytest.raises(ValueError):
            link.power_w(1.0, utilization=2.0)
        with pytest.raises(ValueError):
            ElectricalLink(bandwidth_gbps=0.0)


class TestPhotonicLink:
    def test_distance_independence(self):
        link = PhotonicLink()
        assert link.energy_per_bit_j(1.0, 0.5) == pytest.approx(
            link.energy_per_bit_j(100.0, 0.5)
        )

    def test_low_utilization_penalty(self):
        link = PhotonicLink()
        assert link.energy_per_bit_j(1.0, 0.01) > 10 * link.energy_per_bit_j(
            1.0, 1.0
        )

    def test_time_of_flight_uses_group_index(self):
        link = PhotonicLink(group_index=4.2)
        tof = link.latency_s(300.0, bits=0)
        assert tof == pytest.approx(0.3 * 4.2 / units.SPEED_OF_LIGHT)

    def test_crossover_against_on_chip_wire(self):
        # Photonics should win beyond a few mm on chip at decent
        # utilization — the "exploited among or even on chips" regime.
        d = photonic_crossover_distance_mm(
            ElectricalLink(off_chip=False), PhotonicLink(), utilization=0.8
        )
        assert 1.0 < d < 50.0

    def test_crossover_zero_when_photonics_always_wins(self):
        d = photonic_crossover_distance_mm(
            ElectricalLink(off_chip=True), PhotonicLink(), utilization=1.0
        )
        assert d == 0.0

    def test_validation(self):
        link = PhotonicLink()
        with pytest.raises(ValueError):
            link.energy_per_bit_j(1.0, utilization=0.0)
        with pytest.raises(ValueError):
            PhotonicLink(group_index=0.5)


class TestTSVAndStacking:
    def test_tsv_vastly_cheaper_than_board(self):
        out = stacking_comparison()
        ratio = (
            out["off_chip"]["energy_per_access_j"]
            / out["tsv_3d"]["energy_per_access_j"]
        )
        assert ratio > 10.0  # the 3D-stacking headline

    def test_tsv_latency_serialization(self):
        tsv = TSVLink(bandwidth_gbps=1024.0)
        assert tsv.latency_s(bits=1024) == pytest.approx(1e-9)

    def test_sweep_shapes(self):
        out = link_technology_sweep(np.array([1.0, 10.0, 100.0]))
        assert np.all(np.diff(out["electrical_j_per_bit"]) > 0)
        assert np.allclose(
            out["photonic_j_per_bit"], out["photonic_j_per_bit"][0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TSVLink(length_um=0.0)
        with pytest.raises(ValueError):
            stacking_comparison(bits_per_access=0)
        with pytest.raises(ValueError):
            link_technology_sweep(np.array([-1.0]))
