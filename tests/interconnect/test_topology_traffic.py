"""Tests for topologies and traffic patterns."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    average_hops,
    bisection_width,
    bit_complement_pairs,
    crossbar,
    diameter,
    fat_tree,
    hotspot_pairs,
    make_pattern,
    mesh2d,
    neighbor_pairs,
    poisson_injection_times,
    ring,
    topology_summary,
    torus2d,
    transpose_pairs,
    uniform_random_pairs,
    xy_route,
)


class TestTopologies:
    def test_mesh_structure(self):
        g = mesh2d(4, 4)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 24  # 2*4*3
        assert diameter(g) == 6

    def test_torus_shrinks_diameter(self):
        assert diameter(torus2d(6, 6)) < diameter(mesh2d(6, 6))

    def test_ring_diameter(self):
        assert diameter(ring(8)) == 4

    def test_crossbar_single_hop(self):
        g = crossbar(8)
        assert diameter(g) == 1
        assert g.number_of_edges() == 8 * 7 // 2

    def test_fat_tree_connects_all_leaves(self):
        g = fat_tree(8)
        for a in range(8):
            for b in range(8):
                assert nx.has_path(g, a, b)

    def test_fat_tree_capacity_doubles_per_level(self):
        g = fat_tree(8, arity=2)
        caps = {
            g.edges[e]["capacity"] for e in g.edges
        }
        assert caps == {1.0, 2.0, 4.0}

    def test_average_hops_ordering(self):
        # crossbar < torus < mesh < ring at the same node count.
        n = 16
        hops = {
            "crossbar": average_hops(crossbar(n)),
            "torus": average_hops(torus2d(4, 4)),
            "mesh": average_hops(mesh2d(4, 4)),
            "ring": average_hops(ring(n)),
        }
        assert hops["crossbar"] < hops["torus"] < hops["mesh"] < hops["ring"]

    def test_bisection_width(self):
        # A 4x4 mesh cut down the middle severs 4 links.
        assert bisection_width(mesh2d(4, 4)) == 4
        # Ring bisection is 2.
        assert bisection_width(ring(8)) == 2

    def test_summary_fields(self):
        s = topology_summary(mesh2d(3, 3))
        assert s["nodes"] == 9
        assert s["max_degree"] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh2d(0, 4)
        with pytest.raises(ValueError):
            torus2d(2, 4)
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            crossbar(1)
        with pytest.raises(ValueError):
            fat_tree(1)


class TestXYRoute:
    def test_route_endpoints_and_length(self):
        path = xy_route((0, 0), (3, 2))
        assert path[0] == (0, 0)
        assert path[-1] == (3, 2)
        assert len(path) == 6  # 3 + 2 hops

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        assert path[:3] == [(0, 0), (1, 0), (2, 0)]

    def test_self_route(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    @given(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
    )
    def test_property_route_is_minimal_and_adjacent(self, src, dst):
        path = xy_route(src, dst)
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert len(path) == manhattan + 1
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestTrafficPatterns:
    def test_uniform_no_self_loops(self):
        pairs = uniform_random_pairs(500, 4, 4, rng=0)
        assert len(pairs) == 500
        assert all(s != d for s, d in pairs)

    def test_transpose(self):
        pairs = transpose_pairs(100, 4, 4, rng=0)
        assert all(d == (s[1], s[0]) for s, d in pairs)
        with pytest.raises(ValueError):
            transpose_pairs(10, 4, 3)

    def test_bit_complement(self):
        pairs = bit_complement_pairs(100, 4, 4, rng=0)
        assert all(d == (3 - s[0], 3 - s[1]) for s, d in pairs)

    def test_hotspot_concentration(self):
        pairs = hotspot_pairs(1000, 4, 4, hot_fraction=0.5, rng=0)
        hs = (2, 2)
        frac = sum(d == hs for _, d in pairs) / len(pairs)
        assert frac > 0.4

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_pairs(10, 4, 4, hotspot=(9, 9))
        with pytest.raises(ValueError):
            hotspot_pairs(10, 4, 4, hot_fraction=1.5)

    def test_neighbor_single_hop_torus(self):
        pairs = neighbor_pairs(100, 4, 4, rng=0)
        assert all(d[0] == (s[0] + 1) % 4 and d[1] == s[1] for s, d in pairs)

    def test_dispatch(self):
        pairs = make_pattern("uniform", 10, 4, 4, rng=0)
        assert len(pairs) == 10
        with pytest.raises(KeyError):
            make_pattern("quantum-entangled", 10, 4, 4)

    def test_poisson_times_monotone(self):
        times = poisson_injection_times(100, 0.5, rng=0)
        assert np.all(np.diff(times) > 0)
        # Mean gap ~ 1/rate.
        assert np.mean(np.diff(times)) == pytest.approx(2.0, rel=0.4)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_injection_times(10, 0.0)
        with pytest.raises(ValueError):
            poisson_injection_times(-1, 1.0)
