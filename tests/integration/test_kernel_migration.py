"""Cross-validation of the kernel-hosted simulators.

Every simulator that moved onto the shared event kernel keeps (or
cross-checks against) a closed-form / vectorized reference; these tests
pin the agreement so future kernel changes cannot silently drift a
model.  Also covers the KernelFaultInjector driving faults into
kernel-hosted models through their ``inject_fault`` hooks.
"""

import numpy as np
import pytest

from repro.core.events import Simulator
from repro.core.instrument import MetricsRegistry
from repro.crosscut import FaultTarget, KernelFaultInjector
from repro.datacenter import (
    AutoscaleConfig,
    Balancer,
    ClusterConfig,
    ClusterSimulator,
    autoscale_fleet_trace,
    hedged_request_latencies,
    kernel_hedged_latencies,
    mm1_mean_latency,
    mmc_mean_latency,
)
from repro.datacenter.latency import exponential_latency, straggler_mixture
from repro.interconnect.noc import MeshNoC, NoCConfig
from repro.sensor import DutyCycleModel, simulate_duty_cycle


class TestClusterOnKernel:
    def test_matches_mm1_closed_form(self):
        cfg = ClusterConfig(n_servers=1, service_rate=10.0)
        res = ClusterSimulator(cfg).run(
            arrival_rate=7.5, n_requests=60_000, rng=0
        )
        # Single server: the event-driven path must land on M/M/1.
        closed = mm1_mean_latency(7.5, 10.0)
        assert res.mean_latency == pytest.approx(closed, rel=0.05)

    def test_jsq_beats_random_toward_mmc(self):
        # JSQ pools the servers; its mean latency must sit between the
        # shared-queue M/M/c ideal and independent random M/M/1 queues.
        random_res = ClusterSimulator(
            ClusterConfig(n_servers=4, service_rate=10.0)
        ).run(arrival_rate=30.0, n_requests=40_000, rng=0)
        jsq_res = ClusterSimulator(
            ClusterConfig(
                n_servers=4, service_rate=10.0, balancer=Balancer.JSQ
            )
        ).run(arrival_rate=30.0, n_requests=40_000, rng=0)
        mmc = mmc_mean_latency(30.0, 10.0, 4)
        assert mmc * 0.9 < jsq_res.mean_latency < random_res.mean_latency

    def test_kernel_run_reports_metrics(self):
        reg = MetricsRegistry()
        sim = Simulator(metrics=reg)
        cluster = sim.attach(ClusterSimulator(ClusterConfig(n_servers=2)))
        cluster.run(arrival_rate=1.0, n_requests=500, rng=3, sim=sim)
        snap = reg.snapshot()
        assert snap["cluster.requests"]["value"] == 500
        assert snap["cluster.completions"]["value"] == 500
        assert snap["cluster.latency_s"]["count"] == 500


class TestHedgingOnKernel:
    def test_kernel_matches_vectorized_sample_for_sample(self):
        dist = straggler_mixture()
        vec = hedged_request_latencies(dist, 400, rng=11)
        ker = kernel_hedged_latencies(dist, 400, rng=11)
        np.testing.assert_allclose(
            ker["latencies"], vec["latencies"], rtol=1e-9, atol=1e-9
        )
        assert ker["trigger_ms"] == vec["trigger_ms"]

    def test_cancellations_are_real_kernel_events(self):
        reg = MetricsRegistry()
        sim = Simulator(metrics=reg)
        kernel_hedged_latencies(
            exponential_latency(10.0), 300, rng=5, sim=sim
        )
        snap = reg.snapshot()
        # Every request leaves either a cancelled hedge timer or a
        # cancelled losing reply behind.
        assert snap["hedging.losers_cancelled"]["value"] >= 300
        assert sim.stats.events_cancelled == snap[
            "hedging.losers_cancelled"
        ]["value"]


class TestAutoscaleOnKernel:
    @pytest.mark.parametrize("lag", [0, 1, 3, 5])
    def test_matches_vectorized_delay_line(self, lag):
        rng = np.random.default_rng(2)
        load = rng.uniform(100.0, 5000.0, size=60)
        cfg = AutoscaleConfig(reaction_intervals=lag)
        fleet = autoscale_fleet_trace(load, cfg)
        desired = np.maximum(
            np.ceil(load * cfg.headroom / cfg.server_capacity_rps),
            cfg.min_servers,
        ).astype(int)
        expected = desired[np.maximum(np.arange(load.size) - lag, 0)]
        np.testing.assert_array_equal(fleet, expected)


class TestDutyCycleOnKernel:
    def test_matches_closed_form_power(self):
        model = DutyCycleModel()
        out = simulate_duty_cycle(model, wakes_per_s=2.0, duration_s=500.0)
        assert out["wakes"] == 1000
        assert out["average_power_w"] == pytest.approx(
            out["closed_form_power_w"], rel=1e-6
        )


class TestKernelFaultInjector:
    def test_cluster_tail_degrades_under_faults(self):
        cfg = ClusterConfig(n_servers=8, service_rate=10.0)
        baseline = ClusterSimulator(cfg).run(
            arrival_rate=60.0, n_requests=20_000, rng=1
        )
        sim = Simulator()
        cluster = sim.attach(ClusterSimulator(cfg))
        injector = KernelFaultInjector(mean_interval=20.0, rng=7)
        injector.register(cluster)
        assert injector.arm(sim, horizon=300.0) > 0
        faulted = cluster.run(
            arrival_rate=60.0, n_requests=20_000, rng=1, sim=sim
        )
        assert injector.injected > 0
        assert faulted.p99 > baseline.p99

    def test_noc_accepts_faults_via_same_protocol(self):
        noc = MeshNoC(NoCConfig(width=4, height=4))
        assert isinstance(noc, FaultTarget)
        sim = Simulator()
        sim.attach(noc)
        injector = KernelFaultInjector(mean_interval=5.0, rng=3)
        injector.register(noc)
        injector.arm(sim, horizon=50.0)
        rng = np.random.default_rng(0)
        pairs = [((0, 0), (3, 3)), ((3, 0), (0, 3)), ((1, 1), (2, 3))] * 10
        times = np.sort(rng.uniform(0.0, 40.0, size=len(pairs)))
        result = noc.run(pairs, injection_times=times, sim=sim)
        assert len(result.delivered) == len(pairs)
        assert injector.injected > 0

    def test_faults_are_counted_in_metrics(self):
        reg = MetricsRegistry(trace_capacity=64)
        sim = Simulator(metrics=reg)
        cluster = sim.attach(ClusterSimulator(ClusterConfig(n_servers=4)))
        injector = KernelFaultInjector(mean_interval=10.0, rng=0)
        injector.register(cluster)
        injector.arm(sim, horizon=200.0)
        cluster.run(arrival_rate=2.0, n_requests=400, rng=0, sim=sim)
        snap = reg.snapshot()
        assert snap["faults.injected"]["value"] == injector.injected
        assert len(reg.trace_sink.events("faults")) > 0

    def test_disarm_cancels_pending(self):
        sim = Simulator()
        cluster = sim.attach(ClusterSimulator(ClusterConfig(n_servers=2)))
        injector = KernelFaultInjector(mean_interval=1.0, rng=4)
        injector.register(cluster)
        scheduled = injector.arm(sim, horizon=100.0)
        cancelled = injector.disarm()
        assert cancelled == scheduled
        sim.run()
        assert injector.injected == 0

    def test_register_rejects_non_targets(self):
        injector = KernelFaultInjector(mean_interval=1.0)
        with pytest.raises(TypeError):
            injector.register(object())

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            KernelFaultInjector(mean_interval=0.0)
        injector = KernelFaultInjector(mean_interval=1.0)
        with pytest.raises(ValueError):
            injector.arm(Simulator(), horizon=-1.0)
