"""Golden determinism suite (PR3; fast-path modes since PR8).

The PR3 kernel overhaul (two-lane queue, token-free scheduling,
``schedule_many``) and the vectorized model fast paths are pure
performance work: for a fixed seed, every simulator must execute the
**byte-identical event stream** it executed before.  These tests pin
that down by hashing the executed stream — ``(repr(time), seq,
callback.__qualname__)`` per event, observed through a kernel probe —
plus the kernel's :class:`SimStats`, against recorded goldens.

If a change to the kernel or a model alters any golden here, it changed
observable scheduling behaviour, not just speed; that is either a bug
or a semantic change that must be called out (and these constants
re-recorded) explicitly.

Since PR8 every golden runs under all three fast-path modes
(``off``/``auto``/``on``).  A probed run never batches — the probe is a
kernel observer, so the macro/trace layer stands down — which makes the
probed goldens a direct check that observation forces the general path.
The real fast paths are exercised by the **no-probe** cross-mode test
at the bottom: same models, no observer, modes compared against
``off`` on model results and SimStats (and the harvest train must
actually have batched in ``auto``).

The hashes deliberately cover only the kernel-visible stream (times,
sequence numbers, callback identities) and SimStats — not histogram or
reservoir internals, which may legitimately differ in iteration detail.
"""

import hashlib

import numpy as np
import pytest

from repro.core.events import Simulator
from repro.datacenter.cluster import Balancer, ClusterConfig, ClusterSimulator
from repro.datacenter.hedging import kernel_hedged_latencies
from repro.datacenter.latency import lognormal_latency
from repro.interconnect.noc import MeshNoC, NoCConfig
from repro.interconnect.traffic import make_pattern, poisson_injection_times
from repro.sensor.harvest import (
    Harvester,
    IntermittentConfig,
    simulate_intermittent,
)

MODES = ("off", "auto", "on")


def _probed_sim(mode: str) -> tuple[Simulator, "hashlib._Hash"]:
    """A simulator whose executed event stream feeds a sha256."""
    sim = Simulator(fastpath=mode)
    digest = hashlib.sha256()

    def probe(s: Simulator, event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        digest.update(f"{event.time!r}|{event.seq}|{name}\n".encode())

    sim.add_probe(probe)
    return sim, digest


def _drive_cluster(sim: Simulator) -> tuple:
    cluster = ClusterSimulator(
        ClusterConfig(
            n_servers=8,
            balancer=Balancer.JSQ,
            slow_server_fraction=0.25,
            slow_factor=3.0,
        )
    )
    result = cluster.run(arrival_rate=6.0, n_requests=400, rng=123, sim=sim)
    return (result.latencies.tobytes(), result.utilization)


def _drive_hedging(sim: Simulator) -> tuple:
    dist = lognormal_latency(median_ms=10.0, sigma=0.8)
    result = kernel_hedged_latencies(
        dist, 300, trigger_quantile=0.9, rng=7, sim=sim
    )
    return (
        np.asarray(result["latencies"]).tobytes(),
        result["trigger_ms"],
        result["extra_load_fraction"],
    )


def _drive_noc(sim: Simulator) -> tuple:
    cfg = NoCConfig(width=4, height=4)
    pairs = make_pattern("uniform", 300, cfg.width, cfg.height, rng=5)
    times = poisson_injection_times(300, rate_per_cycle=0.8, rng=5)
    result = MeshNoC(cfg).run(pairs, injection_times=times, sim=sim)
    return (
        tuple(p.latency for p in result.delivered),
        result.dropped,
        result.cycles,
    )


def _drive_harvest(sim: Simulator) -> tuple:
    result = simulate_intermittent(
        Harvester(),
        IntermittentConfig(),
        checkpoint_interval_quanta=10,
        n_intervals=2_000,
        rng=3,
        sim=sim,
    )
    return (
        result.total_quanta_completed,
        result.committed_quanta,
        result.re_executed_quanta,
        result.checkpoints,
        result.power_failures,
        result.intervals,
    )


_DRIVERS = {
    "cluster": _drive_cluster,
    "hedging": _drive_hedging,
    "noc": _drive_noc,
    "harvest": _drive_harvest,
}


def _run_probed(name: str, mode: str = "auto") -> tuple[str, int, int, float]:
    sim, digest = _probed_sim(mode)
    _DRIVERS[name](sim)
    s = sim.stats
    return digest.hexdigest(), s.events_executed, s.events_cancelled, s.end_time


# The cluster and harvest goldens were re-recorded in PR8 — a called-out
# semantic change, exactly what this suite exists to surface:
#
# * **cluster**: arrivals are now bulk-loaded as one pre-scheduled train
#   (``schedule_batch``) before the drain starts, instead of scheduled
#   one by one while earlier events execute.  Arrival events therefore
#   carry *older* sequence numbers than any completion at the same
#   timestamp, so exact-time ties order arrival-first.  Ties between an
#   arrival and a completion are measure-zero in this workload: the
#   executed multiset of (time, callback) pairs is unchanged, and
#   SimStats (800 executed / 0 cancelled / end 66.6637403322754) is
#   byte-identical to the pre-PR8 golden.
# * **harvest**: the tick train is pre-scheduled with exact accumulated
#   times (t_{i+1} = t_i + interval) replacing the self-rescheduling
#   PeriodicSource.  The tick callback's qualname changed
#   (simulate_intermittent.<locals>.tick), and end_time is now the
#   accumulated float of the last tick (1999 additions of 0.01 →
#   19.990000000000325) rather than the horizon 19.995 the old
#   always-one-event-ahead source forced the clock onto.  Executed and
#   cancelled counts are unchanged.
GOLDENS = {
    "cluster": (
        "3f8b3911af53821dba1440b5857b47fd819ec5b0bc6421b90e03e3b1446ec698",
        800,
        0,
        66.6637403322754,
    ),
    "hedging": (
        "11bbfc192507de5916e35458abef532afe7910eb2fe34f9998a47802fa81ab6c",
        619,
        300,
        8345.870129856996,
    ),
    "noc": (
        "2c4b7b9a76d9571785843293efa2f11e19553e1ac9fc098ecab5e751080100ab",
        1102,
        0,
        379.0,
    ),
    "harvest": (
        "30a5464eb00b022e0b03a206536bc29e86566462a152f4988baccb18e24707f0",
        2000,
        0,
        19.990000000000325,
    ),
}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_stream_matches_golden(name: str, mode: str):
    assert _run_probed(name, mode) == GOLDENS[name]


def test_streams_reproducible_run_to_run():
    """Same seed, fresh kernel => identical stream, independent of goldens."""
    for name in _DRIVERS:
        assert _run_probed(name) == _run_probed(name), (
            f"{name} stream not reproducible"
        )


@pytest.mark.parametrize("name", sorted(_DRIVERS))
def test_modes_agree_without_observers(name: str):
    """No probe attached: the macro/trace fast paths genuinely engage,
    and every mode must still produce the off-mode result and stats."""
    outcomes = {}
    for mode in MODES:
        sim = Simulator(fastpath=mode)
        summary = _DRIVERS[name](sim)
        s = sim.stats
        outcomes[mode] = (
            summary,
            s.events_executed,
            s.events_cancelled,
            s.end_time,
        )
        if name == "harvest" and mode == "auto":
            # The whole tick train is one homogeneous run with a batch
            # twin; if this stops batching, the no-probe leg of this
            # test has silently stopped covering the fast path.
            assert sim.fastpath_stats.batched_events > 0
    assert outcomes["auto"] == outcomes["off"], f"{name}: auto diverged"
    assert outcomes["on"] == outcomes["off"], f"{name}: on diverged"


if __name__ == "__main__":
    # Regeneration helper:
    #   PYTHONPATH=src python tests/integration/test_golden_determinism.py
    for name in _DRIVERS:
        print(f'    "{name}": {_run_probed(name)!r},')
