"""Golden determinism suite (PR3).

The PR3 kernel overhaul (two-lane queue, token-free scheduling,
``schedule_many``) and the vectorized model fast paths are pure
performance work: for a fixed seed, every simulator must execute the
**byte-identical event stream** it executed before.  These tests pin
that down by hashing the executed stream — ``(repr(time), seq,
callback.__qualname__)`` per event, observed through a kernel probe —
plus the kernel's :class:`SimStats`, against recorded goldens.

If a change to the kernel or a model alters any golden here, it changed
observable scheduling behaviour, not just speed; that is either a bug
or a semantic change that must be called out (and these constants
re-recorded) explicitly.

The hashes deliberately cover only the kernel-visible stream (times,
sequence numbers, callback identities) and SimStats — not histogram or
reservoir internals, which may legitimately differ in iteration detail.
"""

import hashlib

from repro.core.events import Simulator
from repro.datacenter.cluster import Balancer, ClusterConfig, ClusterSimulator
from repro.datacenter.hedging import kernel_hedged_latencies
from repro.datacenter.latency import lognormal_latency
from repro.interconnect.noc import MeshNoC, NoCConfig
from repro.interconnect.traffic import make_pattern, poisson_injection_times
from repro.sensor.harvest import (
    Harvester,
    IntermittentConfig,
    simulate_intermittent,
)


def _probed_sim() -> tuple[Simulator, "hashlib._Hash"]:
    """A simulator whose executed event stream feeds a sha256."""
    sim = Simulator()
    digest = hashlib.sha256()

    def probe(s: Simulator, event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        digest.update(f"{event.time!r}|{event.seq}|{name}\n".encode())

    sim.add_probe(probe)
    return sim, digest


def _run_cluster() -> tuple[str, int, int, float]:
    sim, digest = _probed_sim()
    cluster = ClusterSimulator(
        ClusterConfig(
            n_servers=8,
            balancer=Balancer.JSQ,
            slow_server_fraction=0.25,
            slow_factor=3.0,
        )
    )
    cluster.run(arrival_rate=6.0, n_requests=400, rng=123, sim=sim)
    s = sim.stats
    return digest.hexdigest(), s.events_executed, s.events_cancelled, s.end_time


def _run_hedging() -> tuple[str, int, int, float]:
    sim, digest = _probed_sim()
    dist = lognormal_latency(median_ms=10.0, sigma=0.8)
    kernel_hedged_latencies(dist, 300, trigger_quantile=0.9, rng=7, sim=sim)
    s = sim.stats
    return digest.hexdigest(), s.events_executed, s.events_cancelled, s.end_time


def _run_noc() -> tuple[str, int, int, float]:
    sim, digest = _probed_sim()
    cfg = NoCConfig(width=4, height=4)
    pairs = make_pattern("uniform", 300, cfg.width, cfg.height, rng=5)
    times = poisson_injection_times(300, rate_per_cycle=0.8, rng=5)
    MeshNoC(cfg).run(pairs, injection_times=times, sim=sim)
    s = sim.stats
    return digest.hexdigest(), s.events_executed, s.events_cancelled, s.end_time


def _run_harvest() -> tuple[str, int, int, float]:
    sim, digest = _probed_sim()
    simulate_intermittent(
        Harvester(),
        IntermittentConfig(),
        checkpoint_interval_quanta=10,
        n_intervals=2_000,
        rng=3,
        sim=sim,
    )
    s = sim.stats
    return digest.hexdigest(), s.events_executed, s.events_cancelled, s.end_time


GOLDENS = {
    "cluster": (
        "ce2ead1222bef72dfa908b509f620d1e44f080b1cf987f4764efabed28188c4c",
        800,
        0,
        66.6637403322754,
    ),
    "hedging": (
        "11bbfc192507de5916e35458abef532afe7910eb2fe34f9998a47802fa81ab6c",
        619,
        300,
        8345.870129856996,
    ),
    "noc": (
        "2c4b7b9a76d9571785843293efa2f11e19553e1ac9fc098ecab5e751080100ab",
        1102,
        0,
        379.0,
    ),
    "harvest": (
        "8eacc8b8ba8b493a4b75e03c6b1c2f93334e48e580803565ecc51cb1892fc9e0",
        2000,
        0,
        19.995,
    ),
}

_RUNNERS = {
    "cluster": _run_cluster,
    "hedging": _run_hedging,
    "noc": _run_noc,
    "harvest": _run_harvest,
}


def test_cluster_stream_matches_golden():
    assert _run_cluster() == GOLDENS["cluster"]


def test_hedging_stream_matches_golden():
    assert _run_hedging() == GOLDENS["hedging"]


def test_noc_stream_matches_golden():
    assert _run_noc() == GOLDENS["noc"]


def test_harvest_stream_matches_golden():
    assert _run_harvest() == GOLDENS["harvest"]


def test_streams_reproducible_run_to_run():
    """Same seed, fresh kernel => identical stream, independent of goldens."""
    for name, runner in _RUNNERS.items():
        assert runner() == runner(), f"{name} stream not reproducible"


if __name__ == "__main__":
    # Regeneration helper:
    #   PYTHONPATH=src python tests/integration/test_golden_determinism.py
    for name, runner in _RUNNERS.items():
        print(f'    "{name}": {runner()!r},')
