"""Integration tests: the substrates composed, as the agenda uses them."""

import numpy as np
import pytest

from repro.core import (
    DiscreteParam,
    Direction,
    EnergyLedger,
    Explorer,
    Objective,
    combine_ledgers,
)
from repro.core.agenda import SystemConfig, evaluate_system
from repro.crosscut import SECDED, TaintTracker, address_range_policy, random_word
from repro.datacenter import (
    ClusterConfig,
    ClusterSimulator,
    hedging_effectiveness,
    lognormal_latency,
)
from repro.memory import Cache, CacheConfig, MESIBus, CoherenceConfig, MemoryHierarchy
from repro.processor import (
    BIG_OOO_CORE,
    LITTLE_INORDER_CORE,
    InOrderConfig,
    InOrderCore,
    generate_trace,
)
from repro.workloads import get_kernel
from repro.accelerator import ridge_point, roofline


class TestCoreWithRealCache:
    """The in-order core fed by real cache outcomes, not a flat rate."""

    def test_cache_derived_miss_flags_slow_the_core(self):
        trace = generate_trace(4000, rng=0)
        memory_ops = [i for i in trace if i.is_memory]
        cache = Cache(CacheConfig(size_bytes=4 * 1024, associativity=4))
        miss_flags = [
            not cache.access(int(i.address), i.opcode.value == "store")
            for i in memory_ops
        ]
        core = InOrderCore(InOrderConfig(miss_rate=0.0))
        with_cache = core.run(trace, miss_flags=miss_flags)
        perfect = InOrderCore(InOrderConfig(miss_rate=0.0)).run(
            trace, miss_flags=[False] * len(memory_ops)
        )
        measured_miss_rate = float(np.mean(miss_flags))
        assert measured_miss_rate > 0.01
        assert with_cache.cpi > perfect.cpi
        # CPI inflation tracks the measured miss rate to first order.
        expected = perfect.cpi + measured_miss_rate * 0.35 * 50
        assert with_cache.cpi == pytest.approx(expected, rel=0.5)

    def test_bigger_cache_means_faster_core(self):
        trace = generate_trace(4000, rng=1)
        memory_ops = [i for i in trace if i.is_memory]

        def cpi_with(cache_kb):
            cache = Cache(
                CacheConfig(size_bytes=cache_kb * 1024, associativity=8)
            )
            flags = [
                not cache.access(int(i.address)) for i in memory_ops
            ]
            return InOrderCore(InOrderConfig(miss_rate=0.0)).run(
                trace, miss_flags=flags
            ).cpi

        assert cpi_with(64) <= cpi_with(2)


class TestLedgerComposition:
    """Subsystem ledgers merge into one system-level energy picture."""

    def test_hierarchy_and_coherence_ledgers_combine(self):
        from repro.memory import sharing_pattern_trace
        from repro.processor import zipf_addresses

        hierarchy = MemoryHierarchy()
        h_result = hierarchy.run_trace(zipf_addresses(3000, rng=0))

        bus = MESIBus(CoherenceConfig(n_cores=4))
        bus.run_trace(sharing_pattern_trace("migratory", 4, 16, 2000, rng=0))

        system = combine_ledgers(
            {"memory": h_result.ledger, "coherence": bus.ledger}
        )
        assert system.total() == pytest.approx(
            h_result.ledger.total() + bus.ledger.total()
        )
        breakdown = system.breakdown(1)
        assert set(breakdown) == {"memory", "coherence"}


class TestSecurityReliabilityPipeline:
    """Trace -> taint tracking + ECC-protected storage, end to end."""

    def test_tainted_word_survives_ecc_round_trip(self):
        trace = generate_trace(300, rng=2)
        policy = address_range_policy((0, 1 << 16), (1 << 30, 1 << 31))
        tracker = TaintTracker(policy)
        ift = tracker.run(trace)
        assert ift.instructions == 300

        # Store a "tainted" register image through SECDED with an
        # injected soft error: data integrity is preserved.
        code = SECDED(64)
        word = random_word(rng=3)
        decoded, status = code.inject_and_decode(word, 1, rng=4)
        assert status == "corrected"
        np.testing.assert_array_equal(decoded, word)


class TestDatacenterComposition:
    def test_cluster_tail_then_hedging(self):
        """Measured cluster p99 feeds the hedging decision."""
        sim = ClusterSimulator(
            ClusterConfig(n_servers=16, slow_server_fraction=0.1,
                          slow_factor=8.0)
        )
        res = sim.run(arrival_rate=10.0, n_requests=20_000, rng=0)
        tail_ratio = res.p99 / res.p50
        assert tail_ratio > 3.0  # stragglers create a real tail
        hedge = hedging_effectiveness(
            lognormal_latency(res.p50, 0.6), fanout=50,
            n_requests=2000, rng=0,
        )
        assert hedge["p99_reduction"] > 0.2


class TestWorkloadToPlatform:
    def test_kernel_intensity_places_on_roofline(self):
        peak = 1e12
        bw = 100e9
        ridge = ridge_point(peak, bw)
        gemm = get_kernel("dense_matmul")
        triad = get_kernel("stream_triad")
        assert gemm.intensity_ops_per_byte > ridge / 2
        assert triad.intensity_ops_per_byte < ridge
        gemm_rate = roofline(gemm.intensity_ops_per_byte, peak, bw)
        triad_rate = roofline(triad.intensity_ops_per_byte, peak, bw)
        assert gemm_rate > 5 * triad_rate

    def test_agenda_dse_grid_is_pareto_consistent(self):
        def evaluate(cfg):
            system = SystemConfig(
                node_name="22nm",
                core=cfg["core"],
                n_cores=cfg["n_cores"],
                accelerator_coverage=cfg["coverage"],
            )
            return evaluate_system(system, 10.0)

        explorer = Explorer(evaluate)
        result = explorer.grid(
            [
                DiscreteParam("core", (BIG_OOO_CORE, LITTLE_INORDER_CORE)),
                DiscreteParam("n_cores", (1, 8, 64)),
                DiscreteParam("coverage", (0.0, 0.5)),
            ]
        )
        assert len(result.points) == 12
        front = result.front(
            [
                Objective("throughput_ops", Direction.MAXIMIZE),
                Objective("energy_per_op_j", Direction.MINIMIZE),
            ]
        )
        assert 1 <= len(front) <= 12
        # Every evaluated point respects the envelope.
        for p in result.points:
            assert p.metric("power_w") <= 10.0 + 1e-9
        # The frontier contains the single best-efficiency point.
        best = result.best("efficiency_ops_per_watt")
        assert any(p.config == best.config for p in front)
