"""Tests for tail-at-scale order statistics and hedging (E07)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    exponential_latency,
    fanout_latency_quantile,
    hedged_request_latencies,
    hedging_effectiveness,
    lognormal_latency,
    median_inflation,
    monte_carlo_fanout,
    paper_claim,
    partition_vs_fanout_tradeoff,
    straggler_mixture,
    straggler_probability,
    tied_request_latencies,
)


class TestPaperClaim:
    def test_exact_63_percent(self):
        """The paper's sentence, verbatim: fanout 100, p99 => 63%."""
        claim = paper_claim()
        assert claim["fraction_delayed"] == pytest.approx(0.634, abs=0.001)
        assert abs(claim["fraction_delayed"] - claim["paper_value"]) < 0.01

    def test_formula_edge_cases(self):
        assert straggler_probability(0.99, 1) == pytest.approx(0.01)
        assert straggler_probability(1.0, 100) == 0.0
        assert straggler_probability(0.0, 5) == 1.0

    def test_monotone_in_fanout(self):
        probs = straggler_probability(0.99, np.array([1, 10, 100, 1000]))
        assert np.all(np.diff(probs) > 0)
        assert probs[-1] > 0.9999

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_property_is_probability(self, q, n):
        p = straggler_probability(q, n)
        assert 0.0 <= p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            straggler_probability(1.5, 10)
        with pytest.raises(ValueError):
            straggler_probability(0.5, 0)


class TestFanoutQuantiles:
    def test_closed_form_matches_monte_carlo(self):
        dist = lognormal_latency(10.0, 0.5)
        closed = fanout_latency_quantile(dist, 50, 0.5)
        mc = monte_carlo_fanout(dist, 50, n_requests=20_000, rng=0)
        assert mc["median"] == pytest.approx(closed, rel=0.03)

    def test_mc_reproduces_63_percent(self):
        dist = lognormal_latency(10.0, 0.5)
        mc = monte_carlo_fanout(dist, 100, n_requests=20_000, rng=1)
        assert mc["fraction_beyond_server_p99"] == pytest.approx(0.634, abs=0.02)

    def test_median_inflation_grows(self):
        dist = lognormal_latency(10.0, 0.5)
        out = median_inflation(dist, [1, 10, 100])
        assert np.all(np.diff(out["request_median"]) > 0)
        assert out["inflation_vs_server_median"][0] == pytest.approx(1.0)
        # At fanout 100 the request median sits at the per-server
        # ~p99.3 (0.5^(1/100)).
        assert out["effective_server_quantile"][-1] == pytest.approx(
            0.5 ** 0.01, rel=1e-6
        )

    def test_fanout_one_is_identity(self):
        dist = exponential_latency(5.0)
        assert fanout_latency_quantile(dist, 1, 0.9) == pytest.approx(
            float(dist.quantile(0.9)[0])
        )

    def test_partition_tradeoff_u_shape(self):
        dist = straggler_mixture()
        out = partition_vs_fanout_tradeoff(
            dist, total_work_ms=2000.0, fanouts=[1, 4, 16, 64, 512, 2048]
        )
        medians = out["median_ms"]
        best = int(np.argmin(medians))
        assert 0 < best < len(medians) - 1  # interior optimum

    def test_validation(self):
        dist = exponential_latency(1.0)
        with pytest.raises(ValueError):
            fanout_latency_quantile(dist, 0, 0.5)
        with pytest.raises(ValueError):
            fanout_latency_quantile(dist, 10, 1.0)
        with pytest.raises(ValueError):
            monte_carlo_fanout(dist, 0)
        with pytest.raises(ValueError):
            median_inflation(dist, [0])
        with pytest.raises(ValueError):
            partition_vs_fanout_tradeoff(dist, -1.0, [1])


class TestDistributions:
    def test_exponential_quantile(self):
        dist = exponential_latency(10.0)
        # p63.2 of an exponential is the mean.
        assert float(dist.quantile(1 - np.exp(-1))[0]) == pytest.approx(10.0)

    def test_lognormal_median(self):
        dist = lognormal_latency(7.0, 0.4)
        assert float(dist.quantile(0.5)[0]) == pytest.approx(7.0)

    def test_straggler_mixture_has_heavy_tail(self):
        base = lognormal_latency(10.0, 0.3)
        heavy = straggler_mixture(10.0, 0.3, straggler_prob=0.05,
                                  straggler_factor=20.0)
        p999_base = float(np.quantile(base.sample(100_000, rng=0), 0.999))
        p999_heavy = float(np.quantile(heavy.sample(100_000, rng=0), 0.999))
        assert p999_heavy > 3 * p999_base

    def test_sampling_deterministic(self):
        dist = straggler_mixture()
        a = dist.sample(100, rng=5)
        b = dist.sample(100, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_latency(0.0)
        with pytest.raises(ValueError):
            lognormal_latency(1.0, 0.0)
        with pytest.raises(ValueError):
            straggler_mixture(straggler_prob=2.0)
        dist = exponential_latency(1.0)
        with pytest.raises(ValueError):
            dist.sample(-1)
        with pytest.raises(ValueError):
            dist.quantile(1.5)


class TestHedging:
    def test_hedging_cuts_the_tail(self):
        dist = straggler_mixture()
        out = hedging_effectiveness(dist, fanout=100, n_requests=2000, rng=0)
        assert out["hedged_p99"] < 0.5 * out["plain_p99"]
        # Dean & Barroso's headline: big tail cut for a few percent load.
        assert out["extra_load_fraction"] < 0.10

    def test_hedged_never_slower_than_primary_plus_trigger(self):
        dist = lognormal_latency(10.0, 0.5)
        out = hedged_request_latencies(dist, 5000, rng=0)
        assert np.all(out["latencies"] <= out["baseline"] + 1e-12)

    def test_extra_load_matches_trigger(self):
        dist = lognormal_latency(10.0, 0.5)
        out = hedged_request_latencies(
            dist, 50_000, trigger_quantile=0.9, rng=1
        )
        assert out["extra_load_fraction"] == pytest.approx(0.1, abs=0.01)

    def test_tied_requests_better_median_than_single(self):
        dist = lognormal_latency(10.0, 0.5)
        tied = tied_request_latencies(dist, 20_000, rng=2)
        single = dist.sample(20_000, rng=3)
        assert np.median(tied) < np.median(single)

    def test_validation(self):
        dist = exponential_latency(1.0)
        with pytest.raises(ValueError):
            hedged_request_latencies(dist, 0)
        with pytest.raises(ValueError):
            hedged_request_latencies(dist, 10, trigger_quantile=1.0)
        with pytest.raises(ValueError):
            tied_request_latencies(dist, 10, cancellation_overhead_ms=-1.0)
        with pytest.raises(ValueError):
            hedging_effectiveness(dist, fanout=0)
