"""Tests for cluster autoscaling vs energy proportionality."""

import numpy as np
import pytest

from repro.datacenter import (
    AutoscaleConfig,
    ServerPowerModel,
    diurnal_load,
    policy_energy_comparison,
    provision,
)


class TestDiurnalLoad:
    def test_shape(self):
        load = diurnal_load(rng=0)
        assert load.size == 288
        # Peak is well above the trough (~5x by default).
        assert load.max() > 3 * load.min()
        assert np.all(load >= 0)

    def test_deterministic(self):
        np.testing.assert_array_equal(diurnal_load(rng=1), diurnal_load(rng=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_load(n_intervals=1)
        with pytest.raises(ValueError):
            diurnal_load(trough_fraction=0.0)
        with pytest.raises(ValueError):
            diurnal_load(noise=-1.0)


class TestProvisioning:
    def test_static_never_overloads(self):
        res = provision("static_peak", diurnal_load(rng=0))
        assert res.overloaded_intervals == 0
        assert res.boots == 0

    def test_autoscale_saves_energy(self):
        load = diurnal_load(rng=0)
        static = provision("static_peak", load)
        auto = provision("autoscale", load)
        assert auto.energy_j < static.energy_j
        assert auto.mean_servers < static.mean_servers

    def test_autoscale_lag_costs_qos(self):
        # With a long reaction lag and a fast-moving load, the
        # autoscaler trails the ramp and overloads.
        load = diurnal_load(n_intervals=96, noise=0.15, rng=2)
        slow = provision(
            "autoscale", load,
            config=AutoscaleConfig(reaction_intervals=8, headroom=1.05),
        )
        assert slow.overloaded_intervals > 0

    def test_proportional_hw_matches_autoscale_without_risk(self):
        out = policy_energy_comparison(rng=0)
        assert out["proportional_hw"]["energy_vs_static"] < 0.85
        assert out["proportional_hw"]["overload_rate"] == 0.0
        assert (
            out["proportional_hw"]["energy_j"]
            < 1.1 * out["autoscale"]["energy_j"]
        )

    def test_boot_energy_charged(self):
        load = diurnal_load(rng=0)
        cheap = provision(
            "autoscale", load, config=AutoscaleConfig(boot_energy_j=0.0)
        )
        dear = provision(
            "autoscale", load, config=AutoscaleConfig(boot_energy_j=1e6)
        )
        assert dear.energy_j > cheap.energy_j
        assert dear.boots == cheap.boots > 0

    def test_zero_lag_tracks_exactly(self):
        load = diurnal_load(rng=0)
        res = provision(
            "autoscale", load,
            config=AutoscaleConfig(reaction_intervals=0, headroom=1.2),
        )
        assert res.overloaded_intervals == 0

    def test_validation(self):
        load = diurnal_load(rng=0)
        with pytest.raises(ValueError):
            provision("carrier_pigeon", load)
        with pytest.raises(ValueError):
            provision("autoscale", np.array([]))
        with pytest.raises(ValueError):
            provision("autoscale", np.array([-1.0]))
        with pytest.raises(ValueError):
            provision("autoscale", load, interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(server_capacity_rps=0.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(headroom=0.9)
