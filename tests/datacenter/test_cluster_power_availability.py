"""Tests for the cluster simulator, power models, availability, and TCO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    Balancer,
    ClusterConfig,
    ClusterSimulator,
    DatacenterPowerModel,
    RedundancyCostModel,
    ServerPowerModel,
    TCOModel,
    availability_from_nines,
    datacenter_ops_within_budget,
    downtime_minutes_per_year,
    erlang_c,
    k_of_n_availability,
    mm1_mean_latency,
    mmc_mean_latency,
    nines,
    paper_five_nines_check,
    parallel_availability,
    replicas_for_target,
    series_availability,
    utilization_latency_tradeoff,
)


class TestQueueingClosedForms:
    def test_mm1(self):
        assert mm1_mean_latency(0.5, 1.0) == pytest.approx(2.0)
        assert mm1_mean_latency(1.0, 1.0) == float("inf")

    def test_erlang_c_limits(self):
        assert erlang_c(1, 0.5) == pytest.approx(0.5)  # M/M/1: P(queue)=rho
        assert erlang_c(4, 4.0) == 1.0  # saturated
        assert erlang_c(10, 0.01) < 1e-10  # nearly idle

    def test_mmc_approaches_mm1_with_one_server(self):
        assert mmc_mean_latency(0.7, 1.0, 1) == pytest.approx(
            mm1_mean_latency(0.7, 1.0)
        )

    def test_more_servers_less_waiting(self):
        # Same utilization, more servers: better latency (pooling).
        l4 = mmc_mean_latency(0.7 * 4, 1.0, 4)
        l16 = mmc_mean_latency(0.7 * 16, 1.0, 16)
        assert l16 < l4

    def test_tradeoff_curve_monotone(self):
        out = utilization_latency_tradeoff(np.array([0.3, 0.6, 0.9, 0.97]))
        assert np.all(np.diff(out["mean_latency"]) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_mean_latency(0.0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            utilization_latency_tradeoff(np.array([1.0]))


class TestClusterSimulator:
    def test_matches_mm1(self):
        sim = ClusterSimulator(ClusterConfig(n_servers=1))
        res = sim.run(arrival_rate=0.6, n_requests=60_000, rng=0)
        assert res.mean_latency == pytest.approx(
            mm1_mean_latency(0.6, 1.0), rel=0.1
        )

    def test_jsq_close_to_mmc(self):
        # JSQ approximates the single-queue M/M/c pooling behaviour.
        sim = ClusterSimulator(
            ClusterConfig(n_servers=8, balancer=Balancer.JSQ)
        )
        res = sim.run(arrival_rate=6.0, n_requests=40_000, rng=0)
        assert res.mean_latency == pytest.approx(
            mmc_mean_latency(6.0, 1.0, 8), rel=0.25
        )

    def test_balancer_quality_ordering(self):
        # At high load: JSQ <= power-of-two <= random on mean latency.
        results = {}
        for b in (Balancer.RANDOM, Balancer.POWER_OF_TWO, Balancer.JSQ):
            sim = ClusterSimulator(ClusterConfig(n_servers=16, balancer=b))
            results[b] = sim.run(14.0, 30_000, rng=1).mean_latency
        assert results[Balancer.JSQ] <= results[Balancer.POWER_OF_TWO]
        assert (
            results[Balancer.POWER_OF_TWO] < results[Balancer.RANDOM]
        )

    def test_stragglers_inflate_p99(self):
        clean = ClusterSimulator(ClusterConfig(n_servers=8)).run(
            4.0, 20_000, rng=2
        )
        slow = ClusterSimulator(
            ClusterConfig(n_servers=8, slow_server_fraction=0.25,
                          slow_factor=10.0)
        ).run(4.0, 20_000, rng=2)
        assert slow.p99 > 2 * clean.p99

    def test_utilization_reported(self):
        res = ClusterSimulator(ClusterConfig(n_servers=4)).run(
            2.0, 20_000, rng=3
        )
        assert 0.3 < res.utilization < 0.7  # offered 0.5

    def test_validation(self):
        sim = ClusterSimulator()
        with pytest.raises(ValueError):
            sim.run(0.0, 10)
        with pytest.raises(ValueError):
            sim.run(1.0, 0)
        with pytest.raises(ValueError):
            ClusterConfig(n_servers=0)
        with pytest.raises(ValueError):
            ClusterConfig(slow_server_fraction=1.5)


class TestServerPower:
    def test_idle_and_peak_endpoints(self):
        m = ServerPowerModel(idle_w=100.0, peak_w=300.0)
        assert float(m.power_w(0.0)) == 100.0
        assert float(m.power_w(1.0)) == 300.0

    def test_proportionality_index(self):
        perfect = ServerPowerModel(idle_w=0.0, peak_w=300.0)
        poor = ServerPowerModel(idle_w=250.0, peak_w=300.0)
        assert perfect.energy_proportionality_index() == 1.0
        assert poor.energy_proportionality_index() < 0.2

    def test_efficiency_peaks_at_high_utilization(self):
        m = ServerPowerModel()
        eff = m.efficiency_ops_per_joule(np.array([0.1, 0.5, 1.0]), 1e12)
        assert np.all(np.diff(eff) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerPowerModel(idle_w=400.0, peak_w=300.0)
        m = ServerPowerModel()
        with pytest.raises(ValueError):
            m.power_w(1.5)

    def test_datacenter_budget(self):
        out = datacenter_ops_within_budget(
            1e12, ServerPowerModel(), budget_w=10e6
        )
        assert out["total_ops_per_s"] < 1e18  # 2012 servers miss exa-op
        assert out["required_gain_for_exaop"] > 10.0

    def test_facility_model(self):
        dc = DatacenterPowerModel(pue=2.0, provisioned_it_w=1e6)
        assert dc.facility_power_w(1e6) == 2e6
        assert dc.max_servers(ServerPowerModel(peak_w=500.0)) == 2000
        with pytest.raises(ValueError):
            DatacenterPowerModel(pue=0.9)


class TestAvailability:
    def test_series_parallel(self):
        assert series_availability([0.9, 0.9]) == pytest.approx(0.81)
        assert parallel_availability([0.9, 0.9]) == pytest.approx(0.99)

    def test_k_of_n(self):
        # 1-of-2 equals parallel; 2-of-2 equals series.
        assert k_of_n_availability(1, 2, 0.9) == pytest.approx(0.99)
        assert k_of_n_availability(2, 2, 0.9) == pytest.approx(0.81)

    def test_replicas_for_target(self):
        n = replicas_for_target(0.99999, 0.99)
        assert n == 3  # 1 - 0.01^3 = 0.999999 >= five nines
        assert replicas_for_target(0.9, 0.99) == 1

    def test_nines_round_trip(self):
        for k in (2.0, 3.0, 5.0):
            assert nines(availability_from_nines(k)) == pytest.approx(k)

    def test_paper_five_nines_sentence(self):
        out = paper_five_nines_check()
        # "all but five minutes per year"
        assert out["downtime_minutes_per_year"] == pytest.approx(5.26, abs=0.05)

    def test_cost_of_nines_staircase(self):
        model = RedundancyCostModel(component_availability=0.99)
        curve = model.cost_of_nines_curve([2, 4, 6, 8])
        assert np.all(np.diff(curve["cost_usd"]) >= 0)
        assert curve["replicas"][-1] > curve["replicas"][0]

    def test_commodity_parts_reach_five_nines_cheaply(self):
        # Table A.2's hope: five 9s "where the cost is only a few
        # dollars" — replication of cheap parts achieves the nines.
        model = RedundancyCostModel(
            component_availability=0.99, unit_cost_usd=5.0,
            coordination_cost_usd=2.0,
        )
        out = model.cost_for_target(availability_from_nines(5.0))
        assert out["achieved_nines"] >= 5.0
        assert out["cost_usd"] < 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            series_availability([])
        with pytest.raises(ValueError):
            parallel_availability([1.5])
        with pytest.raises(ValueError):
            k_of_n_availability(3, 2, 0.9)
        with pytest.raises(ValueError):
            nines(2.0)
        with pytest.raises(ValueError):
            availability_from_nines(-1.0)

    @given(st.floats(min_value=0.5, max_value=0.999), st.integers(1, 10))
    @settings(max_examples=30)
    def test_property_parallel_improves(self, a, n):
        avail = parallel_availability([a] * n)
        assert avail >= a - 1e-12
        assert 0.0 <= avail <= 1.0


class TestTCO:
    def test_breakdown_sums(self):
        tco = TCOModel()
        bd = tco.breakdown()
        assert bd["total"] == pytest.approx(
            bd["server_capex"] + bd["facility_capex"] + bd["energy"]
            + bd["opex"]
        )

    def test_cost_per_request_scales_inverse(self):
        tco = TCOModel()
        assert tco.cost_per_request_usd(1000.0) == pytest.approx(
            tco.cost_per_request_usd(100.0) / 10.0
        )

    def test_energy_share_grows_with_power_price(self):
        cheap = TCOModel(electricity_usd_per_kwh=0.03)
        dear = TCOModel(electricity_usd_per_kwh=0.30)
        assert dear.energy_cost_share() > cheap.energy_cost_share()

    def test_validation(self):
        with pytest.raises(ValueError):
            TCOModel(n_servers=0)
        with pytest.raises(ValueError):
            TCOModel(average_power_w_per_server=400.0,
                     provisioned_w_per_server=300.0)
        with pytest.raises(ValueError):
            TCOModel().cost_per_request_usd(0.0)
