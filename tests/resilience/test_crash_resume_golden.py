"""Golden crash-resume determinism (PR4 tentpole).

For every kernel-hosted model, a run that crashes mid-flight and
resumes from the last periodic checkpoint must execute **exactly** the
event stream of a run that never crashed: same ``(time, seq,
callback)`` triples, same :class:`SimStats`, same final clock.  That is
the determinism guarantee that makes checkpoint/restart safe to use
under the paper's reproducibility standard — a resumed experiment *is*
the experiment.

Technique: the executed stream is recorded as lines through a kernel
probe; the line list is itself registered as a checkpointable, so a
restore truncates it back to the snapshot point exactly as the kernel
discards post-snapshot events.  The crash is a ``_CrashOnce`` event
scheduled in **both** runs (disarmed in the straight run) so the two
runs issue identical sequence numbers; on replay after the restore it
re-executes as a no-op, exactly like any other replayed event.
"""

import pytest

from repro.core.events import FunctionCheckpoint, Simulator

# Since PR8 every crash-resume golden runs under all three fast-path
# modes.  The probe keeps the drain on the general path (observation
# vetoes batching), so what the parametrization actually pins is the
# fast-path *bookkeeping* riding through snapshot()/restore(): run
# records rebuilt after a restore, installed traces invalidated, and
# the replay still byte-identical to the straight run.
MODES = ("off", "auto", "on")
from repro.datacenter.cluster import Balancer, ClusterConfig, ClusterSimulator
from repro.datacenter.hedging import kernel_hedged_latencies
from repro.datacenter.latency import lognormal_latency
from repro.interconnect.noc import MeshNoC, NoCConfig
from repro.interconnect.traffic import make_pattern, poisson_injection_times
from repro.resilience import CheckpointManager, SimulatedCrash
from repro.sensor.harvest import (
    Harvester,
    IntermittentConfig,
    simulate_intermittent,
)


def _crash_once(sim: Simulator, box: dict) -> None:
    """Crash event: raises when armed, no-ops on replay (and in the
    straight-run twin, which schedules it disarmed for seq parity)."""
    if box["armed"]:
        box["armed"] = False
        raise SimulatedCrash(f"injected crash at t={sim.now:g}")


def _recorded_sim(mode: str):
    """Simulator whose executed stream is a checkpointable line list."""
    sim = Simulator(fastpath=mode)
    lines: list[str] = []

    def probe(s: Simulator, event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        lines.append(f"{event.time!r}|{event.seq}|{name}")

    sim.add_probe(probe)
    # Every snapshot here is taken inside a CheckpointManager tick, and
    # probes fire *after* the callback returns — so the tick's own line
    # lands right after the snapshot is captured, yet the tick is
    # already consumed and will not replay.  The stream position at the
    # checkpoint therefore includes the in-flight tick: len + 1.
    sim.register_checkpointable(FunctionCheckpoint(
        lambda: len(lines) + 1,
        lambda n: lines.__delitem__(slice(n, None)),
    ))
    return sim, lines


def _stats(sim: Simulator):
    s = sim.stats
    return (s.events_executed, s.events_cancelled, s.end_time, sim.now)


def _run(model_fn, period, crash_at, armed, resume_until, mode):
    """One run; ``armed=False`` is the straight-through reference (the
    crash event is still scheduled, disarmed, so both runs issue the
    identical sequence-number stream)."""
    sim, lines = _recorded_sim(mode)
    mgr = CheckpointManager(period=period, keep=2)
    mgr.arm(sim)
    sim.schedule_at(crash_at, _crash_once, {"armed": armed})
    if not armed:
        model_fn(sim)
    else:
        with pytest.raises(SimulatedCrash):
            model_fn(sim)
        assert mgr.taken > 0, "crash must land after the first checkpoint"
        sim.restore(mgr.latest)
        if resume_until is None:
            sim.run()
        else:
            sim.run(until=resume_until)
    return lines, _stats(sim)


def _assert_resume_matches(
    model_fn, period, crash_at, resume_until=None, mode="auto"
):
    straight_lines, straight_stats = _run(
        model_fn, period, crash_at, False, resume_until, mode
    )
    resumed_lines, resumed_stats = _run(
        model_fn, period, crash_at, True, resume_until, mode
    )
    assert resumed_lines == straight_lines
    assert resumed_stats == straight_stats


@pytest.mark.parametrize("mode", MODES)
def test_cluster_crash_resume_is_deterministic(mode):
    def run(sim):
        ClusterSimulator(ClusterConfig(
            n_servers=8,
            balancer=Balancer.JSQ,
            slow_server_fraction=0.25,
            slow_factor=3.0,
        )).run(arrival_rate=6.0, n_requests=400, rng=123, sim=sim)

    # Straight run ends ~66.7s; checkpoint every 10, crash at 35.
    _assert_resume_matches(run, period=10.0, crash_at=35.0, mode=mode)


@pytest.mark.parametrize("mode", MODES)
def test_hedging_crash_resume_is_deterministic(mode):
    def run(sim):
        dist = lognormal_latency(median_ms=10.0, sigma=0.8)
        kernel_hedged_latencies(dist, 300, trigger_quantile=0.9, rng=7, sim=sim)

    # Straight run ends ~8346ms; checkpoint every 1000, crash at 4500.
    _assert_resume_matches(run, period=1000.0, crash_at=4500.0, mode=mode)


@pytest.mark.parametrize("mode", MODES)
def test_noc_crash_resume_is_deterministic(mode):
    cfg = NoCConfig(width=4, height=4)
    pairs = make_pattern("uniform", 300, cfg.width, cfg.height, rng=5)
    times = poisson_injection_times(300, rate_per_cycle=0.8, rng=5)

    def run(sim):
        MeshNoC(cfg).run(pairs, injection_times=times, sim=sim)

    # Straight run drains ~cycle 379; checkpoint every 60, crash at 210.
    _assert_resume_matches(
        run, period=60.0, crash_at=210.0, resume_until=200_000.0, mode=mode
    )


@pytest.mark.parametrize("mode", MODES)
def test_harvest_crash_resume_is_deterministic(mode):
    def run(sim):
        simulate_intermittent(
            Harvester(),
            IntermittentConfig(),
            checkpoint_interval_quanta=10,
            n_intervals=2_000,
            rng=3,
            sim=sim,
        )

    # Straight run ends at 19.995s; checkpoint every 3, crash at 11.
    _assert_resume_matches(
        run, period=3.0, crash_at=11.0, resume_until=(2_000 - 0.5) * 0.01,
        mode=mode,
    )
