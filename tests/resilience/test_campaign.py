"""Tests for the fault-campaign orchestration and ResilienceReport."""

import json

import pytest

from repro.core import instrument
from repro.resilience.campaign import (
    ALL_MODELS,
    ResilienceReport,
    architectural_campaign,
    campaign_job,
    run_campaign,
)


@pytest.fixture()
def small_report():
    return run_campaign(
        models=["harvest"],
        intensities=[0.0, 1.0],
        reps=1,
        scale="smoke",
        skip_architectural=True,
    )


class TestCampaignJob:
    def test_returns_one_trial_per_rep(self):
        out = campaign_job({
            "model": "harvest", "intensity": 0.0, "reps": 2,
            "seed": 7, "scale": "smoke",
        })
        assert out["model"] == "harvest"
        assert len(out["trials"]) == 2
        for trial in out["trials"]:
            assert set(trial) == {
                "throughput", "tail", "energy", "faults", "events",
            }
            assert trial["faults"] == 0  # intensity 0 injects nothing

    def test_deterministic_for_seed(self):
        config = {
            "model": "cluster", "intensity": 1.0, "reps": 1,
            "seed": 3, "scale": "smoke",
        }
        # Compare as JSON text: NaN (cluster energy) breaks dict ==.
        first = json.dumps(campaign_job(dict(config)), sort_keys=True)
        second = json.dumps(campaign_job(dict(config)), sort_keys=True)
        assert first == second

    def test_faults_scale_with_intensity(self):
        def faults(intensity):
            out = campaign_job({
                "model": "cluster", "intensity": intensity, "reps": 2,
                "seed": 1, "scale": "smoke",
            })
            return sum(t["faults"] for t in out["trials"])

        assert faults(0.0) == 0
        assert faults(2.0) > faults(0.5)

    def test_checkpoint_resume_skips_done_reps(self, tmp_path):
        config = {
            "model": "harvest", "intensity": 0.5, "reps": 3,
            "seed": 11, "scale": "smoke",
            "checkpoint_path": str(tmp_path),
            "crash_once_path": str(tmp_path / "crashed.marker"),
        }
        from repro.resilience import JobCheckpointStore, SimulatedCrash

        with pytest.raises(SimulatedCrash):
            campaign_job(dict(config))
        # Rep 0 survived the crash in the durable store.
        saved = JobCheckpointStore(str(tmp_path)).load("harvest-i0.5")
        assert isinstance(saved, list) and len(saved) == 1
        # The retry (marker now present) resumes from rep 1 and the
        # result equals a run that never crashed.
        resumed = campaign_job(dict(config))
        clean = campaign_job({
            k: v for k, v in config.items()
            if k not in ("checkpoint_path", "crash_once_path")
        })
        assert resumed == clean


class TestRunCampaign:
    def test_report_shape(self, small_report):
        report = small_report
        assert report.ok
        data = report.models["harvest"]
        assert data["intensities"] == [0.0, 1.0]
        for series in data["curves"].values():
            assert len(series) == 2
        # Baseline-normalized degradation is exactly 1.0 at intensity 0.
        assert data["degradation"]["throughput"][0] == 1.0
        # Faults degrade forward progress.
        assert data["curves"]["throughput"][1] < data["curves"]["throughput"][0]

    def test_json_is_strict(self, small_report):
        parsed = json.loads(small_report.to_json())
        assert parsed["meta"]["models"] == ["harvest"]
        # NaN (cluster energy etc.) must serialize as null, not NaN.
        assert "NaN" not in small_report.to_json()

    def test_summary_mentions_models_and_status(self, small_report):
        text = small_report.summary()
        assert "[harvest]" in text
        assert "succeeded" in text

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            run_campaign(models=["warp-drive"], intensities=[0.0])

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_campaign(models=["harvest"], intensities=[-1.0])

    def test_failed_cell_becomes_failed_row(self, tmp_path):
        # A cell whose job keeps crashing (no checkpoint store, marker
        # never consumed... force it by pointing crash_once at a fresh
        # path each attempt) must not sink the sweep.  Simplest driver:
        # retries=0 and a crash marker that never pre-exists.
        import repro.resilience.campaign as campaign_mod

        original = campaign_mod._MODEL_TRIALS

        def boom(seed, intensity, scale):
            raise RuntimeError("synthetic model failure")

        campaign_mod._MODEL_TRIALS = dict(original, harvest=boom)
        try:
            report = run_campaign(
                models=["harvest"], intensities=[0.0], reps=1,
                retries=0, skip_architectural=True,
            )
        finally:
            campaign_mod._MODEL_TRIALS = original
        assert not report.ok
        assert report.exec_summary["statuses"]["harvest-i0"] == "failed"
        assert report.models["harvest"]["status"] == ["failed"]

    def test_health_gauges_populated_with_session(self):
        instrument.enable_session()
        try:
            report = run_campaign(
                models=["harvest"], intensities=[0.0, 1.0], reps=1,
                skip_architectural=True,
            )
            assert any(k.startswith("exec.") for k in report.health)
            assert any(k.startswith("faults.") for k in report.health)
        finally:
            instrument.disable_session()


class TestArchitectural:
    def test_outcome_rates_sum_to_one(self):
        arch = architectural_campaign(n_flips=40, seed=2)
        rates = arch["outcome_rates"]
        assert abs(sum(rates.values()) - 1.0) < 1e-9
        assert set(arch["schemes"]) >= {"none", "dmr"}
        assert arch["schemes"]["dmr"]["sdc_rate"] == 0.0


def test_all_models_are_fault_targets():
    """Every campaign model must satisfy the FaultTarget protocol."""
    from repro.crosscut.faults import FaultTarget
    from repro.datacenter.cluster import ClusterSimulator
    from repro.interconnect.noc import MeshNoC
    from repro.sensor.harvest import (
        Harvester, IntermittentConfig, IntermittentNode,
    )
    import numpy as np

    instances = {
        "cluster": ClusterSimulator(),
        "noc": MeshNoC(),
        "harvest": IntermittentNode(
            Harvester(), IntermittentConfig(), 4, np.zeros(4)
        ),
    }
    assert set(instances) == set(ALL_MODELS)
    for name, model in instances.items():
        assert isinstance(model, FaultTarget), name


def test_report_ok_requires_statuses():
    assert not ResilienceReport().ok
