"""Unit tests for kernel snapshot/restore and the checkpoint layer."""

import json
import os

import pytest

from repro.core.events import (
    Checkpointable,
    FunctionCheckpoint,
    KernelSnapshot,
    SNAPSHOT_VERSION,
    Simulator,
)
from repro.resilience import (
    CheckpointManager,
    JobCheckpointStore,
    SimulatedCrash,
    schedule_crash,
)


class Recorder:
    """Checkpointable model accumulating executed payloads."""

    def __init__(self):
        self.seen = []

    def on_event(self, sim, payload):
        self.seen.append(payload)

    def snapshot_state(self):
        return list(self.seen)

    def restore_state(self, state):
        self.seen[:] = state


class TestKernelSnapshot:
    def test_snapshot_restore_roundtrip_pre_run(self):
        sim = Simulator()
        rec = Recorder()
        sim.register_checkpointable(rec)
        for i in range(5):
            sim.schedule(float(i + 1), rec.on_event, i)
        snap = sim.snapshot(label="start")
        assert snap.version == SNAPSHOT_VERSION
        assert snap.label == "start"
        assert snap.pending == 5
        stats_a = sim.run()
        assert rec.seen == [0, 1, 2, 3, 4]
        a = (stats_a.events_executed, stats_a.events_cancelled, sim.now)

        sim.restore(snap)
        assert rec.seen == []
        stats_b = sim.run()
        assert rec.seen == [0, 1, 2, 3, 4]
        assert (stats_b.events_executed, stats_b.events_cancelled, sim.now) == a

    def test_restore_is_repeatable(self):
        sim = Simulator()
        rec = Recorder()
        sim.register_checkpointable(rec)
        sim.schedule(1.0, rec.on_event, "x")
        snap = sim.snapshot()
        for _ in range(3):
            sim.restore(snap)
            sim.run()
            assert rec.seen == ["x"]

    def test_cancellation_flags_roll_back(self):
        sim = Simulator()
        rec = Recorder()
        sim.register_checkpointable(rec)
        token = sim.schedule(2.0, rec.on_event, "maybe")
        sim.schedule(1.0, rec.on_event, "always")
        snap = sim.snapshot()
        token.cancel()
        sim.run()
        assert rec.seen == ["always"]
        cancelled_first = sim.stats.events_cancelled

        sim.restore(snap)
        assert not token.cancelled  # flag rolled back with the kernel
        sim.run()
        assert rec.seen == ["always", "maybe"]
        assert sim.stats.events_cancelled == cancelled_first - 1

    def test_snapshot_burns_exactly_one_seq(self):
        sim = Simulator()

        def nop(s, p):
            pass

        _, seq_a = sim.schedule_tagged(1.0, nop)
        sim.snapshot()
        _, seq_b = sim.schedule_tagged(2.0, nop)
        assert seq_b == seq_a + 2  # one seq burned by the snapshot

    def test_mid_run_snapshot_requires_current_seq(self):
        sim = Simulator()
        errors = []

        def taker(s, p):
            try:
                s.snapshot()
            except RuntimeError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, taker)
        sim.run()
        assert errors and "current_seq" in errors[0]

    def test_restore_while_running_raises(self):
        sim = Simulator()
        snap = sim.snapshot()
        errors = []

        def restorer(s, p):
            try:
                s.restore(snap)
            except RuntimeError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, restorer)
        sim.run()
        assert len(errors) == 1

    def test_version_mismatch_rejected(self):
        sim = Simulator()
        snap = sim.snapshot()
        bad = KernelSnapshot(
            version=SNAPSHOT_VERSION + 1,
            label=None,
            now=snap.now,
            next_seq=snap.next_seq,
            burned=snap.burned,
            entries=snap.entries,
            cancelled_seqs=snap.cancelled_seqs,
            events_executed=snap.events_executed,
            events_cancelled=snap.events_cancelled,
            states=snap.states,
        )
        with pytest.raises(ValueError, match="version"):
            sim.restore(bad)

    def test_attach_auto_registers_checkpointables(self):
        class Model(Recorder):
            def bind(self, sim):
                pass

            def reset(self):
                pass

        sim = Simulator()
        model = Model()
        assert isinstance(model, Checkpointable)
        sim.attach(model)
        model.seen.append("state")
        snap = sim.snapshot()
        model.seen.append("extra")
        sim.restore(snap)
        assert model.seen == ["state"]

    def test_function_checkpoint_adapter(self):
        sim = Simulator()
        box = {"n": 1}
        sim.register_checkpointable(FunctionCheckpoint(
            lambda: dict(box), lambda s: (box.clear(), box.update(s)),
        ))
        snap = sim.snapshot()
        box["n"] = 99
        sim.restore(snap)
        assert box == {"n": 1}


class TestCheckpointManager:
    def _busywork(self, sim, n=50, spacing=1.0):
        def nop(s, p):
            pass

        for i in range(n):
            sim.schedule((i + 1) * spacing, nop, i)

    def test_periodic_ticks_and_ring(self):
        sim = Simulator()
        self._busywork(sim, n=50)
        mgr = CheckpointManager(period=10.0, keep=3)
        mgr.arm(sim)
        sim.run(until=49.5)
        assert mgr.taken == 4  # t=10, 20, 30, 40
        assert len(mgr.snapshots) == 3  # ring bounded by keep
        assert mgr.latest.now == 40.0

    def test_double_arm_raises_and_disarm_is_idempotent(self):
        sim = Simulator()
        mgr = CheckpointManager(period=1.0)
        mgr.arm(sim)
        with pytest.raises(RuntimeError, match="already armed"):
            mgr.arm(sim)
        mgr.disarm()
        mgr.disarm()  # idempotent
        mgr.arm(sim)  # re-armable after disarm

    def test_latest_raises_before_first_tick(self):
        mgr = CheckpointManager(period=1.0)
        with pytest.raises(RuntimeError, match="no checkpoint"):
            mgr.latest

    def test_crash_restore_resume_completes(self):
        sim = Simulator()
        rec = Recorder()
        sim.register_checkpointable(rec)
        for i in range(30):
            sim.schedule(float(i + 1), rec.on_event, i)
        mgr = CheckpointManager(period=5.0)
        mgr.arm(sim)
        token = schedule_crash(sim, at=17.5)
        with pytest.raises(SimulatedCrash):
            sim.run()
        assert len(rec.seen) == 17
        sim.restore(mgr.latest)
        # The crash event was pending inside the snapshot; cancel it so
        # the replay does not crash again.
        token.cancel()
        assert len(rec.seen) == 15  # rolled back to the t=15 checkpoint
        sim.run()
        assert rec.seen == list(range(30))


class TestJobCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = JobCheckpointStore(str(tmp_path))
        path = store.save("sweep/cell 1", {"reps": [1, 2], "hwm": 2})
        assert os.path.exists(path)
        assert store.load("sweep/cell 1") == {"reps": [1, 2], "hwm": 2}

    def test_missing_is_none(self, tmp_path):
        assert JobCheckpointStore(str(tmp_path)).load("nope") is None

    def test_corruption_is_a_miss(self, tmp_path):
        store = JobCheckpointStore(str(tmp_path))
        path = store.save("k", [1, 2, 3])
        with open(path, "w") as fh:
            fh.write("{ not json")
        assert store.load("k") is None

    def test_checksum_tamper_is_a_miss(self, tmp_path):
        store = JobCheckpointStore(str(tmp_path))
        path = store.save("k", {"value": 1})
        with open(path) as fh:
            record = json.load(fh)
        record["state"]["value"] = 2  # tamper without re-hashing
        with open(path, "w") as fh:
            json.dump(record, fh)
        assert store.load("k") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = JobCheckpointStore(str(tmp_path))
        path = store.save("k", 7)
        with open(path) as fh:
            record = json.load(fh)
        record["version"] = 999
        with open(path, "w") as fh:
            json.dump(record, fh)
        assert store.load("k") is None

    def test_discard(self, tmp_path):
        store = JobCheckpointStore(str(tmp_path))
        store.save("k", 1)
        store.discard("k")
        store.discard("k")  # no-op when absent
        assert store.load("k") is None
