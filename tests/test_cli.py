"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_subset_runs_and_exits_zero(self, capsys):
        code = main(["E07"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E07" in out
        assert "1/1 claims hold" in out

    def test_verbose_prints_values(self, capsys):
        code = main(["E13", "--verbose"])
        out = capsys.readouterr().out
        assert code == 0
        assert "five_nines_downtime_minutes" in out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])
