"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_subset_runs_and_exits_zero(self, capsys):
        code = main(["E07"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E07" in out
        assert "1/1 claims hold" in out

    def test_verbose_prints_values(self, capsys):
        code = main(["E13", "--verbose"])
        out = capsys.readouterr().out
        assert code == 0
        assert "five_nines_downtime_minutes" in out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["E99"])

    def test_comma_separated_selection(self, capsys):
        code = main(["E07,E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 claims hold" in out

    def test_mixed_comma_and_space_selection(self, capsys):
        code = main(["E07,E13", "E01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 claims hold" in out

    def test_exec_report_line_printed(self, capsys):
        main(["E13"])
        out = capsys.readouterr().out
        assert "-- exec:" in out
        assert "1 succeeded" in out

    def test_parallel_jobs_flag(self, capsys):
        code = main(["E01,E13", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 claims hold" in out

    def test_cache_flag_warm_rerun(self, tmp_path, capsys):
        assert main(["E13", "--cache", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["E13", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache 1 hit / 0 miss" in out

    def test_verbose_includes_job_report(self, capsys):
        main(["E13", "--verbose"])
        out = capsys.readouterr().out
        assert "Per-job execution report:" in out
        assert "succeeded" in out

    def test_bad_flag_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "0"])
        with pytest.raises(SystemExit):
            main(["--retries", "-1"])
        with pytest.raises(SystemExit):
            main(["--timeout", "0"])
