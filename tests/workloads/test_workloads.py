"""Tests for kernels, big-data streams, and graph analytics (E22)."""

import networkx as nx
import numpy as np
import pytest

from repro.workloads import (
    KERNELS,
    StreamSpec,
    analytics_pipeline,
    arrival_trace,
    community_graph,
    detect_communities,
    edge_filtering_savings,
    flag_anomalous_nodes,
    get_kernel,
    influence_scores,
    intensity_table,
    pipeline_total_ops,
    required_capacity,
    social_graph,
    store_vs_process_cost,
)


class TestKernels:
    def test_registry_and_lookup(self):
        assert "stream_triad" in KERNELS
        k = get_kernel("dense_matmul")
        assert k.intensity_ops_per_byte == pytest.approx(8.0)
        with pytest.raises(KeyError):
            get_kernel("quantum_annealer")

    def test_intensity_spectrum(self):
        table = intensity_table()
        # GEMM is compute-dense; graph traversal is memory-dense.
        assert table["dense_matmul"] > 10 * table["graph_traversal"]

    def test_totals(self):
        k = get_kernel("stream_triad")
        assert k.total_ops(1000) == pytest.approx(2000.0)
        assert k.total_bytes(1000) == pytest.approx(24_000.0)
        with pytest.raises(ValueError):
            k.total_ops(-1)

    def test_address_streams_usable(self):
        for name, k in KERNELS.items():
            addrs = k.addresses(256)
            assert len(addrs) == 256, name
            assert np.all(addrs >= 0), name

    def test_validation(self):
        from repro.workloads import KernelSpec
        from repro.processor import FP_KERNEL_MIX

        with pytest.raises(ValueError):
            KernelSpec("bad", 0.0, 1.0, FP_KERNEL_MIX, lambda n: np.zeros(n))


class TestBigData:
    def spec(self):
        return StreamSpec(
            records_per_s=1e5, bytes_per_record=200.0,
            ops_per_record=50.0, burstiness=3.0,
            interesting_fraction=0.01,
        )

    def test_derived_rates(self):
        s = self.spec()
        assert s.bandwidth_bytes_per_s == pytest.approx(2e7)
        assert s.compute_ops_per_s == pytest.approx(5e6)

    def test_arrival_trace_statistics(self):
        s = self.spec()
        out = arrival_trace(s, duration_s=3600.0, diurnal=False, rng=0)
        mean_rate = out["records"].mean()
        assert mean_rate == pytest.approx(1e5, rel=0.02)

    def test_diurnal_peaks(self):
        s = self.spec()
        out = arrival_trace(s, duration_s=86400.0, interval_s=600.0, rng=0)
        peak = out["rate"].max()
        assert peak == pytest.approx(3e5, rel=0.05)  # burstiness 3x

    def test_required_capacity(self):
        s = self.spec()
        cap = required_capacity(s, headroom=1.5)
        assert cap["peak_ops_per_s"] == pytest.approx(5e6 * 3.0 * 1.5)
        with pytest.raises(ValueError):
            required_capacity(s, headroom=0.5)

    def test_edge_filtering_savings(self):
        s = self.spec()
        out = edge_filtering_savings(s)
        # 1% interesting: filtering wins big.
        assert out["saving_ratio"] > 5.0
        assert 0.0 <= out["filter_compute_share"] <= 1.0

    def test_store_vs_process(self):
        s = self.spec()
        out = store_vs_process_cost(s)
        assert out["store_usd_per_month"] > 0
        assert out["process_usd_per_month"] > 0
        with pytest.raises(ValueError):
            store_vs_process_cost(s, core_ops_per_s=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(records_per_s=0.0, bytes_per_record=1.0,
                       ops_per_record=1.0)
        with pytest.raises(ValueError):
            StreamSpec(records_per_s=1.0, bytes_per_record=1.0,
                       ops_per_record=1.0, burstiness=0.5)
        s = self.spec()
        with pytest.raises(ValueError):
            arrival_trace(s, duration_s=0.0)


class TestGraphAnalytics:
    def test_social_graph_heavy_tail(self):
        g = social_graph(2000, attachment=3, rng=0)
        degrees = np.array([d for _, d in g.degree])
        assert degrees.max() > 10 * np.median(degrees)

    def test_community_graph_recoverable(self):
        g = community_graph(4, 30, p_in=0.4, p_out=0.002, rng=0)
        report = detect_communities(g, rng=0)
        sizes = sorted(len(c) for c in report.result)
        # Label propagation should find roughly the 4 planted blocks.
        assert 2 <= len(sizes) <= 8
        assert sizes[-1] >= 20

    def test_influence_scores_sum_to_one_ish(self):
        g = social_graph(500, rng=1)
        report = influence_scores(g)
        total = sum(report.result.values())
        assert total == pytest.approx(1.0, abs=0.05)

    def test_influence_hubs_score_high(self):
        g = social_graph(1000, rng=2)
        report = influence_scores(g)
        scores = report.result
        top_node = max(scores, key=scores.get)
        degrees = dict(g.degree)
        # The top-ranked node is among the highest-degree nodes.
        assert degrees[top_node] >= np.percentile(
            list(degrees.values()), 99
        )

    def test_anomaly_flags_hubs(self):
        g = nx.star_graph(100)  # node 0 is a perfect hub
        report = flag_anomalous_nodes(g)
        assert 0 in report.result

    def test_work_accounting(self):
        g = social_graph(500, rng=3)
        report = influence_scores(g, iterations=10)
        assert report.edge_traversals == pytest.approx(
            2.0 * g.number_of_edges() * 10
        )
        assert report.ops_estimate > report.edge_traversals

    def test_pipeline(self):
        reports = analytics_pipeline(n_people=400, rng=0)
        assert set(reports) == {"influence", "communities", "anomalies"}
        assert pipeline_total_ops(reports) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            social_graph(2)
        with pytest.raises(ValueError):
            community_graph(0, 10)
        g = social_graph(50, rng=0)
        with pytest.raises(ValueError):
            influence_scores(g, iterations=0)
        with pytest.raises(ValueError):
            influence_scores(g, damping=1.0)
        with pytest.raises(ValueError):
            detect_communities(g, max_rounds=0)
        with pytest.raises(ValueError):
            flag_anomalous_nodes(g, z_threshold=0.0)
        with pytest.raises(ValueError):
            influence_scores(nx.Graph())
