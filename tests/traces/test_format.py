"""Trace container unit tests: round-trips, validation, block layout."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.traces.format import (
    KIND_INSTRUCTION,
    KIND_MEMORY,
    KIND_REQUEST,
    KINDS,
    InstructionRecord,
    MemoryRecord,
    RequestRecord,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    dtype_for,
    kind_of,
    read_trace,
    records_to_array,
    write_trace,
)

RECORDS = [
    RequestRecord(0.0, 125.0, size=512, client=3, target=1, op=2),
    RequestRecord(0.5, 80.0, size=64, client=4, target=0, op=0),
    MemoryRecord(1.0, 0xDEAD_BEEF_0040, size=64, op=1, tier=2),
    InstructionRecord(2.0, 0x400004, op=3, dst=7, src1=1, src2=2, imm=-16),
]


class TestRoundTrip:
    def test_records_roundtrip_across_kinds_in_order(self):
        buf = io.BytesIO()
        write_trace(buf, RECORDS, meta={"source": "unit"})
        assert read_trace(buf.getvalue()) == RECORDS

    def test_meta_roundtrips_and_defaults_to_empty(self):
        buf = io.BytesIO()
        write_trace(buf, RECORDS[:1], meta={"k": [1, 2], "s": "x"})
        with TraceReader(buf.getvalue()) as r:
            assert r.meta == {"k": [1, 2], "s": "x"}
        buf2 = io.BytesIO()
        write_trace(buf2, RECORDS[:1])
        with TraceReader(buf2.getvalue()) as r:
            assert r.meta == {}

    def test_file_target_roundtrips(self, tmp_path):
        path = str(tmp_path / "t.rtrc")
        assert write_trace(path, RECORDS) == len(RECORDS)
        assert read_trace(path) == RECORDS

    def test_block_split_preserves_order(self):
        # A tiny block size forces many blocks; order must not change.
        recs = [RequestRecord(float(i), 1.0) for i in range(10)]
        buf = io.BytesIO()
        with TraceWriter(buf, block_records=3) as w:
            w.extend(recs)
            assert w.blocks_written >= 3
        assert read_trace(buf.getvalue()) == recs

    def test_kind_change_flushes_but_keeps_order(self):
        recs = [
            RequestRecord(0.0, 1.0),
            MemoryRecord(0.0, 64),
            RequestRecord(0.0, 2.0),
        ]
        buf = io.BytesIO()
        with TraceWriter(buf) as w:
            w.extend(recs)
            assert w.blocks_written == 2  # third record re-opens a block
        assert read_trace(buf.getvalue()) == recs

    def test_write_block_fast_path_matches_append_bytes(self):
        arr = records_to_array(KIND_REQUEST, RECORDS[:2])
        via_append = io.BytesIO()
        write_trace(via_append, RECORDS[:2])
        via_block = io.BytesIO()
        with TraceWriter(via_block) as w:
            w.write_block(KIND_REQUEST, arr)
        assert via_block.getvalue() == via_append.getvalue()

    def test_blocks_iteration_yields_structured_arrays(self):
        buf = io.BytesIO()
        write_trace(buf, RECORDS)
        with TraceReader(buf.getvalue()) as r:
            blocks = list(r.blocks())
        assert [k for k, _ in blocks] == [
            KIND_REQUEST, KIND_MEMORY, KIND_INSTRUCTION,
        ]
        req = blocks[0][1]
        assert req.dtype == dtype_for(KIND_REQUEST)
        assert req["size"].tolist() == [512, 64]


class TestWriterValidation:
    def test_decreasing_timestamps_rejected(self):
        with TraceWriter(io.BytesIO()) as w:
            w.append(RequestRecord(5.0, 1.0))
            with pytest.raises(TraceFormatError, match="nondecreasing"):
                w.append(RequestRecord(4.9, 1.0))

    def test_decreasing_timestamps_rejected_across_write_block(self):
        arr = records_to_array(
            KIND_REQUEST, [RequestRecord(1.0, 1.0)]
        )
        with TraceWriter(io.BytesIO()) as w:
            w.append(RequestRecord(2.0, 1.0))
            with pytest.raises(TraceFormatError, match="nondecreasing"):
                w.write_block(KIND_REQUEST, arr)

    def test_field_out_of_range_is_typed(self):
        with TraceWriter(io.BytesIO()) as w:
            w.append(RequestRecord(0.0, 1.0, client=1 << 20))  # u2 field
            with pytest.raises(TraceFormatError, match="range"):
                w.close()

    def test_foreign_object_is_typed(self):
        with pytest.raises(TraceFormatError, match="not a trace record"):
            kind_of(object())
        with TraceWriter(io.BytesIO()) as w:
            with pytest.raises(TraceFormatError):
                w.append("nope")

    def test_wrong_dtype_block_rejected(self):
        with TraceWriter(io.BytesIO()) as w:
            with pytest.raises(TraceFormatError, match="dtype"):
                w.write_block(KIND_REQUEST, np.zeros(3))

    def test_mixed_kind_array_build_rejected(self):
        with pytest.raises(TraceFormatError):
            records_to_array(KIND_REQUEST, [RECORDS[0], RECORDS[2]])

    def test_oversized_meta_rejected(self):
        with pytest.raises(TraceFormatError, match="too large"):
            TraceWriter(io.BytesIO(), meta={"pad": "x" * (1 << 17)})

    def test_closed_writer_refuses_appends(self):
        w = TraceWriter(io.BytesIO())
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.append(RECORDS[0])

    def test_unknown_kind_rejected_everywhere(self):
        with pytest.raises(TraceFormatError, match="unknown record kind"):
            dtype_for(99)
        with TraceWriter(io.BytesIO()) as w:
            with pytest.raises(TraceFormatError, match="unknown record kind"):
                w.write_block(99, np.zeros(1))


class TestLayoutInvariants:
    def test_struct_and_dtype_describe_identical_bytes(self):
        for kind, (cls, packer, dtype, fields) in KINDS.items():
            assert packer.size == dtype.itemsize, cls.__name__
            rec = RECORDS[{KIND_REQUEST: 0, KIND_MEMORY: 2,
                           KIND_INSTRUCTION: 3}[kind]]
            packed = packer.pack(*(getattr(rec, f) for f in fields))
            arr = records_to_array(kind, [rec])
            assert arr.tobytes() == packed

    def test_large_array_splits_at_block_cap(self):
        from repro.traces.format import MAX_BLOCK_BYTES

        dtype = dtype_for(KIND_MEMORY)
        n = MAX_BLOCK_BYTES // dtype.itemsize + 7
        arr = np.zeros(n, dtype=dtype)
        arr["ts"] = np.arange(n, dtype=float)
        buf = io.BytesIO()
        with TraceWriter(buf) as w:
            w.write_block(KIND_MEMORY, arr)
            assert w.blocks_written == 2
            assert w.records_written == n
        with TraceReader(buf.getvalue()) as r:
            total = sum(len(a) for _, a in r.blocks())
        assert total == n
