"""Property tests: write→read identity, stats chunk invariance.

Two invariants the rest of the PR leans on, checked over arbitrary
valid inputs rather than fixtures:

* Any valid record sequence (any kind interleaving, any nondecreasing
  timestamps, any in-range field values) survives
  writer → bytes → reader exactly — same records, same order, same
  values.
* :class:`IntervalStats` is invariant to how the stream is chunked:
  one block or many arbitrary slices, byte-identical snapshots.  This
  is the guarantee that lets the reader pick any block size for
  throughput without perturbing pinned digests.
"""

from __future__ import annotations

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.format import (
    InstructionRecord,
    MemoryRecord,
    RequestRecord,
    read_trace,
    write_trace,
)
from repro.traces.generators import generate
from repro.traces.stats import IntervalStats

# Finite, exactly-representable timestamps (floats round-trip exactly
# through the packed f8 field regardless, but NaN ordering would make
# "nondecreasing" meaningless).
_ts_deltas = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=60,
)

_u8 = st.integers(0, 0xFF)
_u16 = st.integers(0, 0xFFFF)
_u32 = st.integers(0, 0xFFFFFFFF)
_u64 = st.integers(0, 0xFFFFFFFFFFFFFFFF)
_i32 = st.integers(-(1 << 31), (1 << 31) - 1)
_service = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                     allow_infinity=False)


def _record_strategy(ts: float):
    return st.one_of(
        st.builds(RequestRecord, st.just(ts), _service, size=_u32,
                  client=_u16, target=_u16, op=_u8),
        st.builds(MemoryRecord, st.just(ts), _u64, size=_u16, op=_u8,
                  tier=_u8),
        st.builds(InstructionRecord, st.just(ts), _u64, op=_u8, dst=_u8,
                  src1=_u8, src2=_u8, imm=_i32),
    )


@st.composite
def record_sequences(draw):
    """Arbitrary valid sequences: mixed kinds, nondecreasing ts."""
    deltas = draw(_ts_deltas)
    ts = 0.0
    records = []
    for delta in deltas:
        ts += delta
        records.append(draw(_record_strategy(ts)))
    return records


class TestRoundTripIdentity:
    @given(records=record_sequences())
    @settings(max_examples=60, deadline=None)
    def test_writer_reader_roundtrip_is_identity(self, records):
        buf = io.BytesIO()
        count = write_trace(buf, records)
        assert count == len(records)
        assert read_trace(buf.getvalue()) == records

    @given(records=record_sequences(),
           block_records=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_identity_at_any_block_size(
        self, records, block_records
    ):
        from repro.traces.format import TraceWriter

        buf = io.BytesIO()
        with TraceWriter(buf, block_records=block_records) as w:
            w.extend(records)
        assert read_trace(buf.getvalue()) == records


def _chunks(n: int, cuts: list) -> list:
    """Slice [0, n) at the (sorted, deduped, in-range) cut offsets."""
    points = sorted({min(c, n) for c in cuts})
    bounds = [0] + points + [n]
    return [
        (start, stop)
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]


class TestChunkInvariance:
    @given(
        interval=st.integers(1, 700),
        cuts=st.lists(st.integers(0, 2000), max_size=12),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_stats_invariant_to_chunking(
        self, interval, cuts, seed
    ):
        kind, arr = generate("kv-zipf", seed=seed, n=2000)

        whole = IntervalStats(interval)
        whole.feed(kind, arr)
        expected_summary = whole.finish()
        expected_snaps = list(whole.snapshots)  # after finish: trailing
        # partial interval included

        chunked = IntervalStats(interval)
        for start, stop in _chunks(len(arr), cuts):
            chunked.feed(kind, arr[start:stop])
        got_summary = chunked.finish()

        # Byte-identical, not approximately-equal: JSON catches any
        # float drift a == comparison on nested dicts would too, but
        # renders a readable diff on failure.
        assert json.dumps(chunked.snapshots, sort_keys=True) == json.dumps(
            expected_snaps, sort_keys=True
        )
        assert got_summary == expected_summary

    @given(cuts=st.lists(st.integers(0, 1500), max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_mixed_kind_stream_is_chunk_invariant_too(self, cuts):
        k_req, req = generate("steady-requests", seed=9, n=750)
        k_mem, mem = generate("kv-zipf", seed=9, n=750)

        whole = IntervalStats(400)
        whole.feed(k_req, req)
        whole.feed(k_mem, mem)
        expected = whole.finish()

        chunked = IntervalStats(400)
        for start, stop in _chunks(len(req), cuts):
            chunked.feed(k_req, req[start:stop])
        for start, stop in _chunks(len(mem), cuts):
            chunked.feed(k_mem, mem[start:stop])
        assert chunked.finish() == expected
