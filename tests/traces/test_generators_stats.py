"""Generator and interval-statistics unit tests."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.traces.format import TraceReader, dtype_for
from repro.traces.generators import (
    PROFILES,
    generate,
    generate_trace,
    profile_names,
)
from repro.traces.stats import IntervalStats


class TestGenerators:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_every_profile_yields_a_valid_sorted_block(self, profile):
        kind, arr = generate(profile, seed=3, n=500)
        assert arr.dtype == dtype_for(kind)
        assert len(arr) == 500
        ts = arr["ts"]
        assert np.all(np.diff(ts) >= 0)
        assert np.all(np.isfinite(ts))

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_same_seed_same_bytes_different_seed_different(self, profile):
        _, a = generate(profile, seed=11, n=300)
        _, b = generate(profile, seed=11, n=300)
        _, c = generate(profile, seed=12, n=300)
        assert a.tobytes() == b.tobytes()
        assert c.tobytes() != a.tobytes()

    def test_unknown_profile_is_a_value_error_naming_choices(self):
        with pytest.raises(ValueError, match="steady-requests"):
            generate("nope")

    def test_profile_names_sorted(self):
        names = profile_names()
        assert list(names) == sorted(names)
        assert "kv-zipf" in names

    def test_generate_trace_writes_a_readable_file_with_meta(self):
        buf = io.BytesIO()
        count = generate_trace(buf, "kv-zipf", seed=5, n=400)
        assert count == 400
        with TraceReader(buf.getvalue()) as r:
            assert r.meta["profile"] == "kv-zipf"
            assert r.meta["seed"] == 5
            assert r.meta["params"] == {"n": 400}
            assert sum(len(a) for _, a in r.blocks()) == 400

    def test_noc_profiles_never_self_send(self):
        for profile in ("noc-uniform", "noc-hotspot"):
            _, arr = generate(profile, seed=2, n=400, nodes=16)
            assert np.all(arr["client"] % 16 != arr["target"] % 16)

    def test_straggler_tail_dominates_p99_not_mean(self):
        _, arr = generate("straggler-requests", seed=1, n=5000)
        s = arr["service_us"]
        assert np.percentile(s, 99) > 4 * np.mean(s)

    def test_wear_hotline_concentrates_writes(self):
        _, arr = generate("wear-hotline", seed=1, n=5000)
        lines = arr["addr"] // 64
        _, counts = np.unique(lines, return_counts=True)
        top8 = np.sort(counts)[-8:].sum()
        assert top8 > 0.7 * len(arr)
        assert np.all(arr["op"] == 1)


class TestIntervalStats:
    def test_snapshot_every_interval_plus_trailing_partial(self):
        kind, arr = generate("steady-requests", seed=0, n=2500)
        stats = IntervalStats(1000)
        stats.feed(kind, arr)
        summary = stats.finish()
        assert summary["intervals"] == 3
        assert summary["records"] == 2500
        assert [s["records"] for s in stats.snapshots] == [1000, 1000, 500]

    def test_counts_and_sums_match_direct_reduction(self):
        kind, arr = generate("kv-zipf", seed=4, n=3000)
        stats = IntervalStats(1000)
        stats.feed(kind, arr)
        summary = stats.finish()
        mem = summary["memory"]
        assert mem["count"] == 3000
        assert mem["writes"] == int(np.count_nonzero(arr["op"]))
        assert mem["reads"] == 3000 - mem["writes"]
        assert mem["bytes"] == int(np.sum(arr["size"], dtype=np.int64))

    def test_interval_timestamps_bracket_the_data(self):
        kind, arr = generate("instr-mix", seed=4, n=1500)
        stats = IntervalStats(1000)
        stats.feed(kind, arr)
        stats.finish()
        first, second = stats.snapshots
        assert first["ts_first"] == float(arr["ts"][0])
        assert first["ts_last"] == float(arr["ts"][999])
        assert second["ts_first"] == float(arr["ts"][1000])
        assert second["ts_last"] == float(arr["ts"][-1])

    def test_mixed_kind_stream_reports_both_sections(self):
        k1, req = generate("steady-requests", seed=1, n=600)
        k2, mem = generate("kv-zipf", seed=1, n=600)
        stats = IntervalStats(500)
        stats.feed(k1, req)
        # Shift memory timestamps after the requests (stats do not
        # require global order, but be realistic).
        stats.feed(k2, mem)
        summary = stats.finish()
        assert summary["request"]["count"] == 600
        assert summary["memory"]["count"] == 600

    def test_finish_is_idempotent_and_feed_after_finish_fails(self):
        kind, arr = generate("instr-mix", seed=0, n=100)
        stats = IntervalStats(50)
        stats.feed(kind, arr)
        assert stats.finish() == stats.finish()
        with pytest.raises(ValueError, match="finished"):
            stats.feed(kind, arr)

    def test_bad_interval_and_bad_kind_are_value_errors(self):
        with pytest.raises(ValueError):
            IntervalStats(0)
        stats = IntervalStats(10)
        with pytest.raises(ValueError, match="kind"):
            stats.feed(42, np.zeros(1))
