"""Trace-container fuzz: hostile bytes yield typed errors, never crashes.

Same contract as the frame-decoder fuzz suite
(``tests/chaos/test_frame_fuzz.py``), applied to the on-disk trace
format: random blobs, truncation at every byte offset, single-bit
flips, version skew, and lying length fields must all surface as
:class:`TraceError` subclasses — no raw ``struct``/``json``/``numpy``
exceptions, no silent misparses, no hangs.  Unlike the stream decoder,
a trace file has *legal* early EOFs: any block boundary is a clean stop
(a shorter trace, not a broken one), so the truncation sweep
distinguishes boundary cuts from mid-structure cuts.
"""

from __future__ import annotations

import io
import json
import random
import struct
import zlib

import pytest

from repro.traces.format import (
    FORMAT_VERSION,
    MAX_BLOCK_BYTES,
    MAX_META_BYTES,
    TRACE_MAGIC,
    MemoryRecord,
    RequestRecord,
    TraceCorruptError,
    TraceError,
    TraceFormatError,
    TraceReader,
    TraceVersionError,
    write_trace,
)

_FILE_HEADER = struct.Struct("!4sHH")
_BLOCK_HEADER = struct.Struct("!BII")

RECORDS = [
    RequestRecord(0.0, 10.0, size=128, client=1, target=2, op=1),
    RequestRecord(1.0, 20.0, size=256, client=2, target=3, op=0),
    MemoryRecord(2.0, 0x1000, size=64, op=1, tier=1),
]


def _trace(
    meta: dict | None = None,
    magic: bytes = TRACE_MAGIC,
    version: int = FORMAT_VERSION,
    meta_len: int | None = None,
    meta_crc: int | None = None,
) -> bytes:
    """A trace file, well-formed by default, malformable field by field."""
    meta_bytes = json.dumps(meta or {}, sort_keys=True,
                            separators=(",", ":")).encode()
    header = _FILE_HEADER.pack(
        magic, version,
        len(meta_bytes) if meta_len is None else meta_len,
    )
    crc = (zlib.crc32(meta_bytes) & 0xFFFFFFFF
           if meta_crc is None else meta_crc)
    body = io.BytesIO()
    write_trace(body, RECORDS, meta=meta or {})
    # Splice the (possibly damaged) header onto the canonical blocks;
    # the inner write used the same meta, so the offsets line up.
    blocks = body.getvalue()[_FILE_HEADER.size + len(meta_bytes) + 4:]
    return header + meta_bytes + struct.pack("!I", crc) + blocks


def _block(kind: int, count: int, body: bytes,
           crc: int | None = None) -> bytes:
    head = _BLOCK_HEADER.pack(kind, count, len(body))
    if crc is None:
        crc = zlib.crc32(head) & 0xFFFFFFFF
        crc = zlib.crc32(body, crc) & 0xFFFFFFFF
    return head + struct.pack("!I", crc) + body


def _read_all(blob: bytes) -> list:
    with TraceReader(blob) as reader:
        return list(reader.records())


def _boundaries(blob: bytes) -> set[int]:
    """Byte offsets where EOF is legal: after the header, after each
    block (including the end of the file)."""
    meta_len = _FILE_HEADER.unpack_from(blob)[2]
    pos = _FILE_HEADER.size + meta_len + 4
    cuts = {pos}
    while pos < len(blob):
        _, _, body_len = _BLOCK_HEADER.unpack_from(blob, pos)
        pos += _BLOCK_HEADER.size + 4 + body_len
        cuts.add(pos)
    return cuts


def test_wellformed_trace_roundtrips():
    assert _read_all(_trace(meta={"a": 1})) == RECORDS


def test_random_garbage_never_escapes_the_trace_error_type():
    rng = random.Random(0x7ACE)
    outcomes = {"ok": 0, "errors": 0}
    for _ in range(300):
        blob = rng.randbytes(rng.randrange(0, 128))
        try:
            _read_all(blob)
            outcomes["ok"] += 1
        except TraceError:
            outcomes["errors"] += 1
        # Anything else (struct.error, json.JSONDecodeError,
        # UnicodeDecodeError, numpy ValueError) propagates and fails.
    assert outcomes["errors"] > 0


def test_garbage_with_valid_magic_is_still_typed():
    rng = random.Random(2014)
    for _ in range(200):
        blob = TRACE_MAGIC + rng.randbytes(rng.randrange(0, 96))
        with pytest.raises(TraceError):
            _read_all(blob)


def test_every_truncation_point_fails_loud_or_stops_clean():
    raw = _trace()
    legal = _boundaries(raw)
    for cut in range(len(raw) + 1):
        if cut in legal:
            parsed = _read_all(raw[:cut])  # clean shorter trace
            assert len(parsed) <= len(RECORDS)
        else:
            with pytest.raises(TraceError):
                _read_all(raw[:cut])


def test_single_bit_flips_are_always_detected():
    raw = _trace(meta={"x": "y"})
    rng = random.Random(20140216)
    for _ in range(250):
        victim = rng.randrange(len(raw) * 8)
        damaged = bytearray(raw)
        damaged[victim // 8] ^= 1 << (victim % 8)
        with pytest.raises(TraceError):
            _read_all(bytes(damaged))


def test_bad_magic_is_rejected():
    with pytest.raises(TraceFormatError, match="magic"):
        _read_all(_trace(magic=b"NOPE"))


def test_version_skew_is_a_distinct_loud_error():
    with pytest.raises(TraceVersionError, match="upgrade"):
        _read_all(_trace(version=FORMAT_VERSION + 1))
    with pytest.raises(TraceVersionError):
        _read_all(_trace(version=0))


def test_meta_checksum_mismatch_is_corrupt():
    with pytest.raises(TraceCorruptError, match="checksum"):
        _read_all(_trace(meta={"a": 1}, meta_crc=0))


def test_oversized_meta_length_is_rejected_before_allocation():
    with pytest.raises(TraceFormatError, match="cap"):
        _read_all(_trace(meta_len=MAX_META_BYTES + 1))


def test_meta_that_is_not_json_is_typed():
    bad = b"\xff\xfe not json"
    header = _FILE_HEADER.pack(TRACE_MAGIC, FORMAT_VERSION, len(bad))
    crc = struct.pack("!I", zlib.crc32(bad) & 0xFFFFFFFF)
    with pytest.raises(TraceFormatError, match="JSON"):
        _read_all(header + bad + crc)


def test_meta_that_is_not_an_object_is_typed():
    bad = b"[1,2,3]"
    header = _FILE_HEADER.pack(TRACE_MAGIC, FORMAT_VERSION, len(bad))
    crc = struct.pack("!I", zlib.crc32(bad) & 0xFFFFFFFF)
    with pytest.raises(TraceFormatError, match="object"):
        _read_all(header + bad + crc)


def _header_only() -> bytes:
    empty = b"{}"
    return (_FILE_HEADER.pack(TRACE_MAGIC, FORMAT_VERSION, len(empty))
            + empty + struct.pack("!I", zlib.crc32(empty) & 0xFFFFFFFF))


def test_oversized_block_length_is_rejected_before_allocation():
    # A block header claiming an enormous body must fail on the length
    # field itself, before any read or allocation of the body.
    head = _BLOCK_HEADER.pack(1, 1, MAX_BLOCK_BYTES + 1)
    blob = _header_only() + head + struct.pack("!I", 0)
    with pytest.raises(TraceFormatError, match="cap"):
        _read_all(blob)


def test_unknown_block_kind_is_typed():
    blob = _header_only() + _block(7, 0, b"")
    with pytest.raises(TraceFormatError, match="kind"):
        _read_all(blob)


def test_count_body_length_mismatch_is_typed():
    # 25-byte request records: claim 2 records but ship 25 bytes.
    blob = _header_only() + _block(1, 2, b"\0" * 25)
    with pytest.raises(TraceFormatError, match="inconsistent"):
        _read_all(blob)


def test_block_crc_mismatch_is_corrupt():
    body = b"\0" * 25
    blob = _header_only() + _block(1, 1, body, crc=0xDEADBEEF)
    with pytest.raises(TraceCorruptError, match="checksum"):
        _read_all(blob)


def test_non_monotonic_block_timestamps_are_typed():
    # Two well-formed request blocks whose timestamps go backwards:
    # each block passes its CRC, the ordering check must still fire.
    b1 = io.BytesIO()
    write_trace(b1, [RequestRecord(5.0, 1.0)])
    b2 = io.BytesIO()
    write_trace(b2, [RequestRecord(1.0, 1.0)])
    header_len = len(_header_only())
    blob = b1.getvalue() + b2.getvalue()[header_len:]
    with pytest.raises(TraceFormatError, match="nondecreasing"):
        _read_all(blob)


def test_reader_accepts_path_bytes_and_fileobj(tmp_path):
    raw = _trace()
    path = tmp_path / "t.rtrc"
    path.write_bytes(raw)
    assert _read_all(raw) == RECORDS
    with TraceReader(str(path)) as r:
        assert list(r.records()) == RECORDS
    with open(path, "rb") as f:
        with TraceReader(f) as r:
            assert list(r.records()) == RECORDS
