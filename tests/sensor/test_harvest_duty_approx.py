"""Tests for harvesting/intermittent computing, duty cycling, approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensor import (
    DutyCycleModel,
    Harvester,
    IntermittentConfig,
    checkpoint_sweep,
    energy_quality_frontier,
    lifetime_latency_tradeoff,
    precision_energy_scale,
    precision_sweep,
    quantize,
    simulate_intermittent,
    snr_db,
    subsample_sweep,
    synthetic_ecg,
    unreliable_storage_noise,
)


class TestHarvester:
    def test_mean_power_approximate(self):
        h = Harvester(mean_power_w=2e-3, variability=0.3, blackout_prob=0.0)
        power = h.sample_power(50_000, rng=0)
        assert power.mean() == pytest.approx(2e-3, rel=0.05)

    def test_blackouts(self):
        h = Harvester(blackout_prob=0.2)
        power = h.sample_power(10_000, rng=1)
        assert np.mean(power == 0.0) == pytest.approx(0.2, abs=0.02)

    def test_deterministic_source(self):
        h = Harvester(variability=0.0, blackout_prob=0.0)
        power = h.sample_power(100, rng=2)
        np.testing.assert_allclose(power, h.mean_power_w)

    def test_validation(self):
        with pytest.raises(ValueError):
            Harvester(mean_power_w=0.0)
        with pytest.raises(ValueError):
            Harvester(blackout_prob=1.5)
        with pytest.raises(ValueError):
            Harvester().sample_power(-1)


class TestIntermittent:
    def test_progress_made_under_good_harvest(self):
        h = Harvester(mean_power_w=10e-3, variability=0.1, blackout_prob=0.0)
        result = simulate_intermittent(
            h, IntermittentConfig(), checkpoint_interval_quanta=5,
            n_intervals=5000, rng=0,
        )
        assert result.committed_quanta > 0
        assert result.forward_progress_rate > 0

    def test_no_harvest_no_progress(self):
        h = Harvester(mean_power_w=1e-9, variability=0.0, blackout_prob=0.0)
        result = simulate_intermittent(
            h, IntermittentConfig(), 5, n_intervals=2000, rng=0
        )
        assert result.committed_quanta == 0

    def test_checkpoint_interval_tradeoff(self):
        sweep = checkpoint_sweep([1, 2, 5, 10, 50], n_intervals=6000, rng=0)
        progress = sweep["forward_progress"]
        # Some interior or small interval beats the extreme settings:
        # too-rare checkpointing loses everything to brown-outs.
        assert progress.max() > 0
        assert progress[-1] < progress.max()
        # Waste grows with checkpoint interval.
        waste = sweep["waste_fraction"]
        assert waste[-1] > waste[0]

    def test_accounting_invariants(self):
        h = Harvester(rng=None) if False else Harvester()
        result = simulate_intermittent(
            h, IntermittentConfig(), 3, n_intervals=4000, rng=1
        )
        # Committed + lost (re-executed) + still-uncommitted = total.
        assert result.committed_quanta + result.re_executed_quanta <= (
            result.total_quanta_completed
        )
        assert 0.0 <= result.waste_fraction <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_intermittent(Harvester(), IntermittentConfig(), 0)
        with pytest.raises(ValueError):
            IntermittentConfig(brown_out_j=0.9e-3, turn_on_j=0.5e-3)
        with pytest.raises(ValueError):
            checkpoint_sweep([])


class TestDutyCycle:
    def test_average_power_monotone_in_rate(self):
        m = DutyCycleModel()
        rates = [0.01, 0.1, 1.0, 10.0]
        powers = [m.average_power_w(r) for r in rates]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_lifetime_latency_tradeoff(self):
        m = DutyCycleModel()
        out = lifetime_latency_tradeoff(m, np.array([0.1, 1.0, 10.0]))
        assert np.all(np.diff(out["lifetime_days"]) < 0)
        assert np.all(np.diff(out["detection_latency_s"]) < 0)

    def test_max_wake_rate_inversion(self):
        m = DutyCycleModel()
        battery = 1200.0
        rate = m.max_wake_rate_for_lifetime(100.0, battery)
        assert rate > 0
        # Achieved lifetime at that rate meets the target.
        assert m.lifetime_days(rate, battery) == pytest.approx(100.0, rel=0.01)

    def test_impossible_lifetime_gives_zero(self):
        m = DutyCycleModel(sleep_power_w=1e-3)
        assert m.max_wake_rate_for_lifetime(1e6, 1.0) == 0.0

    def test_validation(self):
        m = DutyCycleModel()
        with pytest.raises(ValueError):
            m.average_power_w(-1.0)
        with pytest.raises(ValueError):
            m.average_power_w(1000.0)  # duty > 100%
        with pytest.raises(ValueError):
            DutyCycleModel(sleep_power_w=1.0, active_power_w=0.5)
        with pytest.raises(ValueError):
            lifetime_latency_tradeoff(m, np.array([0.0]))


class TestApproximate:
    def test_quantize_round_trip_high_precision(self):
        signal = np.sin(np.linspace(0, 10, 500))
        q16 = quantize(signal, 16)
        assert snr_db(signal, q16) > 80.0

    def test_snr_falls_with_fewer_bits(self):
        signal = np.sin(np.linspace(0, 10, 500))
        snrs = [snr_db(signal, quantize(signal, b)) for b in (4, 8, 12)]
        assert snrs[0] < snrs[1] < snrs[2]

    def test_snr_6db_per_bit_rule(self):
        rng = np.random.default_rng(0)
        signal = rng.uniform(-1, 1, 20_000)
        s8 = snr_db(signal, quantize(signal, 8, full_scale=1.0))
        s10 = snr_db(signal, quantize(signal, 10, full_scale=1.0))
        assert (s10 - s8) == pytest.approx(12.0, abs=1.5)

    def test_energy_scale(self):
        # Halving width: quadratic part 4x cheaper, linear part 2x.
        rel = precision_energy_scale(8, 16, multiplier_fraction=1.0)
        assert rel == pytest.approx(0.25)
        rel_lin = precision_energy_scale(8, 16, multiplier_fraction=0.0)
        assert rel_lin == pytest.approx(0.5)

    def test_precision_sweep_monotone(self):
        trace = synthetic_ecg(30.0, rng=0)
        out = precision_sweep(trace["signal"])
        assert np.all(np.diff(out["relative_energy"]) > 0)
        assert np.all(np.diff(out["snr_db"]) > 0)

    def test_frontier_meets_floor(self):
        trace = synthetic_ecg(30.0, rng=0)
        out = energy_quality_frontier(trace["signal"], min_snr_db=25.0)
        assert out["snr_db"] >= 25.0
        assert 0.0 < out["energy_saving"] < 1.0

    def test_frontier_impossible_floor(self):
        trace = synthetic_ecg(5.0, rng=0)
        with pytest.raises(ValueError):
            energy_quality_frontier(trace["signal"], min_snr_db=1e6)

    def test_subsampling_smooth_signal_cheap(self):
        t = np.linspace(0, 5, 4000)
        smooth = np.sin(2 * np.pi * 1.0 * t)
        out = subsample_sweep(smooth, factors=(1, 4, 16))
        assert out["snr_db"][1] > 30.0  # 4x subsample nearly lossless

    def test_unreliable_storage_degrades_gracefully(self):
        trace = synthetic_ecg(20.0, rng=0)
        signal = trace["signal"]
        clean = unreliable_storage_noise(signal, 0.0, rng=0)
        assert snr_db(signal, clean) > 40.0  # only quantization error
        noisy = unreliable_storage_noise(signal, 1e-3, rng=0)
        very_noisy = unreliable_storage_noise(signal, 1e-1, rng=0)
        assert snr_db(signal, noisy) > snr_db(signal, very_noisy)

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(4), 0)
        with pytest.raises(ValueError):
            snr_db(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            precision_energy_scale(0)
        with pytest.raises(ValueError):
            precision_sweep(np.zeros(0))
        with pytest.raises(ValueError):
            subsample_sweep(np.zeros(2))
        with pytest.raises(ValueError):
            unreliable_storage_noise(np.zeros(4), 2.0)
