"""Tests for biometric signals and the sensor-node energy model (E14)."""

import numpy as np
import pytest

from repro.sensor import (
    ECGConfig,
    SensorNode,
    detector_quality,
    event_rate,
    filtering_tradeoff,
    pipeline_ledger,
    synthetic_ecg,
    threshold_detector,
    zscore_detector,
)


class TestECG:
    def test_shape_and_determinism(self):
        a = synthetic_ecg(10.0, rng=0)
        b = synthetic_ecg(10.0, rng=0)
        assert a["signal"].size == 2500  # 10 s at 250 Hz
        np.testing.assert_array_equal(a["signal"], b["signal"])

    def test_beats_present(self):
        out = synthetic_ecg(10.0, rng=1)
        # ~70 bpm: expect ~11-12 beats; count upward 0.6-crossings
        # (noise std 0.03 cannot re-cross the threshold mid-beat).
        above = out["signal"] > 0.6
        beats = np.sum(above[1:] & ~above[:-1])
        assert 8 <= beats <= 15

    def test_anomalies_marked(self):
        clean = synthetic_ecg(30.0, anomaly_rate=0.0, rng=2)
        assert not clean["anomaly_mask"].any()
        dirty = synthetic_ecg(30.0, anomaly_rate=0.3, rng=2)
        assert dirty["anomaly_mask"].any()

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_ecg(0.0)
        with pytest.raises(ValueError):
            synthetic_ecg(1.0, anomaly_rate=2.0)
        with pytest.raises(ValueError):
            ECGConfig(sample_rate_hz=0.0)


class TestDetectors:
    def test_threshold_detector(self):
        signal = np.array([0.1, 0.9, -1.2, 0.0])
        out = threshold_detector(signal, 0.8)
        assert out.tolist() == [False, True, True, False]
        with pytest.raises(ValueError):
            threshold_detector(signal, 0.0)

    def test_zscore_flags_outliers(self):
        rng = np.random.default_rng(0)
        signal = rng.normal(0, 1.0, 2000)
        signal[1000] = 30.0
        out = zscore_detector(signal, window=200, z=6.0)
        assert out[1000]
        assert out.sum() < 10  # few false alarms

    def test_zscore_anomalous_beats_detected(self):
        trace = synthetic_ecg(120.0, anomaly_rate=0.1, rng=3)
        detections = zscore_detector(trace["signal"])
        q = detector_quality(detections, trace["anomaly_mask"])
        assert q["precision"] > 0.5
        assert q["recall"] > 0.1  # catches a meaningful share

    def test_zscore_validation(self):
        with pytest.raises(ValueError):
            zscore_detector(np.zeros(10), window=1)
        with pytest.raises(ValueError):
            zscore_detector(np.zeros(10), z=0.0)
        assert zscore_detector(np.zeros(0)).size == 0

    def test_quality_metrics(self):
        pred = np.array([True, True, False, False])
        true = np.array([True, False, True, False])
        q = detector_quality(pred, true)
        assert q["precision"] == 0.5
        assert q["recall"] == 0.5
        with pytest.raises(ValueError):
            detector_quality(pred, true[:2])

    def test_event_rate_merges_bursts(self):
        mask = np.zeros(1000, dtype=bool)
        mask[100:110] = True  # one event
        mask[500:505] = True  # another
        assert event_rate(mask) == 2
        assert event_rate(np.zeros(10, dtype=bool)) == 0
        with pytest.raises(ValueError):
            event_rate(mask, min_gap=0)


class TestSensorNode:
    def test_raw_transmission_dominated_by_radio(self):
        node = SensorNode()
        e = node.transmit_raw_energy_j(10_000)
        radio_only = node.radio_energy_per_bit_j * 10_000 * node.bits_per_sample
        assert e > radio_only  # radio + sense + bursts
        assert radio_only / e > 0.8  # radio dominates

    def test_filtering_cheaper_when_events_rare(self):
        node = SensorNode()
        raw = node.transmit_raw_energy_j(100_000)
        filtered = node.filter_locally_energy_j(
            100_000, ops_per_sample=50, n_events=10
        )
        assert raw > 10 * filtered

    def test_filtering_not_free_when_everything_is_an_event(self):
        node = SensorNode()
        raw = node.transmit_raw_energy_j(1000)
        filtered = node.filter_locally_energy_j(
            1000, ops_per_sample=50, n_events=1000, bits_per_event=256
        )
        assert filtered > raw  # transmitting events costs more than raw

    def test_lifetime(self):
        node = SensorNode(battery_j=86400.0)
        assert node.lifetime_days(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            node.lifetime_days(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNode(bits_per_sample=0)
        with pytest.raises(ValueError):
            SensorNode(battery_j=0.0)
        node = SensorNode()
        with pytest.raises(ValueError):
            node.transmit_raw_energy_j(-1)
        with pytest.raises(ValueError):
            node.filter_locally_energy_j(10, 1.0, -1)


class TestFilteringTradeoff:
    def test_paper_shape_big_energy_win(self):
        out = filtering_tradeoff(duration_s=600.0, rng=0)
        # "the energy required to communicate data often outweighs that
        # of computation": local filtering wins by >10x.
        assert out["energy_ratio"] > 10.0
        assert out["filtered_lifetime_days"] > 10 * out["raw_lifetime_days"]

    def test_detector_still_useful(self):
        out = filtering_tradeoff(duration_s=600.0, rng=0)
        assert out["precision"] > 0.5
        assert out["recall"] > 0.05

    def test_ledger_itemization(self):
        node = SensorNode()
        ledger = pipeline_ledger(node, 1000, 50.0, 5)
        assert ledger.total() == pytest.approx(
            node.filter_locally_energy_j(1000, 50.0, 5), rel=1e-9
        )
        assert set(ledger.breakdown(1)) == {"sense", "compute", "radio"}

    def test_validation(self):
        with pytest.raises(ValueError):
            filtering_tradeoff(duration_s=0.0)
