"""Championship harness tests: fixed traces, scored deterministic boards."""

from __future__ import annotations

import pytest

from repro.scenarios.championship import (
    COMPETITIONS,
    leaderboard_digest,
    run_all,
    run_championship,
)


class TestBoards:
    def test_four_competitions_ship(self):
        assert set(COMPETITIONS) == {
            "scheduling", "noc-routing", "wear-leveling", "hedging",
        }

    @pytest.mark.parametrize("name", sorted(COMPETITIONS))
    def test_board_is_ranked_ascending_by_score(self, name):
        board = run_championship(name)
        entries = board["entries"]
        assert len(entries) >= 2
        scores = [e["score"] for e in entries]
        assert scores == sorted(scores)
        assert [e["rank"] for e in entries] == list(
            range(1, len(entries) + 1)
        )
        assert "@" in board["scenario"] and board["metric"]

    def test_running_twice_yields_the_identical_digest(self):
        a = run_championship("scheduling")
        b = run_championship("scheduling")
        assert leaderboard_digest(a) == leaderboard_digest(b)
        assert a == b

    def test_unknown_championship_is_a_value_error(self):
        with pytest.raises(ValueError, match="scheduling"):
            run_championship("nope")


class TestScoring:
    def test_hedging_beats_no_hedge_on_straggler_p99(self):
        board = run_championship("hedging")
        by_policy = {e["policy"]: e for e in board["entries"]}
        assert by_policy["no-hedge"]["rank"] == len(board["entries"])
        assert (by_policy["hedge-p95"]["score"]
                < by_policy["no-hedge"]["score"])

    def test_wear_board_fully_orders_the_levelers(self):
        board = run_championship("wear-leveling")
        scores = [e["score"] for e in board["entries"]]
        assert len(set(scores)) == len(scores), (
            "wear levelers must separate, not tie"
        )
        policies = [e["policy"] for e in board["entries"]]
        assert policies.index("none") > policies.index("start-gap")

    def test_entry_rows_carry_metrics(self):
        board = run_championship("noc-routing")
        for entry in board["entries"]:
            assert entry["metrics"], entry["policy"]
            assert isinstance(entry["score"], float)


class TestRunAll:
    def test_run_all_covers_every_competition_with_one_digest(self):
        out = run_all()
        assert set(out["championships"]) == set(COMPETITIONS)
        assert len(out["digest"]) == 64
        # The digest is a pure function of the boards.
        assert out["digest"] == run_all()["digest"]

    def test_digest_excludes_itself(self):
        board = run_championship("scheduling")
        d1 = leaderboard_digest(board)
        board_with = dict(board, digest=d1)
        assert leaderboard_digest(board_with) == d1
