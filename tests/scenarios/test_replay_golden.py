"""Golden replay digests: every scenario, every mode, every backend.

The acceptance bar for the trace front end: replaying a shipped
scenario id yields a **byte-identical digest** no matter which
fast-path mode the kernel runs in (``off``/``auto``/``on``) and no
matter which execution backend carries the job (serial, process pool,
socket cluster).  The digests below are recorded constants; if a code
change alters one, it changed simulated behaviour — either a bug, or a
semantic change that must be called out and these constants
re-recorded (run this file as a script to regenerate).
"""

from __future__ import annotations

import pytest

from repro.scenarios.library import get, list_ids, replay_scenario, run

MODES = ("off", "auto", "on")

# sha256 of the canonicalized replay result (sink, records, outputs,
# interval stats) per shipped scenario id.  Regenerate with:
#   PYTHONPATH=src python tests/scenarios/test_replay_golden.py
GOLDEN_DIGESTS = {
    "cpu-mix@1":
        "4b1814acaa27270681add545967aad803747c2cb1243aaf4ad504c3549e9d1f3",
    "mem-graph-scan@1":
        "afd8a10d4049f09df4c56ed74eb025284d686ac9cd5903c09f2964275786a5ee",
    "mem-kv-zipf@1":
        "96a2419c415affe8a95ebbba49216751faa0e62329d23aeff4321aee63ac0cad",
    "noc-hotspot-4x4@1":
        "7c6f064132c012b14fd88fe412d3c27f8a93ee49c87ad3fe5c6dc9a0d645f11e",
    "noc-mesh-8x8@1":
        "2fdae99aafc01f3752fee01fd7f5823f28805be4efbe9b5db5440119e6dd13e0",
    "tail-straggler@1":
        "50f51356dde15ea4243af81412d4dc23e0694aad252dbebca36d2ab8e2800f4e",
    "wear-hotline@1":
        "1d6c46e1a0e6f83d5c85217cd909cc67e430d5121459dd4b1fbc0563f65edc26",
    "web-burst@1":
        "f51a53da8b60a0150ced61bfa0d8c006a12b99349826d2e7809c47a3fefbc953",
    "web-steady-rr@1":
        "8314c0ca7dca0a06c4b4f9b1ae79a79677b72b138301cf51638e20af1f55af13",
}


def test_golden_table_covers_every_shipped_scenario():
    assert set(GOLDEN_DIGESTS) == set(list_ids())


@pytest.mark.parametrize("sid", sorted(GOLDEN_DIGESTS))
@pytest.mark.parametrize("mode", MODES)
def test_replay_digest_matches_golden_in_every_mode(sid, mode):
    result = run(get(sid), fastpath=mode)
    assert result.digest() == GOLDEN_DIGESTS[sid], (
        f"{sid} digest drifted under fastpath={mode}"
    )


@pytest.mark.parametrize("mode", MODES)
def test_env_var_mode_resolution_matches_explicit(monkeypatch, mode):
    monkeypatch.setenv("REPRO_FASTPATH", mode)
    out = replay_scenario({"scenario": "web-steady-rr@1"})
    assert out["digest"] == GOLDEN_DIGESTS["web-steady-rr@1"]


class TestBackendParity:
    """The same scenario jobs through every exec backend → same report
    digest.  This is the distributed-reproducibility claim: a scenario
    id is a complete, location-independent experiment description."""

    BACKENDS = ("serial", "pool", "socket")

    def _report_digest(self, backend: str) -> str:
        from repro.exec.engine import run_jobs
        from repro.exec.job import Job, JobGraph

        graph = JobGraph()
        for sid in sorted(GOLDEN_DIGESTS):
            graph.add(Job(
                id=f"replay-{sid}",
                fn=replay_scenario,
                config={"scenario": sid},
            ))
        report = run_jobs(graph, jobs=2, backend=backend)
        assert report.failed() == [], report.summary()
        for sid in GOLDEN_DIGESTS:
            out = report.result(f"replay-{sid}")
            assert out["digest"] == GOLDEN_DIGESTS[sid], (sid, backend)
        return report.digest()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_each_backend_reproduces_every_golden(self, backend):
        assert len(self._report_digest(backend)) == 64

    def test_backends_agree_on_the_whole_report_digest(self):
        digests = {b: self._report_digest(b) for b in self.BACKENDS}
        assert len(set(digests.values())) == 1, digests


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    print("GOLDEN_DIGESTS = {")
    for sid in list_ids():
        print(f'    "{sid}":\n        "{run(get(sid)).digest()}",')
    print("}")
