"""Tests for ``python -m repro scenarios`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.scenarios.library import list_ids
from tests.scenarios.test_replay_golden import GOLDEN_DIGESTS


class TestList:
    def test_lists_every_shipped_id(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for sid in list_ids():
            assert sid in out

    def test_tag_filter(self, capsys):
        assert main(["scenarios", "list", "--tag", "noc"]) == 0
        out = capsys.readouterr().out
        assert "noc-mesh-8x8@1" in out
        assert "cpu-mix@1" not in out


class TestShow:
    def test_show_renders_the_bundle(self, capsys):
        assert main(["scenarios", "show", "web-burst@1"]) == 0
        out = capsys.readouterr().out
        assert "web-burst@1" in out
        assert "bursty-requests" in out

    def test_show_unknown_id_exits_nonzero(self, capsys):
        assert main(["scenarios", "show", "nope@1"]) == 2


class TestReplay:
    def test_replay_prints_the_golden_digest(self, capsys):
        assert main(["scenarios", "replay", "web-steady-rr@1"]) == 0
        out = capsys.readouterr().out
        assert GOLDEN_DIGESTS["web-steady-rr@1"] in out

    def test_replay_json_mode_is_machine_readable(self, capsys):
        assert main([
            "scenarios", "replay", "wear-hotline", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["digest"] == GOLDEN_DIGESTS["wear-hotline@1"]

    @pytest.mark.parametrize("mode", ("off", "on"))
    def test_replay_fastpath_flag_does_not_move_the_digest(
        self, capsys, mode
    ):
        assert main([
            "scenarios", "replay", "cpu-mix@1", "--fastpath", mode,
        ]) == 0
        out = capsys.readouterr().out
        assert GOLDEN_DIGESTS["cpu-mix@1"] in out


class TestGenInfo:
    def test_gen_then_info_roundtrip(self, tmp_path, capsys):
        target = str(tmp_path / "t.rtrc")
        assert main([
            "scenarios", "gen", "kv-zipf", "-o", target,
            "--seed", "3", "--n", "500",
        ]) == 0
        capsys.readouterr()
        assert main(["scenarios", "info", target]) == 0
        out = capsys.readouterr().out
        assert "500" in out
        assert "kv-zipf" in out

    def test_info_on_corrupt_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.rtrc"
        bad.write_bytes(b"not a trace at all")
        assert main(["scenarios", "info", str(bad)]) == 2
        assert "trace" in capsys.readouterr().err.lower()


class TestChamp:
    def test_champ_writes_a_leaderboard_artifact(self, tmp_path, capsys):
        artifact = str(tmp_path / "board.json")
        assert main([
            "scenarios", "champ", "wear-leveling", "--output", artifact,
        ]) == 0
        out = capsys.readouterr().out
        assert "start-gap" in out
        with open(artifact) as f:
            doc = json.load(f)
        board = doc["championships"]["wear-leveling"]
        assert board["championship"] == "wear-leveling"
        assert [e["rank"] for e in board["entries"]] == [1, 2, 3]
        assert len(doc["digest"]) == 64
