"""Scenario library unit tests: resolution, registry, bundle replay."""

from __future__ import annotations

import io

import pytest

from repro.scenarios.library import (
    Scenario,
    build_trace,
    get,
    list_ids,
    register,
    replay_scenario,
    run,
    write_trace_file,
)
from repro.traces.format import TraceReader, dtype_for


class TestResolution:
    def test_exact_id_resolves(self):
        sc = get("web-steady-rr@1")
        assert sc.id == "web-steady-rr@1"
        assert sc.sink == "queue"

    def test_bare_name_resolves_to_latest_version(self):
        assert get("web-steady-rr").id == "web-steady-rr@1"

    def test_unknown_id_is_a_keyerror_listing_known_ids(self):
        with pytest.raises(KeyError, match="web-steady-rr@1"):
            get("no-such-scenario@1")
        with pytest.raises(KeyError):
            get("")

    def test_library_ships_at_least_six_ids_sorted(self):
        ids = list_ids()
        assert len(ids) >= 6
        assert list(ids) == sorted(ids)
        assert all("@" in sid for sid in ids)

    def test_tag_filter_narrows_the_listing(self):
        noc = list_ids(tag="noc")
        assert noc
        assert set(noc) < set(list_ids())
        assert all("noc" in get(sid).tags for sid in noc)

    def test_every_shipped_scenario_is_internally_valid(self):
        for sid in list_ids():
            sc = get(sid)
            assert sc.id == sid
            d = sc.to_dict()
            assert d["id"] == sid
            assert d["profile"] == sc.profile
            assert d["sink"] == sc.sink


class TestRegistry:
    def test_reregistering_an_existing_id_is_rejected(self):
        sc = get("web-steady-rr@1")
        with pytest.raises(ValueError, match="already registered"):
            register(sc)

    def test_scenario_validation_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            Scenario(name="Bad Name", version=1, description="x",
                     profile="steady-requests", sink="queue")
        with pytest.raises(ValueError):
            Scenario(name="ok-name", version=0, description="x",
                     profile="steady-requests", sink="queue")

    def test_scenario_validation_rejects_unknown_profile_and_sink(self):
        with pytest.raises(ValueError, match="profile"):
            Scenario(name="x-a", version=1, description="x",
                     profile="nope", sink="queue")
        with pytest.raises(ValueError, match="sink"):
            Scenario(name="x-b", version=1, description="x",
                     profile="steady-requests", sink="nope")


class TestBundles:
    def test_build_trace_matches_declared_profile(self):
        sc = get("mem-kv-zipf@1")
        kind, arr = build_trace(sc)
        assert arr.dtype == dtype_for(kind)
        assert len(arr) == sc.gen_params["n"]

    def test_write_trace_file_stamps_the_scenario_id(self):
        sc = get("noc-mesh-8x8@1")
        buf = io.BytesIO()
        count = write_trace_file(sc, buf)
        with TraceReader(buf.getvalue()) as r:
            assert r.meta["scenario"] == sc.id
            assert sum(len(a) for _, a in r.blocks()) == count

    def test_run_returns_a_replay_result_with_stats(self):
        res = run(get("web-steady-rr@1"))
        assert res.sink == "queue"
        assert res.records > 0
        assert res.stats  # stats_interval > 0 for shipped scenarios
        assert len(res.digest()) == 64

    def test_replay_scenario_is_picklable_and_returns_a_dict(self):
        import pickle

        pickle.dumps(replay_scenario)  # top-level: exec backends need this
        out = replay_scenario({"scenario": "wear-hotline"})
        assert out["scenario"] == "wear-hotline@1"
        assert out["sink"] == "wear"
        assert out["digest"] == run(get("wear-hotline@1")).digest()

    def test_replay_scenario_rejects_unknown_and_bad_config(self):
        with pytest.raises(KeyError):
            replay_scenario({"scenario": "missing@9"})
        with pytest.raises(KeyError):
            replay_scenario({})
