"""Cross-cutting property-based tests on simulator invariants.

These complement the per-module suites with whole-simulator invariants
that must hold for *any* input: conservation laws, ordering guarantees,
and bound respect.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Simulator
from repro.interconnect import MeshNoC, NoCConfig
from repro.memory import (
    Cache,
    CacheConfig,
    DRAMBankModel,
    MemoryHierarchy,
)
from repro.parallel import STMSimulator, Transaction, generate_transactions
from repro.sensor import quantize


coord = st.tuples(st.integers(0, 3), st.integers(0, 3))


class TestNoCInvariants:
    @given(
        st.lists(
            st.tuples(coord, coord).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_every_packet_delivered_with_minimal_latency_bound(self, pairs):
        cfg = NoCConfig(width=4, height=4)
        noc = MeshNoC(cfg)
        result = noc.run(pairs)
        assert len(result.delivered) == len(pairs)
        assert result.dropped == 0
        for packet in result.delivered:
            manhattan = abs(packet.src[0] - packet.dst[0]) + abs(
                packet.src[1] - packet.dst[1]
            )
            # Latency can never beat the uncontended minimum.
            assert packet.latency >= manhattan * cfg.hop_latency - 1e-9
            assert packet.hops == manhattan

    @given(
        st.lists(
            st.tuples(coord, coord).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_energy_is_exactly_per_hop_times_hops(self, pairs):
        cfg = NoCConfig(width=4, height=4)
        result = MeshNoC(cfg).run(pairs)
        total_hops = sum(p.hops for p in result.delivered)
        per_hop = cfg.energy_per_hop_router_j + cfg.energy_per_hop_link_j
        assert result.ledger.total() == pytest.approx(total_hops * per_hop)


class TestMemoryAccounting:
    @given(
        st.lists(st.integers(0, 1 << 22), min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_hierarchy_conservation(self, addresses):
        h = MemoryHierarchy()
        res = h.run_trace(np.asarray(addresses, dtype=np.int64))
        served = sum(res.level_hits.values()) + res.memory_accesses
        assert served == res.accesses == len(addresses)
        assert res.total_cycles >= res.accesses  # at least L1 latency each

    @given(st.lists(st.integers(0, 1 << 28), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_dram_outcome_partition(self, addresses):
        model = DRAMBankModel()
        for a in addresses:
            model.access(a)
        s = model.stats
        assert s.row_hits + s.row_misses + s.row_conflicts == s.accesses

    @given(
        st.integers(1, 4),
        st.lists(st.integers(0, 1 << 16), min_size=1, max_size=150),
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_monotone_in_associativity_for_identical_capacity(
        self, assoc_pow, addresses
    ):
        # Not a theorem in general (Belady anomalies exist for FIFO,
        # not for LRU): LRU hit count is monotone in associativity at
        # fixed capacity only per-set; we check the weaker, always-true
        # invariant: hits + misses == accesses and contents bounded.
        assoc = 2**assoc_pow
        cache = Cache(
            CacheConfig(size_bytes=64 * 64, line_bytes=64,
                        associativity=assoc)
        )
        for a in addresses:
            cache.access(a)
        assert cache.stats.hits + cache.stats.misses == len(addresses)
        assert len(cache.contents()) <= 64


class TestEventKernelInvariants:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3),
            min_size=1, max_size=60,
        ),
        st.integers(0, 59),
    )
    @settings(max_examples=40, deadline=None)
    def test_cancellation_never_affects_other_events(self, delays, kill):
        sim_a = Simulator()
        sim_b = Simulator()
        fired_a, fired_b = [], []
        tokens = []
        for i, d in enumerate(delays):
            sim_a.schedule(d, lambda s, p: fired_a.append(p), i)
            tokens.append(
                sim_b.schedule(d, lambda s, p: fired_b.append(p), i)
            )
        victim = kill % len(delays)
        tokens[victim].cancel()
        sim_a.run()
        sim_b.run()
        assert set(fired_a) - set(fired_b) == {victim}


class TestSTMInvariants:
    @given(st.integers(1, 8), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_committed_writes_never_overlap_in_flight_windows(
        self, threads, seed
    ):
        """Serializability witness: replaying the commit log, no
        committed transaction's window may contain a conflicting commit
        (that is exactly what validation rejects)."""
        txns = generate_transactions(40, hot_fraction=0.6, rng=seed)
        stats = STMSimulator(n_threads=threads).run(txns, rng=seed)
        assert stats.commits == len(txns)
        assert stats.useful_time == pytest.approx(
            sum(t.duration for t in txns)
        )
        assert stats.wasted_time >= 0.0


class TestQuantizationBounds:
    @given(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0),
            min_size=1, max_size=100,
        ),
        st.integers(4, 16),
    )
    @settings(max_examples=40)
    def test_quantization_error_bounded_by_step(self, values, bits):
        x = np.asarray(values)
        fs = float(np.max(np.abs(x)))
        q = quantize(x, bits, full_scale=fs)
        if fs == 0:
            np.testing.assert_array_equal(q, 0.0)
            return
        step = fs / 2 ** (bits - 1)
        # Mid-rise quantizer: error <= step/2 everywhere except the
        # clipped top code, which is <= step.
        assert np.all(np.abs(q - x) <= step + 1e-12)
