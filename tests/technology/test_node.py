"""Tests for the technology-node database."""

import numpy as np
import pytest

from repro.technology import (
    NODES,
    TechnologyNode,
    density_series,
    get_node,
    node_for_year,
    node_names,
    nodes_between,
)


class TestDatabaseShape:
    def test_nodes_ordered_oldest_first(self):
        years = [n.year for n in NODES]
        assert years == sorted(years)
        features = [n.feature_nm for n in NODES]
        assert features == sorted(features, reverse=True)

    def test_density_doubles_roughly_per_node(self):
        dens = density_series()
        growth = dens[1:] / dens[:-1]
        # Each shrink step multiplies density by (feature ratio)^2;
        # steps vary but all grow and average near 2x.
        assert np.all(growth > 1.0)
        assert 1.5 <= np.exp(np.mean(np.log(growth))) <= 3.0

    def test_vdd_monotone_nonincreasing(self):
        vdds = [n.vdd_v for n in NODES]
        assert all(a >= b for a, b in zip(vdds, vdds[1:]))

    def test_delay_monotone_decreasing(self):
        delays = [n.delay_ps for n in NODES]
        assert all(a > b for a, b in zip(delays, delays[1:]))

    def test_moore_holds_across_database(self):
        # Paper Table 1: transistor count still 2x every 18-24 months.
        first, last = NODES[0], NODES[-1]
        growth = last.density_mtx_mm2 / first.density_mtx_mm2
        years = last.year - first.year
        implied_doubling_months = 12 * years / np.log2(growth)
        assert 18 <= implied_doubling_months <= 30

    def test_switching_energy_falls_generation_over_generation(self):
        energies = [n.switching_energy_j() for n in NODES]
        assert all(a > b for a, b in zip(energies, energies[1:]))


class TestLookups:
    def test_get_node(self):
        node = get_node("45nm")
        assert node.feature_nm == 45.0
        assert node.year == 2008

    def test_get_node_unknown(self):
        with pytest.raises(KeyError, match="unknown node"):
            get_node("3nm")

    def test_node_names_sorted_by_age(self):
        names = node_names()
        assert names[0] == "1500nm"
        assert names[-1] == "5nm"

    def test_nodes_between(self):
        span = nodes_between(2004, 2012)
        assert [n.name for n in span] == ["90nm", "65nm", "45nm", "32nm", "22nm"]
        with pytest.raises(ValueError):
            nodes_between(2012, 2004)

    def test_node_for_year(self):
        assert node_for_year(2005).name == "90nm"
        assert node_for_year(1985).name == "1500nm"
        with pytest.raises(ValueError):
            node_for_year(1980)


class TestDerivedQuantities:
    def test_max_frequency_plausible(self):
        # 22 nm at 25 FO4/cycle should land in the ~3-4 GHz band.
        f = get_node("22nm").max_frequency_ghz(25.0)
        assert 2.5 <= f <= 4.5

    def test_frequency_scales_inverse_with_pipeline(self):
        node = get_node("90nm")
        assert node.max_frequency_ghz(10.0) == pytest.approx(
            2.5 * node.max_frequency_ghz(25.0)
        )

    def test_dynamic_power_linear_in_frequency_and_activity(self):
        node = get_node("45nm")
        p1 = node.dynamic_power_w(1e9, 1e9, activity=0.1)
        assert node.dynamic_power_w(1e9, 2e9, activity=0.1) == pytest.approx(2 * p1)
        assert node.dynamic_power_w(1e9, 1e9, activity=0.2) == pytest.approx(2 * p1)

    def test_chip_power_magnitude(self):
        # A 100 mm^2 die at 45 nm running flat out: tens to ~200 W.
        power = get_node("45nm").chip_power_w(100.0)
        assert 10.0 <= power <= 400.0

    def test_transistors_for_area(self):
        node = get_node("22nm")
        tx = node.transistors_for_area(160.0)
        # Ivy-Bridge-class: ~1-3 billion transistors.
        assert 5e8 <= tx <= 5e9

    def test_validation(self):
        node = get_node("45nm")
        with pytest.raises(ValueError):
            node.max_frequency_ghz(0.0)
        with pytest.raises(ValueError):
            node.transistors_for_area(-1.0)
        with pytest.raises(ValueError):
            node.dynamic_power_w(1e9, 1e9, activity=1.5)
        with pytest.raises(ValueError):
            node.leakage_power_w(-1.0)
        with pytest.raises(ValueError):
            node.switching_energy_j(0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TechnologyNode(
                name="bad", feature_nm=0.0, year=2000, vdd_v=1.0,
                vth_v=0.3, density_mtx_mm2=1.0, cap_per_tx_f=1e-15,
                leakage_w_per_mtx=0.0, delay_ps=10.0, fit_per_mbit=100.0,
            )
        with pytest.raises(ValueError):
            TechnologyNode(
                name="bad", feature_nm=45.0, year=2000, vdd_v=0.2,
                vth_v=0.3, density_mtx_mm2=1.0, cap_per_tx_f=1e-15,
                leakage_w_per_mtx=0.0, delay_ps=10.0, fit_per_mbit=100.0,
            )
