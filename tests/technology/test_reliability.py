"""Tests for the reliability models (paper Table 1 row 3)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.technology import (
    NODES,
    FailureModel,
    aging_guardband_fraction,
    chip_fit,
    chip_fit_series,
    fit_to_failures_per_year,
    fit_to_mttf_hours,
    frequency_spread,
    get_node,
    nbti_vth_shift_mv,
    ser_with_protection,
    series_fit,
    tmr_reliability,
    vth_sigma_mv,
)


class TestChipFit:
    def test_scales_with_sram(self):
        node = get_node("45nm")
        small = chip_fit(node, sram_mbit=1.0, logic_fit=0.0)
        big = chip_fit(node, sram_mbit=10.0, logic_fit=0.0)
        assert big == pytest.approx(10 * small)

    def test_logic_term_added(self):
        node = get_node("45nm")
        assert chip_fit(node, 0.0, logic_fit=42.0) == pytest.approx(42.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chip_fit(get_node("45nm"), -1.0)

    def test_series_rises_over_time(self):
        """Table 1 row 3: raw chip SER worsens across the decades."""
        series = chip_fit_series()
        raw = series["raw_fit"]
        assert raw[-1] > 100 * raw[0]
        # Protection helps but the protected trend still climbs.
        prot = series["protected_fit"]
        assert np.all(prot <= raw)
        assert prot[-1] > prot[0]


class TestProtection:
    def test_ecc_reduces_fit(self):
        assert ser_with_protection(1000.0, ecc_coverage=0.99) == pytest.approx(10.0)

    def test_interleaving_divides_escapes(self):
        base = ser_with_protection(1000.0, ecc_coverage=0.9)
        inter = ser_with_protection(1000.0, ecc_coverage=0.9, interleaving_factor=4.0)
        assert inter == pytest.approx(base / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ser_with_protection(100.0, ecc_coverage=1.5)
        with pytest.raises(ValueError):
            ser_with_protection(100.0, interleaving_factor=0.5)


class TestFitConversions:
    def test_mttf(self):
        assert fit_to_mttf_hours(1e9) == pytest.approx(1.0)
        assert fit_to_mttf_hours(0.0) == math.inf

    def test_failures_per_year(self):
        # 114155 FIT ~ one failure per year.
        per_year = fit_to_failures_per_year(1e9 / (24 * 365.25))
        assert per_year == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_to_mttf_hours(-1.0)
        with pytest.raises(ValueError):
            fit_to_failures_per_year(-1.0)


class TestVariation:
    def test_sigma_grows_as_features_shrink(self):
        sigmas = [vth_sigma_mv(n) for n in NODES]
        assert all(a < b for a, b in zip(sigmas, sigmas[1:]))

    def test_pelgrom_inverse_sqrt_area(self):
        n45, n90 = get_node("45nm"), get_node("90nm")
        # Halving L doubles sigma (area scales L^2).
        assert vth_sigma_mv(n45) == pytest.approx(2.0 * vth_sigma_mv(n90))

    def test_frequency_spread_grows_at_small_nodes(self):
        spread_old = frequency_spread(get_node("180nm"))
        spread_new = frequency_spread(get_node("22nm"))
        assert spread_new > spread_old
        assert spread_old > 0.0

    def test_spread_inf_when_vth_exceeds_vdd(self):
        node = get_node("5nm")
        assert frequency_spread(node, sigma_multiplier=100.0) == math.inf


class TestAging:
    def test_drift_grows_with_time(self):
        node = get_node("32nm")
        shifts = [nbti_vth_shift_mv(t, node) for t in (0.0, 1.0, 5.0, 10.0)]
        assert shifts[0] == 0.0
        assert all(a < b for a, b in zip(shifts, shifts[1:]))

    def test_sublinear_in_time(self):
        node = get_node("32nm")
        one = nbti_vth_shift_mv(1.0, node)
        ten = nbti_vth_shift_mv(10.0, node)
        assert ten < 10 * one

    def test_smaller_nodes_age_faster(self):
        assert nbti_vth_shift_mv(5.0, get_node("22nm")) > nbti_vth_shift_mv(
            5.0, get_node("180nm")
        )

    def test_guardband_positive_and_reasonable(self):
        gb = aging_guardband_fraction(10.0, get_node("45nm"))
        assert 0.0 < gb < 1.0

    def test_negative_years_rejected(self):
        with pytest.raises(ValueError):
            nbti_vth_shift_mv(-1.0, get_node("45nm"))


class TestFailureAlgebra:
    def test_reliability_decays(self):
        fm = FailureModel(fit=1000.0)
        assert fm.reliability(0.0) == 1.0
        assert fm.reliability(1e6) < 1.0

    def test_series_composition(self):
        a, b = FailureModel(100.0), FailureModel(200.0)
        assert a.series(b).fit == 300.0
        assert series_fit([100.0, 200.0, 300.0]) == 600.0

    def test_tmr_better_above_half(self):
        assert tmr_reliability(0.9) > 0.9
        assert tmr_reliability(0.3) < 0.3
        assert tmr_reliability(1.0) == pytest.approx(1.0)
        assert tmr_reliability(0.5) == pytest.approx(0.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_tmr_in_unit_interval(self, r):
        assert 0.0 <= tmr_reliability(r) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(-1.0)
        with pytest.raises(ValueError):
            tmr_reliability(1.5)
        with pytest.raises(ValueError):
            FailureModel(1.0).reliability(-1.0)
