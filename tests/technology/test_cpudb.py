"""Tests for the CPU-DB attribution study (paper claim E02)."""

import numpy as np
import pytest

from repro.technology import (
    PROCESSORS,
    ProcessorRecord,
    attribute,
    attribution_series,
    frequency_series,
    paper_claim_check,
)


class TestRecords:
    def test_records_chronological(self):
        years = [r.year for r in PROCESSORS]
        assert years == sorted(years)
        assert years[0] == 1985 and years[-1] == 2012

    def test_frequency_derivation(self):
        r = PROCESSORS[0]
        expected = 1000.0 / (r.node.delay_ps * r.fo4_per_cycle)
        assert r.frequency_ghz == pytest.approx(expected)

    def test_1985_record_runs_at_tens_of_mhz(self):
        assert 0.005 <= PROCESSORS[0].frequency_ghz <= 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorRecord("bad", 2000, "90nm", fo4_per_cycle=0.0, ipc=1.0)
        with pytest.raises(ValueError):
            ProcessorRecord("bad", 2000, "90nm", fo4_per_cycle=20.0, ipc=1.0, cores=0)

    def test_throughput_includes_cores(self):
        r = PROCESSORS[-1]
        assert r.throughput_perf == pytest.approx(
            r.single_thread_perf * r.cores
        )


class TestClockPlateau:
    def test_clock_peaks_then_plateaus(self):
        fs = frequency_series()
        ghz = fs["ghz"]
        # Monotone growth through 2004...
        idx_2004 = list(fs["years"]).index(2004.0)
        assert np.all(np.diff(ghz[: idx_2004 + 1]) > 0)
        # ...then never again grows at the pre-2004 pace: post-2004
        # clocks all stay within ~1.5x of the 2004 value.
        assert np.all(ghz[idx_2004:] <= 1.5 * ghz[idx_2004])
        # And the plateau sits in the real 2-4 GHz band.
        assert 2.0 <= ghz[-1] <= 4.0


class TestAttribution:
    def test_decomposition_is_exact(self):
        a = attribute(PROCESSORS[0], PROCESSORS[-1])
        assert a.consistent()

    def test_identity_attribution(self):
        a = attribute(PROCESSORS[3], PROCESSORS[3])
        assert a.total_gain == pytest.approx(1.0)
        assert a.technology_gain == pytest.approx(1.0)
        assert a.architecture_gain == pytest.approx(1.0)

    def test_paper_claims(self):
        claims = paper_claim_check()
        # "architecture credited with ~80x improvement since 1985"
        assert 60.0 <= claims["architecture_gain"] <= 100.0
        # "apportioned computer performance growth roughly equally
        # between technology and architecture"
        assert 0.8 <= claims["log_split_arch_over_tech"] <= 1.25
        assert claims["total_gain"] == pytest.approx(
            claims["architecture_gain"] * claims["technology_gain"]
        )

    def test_series_monotone_years(self):
        series = attribution_series()
        assert np.all(np.diff(series["years"]) > 0)
        assert series["total"][0] == pytest.approx(1.0)
        # Cumulative gains only grow for this database.
        assert np.all(np.diff(series["total"]) > 0)

    def test_series_consistency(self):
        series = attribution_series()
        np.testing.assert_allclose(
            series["total"],
            series["technology"] * series["architecture"],
            rtol=1e-9,
        )

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            attribution_series([])
