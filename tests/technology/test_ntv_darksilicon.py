"""Tests for near-threshold voltage and dark-silicon models (E10/E12)."""

import numpy as np
import pytest

from repro.technology import (
    Dimming,
    NTVModel,
    compare_dimming_strategies,
    dark_silicon_fraction,
    dark_silicon_series,
    effective_energy_sweep,
    get_node,
    powered_fraction,
)


@pytest.fixture
def model():
    return NTVModel(get_node("45nm"))


class TestNTVEnergy:
    def test_dynamic_energy_quadratic_in_vdd(self, model):
        e1 = model.dynamic_energy_per_op(0.5)[0]
        e2 = model.dynamic_energy_per_op(1.0)[0]
        assert e2 == pytest.approx(4.0 * e1)

    def test_energy_is_u_shaped(self, model):
        vdd = np.linspace(0.25, model.node.vdd_v, 80)
        energy = model.energy_per_op(vdd)
        i_min = int(np.argmin(energy))
        assert 0 < i_min < len(vdd) - 1  # interior minimum
        # Minimum lies near/below threshold + ~0.25 V.
        assert vdd[i_min] < model.node.vth_v + 0.30

    def test_ntv_saves_meaningful_energy(self, model):
        v_opt = model.optimal_vdd()
        gain = (
            model.energy_per_op(model.node.vdd_v)[0]
            / model.energy_per_op(v_opt)[0]
        )
        # Paper: "tremendous potential to reduce power" — we model the
        # canonical ~2-5x energy/op reduction at the optimum.
        assert 1.8 <= gain <= 6.0

    def test_delay_explodes_below_threshold(self, model):
        sub = model.relative_delay(model.node.vth_v - 0.05)[0]
        near = model.relative_delay(model.node.vth_v + 0.1)[0]
        assert sub > 10 * near

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.energy_per_op(0.0)
        with pytest.raises(ValueError):
            NTVModel(get_node("45nm"), alpha=-1.0)
        with pytest.raises(ValueError):
            NTVModel(get_node("45nm"), subthreshold_slope_mv_dec=30.0)
        with pytest.raises(ValueError):
            NTVModel(get_node("45nm"), leakage_fraction_nominal=1.0)
        with pytest.raises(ValueError):
            model.optimal_vdd(lo=1.0, hi=0.5)


class TestNTVReliability:
    def test_error_rate_rises_as_vdd_falls(self, model):
        rates = model.timing_error_rate(np.array([0.45, 0.6, 0.9, 1.0]))
        assert rates[0] > rates[1] > rates[3]
        assert rates[3] < 1e-6  # nominal operation is effectively clean

    def test_error_rate_is_probability(self, model):
        rates = model.timing_error_rate(np.linspace(0.31, 1.0, 30))
        assert np.all(rates >= 0.0) and np.all(rates <= 1.0)

    def test_effective_optimum_at_or_above_raw_optimum(self, model):
        sweep = effective_energy_sweep("45nm", vdd_lo=0.3)
        v_raw = sweep["vdd"][int(np.argmin(sweep["energy_per_op"]))]
        v_eff = sweep["vdd"][
            int(np.argmin(sweep["effective_energy_per_op"]))
        ]
        assert v_eff >= v_raw  # resilience pushes the optimum up

    def test_recovery_overhead_increases_effective_energy(self, model):
        v = 0.5
        cheap = model.effective_energy_per_op(v, recovery_overhead=0.0)[0]
        costly = model.effective_energy_per_op(v, recovery_overhead=100.0)[0]
        assert costly >= cheap

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.timing_error_rate(0.5, guardband=-0.1)
        with pytest.raises(ValueError):
            model.timing_error_rate(0.5, paths=0.0)
        with pytest.raises(ValueError):
            model.effective_energy_per_op(0.5, recovery_overhead=-1.0)


class TestDarkSilicon:
    def test_dennard_era_chip_fully_powered(self):
        # A 1995-era die under a generous budget lights everything.
        frac = powered_fraction(get_node("600nm"), 100.0, 50.0)
        assert frac == 1.0

    def test_modern_chip_mostly_dark(self):
        frac = powered_fraction(get_node("14nm"), 300.0, 100.0)
        assert frac < 0.5

    def test_dark_fraction_complement(self):
        node = get_node("32nm")
        assert dark_silicon_fraction(node, 300.0, 100.0) == pytest.approx(
            1.0 - powered_fraction(node, 300.0, 100.0)
        )

    def test_series_monotone_growth(self):
        series = dark_silicon_series()
        dark = series["dark_fraction"]
        assert np.all(np.diff(dark) >= -1e-12)
        assert dark[0] < 0.1
        assert dark[-1] > 0.8

    def test_bigger_budget_less_dark(self):
        node = get_node("22nm")
        small = powered_fraction(node, 300.0, 50.0)
        big = powered_fraction(node, 300.0, 200.0)
        assert big > small

    def test_validation(self):
        node = get_node("22nm")
        with pytest.raises(ValueError):
            powered_fraction(node, 300.0, 0.0)
        with pytest.raises(ValueError):
            dark_silicon_series(start_year=2050)


class TestDimmingStrategies:
    def test_all_strategies_reported(self):
        outs = compare_dimming_strategies(get_node("22nm"))
        assert {o.strategy for o in outs} == set(Dimming)

    def test_specialization_beats_naive_dark(self):
        outs = {o.strategy: o for o in compare_dimming_strategies(get_node("22nm"))}
        assert (
            outs[Dimming.SPECIALIZE].relative_throughput
            > outs[Dimming.NONE].relative_throughput
        )

    def test_specialization_grows_with_coverage(self):
        lo = {
            o.strategy: o
            for o in compare_dimming_strategies(
                get_node("22nm"), accel_coverage=0.1
            )
        }[Dimming.SPECIALIZE]
        hi = {
            o.strategy: o
            for o in compare_dimming_strategies(
                get_node("22nm"), accel_coverage=0.9
            )
        }[Dimming.SPECIALIZE]
        assert hi.relative_throughput > lo.relative_throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_dimming_strategies(get_node("22nm"), accel_coverage=1.5)
        with pytest.raises(ValueError):
            compare_dimming_strategies(
                get_node("22nm"), accel_efficiency_gain=0.0
            )
