"""Tests for Moore/Dennard/post-Dennard scaling laws."""

import numpy as np
import pytest

from repro.technology import (
    CLASSIC_SHRINK,
    dennard_breakdown_year,
    dennard_trajectory,
    frequency_from_delay,
    moores_law_transistors,
    nodes_between,
    observed_trajectory,
    post_dennard_trajectory,
    power_gap_series,
    utilization_wall,
)
from repro.technology.node import NODES


class TestDennardTrajectory:
    def test_constant_power(self):
        traj = dennard_trajectory(10)
        np.testing.assert_allclose(traj.power, 1.0, rtol=1e-9)

    def test_transistors_double_per_generation(self):
        traj = dennard_trajectory(5)
        np.testing.assert_allclose(
            traj.transistors, [1, 2, 4, 8, 16], rtol=1e-9
        )

    def test_frequency_grows(self):
        traj = dennard_trajectory(5)
        assert np.all(np.diff(traj.frequency) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dennard_trajectory(0)
        with pytest.raises(ValueError):
            dennard_trajectory(5, shrink=1.5)


class TestPostDennardTrajectory:
    def test_power_grows_sqrt2_per_generation(self):
        traj = post_dennard_trajectory(6)
        growth = traj.power[1:] / traj.power[:-1]
        np.testing.assert_allclose(growth, np.sqrt(2.0), rtol=1e-9)

    def test_vdd_flat(self):
        traj = post_dennard_trajectory(4)
        np.testing.assert_allclose(traj.vdd, 1.0)

    def test_frequency_growth_knob(self):
        traj = post_dennard_trajectory(3, frequency_growth=1.1)
        np.testing.assert_allclose(traj.frequency, [1.0, 1.1, 1.21])
        with pytest.raises(ValueError):
            post_dennard_trajectory(3, frequency_growth=0.0)

    def test_power_gap_widens_monotonically(self):
        gap = power_gap_series(8)
        assert gap[0] == pytest.approx(1.0)
        assert np.all(np.diff(gap) > 0)
        # After 6 generations the gap is 2^3 = 8x.
        assert gap[6] == pytest.approx(2.0**3, rel=1e-9)


class TestObservedTrajectory:
    def test_normalized_to_first_node(self):
        traj = observed_trajectory()
        assert traj.transistors[0] == pytest.approx(1.0)
        assert traj.power[0] == pytest.approx(1.0)

    def test_switching_energy_improves_slower_after_dennard(self):
        # Under constant-field scaling, C*V^2 falls ~s^3 (~0.35x) per
        # generation; once voltage plateaus it falls only ~s (~0.7x).
        nodes_dennard = nodes_between(1995, 2004)
        nodes_post = nodes_between(2006, 2020)
        def per_gen_energy_ratio(nodes):
            e = np.array([n.switching_energy_j() for n in nodes])
            return np.exp(np.mean(np.log(e[1:] / e[:-1])))
        assert per_gen_energy_ratio(nodes_dennard) < 0.55
        assert per_gen_energy_ratio(nodes_post) > 0.55

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            observed_trajectory([])


class TestMooresLaw:
    def test_doubling(self):
        counts = moores_law_transistors([1985, 1987, 1989])
        assert counts[1] / counts[0] == pytest.approx(2.0)
        assert counts[2] / counts[0] == pytest.approx(4.0)

    def test_paper_band(self):
        # 2x per 18-24 months => 27 years gives between 2^13.5 and 2^18.
        growth_slow = moores_law_transistors([2012], doubling_period_years=2.0)
        growth_fast = moores_law_transistors([2012], doubling_period_years=1.5)
        base = moores_law_transistors([1985])
        assert growth_slow[0] / base[0] == pytest.approx(2.0**13.5)
        assert growth_fast[0] / base[0] == pytest.approx(2.0**18.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            moores_law_transistors([2000], doubling_period_years=0.0)


class TestUtilizationWall:
    def test_post_dennard_default_is_inverse_sqrt2(self):
        assert utilization_wall() == pytest.approx(1.0 / np.sqrt(2.0))

    def test_dennard_case_holds_utilization(self):
        # With voltage scaling, energy/switch falls s^3 ~ 0.354, so
        # utilization is preserved: 1 / (2 * 0.354) ~ 1.41 >= 1.
        dennard = utilization_wall(
            energy_per_switch_scaling=CLASSIC_SHRINK**3
        )
        assert dennard > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization_wall(transistor_growth=0.0)


class TestBreakdownDetection:
    def test_breakdown_year_in_paper_window(self):
        # The paper dates the end of Dennard scaling to the mid-2000s.
        year = dennard_breakdown_year()
        assert 2004 <= year <= 2008

    def test_pure_dennard_nodes_never_break(self):
        # Construct an ideally scaled node list: no breakdown.
        from repro.technology.node import TechnologyNode

        nodes = []
        feat, vdd = 600.0, 3.3
        for year in range(1995, 2011, 2):
            nodes.append(
                TechnologyNode(
                    name=f"{feat:.0f}nm", feature_nm=feat, year=year,
                    vdd_v=vdd, vth_v=vdd * 0.2, density_mtx_mm2=1.0,
                    cap_per_tx_f=1e-15, leakage_w_per_mtx=1e-4,
                    delay_ps=100.0, fit_per_mbit=100.0,
                )
            )
            feat *= 0.7
            vdd *= 0.7
        with pytest.raises(ValueError, match="no breakdown"):
            dennard_breakdown_year(nodes)

    def test_needs_three_nodes(self):
        with pytest.raises(ValueError):
            dennard_breakdown_year(NODES[:2])


class TestFrequencySeries:
    def test_frequency_from_delay_monotone(self):
        freqs = frequency_from_delay(NODES)
        assert np.all(np.diff(freqs) > 0)

    def test_pipeline_depth_scales(self):
        shallow = frequency_from_delay(NODES, pipeline_fo4=50.0)
        deep = frequency_from_delay(NODES, pipeline_fo4=25.0)
        np.testing.assert_allclose(deep, 2.0 * shallow)
