"""Tests for the beyond-CMOS device candidates (Section 2.3)."""

import numpy as np
import pytest

from repro.technology import (
    CANDIDATES,
    DeviceCandidate,
    best_device_at_speed,
    crossover_table,
    energy_delay_frontier,
    get_candidate,
)


class TestCandidates:
    def test_lookup(self):
        assert get_candidate("tfet").name == "tfet"
        with pytest.raises(KeyError):
            get_candidate("spintronics")

    def test_tfet_beats_thermionic_floor(self):
        # The defining TFET property: slope below 60 mV/dec.
        assert get_candidate("tfet").subthreshold_slope_mv_dec < 60.0
        assert get_candidate("cmos_hp").subthreshold_slope_mv_dec >= 60.0

    def test_steep_slope_means_low_leakage(self):
        assert get_candidate("tfet").ioff_rel < get_candidate("cmos_hp").ioff_rel

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceCandidate("bad", subthreshold_slope_mv_dec=0.0,
                            on_current_rel=1.0, vdd_nominal_v=1.0,
                            vth_v=0.3)
        with pytest.raises(ValueError):
            DeviceCandidate("bad", subthreshold_slope_mv_dec=60.0,
                            on_current_rel=1.0, vdd_nominal_v=0.2,
                            vth_v=0.3)


class TestFrontier:
    def test_delay_explodes_below_threshold(self):
        dev = get_candidate("cmos_hp")
        assert dev.delay_rel(0.15) > 100 * dev.delay_rel(0.9)

    def test_energy_has_interior_minimum(self):
        # Leakage stops the V^2 ride: energy is U-shaped in Vdd.
        dev = get_candidate("cmos_hp")
        f = energy_delay_frontier(dev, vdd_lo=0.15, vdd_hi=0.9, n=60)
        i = int(np.argmin(f["energy_rel"]))
        assert 0 < i < len(f["vdd"]) - 1

    def test_frontier_validation(self):
        dev = get_candidate("tfet")
        with pytest.raises(ValueError):
            energy_delay_frontier(dev, vdd_lo=0.5, vdd_hi=0.2)
        with pytest.raises(ValueError):
            energy_delay_frontier(dev, n=1)
        with pytest.raises(ValueError):
            dev.delay_rel(0.0)
        with pytest.raises(ValueError):
            dev.energy_rel(-1.0)


class TestSelection:
    def test_fast_corner_goes_to_high_drive(self):
        out = best_device_at_speed(1.0)
        assert out["device"] in ("qwfet", "cmos_hp")

    def test_relaxed_corner_goes_to_steep_slope(self):
        out = best_device_at_speed(100.0)
        assert out["device"] in ("tfet", "qca")

    def test_winner_changes_across_the_spectrum(self):
        # The paper's point: no single "winning combination".
        table = crossover_table((1.0, 10.0, 50.0, 1e4))
        winners = set(table.values()) - {"none"}
        assert len(winners) >= 3

    def test_energy_improves_as_budget_relaxes(self):
        tight = best_device_at_speed(2.0)["energy_rel"]
        loose = best_device_at_speed(1000.0)["energy_rel"]
        assert loose < tight

    def test_impossible_budget(self):
        with pytest.raises(ValueError):
            best_device_at_speed(1e-6)
        with pytest.raises(ValueError):
            best_device_at_speed(0.0)
        assert crossover_table((1e-6,))[1e-6] == "none"
        with pytest.raises(ValueError):
            crossover_table(())
