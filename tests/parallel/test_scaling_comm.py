"""Tests for communication-aware 1,000-way parallelism (experiment E08)."""

import numpy as np
import pytest

from repro.parallel import (
    CommunicationModel,
    energy_constrained_throughput,
    optimal_parallelism,
    required_comm_reduction_for_target,
)


class TestCommunicationModel:
    def test_comm_energy_grows_with_cores(self):
        m = CommunicationModel()
        e = m.comm_energy_per_op_j(np.array([1, 64, 1024]))
        assert np.all(np.diff(e) > 0)

    def test_mesh_distance_scaling(self):
        m = CommunicationModel(distance_exponent=0.5)
        e1 = m.comm_energy_per_op_j(16)
        e2 = m.comm_energy_per_op_j(64)
        assert e2 / e1 == pytest.approx(2.0)  # sqrt(4)

    def test_comm_eventually_dominates(self):
        # The paper's claim: communication energy outgrows computation.
        m = CommunicationModel()
        n_big = 10_000
        assert m.comm_energy_per_op_j(n_big) > 10 * m.compute_energy_per_op_j

    def test_validation(self):
        with pytest.raises(ValueError):
            CommunicationModel(compute_energy_per_op_j=-1.0)
        with pytest.raises(ValueError):
            CommunicationModel(traffic_fraction=1.5)
        m = CommunicationModel()
        with pytest.raises(ValueError):
            m.comm_energy_per_op_j(0)


class TestEnergyConstrainedThroughput:
    def test_rises_then_falls(self):
        ns = np.array([1, 10, 100, 461, 5000, 50000], dtype=float)
        thr = energy_constrained_throughput(ns, power_budget_w=10.0)
        peak = np.argmax(thr)
        assert 0 < peak < len(ns) - 1
        assert thr[-1] < thr[peak]

    def test_power_ceiling_binds_at_scale(self):
        m = CommunicationModel()
        n = 50_000
        thr = energy_constrained_throughput(np.array([n]), 10.0, m)
        assert thr[0] == pytest.approx(10.0 / m.energy_per_op_j(n), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_constrained_throughput(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            energy_constrained_throughput(np.array([0.5]), 1.0)


class TestOptimalParallelism:
    def test_finite_optimum_under_default_model(self):
        out = optimal_parallelism(10.0)
        assert 50 <= out["n_optimal"] <= 5000
        # At the optimum, communication dominates the energy budget —
        # the paper's "communication energy will outgrow computation".
        assert out["comm_energy_share"] > 0.5

    def test_bigger_budget_more_parallelism(self):
        small = optimal_parallelism(1.0)["n_optimal"]
        big = optimal_parallelism(100.0)["n_optimal"]
        assert big > small

    def test_cheaper_communication_more_parallelism(self):
        expensive = optimal_parallelism(10.0)["n_optimal"]
        cheap_model = CommunicationModel(comm_energy_per_op_base_j=0.5e-12)
        cheap = optimal_parallelism(10.0, cheap_model)["n_optimal"]
        assert cheap > expensive


class TestRequiredReduction:
    def test_reaching_beyond_current_optimum_needs_reduction(self):
        base = optimal_parallelism(10.0)["n_optimal"]
        target = base * 4
        factor = required_comm_reduction_for_target(target, 10.0)
        assert factor > 1.5

    def test_already_reachable_target_needs_nothing(self):
        factor = required_comm_reduction_for_target(2.0, 10.0)
        assert factor == pytest.approx(1.0, abs=0.1)

    def test_amdahl_limited_target_impossible(self):
        # With f = 0.9 the speedup ceiling is 10; no communication
        # reduction makes 1000-way optimal.
        factor = required_comm_reduction_for_target(
            1000.0, 10.0, parallel_fraction=0.9
        )
        assert factor == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            required_comm_reduction_for_target(0.5, 10.0)
