"""Tests for task DAGs and the work-stealing scheduler."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    SchedulerConfig,
    WorkStealingScheduler,
    chain_graph,
    critical_path,
    fork_join_graph,
    greedy_bound,
    make_task_graph,
    parallelism,
    random_dag,
    span,
    speedup_curve,
    total_work,
)


class TestTaskGraphs:
    def test_make_and_measure(self):
        g = make_task_graph(
            edges=[(0, 2), (1, 2)], work={0: 1.0, 1: 2.0, 2: 3.0}
        )
        assert total_work(g) == 6.0
        assert span(g) == 5.0  # 2 -> 3 path
        assert parallelism(g) == pytest.approx(1.2)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            make_task_graph(edges=[(0, 1), (1, 0)], work={0: 1.0, 1: 1.0})

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            make_task_graph(edges=[(0, 9)], work={0: 1.0})

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            make_task_graph(edges=[], work={0: 0.0})

    def test_chain_has_no_parallelism(self):
        g = chain_graph(10)
        assert span(g) == total_work(g)
        assert parallelism(g) == pytest.approx(1.0)

    def test_fork_join_metrics(self):
        g = fork_join_graph(16, levels=1, work=1.0, serial_work=1.0)
        assert total_work(g) == 18.0  # 2 serial + 16 parallel
        assert span(g) == 3.0

    def test_critical_path_realizes_span(self):
        g = random_dag(60, 0.08, rng=0)
        path = critical_path(g)
        path_work = sum(g.nodes[n]["work"] for n in path)
        assert path_work == pytest.approx(span(g))
        # Path must be a real path in the graph.
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_greedy_bound_sane(self):
        g = fork_join_graph(8, levels=2)
        lo, hi = greedy_bound(g, 4)
        assert lo <= hi
        assert lo >= span(g)
        with pytest.raises(ValueError):
            greedy_bound(g, 0)

    def test_generators_validate(self):
        with pytest.raises(ValueError):
            fork_join_graph(0)
        with pytest.raises(ValueError):
            random_dag(0)
        with pytest.raises(ValueError):
            random_dag(5, edge_probability=2.0)
        with pytest.raises(ValueError):
            chain_graph(0)


class TestWorkStealing:
    def test_single_worker_serializes(self):
        g = fork_join_graph(8, levels=2)
        res = WorkStealingScheduler(SchedulerConfig(n_workers=1)).run(g)
        assert res.makespan == pytest.approx(total_work(g))

    def test_within_graham_bounds(self):
        for seed, p in [(0, 2), (1, 4), (2, 8)]:
            g = random_dag(120, 0.05, rng=seed)
            res = WorkStealingScheduler(
                SchedulerConfig(n_workers=p, steal_cost=0.01, rng=seed)
            ).run(g)
            assert res.within_greedy_bounds(g, slack=1.3), (seed, p)

    def test_chain_gains_nothing_from_workers(self):
        g = chain_graph(30)
        r1 = WorkStealingScheduler(SchedulerConfig(n_workers=1)).run(g)
        r8 = WorkStealingScheduler(SchedulerConfig(n_workers=8)).run(g)
        assert r8.makespan >= r1.makespan * 0.99

    def test_embarrassingly_parallel_scales(self):
        g = fork_join_graph(64, levels=1, work=1.0, serial_work=0.01)
        curve = speedup_curve(g, [1, 2, 4, 8], steal_cost=0.001)
        s = curve["speedup"]
        assert s[1] > 1.7 and s[2] > 3.2 and s[3] > 5.5

    def test_all_tasks_complete_exactly_once(self):
        g = random_dag(80, 0.06, rng=3)
        res = WorkStealingScheduler(SchedulerConfig(n_workers=4)).run(g)
        assert set(res.task_finish) == set(g.nodes)

    def test_precedence_respected(self):
        g = random_dag(60, 0.1, rng=4)
        res = WorkStealingScheduler(SchedulerConfig(n_workers=4)).run(g)
        finish = res.task_finish
        for u, v in g.edges:
            # v cannot finish before u finishes plus v's own work...
            # (worker clocks are independent, but ready-time ordering
            # means v was *popped* after u completed on some worker; we
            # check the weaker sane property v finishes after u starts.)
            assert finish[v] >= finish[u] - g.nodes[u]["work"]

    def test_steal_cost_hurts(self):
        g = fork_join_graph(32, levels=4, work=0.5)
        cheap = WorkStealingScheduler(
            SchedulerConfig(n_workers=8, steal_cost=0.0)
        ).run(g)
        dear = WorkStealingScheduler(
            SchedulerConfig(n_workers=8, steal_cost=2.0)
        ).run(g)
        assert dear.makespan >= cheap.makespan

    def test_utilization_bounded(self):
        g = random_dag(100, 0.05, rng=5)
        res = WorkStealingScheduler(SchedulerConfig(n_workers=4)).run(g)
        assert 0.0 < res.utilization <= 1.0

    @given(st.integers(1, 8), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_property_makespan_at_least_lower_bound(self, p, seed):
        g = random_dag(40, 0.08, rng=seed)
        res = WorkStealingScheduler(
            SchedulerConfig(n_workers=p, steal_cost=0.05, rng=seed)
        ).run(g)
        lo, _ = greedy_bound(g, p)
        assert res.makespan >= lo - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(n_workers=0)
        with pytest.raises(ValueError):
            SchedulerConfig(steal_cost=-1.0)
        with pytest.raises(ValueError):
            speedup_curve(chain_graph(3), [])
