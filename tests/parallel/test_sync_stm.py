"""Tests for lock/barrier models and transactional memory (E16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    LockModel,
    STMSimulator,
    Transaction,
    barrier_slack,
    barrier_slack_curve,
    generate_transactions,
    global_lock_makespan,
    tm_vs_lock_comparison,
)


class TestLockModel:
    def test_throughput_linear_then_flat(self):
        lock = LockModel(compute_time=1.0, critical_time=0.1)
        thr = lock.throughput(np.array([1, 5, 11, 50]))
        assert thr[1] == pytest.approx(5 * thr[0])
        assert thr[2] == pytest.approx(thr[3])  # saturated

    def test_saturation_point(self):
        lock = LockModel(compute_time=0.9, critical_time=0.1)
        assert lock.saturation_threads() == pytest.approx(10.0)

    def test_longer_critical_section_saturates_earlier(self):
        a = LockModel(compute_time=1.0, critical_time=0.05)
        b = LockModel(compute_time=1.0, critical_time=0.5)
        assert b.saturation_threads() < a.saturation_threads()

    def test_utilization_capped_at_one(self):
        lock = LockModel()
        assert lock.utilization(1000) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LockModel(critical_time=0.0)
        with pytest.raises(ValueError):
            LockModel().throughput(0)


class TestBarrierSlack:
    def test_slack_grows_with_workers(self):
        s2 = barrier_slack(2, cv=0.3, rng=0)["slack_fraction"]
        s64 = barrier_slack(64, cv=0.3, rng=0)["slack_fraction"]
        assert s64 > s2 > 0.0

    def test_no_variance_no_slack(self):
        out = barrier_slack(16, cv=0.0, distribution="uniform", rng=0)
        assert out["slack_fraction"] == pytest.approx(0.0, abs=1e-9)

    def test_efficiency_curve_decreasing(self):
        curve = barrier_slack_curve([2, 8, 32, 128], cv=0.25, rng=0)
        assert np.all(np.diff(curve["efficiency"]) < 0)

    def test_distributions(self):
        for dist in ("lognormal", "exponential", "uniform"):
            out = barrier_slack(8, cv=0.2, distribution=dist, rng=0)
            assert out["efficiency"] <= 1.0
        with pytest.raises(ValueError):
            barrier_slack(8, distribution="cauchy")

    def test_validation(self):
        with pytest.raises(ValueError):
            barrier_slack(0)
        with pytest.raises(ValueError):
            barrier_slack(4, mean_work=0.0)
        with pytest.raises(ValueError):
            barrier_slack_curve([])


class TestSTM:
    def test_disjoint_transactions_scale_linearly(self):
        txns = [
            Transaction(read_set=frozenset({i}), write_set=frozenset({i + 1000}),
                        duration=1.0)
            for i in range(64)
        ]
        stats = STMSimulator(n_threads=8).run(txns)
        assert stats.aborts == 0
        assert stats.makespan == pytest.approx(8.0)

    def test_single_thread_serializes(self):
        txns = generate_transactions(20, rng=0)
        stats = STMSimulator(n_threads=1).run(txns)
        assert stats.makespan == pytest.approx(
            sum(t.duration for t in txns)
        )
        assert stats.aborts == 0  # no concurrency, no conflicts

    def test_conflicts_cause_aborts(self):
        txns = generate_transactions(200, hot_fraction=0.9, rng=1)
        stats = STMSimulator(n_threads=8).run(txns, rng=1)
        assert stats.aborts > 0
        assert stats.wasted_time > 0

    def test_all_transactions_commit(self):
        txns = generate_transactions(150, hot_fraction=0.7, rng=2)
        stats = STMSimulator(n_threads=4).run(txns, rng=2)
        assert stats.commits == 150

    def test_abort_rate_rises_with_conflict(self):
        rates = []
        for hf in (0.0, 0.5, 0.95):
            cmp = tm_vs_lock_comparison([8], hot_fraction=hf, rng=3)
            rates.append(float(cmp["abort_rate"][0]))
        assert rates[0] < rates[1] < rates[2]

    def test_tm_beats_lock_at_low_conflict(self):
        cmp = tm_vs_lock_comparison([8], hot_fraction=0.0, rng=4)
        assert float(cmp["tm_speedup_vs_lock"][0]) > 4.0

    def test_conflict_erodes_tm_advantage(self):
        low = tm_vs_lock_comparison([8], hot_fraction=0.0, rng=5)
        high = tm_vs_lock_comparison([8], hot_fraction=0.95, rng=5)
        assert (
            float(high["tm_speedup_vs_lock"][0])
            < float(low["tm_speedup_vs_lock"][0])
        )

    def test_commit_history_serializable(self):
        # In this simulator, commit-time validation guarantees that a
        # committed transaction saw no writes committed during its
        # window — we verify via the stats invariant commits+aborts
        # attempts and that useful time equals committed durations.
        txns = generate_transactions(100, hot_fraction=0.4, rng=6)
        stats = STMSimulator(n_threads=4).run(txns, rng=6)
        assert stats.useful_time == pytest.approx(
            sum(t.duration for t in txns)
        )

    def test_global_lock_makespan(self):
        txns = [Transaction(frozenset(), frozenset(), duration=2.0)] * 5
        assert global_lock_makespan(txns) == pytest.approx(10.0)

    @given(st.integers(1, 8), st.floats(min_value=0, max_value=1))
    @settings(max_examples=10, deadline=None)
    def test_property_all_commit_and_makespan_bounded(self, threads, hf):
        txns = generate_transactions(40, hot_fraction=hf, rng=7)
        stats = STMSimulator(n_threads=threads).run(txns, rng=7)
        assert stats.commits == 40
        # Makespan at least the serial time / threads.
        serial = sum(t.duration for t in txns)
        assert stats.makespan >= serial / threads - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            STMSimulator(0)
        with pytest.raises(ValueError):
            Transaction(frozenset(), frozenset(), duration=0.0)
        with pytest.raises(ValueError):
            generate_transactions(10, hot_fraction=2.0)
        with pytest.raises(ValueError):
            tm_vs_lock_comparison([])
