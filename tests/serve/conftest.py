"""Shared fixtures for the serve test suite.

Every HTTP-level test boots a real :class:`ExperimentServer` on an
ephemeral loopback port in a daemon thread — the exact composition
``python -m repro serve`` runs — and talks to it with the blocking
stdlib client.  Serial backend by default: deterministic, in-process,
and the admission/coalescing behavior under test is backend-agnostic.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import ServeClient, ServerThread, build_app


@pytest.fixture
def serve_factory():
    """Callable building (handle, client) pairs, torn down afterward."""
    handles: list[ServerThread] = []

    def _make(**options):
        options.setdefault("backend", "serial")
        handle = ServerThread(build_app(**options)).start()
        handles.append(handle)
        return handle, ServeClient(*handle.address, timeout_s=30.0)

    yield _make
    for handle in handles:
        handle.stop(drain=False)


def wait_until(predicate, timeout_s: float = 10.0, interval_s: float = 0.01):
    """Poll ``predicate`` until truthy or fail the test on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not reached within timeout")
