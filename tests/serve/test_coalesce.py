"""Coalescing: identical design points cost one backend execution.

Covers the coalescer unit (attach / fan-out / abandon / cache fast
path), the cache's single-flight hook, and the end-to-end guarantee
over HTTP: N duplicate submissions, one dispatch, N answered waiters.
"""

from __future__ import annotations

from repro.core.instrument import MetricsRegistry
from repro.exec.cache import ResultCache
from repro.serve.coalesce import Coalescer
from repro.serve.workloads import design_point

from .conftest import wait_until


def _coalescer(tmp_path):
    metrics = MetricsRegistry(enabled=True)
    cache = ResultCache(tmp_path / "cache", metrics=metrics)
    return Coalescer(cache, metrics=metrics), cache, metrics


class TestCoalescerUnit:
    def test_duplicate_attaches_to_live_entry(self, tmp_path):
        co, cache, metrics = _coalescer(tmp_path)
        point = design_point("spin", {"duration_s": 0.01, "tag": "x"})
        rec_a, entry = co.submit(point)
        assert entry is not None
        assert entry.key in cache.pending_keys()  # single-flight claimed
        rec_b, dup_entry = co.submit(design_point("spin", {"duration_s": 0.01, "tag": "x"}))
        assert dup_entry is None
        assert rec_b.coalesced and not rec_a.coalesced
        assert cache.coalesced == 1
        assert metrics.counter("exec.cache.coalesced").value == 1
        co.complete(entry, ok=True, result={"v": 1}, duration_s=0.5)
        assert rec_a.status == "succeeded" and rec_b.status == "succeeded"
        assert rec_a.result == rec_b.result == {"v": 1}
        assert entry.key not in cache.pending_keys()
        assert co.live_entries() == 0

    def test_distinct_points_do_not_coalesce(self, tmp_path):
        co, _, _ = _coalescer(tmp_path)
        _, entry_a = co.submit(design_point("spin", {"tag": "a"}))
        _, entry_b = co.submit(design_point("spin", {"tag": "b"}))
        assert entry_a is not None and entry_b is not None
        assert entry_a.design_id != entry_b.design_id

    def test_completion_populates_cache_fast_path(self, tmp_path):
        co, cache, metrics = _coalescer(tmp_path)
        point = design_point("spin", {"tag": "warm"})
        _, entry = co.submit(point)
        co.complete(entry, ok=True, result={"v": 2}, duration_s=0.1)
        # Same design point again: served from cache, no new entry.
        record, entry2 = co.submit(design_point("spin", {"tag": "warm"}))
        assert entry2 is None
        assert record.cached and record.terminal
        assert record.result == {"v": 2}
        assert metrics.counter("serve.cache_fast_path").value == 1

    def test_failure_fans_out_error(self, tmp_path):
        co, cache, _ = _coalescer(tmp_path)
        _, entry = co.submit(design_point("spin", {"tag": "bad"}))
        rec_b, _ = co.submit(design_point("spin", {"tag": "bad"}))
        co.complete(entry, ok=False, error="ValueError: boom")
        assert rec_b.status == "failed"
        assert rec_b.error == "ValueError: boom"
        # A failure is not cached: resubmission opens a fresh entry.
        _, entry2 = co.submit(design_point("spin", {"tag": "bad"}))
        assert entry2 is not None

    def test_abandon_rolls_back_claim_and_records(self, tmp_path):
        co, cache, _ = _coalescer(tmp_path)
        record, entry = co.submit(design_point("spin", {"tag": "shed"}))
        co.abandon(entry)
        assert co.get(record.run_id) is None
        assert entry.key not in cache.pending_keys()
        assert co.live_entries() == 0

    def test_done_callback_fires_immediately_when_terminal(self, tmp_path):
        co, _, _ = _coalescer(tmp_path)
        _, entry = co.submit(design_point("spin", {"tag": "cb"}))
        record = entry.records[0]
        co.complete(entry, ok=True, result=1)
        fired = []
        record.add_done_callback(lambda: fired.append(True))
        assert fired == [True]


class TestCacheSingleFlight:
    def test_mark_clear_pending(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.mark_pending("k1") is True
        assert cache.mark_pending("k1") is False  # second claimant loses
        assert cache.pending_keys() == frozenset({"k1"})
        cache.clear_pending("k1")
        cache.clear_pending("k1")  # idempotent
        assert cache.pending_keys() == frozenset()
        assert cache.mark_pending("k1") is True

    def test_coalesced_counter_in_stats(self, tmp_path):
        metrics = MetricsRegistry(enabled=True)
        cache = ResultCache(tmp_path / "c", metrics=metrics)
        assert cache.stats()["coalesced"] == 0
        cache.note_coalesced()
        cache.note_coalesced(2)
        assert cache.stats()["coalesced"] == 3
        assert metrics.counter("exec.cache.coalesced").value == 3


class TestHttpCoalescing:
    def test_n_duplicates_one_dispatch(self, serve_factory):
        handle, client = serve_factory(linger_ms=50.0)
        app = handle.app
        n = 6
        run_ids = []
        for _ in range(n):
            status, _, body = client.submit("spin", {"duration_s": 0.2, "tag": "dup"})
            assert status == 202
            run_ids.append(body["run_id"])
        wait_until(
            lambda: all(
                app.coalescer.get(rid).terminal for rid in run_ids
            ),
            timeout_s=15.0,
        )
        records = [app.coalescer.get(rid) for rid in run_ids]
        assert all(r.status == "succeeded" for r in records)
        results = {repr(r.result) for r in records}
        assert len(results) == 1  # one fanned-out result
        assert app.dispatcher.dispatched == 1  # exactly one backend job
        assert sum(1 for r in records if r.coalesced) == n - 1
        metrics = client.metrics_text()
        assert f"repro_serve_coalesced_total {n - 1}" in metrics
        assert f"repro_exec_cache_coalesced_total {n - 1}" in metrics

    def test_repetitions_are_distinct_design_points(self, serve_factory):
        handle, client = serve_factory()
        status, _, body = client.submit(
            "spin", {"duration_s": 0.01}, repetitions=3, wait=True
        )
        assert status == 200
        design_ids = {r["design_id"] for r in body["runs"]}
        assert len(design_ids) == 3
        assert handle.app.dispatcher.dispatched == 3

    def test_sweep_with_shared_base_params(self, serve_factory):
        _, client = serve_factory()
        status, _, body = client.submit(
            "spin",
            {"duration_s": 0.01},
            wait=True,
            sweep=[{"tag": "s1"}, {"tag": "s2"}],
        )
        assert status == 200
        assert body["count"] == 2
        assert all(r["status"] == "succeeded" for r in body["runs"])
