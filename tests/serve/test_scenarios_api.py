"""Serve-layer scenario API: catalog endpoint + scenario workload."""

from __future__ import annotations

import json

from repro.scenarios.library import list_ids
from tests.scenarios.test_replay_golden import GOLDEN_DIGESTS


class TestScenarioCatalog:
    def test_get_v1_scenarios_lists_every_bundle(self, serve_factory):
        _, client = serve_factory()
        status, _, body = client.request("GET", "/v1/scenarios")
        assert status == 200
        doc = body
        ids = [s["id"] for s in doc["scenarios"]]
        assert ids == list_ids()


class TestScenarioWorkload:
    def test_submit_replays_and_returns_the_golden_digest(
        self, serve_factory
    ):
        _, client = serve_factory()
        status, _, body = client.submit(
            "scenario", {"scenario": "wear-hotline"}, wait=True,
        )
        assert status == 200
        runs = body["runs"]
        assert len(runs) == 1
        out = runs[0]["result"]
        # Bare name pinned to the versioned id at submission time.
        assert out["scenario"] == "wear-hotline@1"
        assert out["digest"] == GOLDEN_DIGESTS["wear-hotline@1"]

    def test_unknown_scenario_is_rejected_at_submission(
        self, serve_factory
    ):
        _, client = serve_factory()
        status, _, body = client.submit(
            "scenario", {"scenario": "missing@3"}, wait=True,
        )
        assert status == 400
        assert "missing@3" in json.dumps(body)

    def test_bad_fastpath_value_is_rejected(self, serve_factory):
        _, client = serve_factory()
        status, _, _ = client.submit(
            "scenario",
            {"scenario": "wear-hotline@1", "fastpath": "warp"},
            wait=True,
        )
        assert status == 400
