"""Admission-control edge cases: shedding, re-admission, bad input.

The ISSUE's contract: queue-full shedding returns 429 with Retry-After,
saturation followed by drain re-admits, and malformed JSON / unknown
ids return 400/404 without killing the server loop.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, QueueFull

from .conftest import wait_until


class TestAdmissionController:
    def test_queue_bound_sheds(self):
        adm = AdmissionController(max_queue=2, max_inflight=1)
        adm.try_admit("a")
        adm.try_admit("b")
        with pytest.raises(QueueFull) as exc_info:
            adm.try_admit("c")
        assert exc_info.value.retry_after_s > 0
        assert adm.shed == 1
        assert adm.admitted == 2

    def test_retry_after_scales_with_backlog(self):
        adm = AdmissionController(
            max_queue=4, max_inflight=1, retry_after_s=0.5, linger_s=0.0
        )
        for entry in "abcd":
            adm.try_admit(entry)
        assert adm.next_ready(now=adm._queue[0][0]) == "a"
        adm.try_admit("e")  # pop freed one slot: re-admitted
        with pytest.raises(QueueFull) as exc_info:
            adm.try_admit("f")
        # 4 queued + 1 in flight over capacity 1 -> 5x the base hint.
        assert exc_info.value.retry_after_s == pytest.approx(0.5 * 5)

    def test_max_inflight_limits_dispatch(self):
        adm = AdmissionController(max_queue=8, max_inflight=2, linger_s=0.0)
        for entry in "abc":
            adm.try_admit(entry, now=0.0)
        assert adm.next_ready(now=1.0) == "a"
        assert adm.next_ready(now=1.0) == "b"
        assert adm.next_ready(now=1.0) is None  # saturated
        adm.release()
        assert adm.next_ready(now=1.0) == "c"

    def test_linger_window_delays_dispatch(self):
        adm = AdmissionController(max_queue=4, max_inflight=1, linger_s=0.5)
        adm.try_admit("a", now=10.0)
        assert adm.next_ready(now=10.4) is None  # still lingering
        assert adm.next_ready(now=10.5) == "a"

    def test_drain_reopens_admission(self):
        adm = AdmissionController(max_queue=1, max_inflight=1, linger_s=0.0)
        adm.try_admit("a", now=0.0)
        with pytest.raises(QueueFull):
            adm.try_admit("b", now=0.0)
        assert adm.next_ready(now=1.0) == "a"
        adm.release()
        adm.try_admit("b", now=1.0)  # queue drained: admitted again
        assert adm.depth() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(retry_after_s=0)
        with pytest.raises(ValueError):
            AdmissionController(linger_s=-1)


class TestHttpShedding:
    def test_queue_full_returns_429_with_retry_after_then_readmits(
        self, serve_factory
    ):
        handle, client = serve_factory(
            max_queue=1, max_inflight=1, linger_ms=0.0
        )
        app = handle.app
        # Occupy the backend with a slow point, then fill the queue.
        status, _, first = client.submit("spin", {"duration_s": 0.4, "tag": "hold"})
        assert status == 202
        wait_until(lambda: app.admission.inflight() == 1)
        status, _, _ = client.submit("spin", {"duration_s": 0.01, "tag": "q"})
        assert status == 202
        # Queue now holds one entry: the next distinct point is shed.
        status, headers, body = client.submit(
            "spin", {"duration_s": 0.01, "tag": "shed-me"}
        )
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert "error" in body
        # ...but a duplicate of in-flight work still coalesces: no 429.
        status, _, dup = client.submit("spin", {"duration_s": 0.4, "tag": "hold"})
        assert status == 202
        assert dup["runs"][0]["coalesced"] is True
        # Saturation then drain: once the backlog clears, the same shed
        # point is admitted and completes.
        wait_until(app.dispatcher.idle, timeout_s=15.0)
        status, _, body = client.submit(
            "spin", {"duration_s": 0.01, "tag": "shed-me"}, wait=True
        )
        assert status == 200
        assert body["runs"][0]["status"] == "succeeded"
        metrics = client.metrics_text()
        assert "repro_serve_shed_total 1" in metrics

    def test_bad_requests_do_not_kill_the_server(self, serve_factory):
        _, client = serve_factory()
        status, _, body = client.request(
            "POST", "/v1/experiments", payload=None
        )
        assert status == 400  # empty body is malformed JSON
        conn_status, _, _ = client.request("GET", "/v1/runs/run-404404")
        assert conn_status == 404
        status, _, _ = client.request("GET", "/no/such/route")
        assert status == 404
        status, _, _ = client.request("GET", "/v1/experiments")
        assert status == 405
        status, _, body = client.submit("no-such-workload", {})
        assert status == 400
        assert "unknown workload" in body["error"]
        status, _, body = client.submit("experiment", {"id": "E99"})
        assert status == 400
        status, _, body = client.submit("spin", {"duration_s": 999})
        # Validation inside the workload fails the *run*, not the server.
        assert status in (200, 202, 400)
        # After all that abuse the loop still serves.
        assert client.healthz()["status"] == "ok"
        status, _, body = client.submit("spin", {"duration_s": 0.01}, wait=True)
        assert status == 200
        assert body["runs"][0]["status"] == "succeeded"

    def test_malformed_json_body(self, serve_factory):
        import http.client

        handle, client = serve_factory()
        host, port = handle.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/experiments", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"malformed JSON" in resp.read()
        finally:
            conn.close()
        assert client.healthz()["status"] == "ok"

    def test_bad_repetitions_and_sweep_shapes(self, serve_factory):
        _, client = serve_factory()
        status, _, _ = client.submit("spin", {}, repetitions="many")
        assert status == 400
        status, _, _ = client.submit("spin", {}, repetitions=0)
        assert status == 400
        status, _, _ = client.submit("spin", {}, sweep="nope")
        assert status == 400
        status, _, _ = client.request("POST", "/v1/experiments", {"workload": 7})
        assert status == 400
