"""ServeClient 429 politeness: honor Retry-After, back off, give up."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import ServeClient


class _BusyThenOk(BaseHTTPRequestHandler):
    """Sheds the first ``busy_left`` requests with 429 + Retry-After."""

    busy_left = 0
    retry_after = "0"

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        cls = type(self)
        if cls.busy_left > 0:
            cls.busy_left -= 1
            self._reply(429, {"error": "busy"}, retry_after=cls.retry_after)
        else:
            self._reply(200, {"ok": True})

    def _reply(self, status, payload, retry_after=None):
        body = json.dumps(payload).encode()
        self.send_response(status)
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def busy_server():
    class Handler(_BusyThenOk):
        busy_left = 2

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address, Handler
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def test_polite_client_rides_out_shedding(busy_server):
    (host, port), handler = busy_server
    client = ServeClient(host, port, busy_retries=5, timeout_s=10.0)
    status, _, body = client.request("GET", "/anything")
    assert status == 200 and body == {"ok": True}
    assert client.busy_retried == 2  # both 429s absorbed, not surfaced


def test_default_client_surfaces_the_429(busy_server):
    (host, port), handler = busy_server
    client = ServeClient(host, port, timeout_s=10.0)  # busy_retries=0
    status, headers, _ = client.request("GET", "/anything")
    assert status == 429
    assert "retry-after" in headers
    assert client.busy_retried == 0
    assert handler.busy_left == 1  # exactly one request went out


def test_retries_exhausted_returns_the_last_429():
    class Handler(_BusyThenOk):
        busy_left = 99

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address
        client = ServeClient(host, port, busy_retries=2, timeout_s=10.0)
        status, _, _ = client.request("GET", "/x")
        assert status == 429
        assert client.busy_retried == 2
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def test_backoff_honors_hint_doubles_and_caps():
    client = ServeClient(
        "h", 1, busy_retries=5, backoff_cap_s=5.0, jitter=0.0
    )
    assert client._busy_delay(1, "2") == pytest.approx(2.0)  # noqa: SLF001
    assert client._busy_delay(2, "2") == pytest.approx(4.0)  # noqa: SLF001
    assert client._busy_delay(3, "2") == pytest.approx(5.0)  # capped
    # A garbage or missing hint falls back to a small base, not a crash.
    assert client._busy_delay(1, "soon") == pytest.approx(0.1)  # noqa: SLF001
    assert client._busy_delay(1, None) == pytest.approx(0.1)  # noqa: SLF001


def test_backoff_jitter_stays_bounded():
    client = ServeClient(
        "h", 1, busy_retries=1, backoff_cap_s=60.0, jitter=0.25
    )
    for _ in range(100):
        delay = client._busy_delay(1, "4")  # noqa: SLF001
        assert 3.0 <= delay <= 5.0  # 4s +/- 25%


def test_client_parameter_validation():
    with pytest.raises(ValueError, match="busy_retries"):
        ServeClient("h", 1, busy_retries=-1)
    with pytest.raises(ValueError, match="backoff_cap_s"):
        ServeClient("h", 1, backoff_cap_s=0.0)
    with pytest.raises(ValueError, match="jitter"):
        ServeClient("h", 1, jitter=2.0)
