"""Server surface: endpoints, metrics parity, graceful shutdown.

The acceptance criteria pinned here: ``GET /metrics`` served live
matches the existing Prometheus exporter format, and graceful shutdown
drains in-flight runs with all waiters receiving results.
"""

from __future__ import annotations

import asyncio
import threading

from repro.obs.export import registry_state_to_prometheus
from repro.serve.cli import selftest
from repro.serve.workloads import design_point, run_spin

from .conftest import wait_until


class TestEndpoints:
    def test_healthz_shape(self, serve_factory):
        _, client = serve_factory()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["queue_depth"] == 0
        assert health["inflight"] == 0

    def test_wait_returns_terminal_200(self, serve_factory):
        _, client = serve_factory()
        status, _, body = client.submit(
            "cluster",
            {"n_servers": 4, "arrival_rate": 2.0, "n_requests": 500, "seed": 7},
            wait=True,
        )
        assert status == 200
        run = body["runs"][0]
        assert run["status"] == "succeeded"
        for field in ("p50_ms", "p95_ms", "p99_ms", "utilization"):
            assert field in run["result"]

    def test_get_run_roundtrip(self, serve_factory):
        _, client = serve_factory()
        _, _, body = client.submit("spin", {"duration_s": 0.01}, wait=True)
        run_id = body["run_id"]
        status, _, fetched = client.run(run_id)
        assert status == 200
        assert fetched["run_id"] == run_id
        assert fetched["status"] == "succeeded"
        assert "cache_key" in fetched

    def test_query_param_wait(self, serve_factory):
        handle, client = serve_factory()
        status, _, body = client.request(
            "POST", "/v1/experiments?wait=1",
            {"workload": "spin", "params": {"duration_s": 0.01}},
        )
        assert status == 200
        assert body["runs"][0]["status"] == "succeeded"


class TestMetricsParity:
    def test_live_scrape_matches_exporter_format(self, serve_factory):
        handle, client = serve_factory()
        client.submit("spin", {"duration_s": 0.01}, wait=True)
        scraped = client.metrics_text()
        # Byte-identical to exporting the same registry state directly:
        # /metrics *is* registry_state_to_prometheus, not a lookalike.
        direct = registry_state_to_prometheus(handle.app.metrics.to_state())
        assert scraped == direct
        assert "# TYPE repro_serve_requests_total counter" in scraped
        assert "# TYPE repro_serve_latency_ms summary" in scraped
        assert 'repro_serve_latency_ms{quantile="0.5"}' in scraped

    def test_scrape_during_load(self, serve_factory):
        handle, client = serve_factory(max_inflight=1)
        client.submit("spin", {"duration_s": 0.3, "tag": "busy"})
        wait_until(lambda: handle.app.admission.inflight() == 1)
        scraped = client.metrics_text()  # mid-flight scrape must serve
        assert "repro_serve_dispatched_total 1" in scraped
        assert client.healthz()["inflight"] == 1


class TestGracefulShutdown:
    def test_drain_completes_inflight_and_answers_waiters(self, serve_factory):
        handle, client = serve_factory(max_inflight=1, linger_ms=0.0)
        app = handle.app
        # One running + one queued design point, each with a waiter
        # blocked on wait=1 from a separate thread.
        results: dict[str, object] = {}

        def waiter(tag: str) -> None:
            results[tag] = client.submit(
                "spin", {"duration_s": 0.25, "tag": tag}, wait=True
            )

        threads = [
            threading.Thread(target=waiter, args=(tag,)) for tag in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        wait_until(lambda: app.admission.inflight() + app.admission.depth() == 2)
        drained = handle.stop(drain=True)
        for thread in threads:
            thread.join(timeout=20.0)
        assert drained is True
        for tag in ("w1", "w2"):
            status, _, body = results[tag]
            assert status == 200
            assert body["runs"][0]["status"] == "succeeded"

    def test_draining_rejects_new_work_with_503(self, serve_factory):
        handle, client = serve_factory(max_inflight=1, linger_ms=0.0)
        app = handle.app
        client.submit("spin", {"duration_s": 0.4, "tag": "drainee"})
        wait_until(lambda: app.admission.inflight() == 1)
        fut = asyncio.run_coroutine_threadsafe(
            app.drain(timeout_s=15.0), handle._loop
        )
        wait_until(lambda: app.draining)
        status, headers, _ = client.submit("spin", {"duration_s": 0.01})
        assert status == 503
        assert "retry-after" in headers
        assert fut.result(timeout=20.0) is True
        # Reads still work on a drained server's state.
        assert app.coalescer.live_entries() == 0


class TestSelftest:
    def test_selftest_passes_serial(self, tmp_path):
        assert selftest(backend="serial", cache_dir=str(tmp_path / "c")) == 0


class TestWorkloadValidation:
    def test_design_point_identity_is_param_canonical(self):
        a = design_point("spin", {"b": 1, "a": 2})
        b = design_point("spin", {"a": 2, "b": 1})
        assert a.design_id == b.design_id

    def test_spin_bounds(self):
        try:
            run_spin({"duration_s": 100})
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
