"""Tests for tables, statistics, and the experiment registry."""

import numpy as np
import pytest

from repro.analysis import (
    REGISTRY,
    Experiment,
    ExperimentRegistry,
    bootstrap_ci,
    format_table,
    geometric_mean,
    mean_confidence_interval,
    paper_vs_measured,
    relative_error,
    within_factor,
)


class TestTables:
    def test_basic_rendering(self):
        out = format_table(["a", "b"], [(1, 2.5), ("x", 3.0)])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_paper_vs_measured(self):
        out = paper_vs_measured(
            "E99", "test claim", [("speed", 2.0, 1.9), ("note", "n/a", "ok")]
        )
        assert "[E99] test claim" in out
        assert "speed" in out


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([10.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_mean_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, 400)
        mean, lo, hi = mean_confidence_interval(data)
        assert lo < mean < hi
        assert lo < 5.0 < hi

    def test_mean_ci_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_bootstrap_ci(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(2.0, 500)
        point, lo, hi = bootstrap_ci(data, statistic=np.median, rng=0)
        assert lo <= point <= hi
        # Median of exp(2) is 2 ln 2 ~ 1.386.
        assert lo < 2 * np.log(2) < hi

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_resamples=2)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_within_factor(self):
        assert within_factor(95.0, 100.0, 1.5)
        assert within_factor(150.0, 100.0, 1.5)
        assert not within_factor(300.0, 100.0, 1.5)
        assert not within_factor(10.0, 100.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            within_factor(-1.0, 1.0, 2.0)


class TestRegistry:
    def make_experiment(self, eid="X1", holds=True):
        return Experiment(
            id=eid, title="t", paper_anchor="a", claim="c",
            run=lambda: {"value": 1.0, "holds": holds},
        )

    def test_register_and_run(self):
        reg = ExperimentRegistry()
        reg.register(self.make_experiment())
        assert reg.ids() == ["X1"]
        results = reg.run_all()
        assert results["X1"]["holds"]

    def test_duplicate_rejected(self):
        reg = ExperimentRegistry()
        reg.register(self.make_experiment())
        with pytest.raises(ValueError):
            reg.register(self.make_experiment())

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            ExperimentRegistry().get("nope")

    def test_missing_holds_rejected(self):
        exp = Experiment(
            id="X2", title="t", paper_anchor="a", claim="c",
            run=lambda: {"value": 1.0},
        )
        with pytest.raises(ValueError):
            exp.execute()

    def test_summary_counts(self):
        reg = ExperimentRegistry()
        reg.register(self.make_experiment("A", holds=True))
        reg.register(self.make_experiment("B", holds=False))
        results = reg.run_all()
        summary = reg.summary(results)
        assert "1/2 claims hold" in summary


class TestPaperRegistry:
    def test_all_22_registered(self):
        assert len(REGISTRY) == 22
        assert REGISTRY.ids()[0] == "E01"
        assert REGISTRY.ids()[-1] == "E22"

    @pytest.mark.parametrize("eid", [f"E{i:02d}" for i in range(1, 23)])
    def test_every_experiment_claim_holds(self, eid):
        """The headline integration test: every reproduced paper claim
        holds in shape."""
        result = REGISTRY.get(eid).execute()
        assert result["holds"], f"{eid}: {result}"
