"""Tests for the MESI coherence protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    CoherenceConfig,
    MESI,
    MESIBus,
    sharing_pattern_trace,
)


@pytest.fixture
def bus():
    return MESIBus(CoherenceConfig(n_cores=4))


class TestStateTransitions:
    def test_first_read_gets_exclusive(self, bus):
        assert bus.read(0, 0x100) is MESI.EXCLUSIVE

    def test_second_reader_shares(self, bus):
        bus.read(0, 0x100)
        assert bus.read(1, 0x100) is MESI.SHARED
        assert bus.state(0, 0x100) is MESI.SHARED

    def test_silent_e_to_m_upgrade(self, bus):
        bus.read(0, 0x100)
        txns_before = bus.stats.data_transactions + bus.stats.upgrades
        assert bus.write(0, 0x100) is MESI.MODIFIED
        assert bus.stats.data_transactions + bus.stats.upgrades == txns_before

    def test_write_invalidates_sharers(self, bus):
        bus.read(0, 0x100)
        bus.read(1, 0x100)
        bus.read(2, 0x100)
        bus.write(3, 0x100)
        assert bus.stats.invalidations == 3
        for core in (0, 1, 2):
            assert bus.state(core, 0x100) is MESI.INVALID
        assert bus.state(3, 0x100) is MESI.MODIFIED

    def test_read_of_modified_line_flushes(self, bus):
        bus.write(0, 0x200)
        assert bus.read(1, 0x200) is MESI.SHARED
        assert bus.stats.writebacks == 1
        assert bus.stats.cache_to_cache == 1
        assert bus.state(0, 0x200) is MESI.SHARED

    def test_shared_write_is_upgrade_not_rdx(self, bus):
        bus.read(0, 0x300)
        bus.read(1, 0x300)
        bus.write(0, 0x300)
        assert bus.stats.upgrades == 1

    def test_eviction_of_modified_writes_back(self, bus):
        bus.write(0, 0x400)
        assert bus.evict(0, 0x400) is True
        assert bus.state(0, 0x400) is MESI.INVALID

    def test_eviction_of_clean_is_silent(self, bus):
        bus.read(0, 0x400)
        assert bus.evict(0, 0x400) is False

    def test_core_range_checked(self, bus):
        with pytest.raises(ValueError):
            bus.read(7, 0x0)
        with pytest.raises(ValueError):
            bus.write(-1, 0x0)


class TestInvariants:
    def test_invariants_after_patterned_traces(self):
        for pattern in ("private", "producer_consumer", "migratory",
                        "read_shared", "contended"):
            bus = MESIBus(CoherenceConfig(n_cores=4))
            bus.run_trace(
                sharing_pattern_trace(pattern, 4, 32, 2000, rng=0)
            )
            bus.check_invariants()  # must not raise

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 7),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_swmr_holds_under_random_traces(self, trace):
        bus = MESIBus(CoherenceConfig(n_cores=4))
        bus.run_trace(trace)
        bus.check_invariants()

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.booleans()),
            min_size=1, max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_access_outcome_states(self, trace):
        bus = MESIBus(CoherenceConfig(n_cores=4))
        for core, line, is_write in trace:
            if is_write:
                assert bus.write(core, line) is MESI.MODIFIED
            else:
                # Read hit on own dirty line stays Modified; otherwise
                # the line lands Exclusive or Shared.
                assert bus.read(core, line) is not MESI.INVALID


class TestTrafficPatterns:
    def test_private_data_no_invalidations(self):
        bus = MESIBus(CoherenceConfig(n_cores=4))
        bus.run_trace(sharing_pattern_trace("private", 4, 32, 3000, rng=0))
        assert bus.stats.invalidations == 0

    def test_contended_line_pings(self):
        bus = MESIBus(CoherenceConfig(n_cores=4))
        bus.run_trace(sharing_pattern_trace("contended", 4, 1, 2000, rng=0))
        # Nearly every write by a different core invalidates the holder.
        assert bus.stats.invalidations > 1000

    def test_read_shared_no_writebacks(self):
        bus = MESIBus(CoherenceConfig(n_cores=4))
        bus.run_trace(sharing_pattern_trace("read_shared", 4, 16, 2000, rng=0))
        assert bus.stats.writebacks == 0

    def test_energy_charged_per_txn(self):
        bus = MESIBus(CoherenceConfig(n_cores=2, energy_per_bus_txn_j=1.0))
        bus.read(0, 0)  # one bus read
        assert bus.ledger.total() == pytest.approx(1.0)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            sharing_pattern_trace("nonsense", 4, 8, 10)
