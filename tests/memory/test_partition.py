"""Tests for utility-based shared-cache partitioning."""

import numpy as np
import pytest

from repro.memory import (
    TenantTrace,
    miss_curve,
    partition_outcome,
    shared_vs_partitioned,
    utility_based_partition,
)
from repro.processor import (
    random_addresses,
    sequential_addresses,
    zipf_addresses,
)


def reuse_tenant(n=4000, seed=0):
    return TenantTrace("reuse", zipf_addresses(n, unique=512, rng=seed))


def stream_tenant(n=4000):
    return TenantTrace("stream", sequential_addresses(n, stride=64))


class TestMissCurve:
    def test_monotone_in_capacity(self):
        curve = miss_curve(
            zipf_addresses(4000, unique=512, rng=0), [32, 64, 128, 256, 512]
        )
        assert np.all(np.diff(curve) >= -1e-12)

    def test_stream_flat_at_zero(self):
        curve = miss_curve(
            sequential_addresses(4000, stride=64), [32, 128, 512]
        )
        assert np.all(curve < 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_curve(np.zeros(3, dtype=np.int64), [])
        with pytest.raises(ValueError):
            miss_curve(np.zeros(3, dtype=np.int64), [0])


class TestUCP:
    def test_reuse_tenant_gets_the_ways(self):
        allocation = utility_based_partition(
            [reuse_tenant(), stream_tenant()], total_ways=8
        )
        assert allocation["reuse"] >= 6
        assert allocation["stream"] >= 1
        assert sum(allocation.values()) == 8

    def test_symmetric_tenants_split_evenly_ish(self):
        a = TenantTrace("a", zipf_addresses(4000, unique=512, rng=1))
        b = TenantTrace("b", zipf_addresses(4000, unique=512, rng=2))
        allocation = utility_based_partition([a, b], total_ways=8)
        assert abs(allocation["a"] - allocation["b"]) <= 2

    def test_every_tenant_guaranteed_a_way(self):
        tenants = [
            stream_tenant(),
            TenantTrace("s2", sequential_addresses(2000, stride=128)),
        ]
        allocation = utility_based_partition(tenants, total_ways=4)
        assert min(allocation.values()) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            utility_based_partition([reuse_tenant()], total_ways=0)
        with pytest.raises(ValueError):
            utility_based_partition([], total_ways=4)
        with pytest.raises(ValueError):
            utility_based_partition(
                [reuse_tenant(), reuse_tenant()], total_ways=4
            )  # duplicate names
        with pytest.raises(ValueError):
            TenantTrace("empty", np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            partition_outcome([reuse_tenant()], {})


class TestSharedVsPartitioned:
    def test_partitioning_protects_the_reuse_tenant(self):
        out = shared_vs_partitioned(
            [reuse_tenant(6000), stream_tenant(6000)],
            total_ways=8, rng=0,
        )
        assert out["partitioned"]["reuse"] > out["shared"]["reuse"]

    def test_thrasher_loses_nothing_it_had(self):
        out = shared_vs_partitioned(
            [reuse_tenant(6000), stream_tenant(6000)],
            total_ways=8, rng=0,
        )
        # The stream never hits anyway; isolation costs it ~nothing.
        assert out["partitioned"]["stream"] <= out["shared"]["stream"] + 0.02

    def test_random_antagonist(self):
        out = shared_vs_partitioned(
            [
                reuse_tenant(5000),
                TenantTrace(
                    "rand",
                    random_addresses(5000, footprint_bytes=1 << 26, rng=3),
                ),
            ],
            total_ways=8, rng=1,
        )
        assert out["partitioned"]["reuse"] >= out["shared"]["reuse"]

    def test_validation(self):
        with pytest.raises(ValueError):
            shared_vs_partitioned([], total_ways=4)
