"""Tests for the processing-in-memory model (Section 2.2 'in-place
computation')."""

import numpy as np
import pytest

from repro.memory import (
    BulkOp,
    PIMSystem,
    host_energy_j,
    host_time_s,
    intensity_crossover_ops_per_byte,
    pim_comparison,
    pim_energy_j,
    pim_time_s,
    pim_wins_energy,
)


class TestEnergies:
    def test_scan_belongs_in_memory(self):
        # Low ops/byte, tiny result: the transport saving dominates.
        system = PIMSystem()
        scan = BulkOp(bytes_scanned=1 << 30, ops_per_byte=0.1,
                      result_fraction=0.001)
        assert pim_wins_energy(system, scan)
        assert pim_energy_j(system, scan) < 0.2 * host_energy_j(system, scan)

    def test_compute_dense_belongs_on_the_core(self):
        system = PIMSystem()
        gemm = BulkOp(bytes_scanned=1 << 30, ops_per_byte=100.0)
        assert not pim_wins_energy(system, gemm)

    def test_crossover_formula_consistent_with_decisions(self):
        system = PIMSystem()
        cross = intensity_crossover_ops_per_byte(system, result_fraction=0.01)
        below = BulkOp(1 << 28, cross * 0.9, result_fraction=0.01)
        above = BulkOp(1 << 28, cross * 1.1, result_fraction=0.01)
        assert pim_wins_energy(system, below)
        assert not pim_wins_energy(system, above)

    def test_large_results_erode_pim(self):
        system = PIMSystem()
        small = BulkOp(1 << 28, 1.0, result_fraction=0.001)
        large = BulkOp(1 << 28, 1.0, result_fraction=0.9)
        gain_small = host_energy_j(system, small) / pim_energy_j(system, small)
        gain_large = host_energy_j(system, large) / pim_energy_j(system, large)
        assert gain_small > gain_large

    def test_cheap_pim_ops_always_win(self):
        system = PIMSystem(pim_energy_per_op_j=1e-12)
        assert intensity_crossover_ops_per_byte(system) == float("inf")


class TestTimes:
    def test_scan_faster_in_memory(self):
        # Internal row bandwidth >> external link bandwidth.
        system = PIMSystem()
        scan = BulkOp(1 << 30, 0.05, result_fraction=0.001)
        assert pim_time_s(system, scan) < host_time_s(system, scan)

    def test_host_time_components(self):
        system = PIMSystem()
        op = BulkOp(bytes_scanned=system.link_bytes_per_s, ops_per_byte=0.0)
        assert host_time_s(system, op) == pytest.approx(1.0)


class TestSweep:
    def test_single_crossover(self):
        out = pim_comparison()
        wins = out["pim_wins_energy"]
        assert wins[0] and not wins[-1]
        flip = int(np.argmin(wins))
        assert not wins[flip:].any()  # once host wins, it keeps winning

    def test_validation(self):
        with pytest.raises(ValueError):
            BulkOp(0.0, 1.0)
        with pytest.raises(ValueError):
            BulkOp(1.0, 1.0, result_fraction=2.0)
        with pytest.raises(ValueError):
            PIMSystem(host_ops_per_s=0.0)
        with pytest.raises(ValueError):
            intensity_crossover_ops_per_byte(PIMSystem(), result_fraction=-1.0)
        with pytest.raises(ValueError):
            pim_comparison(intensities=())
