"""Tests for compression, hybrid memory, and the Keckler energy table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    HybridConfig,
    HybridMemory,
    PAGE_BYTES,
    bandwidth_energy_savings,
    bdi_compressed_bits,
    communication_vs_computation_series,
    compare_organizations,
    compress_lines,
    effective_capacity_gb,
    energy_table,
    fpc_compressed_bits,
    get_device,
    idle_power_comparison,
    integer_array_data,
    keckler_claim,
    pointer_array_data,
    random_data,
)


class TestKecklerClaim:
    def test_dram_operand_fetch_one_to_two_orders(self):
        # The paper's exact sentence: operand fetch from memory costs
        # "one to two orders of magnitude more energy" than the FMA.
        claim = keckler_claim("45nm")
        assert 10.0 <= claim["ratio_dram"] <= 300.0

    def test_hierarchy_ratios_ordered(self):
        claim = keckler_claim("45nm")
        assert (
            claim["ratio_regfile"]
            < claim["ratio_l1"]
            < claim["ratio_l2"]
            < claim["ratio_l3"]
            < claim["ratio_dram"]
        )

    def test_register_fetch_cheaper_than_op(self):
        assert keckler_claim("45nm")["ratio_regfile"] < 1.0

    def test_movement_energy_linear(self):
        table = energy_table("45nm")
        one = table.movement_energy_j(64, 1.0)
        assert table.movement_energy_j(64, 10.0) == pytest.approx(10 * one)
        assert table.movement_energy_j(128, 1.0) == pytest.approx(2 * one)
        with pytest.raises(ValueError):
            table.movement_energy_j(-1, 1.0)

    def test_ratio_worsens_with_scaling(self):
        # Wires don't scale; compute does => ratio grows across nodes.
        series = communication_vs_computation_series()
        ratios = series["ratio"]
        assert ratios[-1] > ratios[0]

    def test_compute_energy_falls_across_nodes(self):
        older = energy_table("90nm").compute["fma64"]
        newer = energy_table("22nm").compute["fma64"]
        assert newer < older

    def test_unknown_keys(self):
        table = energy_table()
        with pytest.raises(KeyError):
            table.operand_fetch_ratio(op="quantum")
        with pytest.raises(KeyError):
            table.operand_fetch_ratio(source="akashic")


class TestCompression:
    def test_zero_line_highly_compressible(self):
        line = np.zeros(64, dtype=np.uint8)
        assert fpc_compressed_bits(line) < 64
        assert bdi_compressed_bits(line) < 64

    def test_random_data_incompressible(self):
        report_fpc = compress_lines(random_data(4096, rng=0), "fpc")
        report_bdi = compress_lines(random_data(4096, rng=0), "bdi")
        assert report_fpc.ratio < 1.1
        assert report_bdi.ratio < 1.1

    def test_small_ints_compress_well(self):
        data = integer_array_data(4096, magnitude=50, rng=0)
        assert compress_lines(data, "fpc").ratio > 2.0
        assert compress_lines(data, "bdi").ratio > 1.5

    def test_pointers_favor_bdi(self):
        data = pointer_array_data(4096, rng=0)
        bdi = compress_lines(data, "bdi").ratio
        fpc = compress_lines(data, "fpc").ratio
        assert bdi > fpc

    def test_compressed_never_larger_than_raw_plus_tag(self):
        for maker in (integer_array_data, pointer_array_data, random_data):
            data = maker(1024, rng=1)
            for alg, fn in (("fpc", fpc_compressed_bits),
                            ("bdi", bdi_compressed_bits)):
                line = data[:64]
                assert fn(line) <= 64 * 8 + 64  # raw + tag overhead

    @given(st.binary(min_size=64, max_size=64))
    @settings(max_examples=40)
    def test_property_size_bounds(self, raw):
        line = np.frombuffer(raw, dtype=np.uint8)
        for fn in (fpc_compressed_bits, bdi_compressed_bits):
            size = fn(line)
            assert 0 < size <= 64 * 8 + 64

    def test_validation(self):
        with pytest.raises(KeyError):
            compress_lines(np.zeros(64, dtype=np.uint8), "zip")
        with pytest.raises(ValueError):
            compress_lines(np.zeros(60, dtype=np.uint8), "fpc")
        with pytest.raises(ValueError):
            fpc_compressed_bits(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            integer_array_data(6)
        with pytest.raises(ValueError):
            pointer_array_data(12)

    def test_capacity_and_bandwidth_arithmetic(self):
        assert effective_capacity_gb(8.0, 2.0) == pytest.approx(16.0)
        out = bandwidth_energy_savings(
            ratio=2.0, link_energy_per_bit_j=1e-12, bits_moved_raw=1e9
        )
        assert out["saving_j"] > 0
        assert 0 < out["saving_fraction"] < 0.5 + 1e-9
        with pytest.raises(ValueError):
            effective_capacity_gb(8.0, 0.5)
        with pytest.raises(ValueError):
            bandwidth_energy_savings(0.5, 1e-12, 1e9)


class TestHybridMemory:
    def make(self, dram_pages=4):
        return HybridMemory(
            HybridConfig(dram_pages=dram_pages, nvm_pages=64,
                         migration_threshold=2, migration_cost_accesses=4)
        )

    def test_hot_page_promoted(self):
        mem = self.make()
        addr = 3 * PAGE_BYTES
        assert mem.access(addr) is False
        assert mem.access(addr) is False  # hits threshold, promotes
        assert mem.access(addr) is True  # now in fast tier
        assert mem.result.migrations == 1

    def test_lru_demotion(self):
        mem = self.make(dram_pages=1)
        for page in (0, 1):
            for _ in range(2):
                mem.access(page * PAGE_BYTES)
        # page 1 promoted second, evicting page 0.
        assert mem.access(1 * PAGE_BYTES) is True
        assert mem.access(0 * PAGE_BYTES) is False

    def test_no_fast_tier_never_hits(self):
        mem = HybridMemory(HybridConfig(dram_pages=0, nvm_pages=16))
        for _ in range(10):
            mem.access(0)
        assert mem.result.fast_hits == 0

    def test_writes_tracked_for_endurance(self):
        mem = self.make(dram_pages=0)
        for i in range(5):
            mem.access(i * 64, is_write=True)
        assert mem.result.nvm_writes == 5

    def test_organization_ordering(self):
        out = compare_organizations(n_accesses=6000, rng=0)
        # Latency: pure DRAM <= hybrid <= pure NVM.
        assert (
            out["pure_dram"]["mean_latency_ns"]
            <= out["hybrid"]["mean_latency_ns"]
            <= out["pure_nvm"]["mean_latency_ns"]
        )
        # Hybrid absorbs most writes in DRAM vs pure NVM.
        assert out["hybrid"]["nvm_writes"] < out["pure_nvm"]["nvm_writes"]

    def test_idle_power_headline(self):
        out = idle_power_comparison(capacity_gb=256.0)
        assert out["pure_nvm_w"] < out["hybrid_w"] < out["pure_dram_w"]
        assert out["hybrid_saving_fraction"] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(dram_pages=-1, nvm_pages=4)
        with pytest.raises(ValueError):
            HybridConfig(dram_pages=1, nvm_pages=4, migration_threshold=0)
        mem = self.make()
        with pytest.raises(ValueError):
            mem.access(-1)
        with pytest.raises(ValueError):
            idle_power_comparison(0.0)
        with pytest.raises(ValueError):
            idle_power_comparison(10.0, dram_fraction=2.0)

    def test_reset(self):
        mem = self.make()
        mem.access(0)
        mem.reset()
        assert mem.result.accesses == 0
