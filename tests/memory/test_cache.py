"""Tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, CacheConfig, stack_distance_hit_rate
from repro.processor import sequential_addresses, zipf_addresses


def small_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size_bytes=size, associativity=assoc, line_bytes=line))


class TestConfig:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=64)  # not multiple
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_bytes=60)  # not pow2
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, line_bytes=64, associativity=2)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64, line_bytes=64, associativity=1)

    def test_n_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=8)
        assert cfg.n_sets == 64


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True  # same line
        assert c.access(64) is False  # next line

    def test_lru_eviction(self):
        # 2-way set: fill both ways, touch the first, insert a third;
        # the second (LRU) must be evicted.
        c = small_cache(size=1024, assoc=2, line=64)  # 8 sets
        set_stride = 8 * 64  # same set every 512 bytes
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)  # refresh a
        c.access(d)  # evicts b
        assert c.access(a) is True
        assert c.access(b) is False

    def test_writeback_on_dirty_eviction(self):
        c = small_cache(size=1024, assoc=1, line=64)  # direct-mapped, 16 sets
        stride = 16 * 64
        c.access(0, is_write=True)  # dirty
        c.access(stride)  # evicts dirty line
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(size=1024, assoc=1, line=64)
        stride = 16 * 64
        c.access(0, is_write=False)
        c.access(stride)
        assert c.stats.writebacks == 0

    def test_write_no_allocate(self):
        cfg = CacheConfig(
            size_bytes=1024, associativity=2, write_back=False,
            write_allocate=False,
        )
        c = Cache(cfg)
        c.access(0, is_write=True)  # miss, no fill
        assert c.access(0, is_write=False) is False

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            small_cache().access(-1)

    def test_reset(self):
        c = small_cache()
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False  # cold again


class TestTraceRuns:
    def test_sequential_within_capacity_hits_after_warmup(self):
        c = Cache(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4))
        addrs = np.tile(sequential_addresses(64, stride=64), 10)
        stats = c.run_trace(addrs)
        # 64 lines exactly fill the cache: 64 cold misses, rest hits.
        assert stats.misses == 64
        assert stats.hits == 64 * 9

    def test_thrashing_working_set(self):
        c = Cache(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4))
        # 128 lines > 64-line capacity, cyclic: pure LRU thrashing.
        addrs = np.tile(sequential_addresses(128, stride=64), 5)
        stats = c.run_trace(addrs)
        assert stats.hit_rate == 0.0

    def test_writes_length_mismatch(self):
        c = small_cache()
        with pytest.raises(ValueError):
            c.run_trace(np.zeros(3, dtype=np.int64), writes=np.zeros(2, dtype=bool))

    def test_hit_rate_increases_with_size(self):
        addrs = zipf_addresses(20000, unique=4096, rng=0)
        rates = []
        for size_kb in (4, 16, 64, 256):
            c = Cache(CacheConfig(size_bytes=size_kb * 1024, associativity=8))
            rates.append(c.run_trace(addrs).hit_rate)
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))


class TestInvariants:
    def test_hits_plus_misses_equals_accesses(self):
        c = small_cache()
        addrs = zipf_addresses(5000, rng=1)
        stats = c.run_trace(addrs)
        assert stats.hits + stats.misses == stats.accesses == 5000

    def test_contents_bounded_by_capacity(self):
        c = Cache(CacheConfig(size_bytes=2048, line_bytes=64, associativity=2))
        c.run_trace(zipf_addresses(3000, rng=2))
        assert len(c.contents()) <= 2048 // 64

    def test_resident_line_always_hits(self):
        c = small_cache(size=2048, assoc=4)
        c.run_trace(zipf_addresses(1000, rng=3))
        for line_addr in list(c.contents())[:10]:
            assert c.access(line_addr) is True

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                 max_size=300),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_accounting_and_capacity(self, addresses, assoc):
        c = Cache(CacheConfig(size_bytes=64 * 8 * assoc,
                              line_bytes=64, associativity=assoc))
        for a in addresses:
            c.access(a)
        assert c.stats.hits + c.stats.misses == len(addresses)
        assert len(c.contents()) <= 8 * assoc
        # Unique lines touched bounds the number of misses from below.
        unique_lines = len({a >> 6 for a in addresses})
        assert c.stats.misses >= min(unique_lines, 1)


class TestStackDistance:
    def test_agrees_with_fully_associative_simulator(self):
        addrs = zipf_addresses(8000, unique=512, rng=0)
        capacity = 128  # lines
        c = Cache(
            CacheConfig(size_bytes=capacity * 64, line_bytes=64,
                        associativity=capacity)  # fully associative
        )
        sim_rate = c.run_trace(addrs).hit_rate
        analytic = stack_distance_hit_rate(addrs, capacity_lines=capacity)
        assert analytic == pytest.approx(sim_rate, abs=1e-9)

    def test_repeat_stream_all_hits_after_first(self):
        addrs = np.zeros(100, dtype=np.int64)
        assert stack_distance_hit_rate(addrs, 16) == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            stack_distance_hit_rate(np.zeros(3, dtype=np.int64), 0)
