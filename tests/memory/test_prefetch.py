"""Tests for the hardware prefetchers."""

import numpy as np
import pytest

from repro.memory import (
    CacheConfig,
    NextLinePrefetcher,
    StreamPrefetcher,
    prefetched_run,
    prefetcher_comparison,
)
from repro.processor import random_addresses, sequential_addresses


class TestNextLine:
    def test_issues_on_miss_only(self):
        pf = NextLinePrefetcher(line_bytes=64)
        assert pf.observe(0, was_hit=True) == []
        assert pf.observe(0, was_hit=False) == [64]

    def test_degree(self):
        pf = NextLinePrefetcher(line_bytes=64, degree=3)
        assert pf.observe(128, was_hit=False) == [192, 256, 320]

    def test_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStream:
    def test_confirms_then_runs_ahead(self):
        pf = StreamPrefetcher(line_bytes=64, confirm=2, degree=2)
        assert pf.observe(0, False) == []  # new candidate
        assert pf.observe(64, False) == []  # stride learned (conf 1)
        out = pf.observe(128, False)  # stride repeats (conf 2): confirmed
        assert out == [192, 256]  # degree 2 ahead
        assert pf.observe(192, False) == [256, 320]  # stays confirmed

    def test_detects_non_unit_strides(self):
        pf = StreamPrefetcher(line_bytes=64, confirm=2, degree=1)
        for addr in (0, 256, 512, 768):
            out = pf.observe(addr, False)
        assert out == [1024]

    def test_random_traffic_never_confirms(self):
        pf = StreamPrefetcher(line_bytes=64)
        rng = np.random.default_rng(0)
        issued = []
        for addr in rng.integers(0, 1 << 30, size=500) * 64:
            issued.extend(pf.observe(int(addr), False))
        assert len(issued) < 25  # essentially nothing

    def test_stream_table_evicts_lru(self):
        pf = StreamPrefetcher(line_bytes=64, n_streams=2)
        pf.observe(0, False)
        pf.observe(1 << 20, False)
        pf.observe(1 << 24, False)  # evicts the oldest
        assert len(pf._streams) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(n_streams=0)


class TestPrefetchedRun:
    def test_stream_prefetcher_covers_sequential(self):
        report = prefetched_run(sequential_addresses(5000, stride=64))
        assert report.coverage > 0.9
        assert report.accuracy > 0.9

    def test_next_line_half_covers_sequential(self):
        report = prefetched_run(
            sequential_addresses(5000, stride=64),
            prefetcher=NextLinePrefetcher(),
        )
        assert 0.4 <= report.coverage <= 0.6

    def test_random_defeats_prefetching(self):
        report = prefetched_run(
            random_addresses(5000, footprint_bytes=1 << 26, rng=0)
        )
        assert abs(report.coverage) < 0.05

    def test_wasted_prefetch_energy(self):
        # next-line on a 4-line stride: all prefetches useless.
        report = prefetched_run(
            sequential_addresses(3000, stride=256),
            prefetcher=NextLinePrefetcher(),
        )
        assert report.accuracy < 0.05
        assert report.energy_overhead_j() > 0
        with pytest.raises(ValueError):
            report.energy_overhead_j(-1.0)

    def test_comparison_table_shapes(self):
        out = prefetcher_comparison(n=4000)
        assert out["sequential/stream"]["coverage"] > 0.9
        assert out["random/stream"]["coverage"] < 0.05
