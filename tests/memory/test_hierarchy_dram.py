"""Tests for the memory hierarchy and DRAM models."""

import numpy as np
import pytest

from repro.memory import (
    CacheConfig,
    DRAMBankModel,
    DRAMConfig,
    LevelSpec,
    MemoryHierarchy,
    MemorySpec,
    amat,
    energy_per_access,
    streaming_vs_random_summary,
)
from repro.processor import (
    random_addresses,
    sequential_addresses,
    zipf_addresses,
)


class TestAMATFormula:
    def test_single_level(self):
        # 90% hits at 4 cycles, misses pay 4 + 200.
        assert amat([0.9], [4.0], 200.0) == pytest.approx(4.0 + 0.1 * 200.0)

    def test_two_levels(self):
        value = amat([0.9, 0.5], [4.0, 12.0], 200.0)
        assert value == pytest.approx(4.0 + 0.1 * (12.0 + 0.5 * 200.0))

    def test_perfect_cache(self):
        assert amat([1.0], [4.0], 200.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            amat([0.9], [4.0, 12.0], 200.0)
        with pytest.raises(ValueError):
            amat([1.5], [4.0], 200.0)
        with pytest.raises(ValueError):
            amat([0.5], [-1.0], 200.0)

    def test_energy_formula_mirrors_amat(self):
        e = energy_per_access([0.5], [10e-12], 1e-9)
        assert e == pytest.approx(10e-12 + 0.5 * 1e-9)
        with pytest.raises(ValueError):
            energy_per_access([0.5], [-1.0], 1e-9)


class TestMemoryHierarchy:
    def test_small_working_set_stays_in_l1(self):
        h = MemoryHierarchy()
        addrs = np.tile(sequential_addresses(64, stride=64), 20)
        res = h.run_trace(addrs)
        assert res.level_hits["l1"] > 0.9 * res.accesses
        assert res.memory_accesses <= 64

    def test_huge_random_set_reaches_memory(self):
        h = MemoryHierarchy()
        addrs = random_addresses(5000, footprint_bytes=1 << 30, rng=0)
        res = h.run_trace(addrs)
        assert res.memory_accesses > 0.8 * res.accesses
        assert res.amat_cycles > 150  # dominated by DRAM latency

    def test_energy_tracks_hit_level(self):
        h = MemoryHierarchy()
        near = h.run_trace(np.tile(sequential_addresses(16, stride=64), 50))
        h2 = MemoryHierarchy()
        far = h2.run_trace(random_addresses(800, footprint_bytes=1 << 30, rng=1))
        assert far.energy_per_access_j > 10 * near.energy_per_access_j

    def test_simulated_amat_matches_closed_form(self):
        h = MemoryHierarchy()
        addrs = zipf_addresses(20000, unique=50000, rng=2)
        res = h.run_trace(addrs)
        # Recompute closed-form AMAT from simulated local hit rates.
        hits = [res.level_hits[s.name] for s in h.specs]
        reached = []
        remaining = res.accesses
        local_rates = []
        for hcount in hits:
            local_rates.append(hcount / remaining if remaining else 0.0)
            remaining -= hcount
        closed = amat(
            local_rates,
            [s.latency_cycles for s in h.specs],
            h.memory.latency_cycles,
        )
        assert res.amat_cycles == pytest.approx(closed, rel=1e-9)

    def test_writebacks_charge_energy(self):
        h = MemoryHierarchy()
        # Write-heavy thrash to force dirty evictions.
        addrs = np.tile(sequential_addresses(2048, stride=64), 3)
        writes = np.ones(len(addrs), dtype=bool)
        res = h.run_trace(addrs, writes)
        assert res.ledger.total("cache.l1.writeback") > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(levels=[])
        spec = LevelSpec(
            "x", CacheConfig(size_bytes=1024, associativity=2), 1, 1e-12
        )
        with pytest.raises(ValueError):
            MemoryHierarchy(levels=[spec, spec])  # duplicate names
        with pytest.raises(ValueError):
            LevelSpec("bad", CacheConfig(size_bytes=1024, associativity=2),
                      latency_cycles=-1, energy_per_access_j=0.0)
        with pytest.raises(ValueError):
            MemorySpec(latency_cycles=-5)
        h = MemoryHierarchy()
        with pytest.raises(ValueError):
            h.run_trace(np.zeros(2, dtype=np.int64),
                        writes=np.zeros(3, dtype=bool))


class TestDRAM:
    def test_sequential_rides_row_buffer(self):
        model = DRAMBankModel()
        out = model.run_trace(sequential_addresses(4000, stride=64))
        assert out["row_hit_rate"] > 0.95

    def test_random_pays_activates(self):
        model = DRAMBankModel()
        out = model.run_trace(
            random_addresses(4000, footprint_bytes=1 << 28, align=64, rng=0)
        )
        assert out["row_hit_rate"] < 0.1
        seq = DRAMBankModel().run_trace(sequential_addresses(4000, stride=64))
        assert out["mean_latency_ns"] > 2 * seq["mean_latency_ns"]
        assert out["energy_per_access_j"] > 2 * seq["energy_per_access_j"]

    def test_closed_row_policy_never_hits(self):
        model = DRAMBankModel(DRAMConfig(open_row_policy=False))
        out = model.run_trace(sequential_addresses(1000, stride=64))
        assert model.stats.row_hits == 0

    def test_latency_components(self):
        cfg = DRAMConfig()
        model = DRAMBankModel(cfg)
        first = model.access(0)  # closed row -> RCD + CAS
        second = model.access(64)  # same row -> CAS
        assert first == pytest.approx(cfg.t_rcd_ns + cfg.t_cas_ns)
        assert second == pytest.approx(cfg.t_cas_ns)
        # conflict: same bank, different row
        conflict = model.access(cfg.row_bytes * cfg.n_banks)
        assert conflict == pytest.approx(
            cfg.t_rp_ns + cfg.t_rcd_ns + cfg.t_cas_ns
        )

    def test_summary_contrast(self):
        out = streaming_vs_random_summary(n=2000, rng=0)
        assert (
            out["random"]["mean_latency_ns"]
            > out["sequential"]["mean_latency_ns"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(n_banks=0)
        with pytest.raises(ValueError):
            DRAMConfig(t_cas_ns=-1.0)
        model = DRAMBankModel()
        with pytest.raises(ValueError):
            model.access(-5)

    def test_reset(self):
        model = DRAMBankModel()
        model.access(0)
        model.reset()
        assert model.stats.accesses == 0
