"""Tests for NVM device models and wear leveling (experiment E11)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    DEVICES,
    NoWearLeveling,
    NVMDevice,
    StartGapWearLeveling,
    TableWearLeveling,
    WorkloadProfile,
    compare_devices,
    device_mean_latency_ns,
    device_power_w,
    get_device,
    lifetime_improvement,
    lifetime_writes,
    mlc_write_latency_ns,
    resistance_drift_error_rate,
)


class TestDeviceTable:
    def test_pcm_write_asymmetry(self):
        pcm = get_device("pcm")
        # Paper: "longer, asymmetric, or variable latency".
        assert pcm.write_read_latency_ratio > 5.0

    def test_dram_is_volatile_nvms_are_not(self):
        assert not get_device("dram").is_nonvolatile
        for name in ("pcm", "stt_ram", "rram", "nand_flash"):
            assert get_device(name).is_nonvolatile

    def test_endurance_ordering(self):
        # flash < pcm < rram < stt_ram < dram(inf)
        assert (
            get_device("nand_flash").endurance_writes
            < get_device("pcm").endurance_writes
            < get_device("rram").endurance_writes
            < get_device("stt_ram").endurance_writes
        )
        assert math.isinf(get_device("dram").endurance_writes)

    def test_density_ordering(self):
        # Paper: NVM promises "much greater storage density".
        assert (
            get_device("pcm").density_gb_per_mm2
            > get_device("dram").density_gb_per_mm2
            > get_device("sram").density_gb_per_mm2
        )

    def test_idle_power_win(self):
        assert (
            get_device("pcm").idle_power_w_per_gb
            < 0.1 * get_device("dram").idle_power_w_per_gb
        )

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("core-memory")

    def test_validation(self):
        with pytest.raises(ValueError):
            NVMDevice(
                name="bad", read_latency_ns=0.0, write_latency_ns=1.0,
                read_energy_j=0.0, write_energy_j=0.0,
                idle_power_w_per_gb=0.0, endurance_writes=1.0,
                retention_s=0.0, density_gb_per_mm2=1.0,
            )


class TestWorkloadComparison:
    def test_power_composition(self):
        wl = WorkloadProfile(reads_per_s=1e6, writes_per_s=1e5, capacity_gb=16)
        pcm = get_device("pcm")
        expected = 1e6 * pcm.read_energy_j + 1e5 * pcm.write_energy_j + (
            pcm.idle_power_w_per_gb * 16
        )
        assert device_power_w(pcm, wl) == pytest.approx(expected)

    def test_idle_dominated_workload_favors_nvm(self):
        wl = WorkloadProfile(reads_per_s=1e3, writes_per_s=1e2, capacity_gb=256)
        table = compare_devices(wl, names=["dram", "pcm"])
        assert table["pcm"]["power_w"] < table["dram"]["power_w"]

    def test_lifetime_reported(self):
        wl = WorkloadProfile(reads_per_s=0.0, writes_per_s=1e7, capacity_gb=1)
        table = compare_devices(wl, names=["pcm", "dram"])
        assert math.isinf(table["dram"]["lifetime_years"])
        assert table["pcm"]["lifetime_years"] < math.inf

    def test_mean_latency_mix(self):
        pcm = get_device("pcm")
        assert device_mean_latency_ns(pcm, read_fraction=1.0) == pytest.approx(
            pcm.read_latency_ns
        )
        assert device_mean_latency_ns(pcm, read_fraction=0.0) == pytest.approx(
            pcm.write_latency_ns
        )
        with pytest.raises(ValueError):
            device_mean_latency_ns(pcm, read_fraction=1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(reads_per_s=-1.0, writes_per_s=0.0, capacity_gb=1)
        pcm = get_device("pcm")
        with pytest.raises(ValueError):
            pcm.lifetime_years(-1.0)


class TestMLCAndDrift:
    def test_mlc_latency_grows_with_bits(self):
        pcm = get_device("pcm")
        slc = mlc_write_latency_ns(pcm, bits_per_cell=1)
        mlc = mlc_write_latency_ns(pcm, bits_per_cell=2)
        tlc = mlc_write_latency_ns(pcm, bits_per_cell=3)
        assert slc == pytest.approx(pcm.write_latency_ns)
        assert slc < mlc < tlc

    def test_drift_error_grows_with_time_and_levels(self):
        t = np.array([0.0, 1e3, 1e6])
        rates4 = resistance_drift_error_rate(t, levels=4)
        assert np.all(np.diff(rates4) >= 0)
        rates8 = resistance_drift_error_rate(t, levels=8)
        assert rates8[-1] >= rates4[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            mlc_write_latency_ns(get_device("pcm"), bits_per_cell=0)
        with pytest.raises(ValueError):
            resistance_drift_error_rate(-1.0)
        with pytest.raises(ValueError):
            resistance_drift_error_rate(1.0, levels=1)


class TestWearLeveling:
    def test_identity_mapping(self):
        wl = NoWearLeveling(16)
        assert [wl.physical(i) for i in range(16)] == list(range(16))
        with pytest.raises(ValueError):
            wl.physical(16)

    def test_start_gap_is_a_permutation_at_all_times(self):
        wl = StartGapWearLeveling(16, gap_interval=3)
        for step in range(200):
            mapping = [wl.physical(i) for i in range(16)]
            assert len(set(mapping)) == 16  # injective
            assert all(0 <= p <= 16 for p in mapping)  # 17 frames
            wl.on_write(step % 16)

    def test_start_gap_eventually_moves_lines(self):
        wl = StartGapWearLeveling(8, gap_interval=1)
        initial = [wl.physical(i) for i in range(8)]
        for _ in range(100):
            wl.on_write(0)
        moved = [wl.physical(i) for i in range(8)]
        assert moved != initial

    def test_table_leveling_swaps_hot_frame(self):
        wl = TableWearLeveling(8, interval=10)
        for _ in range(30):
            wl.on_write(0)
        # Hot logical 0 should no longer map to its original frame.
        assert wl.migration_writes > 0

    @given(st.integers(2, 32), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_start_gap_permutation(self, n, interval):
        wl = StartGapWearLeveling(n, gap_interval=interval)
        for step in range(5 * n):
            wl.on_write(step % n)
        mapping = [wl.physical(i) for i in range(n)]
        assert len(set(mapping)) == n

    def test_lifetime_improvement_orders_of_magnitude(self):
        out = lifetime_improvement(
            endurance=2000, n_lines=256, max_writes=4_000_000, rng=0
        )
        # Paper-shape claim: leveling extends lifetime dramatically.
        assert out["start_gap_improvement"] > 10.0
        assert out["table_improvement"] > 2.0

    def test_uniform_stream_needs_no_leveling(self):
        base = lifetime_writes(
            NoWearLeveling(64), endurance=500, hot_fraction=0.0,
            max_writes=100_000, rng=0,
        )
        # With uniform writes the baseline already nears ideal.
        assert base["leveling_efficiency"] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            NoWearLeveling(0)
        with pytest.raises(ValueError):
            StartGapWearLeveling(8, gap_interval=0)
        with pytest.raises(ValueError):
            TableWearLeveling(8, interval=0)
        with pytest.raises(ValueError):
            lifetime_writes(NoWearLeveling(8), endurance=0.0)
        with pytest.raises(ValueError):
            lifetime_writes(NoWearLeveling(8), endurance=10, hot_fraction=2.0)


class TestWriteStreamEquivalence:
    """The vectorized write_stream closed forms must match the scalar
    on_write loop exactly — applied counts, crossing flag, wear arrays,
    and every piece of internal remapping state."""

    @staticmethod
    def _scalar_reference(leveler, logicals, wear, endurance):
        applied = 0
        for logical in logicals:
            frame = leveler.on_write(int(logical))
            wear[frame] += 1
            applied += 1
            if wear[frame] >= endurance:
                return applied, True
        return applied, False

    def _assert_equivalent(self, make_leveler, n_lines, seed):
        rng = np.random.default_rng(seed)
        fast = make_leveler()
        ref = make_leveler()
        n_frames = n_lines + fast.extra_frames
        wear_fast = np.zeros(n_frames)
        wear_ref = np.zeros(n_frames)
        endurance = float(rng.integers(50, 400))
        for _ in range(8):
            batch = rng.integers(0, n_lines, size=int(rng.integers(1, 600)))
            got = fast.write_stream(batch, wear_fast, endurance)
            want = self._scalar_reference(ref, batch, wear_ref, endurance)
            assert got == want
            np.testing.assert_array_equal(wear_fast, wear_ref)
            assert fast.migration_writes == ref.migration_writes
            for lg in range(n_lines):
                assert fast.physical(lg) == ref.physical(lg)
            if got[1]:
                break

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_leveling(self, seed):
        self._assert_equivalent(lambda: NoWearLeveling(64), 64, seed)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_start_gap(self, seed):
        self._assert_equivalent(
            lambda: StartGapWearLeveling(64, gap_interval=7), 64, seed
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_table(self, seed):
        self._assert_equivalent(
            lambda: TableWearLeveling(64, interval=50), 64, seed
        )

    def test_crossing_stops_mid_batch(self):
        lev = NoWearLeveling(4)
        wear = np.zeros(4)
        applied, crossed = lev.write_stream(
            np.array([0, 1, 0, 0, 2]), wear, endurance=2.0
        )
        assert (applied, crossed) == (3, True)
        np.testing.assert_array_equal(wear, [2.0, 1.0, 0.0, 0.0])
