"""Human-network analytics workloads (paper Appendix A, experiment E22).

"Human Network Analytics ... Efficient human network analysis can have a
significant impact on a range of key application areas including
Homeland Security, Financial Markets, and Global Health."

Generators for social-style graphs (preferential attachment, small
world) and the analytics kernels the scenario calls for — degree/
PageRank-style influence scoring, community detection, and anomalous-
subgraph flagging — each reporting a *work* measure (edge traversals)
that the platform models convert into ops/energy/time.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.rng import RngLike, resolve_rng


def social_graph(
    n: int,
    attachment: int = 4,
    rng: RngLike = None,
) -> nx.Graph:
    """Barabasi-Albert preferential-attachment graph (heavy-tailed
    degree — the signature of human networks)."""
    if n < 3 or attachment < 1 or attachment >= n:
        raise ValueError("need n > attachment >= 1 and n >= 3")
    gen = resolve_rng(rng)
    return nx.barabasi_albert_graph(n, attachment, seed=int(gen.integers(2**31)))


def community_graph(
    n_communities: int,
    size: int,
    p_in: float = 0.3,
    p_out: float = 0.005,
    rng: RngLike = None,
) -> nx.Graph:
    """Planted-partition graph: dense communities, sparse cross links."""
    if n_communities < 1 or size < 2:
        raise ValueError("bad community geometry")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    gen = resolve_rng(rng)
    return nx.planted_partition_graph(
        n_communities, size, p_in, p_out, seed=int(gen.integers(2**31))
    )


@dataclass
class KernelReport:
    """Result of one analytics kernel plus its work accounting."""

    name: str
    result: object
    edge_traversals: float
    ops_estimate: float


def influence_scores(
    g: nx.Graph, iterations: int = 20, damping: float = 0.85
) -> KernelReport:
    """PageRank-style influence (power iteration, vectorized).

    Work: one pass over all edges per iteration.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = g.number_of_nodes()
    if n == 0:
        raise ValueError("graph is empty")
    nodes = list(g.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    # Directed edge arrays (both directions of each undirected edge):
    # contribution flows src -> dst each iteration.
    src = np.array(
        [index[u] for u, v in g.edges] + [index[v] for u, v in g.edges],
        dtype=np.int64,
    )
    dst = np.array(
        [index[v] for u, v in g.edges] + [index[u] for u, v in g.edges],
        dtype=np.int64,
    )
    degree = np.maximum(
        np.array([g.degree(v) for v in nodes], dtype=float), 1.0
    )
    rank = np.full(n, 1.0 / n)
    for _ in range(iterations):
        contrib = rank / degree
        incoming = np.zeros(n)
        if dst.size:
            np.add.at(incoming, dst, contrib[src])
        rank = (1 - damping) / n + damping * incoming
    scores = dict(zip(nodes, rank))
    traversals = 2.0 * g.number_of_edges() * iterations
    return KernelReport(
        name="influence",
        result=scores,
        edge_traversals=traversals,
        ops_estimate=traversals * 4.0,
    )


def detect_communities(g: nx.Graph, max_rounds: int = 30,
                       rng: RngLike = None) -> KernelReport:
    """Label propagation community detection.

    Work: edges scanned per round until convergence.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    if g.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    gen = resolve_rng(rng)
    labels = {v: i for i, v in enumerate(g.nodes)}
    nodes = list(g.nodes)
    traversals = 0.0
    for _ in range(max_rounds):
        gen.shuffle(nodes)
        changed = 0
        for v in nodes:
            neighbors = list(g.neighbors(v))
            traversals += len(neighbors)
            if not neighbors:
                continue
            counts: dict = {}
            for u in neighbors:
                counts[labels[u]] = counts.get(labels[u], 0) + 1
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            if best != labels[v]:
                labels[v] = best
                changed += 1
        if changed == 0:
            break
    communities: dict = {}
    for v, lab in labels.items():
        communities.setdefault(lab, set()).add(v)
    return KernelReport(
        name="communities",
        result=list(communities.values()),
        edge_traversals=traversals,
        ops_estimate=traversals * 6.0,
    )


def flag_anomalous_nodes(
    g: nx.Graph, z_threshold: float = 3.0
) -> KernelReport:
    """Flag nodes whose degree is a z-outlier vs. the graph (the
    'suspicious hub' primitive of threat analytics)."""
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")
    if g.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    degrees = np.array([d for _, d in g.degree], dtype=float)
    mu, sigma = degrees.mean(), degrees.std()
    flagged = [
        v for (v, d) in g.degree
        if sigma > 0 and (d - mu) / sigma > z_threshold
    ]
    traversals = float(g.number_of_edges())
    return KernelReport(
        name="anomalies",
        result=flagged,
        edge_traversals=traversals,
        ops_estimate=2.0 * g.number_of_nodes() + traversals,
    )


def population_graph(
    n_people: int = 2000,
    n_communities: int = 10,
    hub_fraction: float = 0.003,
    rng: RngLike = None,
) -> nx.Graph:
    """A human-network model with both structures real analytics hunts
    for: dense communities (planted partition) plus a handful of
    high-degree 'connector' hubs that bridge them."""
    if n_people < 20 or n_communities < 1:
        raise ValueError("need n_people >= 20 and n_communities >= 1")
    if not 0.0 <= hub_fraction <= 0.2:
        raise ValueError("hub_fraction must be in [0, 0.2]")
    gen = resolve_rng(rng)
    size = max(n_people // n_communities, 2)
    g = community_graph(n_communities, size, p_in=0.2, p_out=0.001, rng=gen)
    nodes = list(g.nodes)
    n_hubs = max(1, int(round(hub_fraction * len(nodes))))
    hubs = gen.choice(len(nodes), size=n_hubs, replace=False)
    # Hubs reach ~2% of the population: enough to be degree outliers,
    # sparse enough not to glue the communities together.
    reach = max(len(nodes) // 50, 2)
    for h in hubs:
        hub = nodes[int(h)]
        targets = gen.choice(len(nodes), size=reach, replace=False)
        for t in targets:
            if nodes[int(t)] != hub:
                g.add_edge(hub, nodes[int(t)])
    return g


def analytics_pipeline(
    n_people: int = 2000,
    rng: RngLike = 0,
) -> dict[str, KernelReport]:
    """The full Appendix-A scenario: build a population graph and run
    all three kernels, reporting total work."""
    gen = resolve_rng(rng)
    g = population_graph(n_people, rng=gen)
    return {
        "influence": influence_scores(g),
        "communities": detect_communities(g, rng=gen),
        "anomalies": flag_anomalous_nodes(g),
    }


def pipeline_total_ops(reports: dict[str, KernelReport]) -> float:
    return float(sum(r.ops_estimate for r in reports.values()))
