"""Workload substrate: synthetic kernels, big-data streams, human-network
analytics graphs (paper Appendix A, experiments E14/E22).
"""

from .bigdata import (
    StreamSpec,
    arrival_trace,
    edge_filtering_savings,
    required_capacity,
    store_vs_process_cost,
)
from .graphs import (
    KernelReport,
    analytics_pipeline,
    community_graph,
    detect_communities,
    flag_anomalous_nodes,
    influence_scores,
    pipeline_total_ops,
    population_graph,
    social_graph,
)
from .kernels import KERNELS, KernelSpec, get_kernel, intensity_table

__all__ = [
    "KERNELS",
    "KernelReport",
    "KernelSpec",
    "StreamSpec",
    "analytics_pipeline",
    "arrival_trace",
    "community_graph",
    "detect_communities",
    "edge_filtering_savings",
    "flag_anomalous_nodes",
    "get_kernel",
    "influence_scores",
    "intensity_table",
    "pipeline_total_ops",
    "population_graph",
    "required_capacity",
    "social_graph",
    "store_vs_process_cost",
]
