"""Streaming big-data workload generator (paper Appendix A, Table A.2).

"Many streams produce data so rapidly that it is cost-prohibitive to
store, and must be processed immediately."

A stream is records/s x bytes/record x ops/record; the generator
produces bursty arrival traces (compound-Poisson with diurnal
modulation) and the sizing helpers answer the Table A.2 questions:
can a given platform keep up, how much must be filtered at the edge,
and what does the store-vs-process tradeoff cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class StreamSpec:
    """A data stream's steady-state statistics."""

    records_per_s: float
    bytes_per_record: float
    ops_per_record: float
    burstiness: float = 2.0  # peak-to-mean ratio
    interesting_fraction: float = 0.01  # records worth keeping

    def __post_init__(self) -> None:
        if self.records_per_s <= 0 or self.bytes_per_record <= 0:
            raise ValueError("rates and sizes must be positive")
        if self.ops_per_record < 0:
            raise ValueError("ops must be non-negative")
        if self.burstiness < 1.0:
            raise ValueError("burstiness (peak/mean) must be >= 1")
        if not 0.0 <= self.interesting_fraction <= 1.0:
            raise ValueError("interesting_fraction must be in [0, 1]")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.records_per_s * self.bytes_per_record

    @property
    def compute_ops_per_s(self) -> float:
        return self.records_per_s * self.ops_per_record


def arrival_trace(
    spec: StreamSpec,
    duration_s: float,
    interval_s: float = 1.0,
    diurnal: bool = True,
    rng: RngLike = None,
) -> dict[str, np.ndarray]:
    """Per-interval record counts: Poisson base with burst modulation.

    Diurnal modulation follows a 24-h sinusoid scaled so the peak hits
    ``burstiness`` x mean — the standard WSC load-shape assumption.
    """
    if duration_s <= 0 or interval_s <= 0:
        raise ValueError("durations must be positive")
    gen = resolve_rng(rng)
    n = int(np.ceil(duration_s / interval_s))
    t = np.arange(n) * interval_s
    base = spec.records_per_s * interval_s
    if diurnal:
        swing = (spec.burstiness - 1.0) / (spec.burstiness + 1.0)
        modulation = 1.0 + swing * np.sin(2 * np.pi * t / 86400.0)
        modulation *= spec.burstiness / modulation.max()
    else:
        modulation = np.ones(n)
    lam = np.maximum(base * modulation, 1e-12)
    counts = gen.poisson(lam)
    return {"t": t, "records": counts, "rate": lam / interval_s}


def required_capacity(
    spec: StreamSpec, headroom: float = 1.2
) -> dict[str, float]:
    """Peak compute/bandwidth a platform needs to absorb the stream."""
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    peak = spec.burstiness * headroom
    return {
        "peak_ops_per_s": spec.compute_ops_per_s * peak,
        "peak_bandwidth_bytes_per_s": spec.bandwidth_bytes_per_s * peak,
        "storage_bytes_per_day": spec.bandwidth_bytes_per_s * 86400.0,
    }


def edge_filtering_savings(
    spec: StreamSpec,
    uplink_energy_per_bit_j: float = 50e-9,
    filter_ops_per_record: float = 100.0,
    compute_energy_per_op_j: float = 20e-12,
) -> dict[str, float]:
    """Energy of ship-everything vs filter-at-the-edge per second.

    Table A.2's "providing sufficient on-sensor capability to filter
    and process data where it is generated ... can be most
    energy-efficient" as arithmetic.
    """
    if uplink_energy_per_bit_j < 0 or compute_energy_per_op_j < 0:
        raise ValueError("energies must be non-negative")
    if filter_ops_per_record < 0:
        raise ValueError("filter ops must be non-negative")
    bits_per_s = spec.bandwidth_bytes_per_s * 8.0
    ship_all = uplink_energy_per_bit_j * bits_per_s
    filter_cost = (
        compute_energy_per_op_j * filter_ops_per_record * spec.records_per_s
    )
    ship_filtered = (
        uplink_energy_per_bit_j * bits_per_s * spec.interesting_fraction
    )
    filtered_total = filter_cost + ship_filtered
    return {
        "ship_all_w": ship_all,
        "filter_at_edge_w": filtered_total,
        "saving_ratio": ship_all / filtered_total if filtered_total else float("inf"),
        "filter_compute_share": (
            filter_cost / filtered_total if filtered_total else 0.0
        ),
    }


def store_vs_process_cost(
    spec: StreamSpec,
    storage_usd_per_gb_month: float = 0.02,
    compute_usd_per_core_hour: float = 0.05,
    core_ops_per_s: float = 1e9,
    retention_days: float = 30.0,
) -> dict[str, float]:
    """Monthly dollars: archive the raw stream vs process-and-discard.

    "Many streams produce data so rapidly that it is cost-prohibitive
    to store" — this puts a price on it.
    """
    if min(storage_usd_per_gb_month, compute_usd_per_core_hour) < 0:
        raise ValueError("prices must be non-negative")
    if core_ops_per_s <= 0 or retention_days <= 0:
        raise ValueError("core rate and retention must be positive")
    gb_per_month = spec.bandwidth_bytes_per_s * 86400 * 30.44 / 1e9
    stored_gb = gb_per_month * retention_days / 30.44
    storage_cost = stored_gb * storage_usd_per_gb_month
    cores = spec.compute_ops_per_s / core_ops_per_s
    compute_cost = cores * compute_usd_per_core_hour * 24 * 30.44
    return {
        "store_usd_per_month": storage_cost,
        "process_usd_per_month": compute_cost,
        "store_over_process": (
            storage_cost / compute_cost if compute_cost else float("inf")
        ),
    }
