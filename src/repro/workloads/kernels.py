"""Synthetic compute kernels with explicit op/byte footprints.

The agenda experiments price whole workloads in operations and bytes
moved; these kernel descriptors are the vocabulary.  Each kernel knows
its arithmetic intensity (FLOPs per byte), instruction mix, and memory
access pattern — enough for the roofline, cache, and energy models to
agree about what "running it" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..processor.program import (
    FP_KERNEL_MIX,
    POINTER_CHASE_MIX,
    InstructionMix,
    random_addresses,
    sequential_addresses,
    zipf_addresses,
)


@dataclass(frozen=True)
class KernelSpec:
    """A kernel's resource footprint per element processed."""

    name: str
    ops_per_element: float
    bytes_per_element: float
    mix: InstructionMix
    address_maker: Callable[[int], np.ndarray]
    parallel_fraction: float = 0.99

    def __post_init__(self) -> None:
        if self.ops_per_element <= 0 or self.bytes_per_element <= 0:
            raise ValueError("footprints must be positive")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")

    @property
    def intensity_ops_per_byte(self) -> float:
        return self.ops_per_element / self.bytes_per_element

    def total_ops(self, n_elements: float) -> float:
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        return self.ops_per_element * n_elements

    def total_bytes(self, n_elements: float) -> float:
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        return self.bytes_per_element * n_elements

    def addresses(self, n: int) -> np.ndarray:
        return self.address_maker(n)


def _stream_addresses(n: int) -> np.ndarray:
    return sequential_addresses(n, stride=8)


def _stencil_addresses(n: int) -> np.ndarray:
    # 2-D 5-point stencil on a 1k-wide grid: mostly unit stride plus
    # two +-row strides, interleaved.
    base = sequential_addresses(n, stride=8)
    row = 1024 * 8
    offsets = np.tile(np.array([0, -row, row, -8, 8]), n // 5 + 1)[:n]
    return np.abs(base + offsets)


def _graph_addresses(n: int) -> np.ndarray:
    return zipf_addresses(n, unique=1 << 16, exponent=1.3, rng=7)


def _random_addresses(n: int) -> np.ndarray:
    return random_addresses(n, footprint_bytes=1 << 28, rng=11)


#: Canonical kernel set, spanning the intensity spectrum.
KERNELS: Dict[str, KernelSpec] = {
    "stream_triad": KernelSpec(
        name="stream_triad", ops_per_element=2.0, bytes_per_element=24.0,
        mix=FP_KERNEL_MIX, address_maker=_stream_addresses,
        parallel_fraction=0.999,
    ),
    "dense_matmul": KernelSpec(
        # Blocked GEMM: O(b) ops per element loaded.
        name="dense_matmul", ops_per_element=64.0, bytes_per_element=8.0,
        mix=FP_KERNEL_MIX, address_maker=_stream_addresses,
        parallel_fraction=0.999,
    ),
    "stencil_2d": KernelSpec(
        name="stencil_2d", ops_per_element=10.0, bytes_per_element=48.0,
        mix=FP_KERNEL_MIX, address_maker=_stencil_addresses,
        parallel_fraction=0.99,
    ),
    "graph_traversal": KernelSpec(
        name="graph_traversal", ops_per_element=4.0, bytes_per_element=64.0,
        mix=POINTER_CHASE_MIX, address_maker=_graph_addresses,
        parallel_fraction=0.95,
    ),
    "key_value_lookup": KernelSpec(
        name="key_value_lookup", ops_per_element=6.0, bytes_per_element=128.0,
        mix=POINTER_CHASE_MIX, address_maker=_random_addresses,
        parallel_fraction=0.999,
    ),
}


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None


def intensity_table() -> dict[str, float]:
    """Arithmetic intensity per kernel — roofline placement."""
    return {k: v.intensity_ops_per_byte for k, v in KERNELS.items()}
