"""DVFS governors (paper Section 2.1: "using user feedback to adjust
voltage/frequency to save energy").

A discrete-time model of a core with voltage/frequency states serving a
bursty utilization trace.  Governors choose an operating point each
interval; the simulator scores energy, and deadline/QoS violations
(work left unserved in an interval).  Implemented governors:

* :class:`RaceToIdle` — max frequency while work remains, deep idle
  otherwise (the "run fast then sleep" school).
* :class:`OnDemandGovernor` — utilization-tracking proportional
  control, like the Linux governor of the era.
* :class:`UserFeedbackGovernor` — the paper's idea: an external
  satisfaction signal (e.g. UI latency annoyance) raises frequency only
  when the user notices — modeled as a tolerance threshold on queued
  work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class OperatingPoint:
    """One V/f state."""

    frequency_ghz: float
    vdd_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.vdd_v <= 0:
            raise ValueError("frequency and voltage must be positive")


def default_opp_table() -> list[OperatingPoint]:
    """A mobile-class DVFS ladder (frequency roughly tracks voltage)."""
    return [
        OperatingPoint(0.3, 0.60),
        OperatingPoint(0.6, 0.70),
        OperatingPoint(1.0, 0.80),
        OperatingPoint(1.5, 0.90),
        OperatingPoint(2.0, 1.00),
    ]


@dataclass(frozen=True)
class DVFSCore:
    """Power model over an OPP ladder: P = C_eff * V^2 * f + leak(V)."""

    c_eff_f: float = 1e-9  # effective switched capacitance [F]
    leakage_a_per_v: float = 0.2  # crude linear leakage current model
    idle_power_w: float = 0.02
    work_per_ghz_interval: float = 1.0  # work units served per interval at 1 GHz

    def __post_init__(self) -> None:
        if min(self.c_eff_f, self.leakage_a_per_v, self.idle_power_w) < 0:
            raise ValueError("power parameters must be non-negative")
        if self.work_per_ghz_interval <= 0:
            raise ValueError("work rate must be positive")

    def active_power_w(self, opp: OperatingPoint) -> float:
        dynamic = self.c_eff_f * opp.vdd_v**2 * opp.frequency_ghz * 1e9
        leak = self.leakage_a_per_v * opp.vdd_v**2
        return dynamic + leak

    def capacity(self, opp: OperatingPoint) -> float:
        """Work units servable per interval at this point."""
        return self.work_per_ghz_interval * opp.frequency_ghz


class Governor(ABC):
    """Chooses an OPP index given the current backlog and demand."""

    def __init__(self, table: Sequence[OperatingPoint] | None = None) -> None:
        self.table = list(table) if table is not None else default_opp_table()
        if not self.table:
            raise ValueError("need at least one operating point")

    @abstractmethod
    def choose(self, backlog: float, last_demand: float) -> int:
        """Return the OPP index for the next interval."""


class RaceToIdle(Governor):
    def choose(self, backlog: float, last_demand: float) -> int:
        return len(self.table) - 1 if backlog > 0 else 0


class OnDemandGovernor(Governor):
    """Pick the slowest point whose capacity covers recent demand plus
    a margin of the backlog."""

    def __init__(self, core: DVFSCore, table=None, margin: float = 1.2):
        super().__init__(table)
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        self.core = core
        self.margin = margin

    def choose(self, backlog: float, last_demand: float) -> int:
        needed = self.margin * last_demand + 0.5 * backlog
        for i, opp in enumerate(self.table):
            if self.core.capacity(opp) >= needed:
                return i
        return len(self.table) - 1


class UserFeedbackGovernor(Governor):
    """Stay slow until the backlog crosses the user's annoyance
    threshold; then jump to max until it drains — the paper's
    human-in-the-loop frequency control."""

    def __init__(self, core: DVFSCore, table=None,
                 annoyance_backlog: float = 6.0):
        super().__init__(table)
        if annoyance_backlog < 0:
            raise ValueError("threshold must be non-negative")
        self.core = core
        self.annoyance_backlog = annoyance_backlog
        self._boosting = False

    def choose(self, backlog: float, last_demand: float) -> int:
        if backlog > self.annoyance_backlog:
            self._boosting = True
        elif backlog < 0.25 * self.annoyance_backlog:
            # Hysteresis: stop boosting once the queue has mostly
            # drained (choose() sees post-arrival backlog, which is
            # rarely exactly zero).
            self._boosting = False
        if self._boosting:
            return len(self.table) - 1
        # Cruise slow: the user has not complained, so queued work is
        # acceptable — run the most efficient point that keeps up with
        # *half* the recent demand and let the backlog absorb bursts.
        for i, opp in enumerate(self.table):
            if self.core.capacity(opp) >= 0.5 * last_demand:
                return i
        return len(self.table) - 1


@dataclass
class DVFSResult:
    energy_j: float
    served_work: float
    violations: int  # intervals with backlog above the QoS bound
    intervals: int
    mean_backlog: float

    @property
    def energy_per_work_j(self) -> float:
        if self.served_work == 0:
            return float("inf")
        return self.energy_j / self.served_work

    @property
    def violation_rate(self) -> float:
        return self.violations / self.intervals if self.intervals else float("nan")


def simulate_governor(
    governor: Governor,
    core: DVFSCore,
    demand: np.ndarray,
    interval_s: float = 0.01,
    qos_backlog_bound: float = 3.0,
) -> DVFSResult:
    """Serve a demand trace (work units per interval) under a governor."""
    demand_arr = np.asarray(demand, dtype=float)
    if np.any(demand_arr < 0):
        raise ValueError("demand must be non-negative")
    if interval_s <= 0 or qos_backlog_bound < 0:
        raise ValueError("bad interval or QoS bound")
    backlog = 0.0
    energy = 0.0
    served = 0.0
    violations = 0
    backlog_sum = 0.0
    last_demand = 0.0
    for d in demand_arr:
        backlog += float(d)
        idx = governor.choose(backlog, last_demand)
        opp = governor.table[idx]
        cap = core.capacity(opp)
        work = min(backlog, cap)
        backlog -= work
        served += work
        busy_frac = work / cap if cap > 0 else 0.0
        energy += (
            core.active_power_w(opp) * busy_frac
            + core.idle_power_w * (1.0 - busy_frac)
        ) * interval_s
        if backlog > qos_backlog_bound:
            violations += 1
        backlog_sum += backlog
        last_demand = float(d)
    return DVFSResult(
        energy_j=energy,
        served_work=served,
        violations=violations,
        intervals=len(demand_arr),
        mean_backlog=backlog_sum / max(len(demand_arr), 1),
    )


def bursty_demand(
    n: int,
    mean: float = 0.6,
    burst_prob: float = 0.05,
    burst_size: float = 4.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Mobile-style demand: light background load plus UI bursts."""
    if n < 0 or mean < 0 or burst_size < 0:
        raise ValueError("bad demand parameters")
    if not 0.0 <= burst_prob <= 1.0:
        raise ValueError("burst_prob must be in [0, 1]")
    gen = resolve_rng(rng)
    base = gen.exponential(mean, size=n)
    bursts = (gen.random(n) < burst_prob) * gen.exponential(
        burst_size, size=n
    )
    return base + bursts


def governor_comparison(
    n_intervals: int = 5000, rng: RngLike = 0
) -> dict[str, dict[str, float]]:
    """Energy vs QoS for the three governors on the same demand trace."""
    core = DVFSCore()
    demand = bursty_demand(n_intervals, rng=rng)
    governors = {
        "race_to_idle": RaceToIdle(),
        "ondemand": OnDemandGovernor(core),
        "user_feedback": UserFeedbackGovernor(core),
    }
    out = {}
    for name, gov in governors.items():
        res = simulate_governor(gov, core, demand)
        out[name] = {
            "energy_j": res.energy_j,
            "energy_per_work_j": res.energy_per_work_j,
            "violation_rate": res.violation_rate,
            "mean_backlog": res.mean_backlog,
        }
    return out
