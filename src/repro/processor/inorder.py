"""In-order scalar pipeline model.

The "simple computational cores" the paper's many-core agenda calls for
(Section 2.2, "streamlined many-core architectures").  The model is
trace-driven but first-order: CPI = 1 + stall cycles from multi-cycle
execution dependences, load-use delay, branch mispredictions, and cache
misses.  It deliberately ignores structural hazards beyond a single
issue slot — the canonical 5-stage abstraction.

Outputs both performance (CPI) and an energy ledger (per-instruction
front-end/execute/memory charges), so the same run feeds both columns of
the paper's energy-first comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.energy import EnergyLedger
from .branch import BranchPredictor, BimodalPredictor
from .isa import DEFAULT_LATENCIES, Instruction, Opcode


@dataclass(frozen=True)
class InOrderConfig:
    """Parameters of the scalar pipeline."""

    mispredict_penalty: int = 5
    load_use_penalty: int = 1
    miss_rate: float = 0.03  # fraction of memory ops missing the cache
    miss_penalty: int = 50
    energy_per_instr_j: float = 20e-12  # front-end + register file
    energy_per_alu_j: float = 5e-12
    energy_per_mem_j: float = 15e-12  # L1 access portion
    energy_per_miss_j: float = 200e-12

    def __post_init__(self) -> None:
        if self.mispredict_penalty < 0 or self.load_use_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError("miss_rate must be in [0, 1]")
        if self.miss_penalty < 0:
            raise ValueError("miss_penalty must be non-negative")
        if min(self.energy_per_instr_j, self.energy_per_alu_j,
               self.energy_per_mem_j, self.energy_per_miss_j) < 0:
            raise ValueError("energies must be non-negative")


@dataclass
class InOrderResult:
    """Outcome of one trace run."""

    instructions: int
    cycles: int
    stall_cycles_exec: int
    stall_cycles_branch: int
    stall_cycles_memory: int
    ledger: EnergyLedger = field(default_factory=EnergyLedger)

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return float("nan")
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        cpi = self.cpi
        return 1.0 / cpi if cpi > 0 else float("nan")

    @property
    def energy_per_instruction_j(self) -> float:
        if self.instructions == 0:
            return float("nan")
        return self.ledger.total() / self.instructions


class InOrderCore:
    """Trace-driven scalar in-order core.

    Deterministic given the trace and a (deterministic) miss schedule:
    cache misses are assigned by a counter-based fraction rather than
    random draws, so results are exactly reproducible and testable.
    A real cache model can be substituted by passing ``miss_flags``.
    """

    def __init__(
        self,
        config: InOrderConfig = InOrderConfig(),
        predictor: Optional[BranchPredictor] = None,
    ) -> None:
        self.config = config
        self.predictor = predictor if predictor is not None else BimodalPredictor()

    def run(
        self,
        trace: Sequence[Instruction],
        miss_flags: Optional[Sequence[bool]] = None,
    ) -> InOrderResult:
        """Execute ``trace``; ``miss_flags[i]`` marks memory ops that
        miss (aligned with the subsequence of memory instructions)."""
        cfg = self.config
        cycles = 0
        stall_exec = 0
        stall_branch = 0
        stall_mem = 0
        ledger = EnergyLedger()

        # Scoreboard: cycle at which each register's value is ready.
        ready = [0] * 32
        mem_op_index = 0
        miss_accumulator = 0.0

        for instr in trace:
            issue = cycles + 1  # one instruction per cycle baseline
            # RAW hazard: wait for sources.
            if instr.srcs:
                src_ready = max(ready[s] for s in instr.srcs)
                if src_ready > issue:
                    stall_exec += src_ready - issue
                    issue = src_ready
            latency = instr.latency(DEFAULT_LATENCIES)

            ledger.charge("frontend", cfg.energy_per_instr_j, ops=1)
            if instr.is_memory:
                ledger.charge("memory.l1", cfg.energy_per_mem_j)
                if miss_flags is not None:
                    missed = bool(miss_flags[mem_op_index])
                else:
                    miss_accumulator += cfg.miss_rate
                    missed = miss_accumulator >= 1.0
                    if missed:
                        miss_accumulator -= 1.0
                mem_op_index += 1
                if missed:
                    # Blocking cache: the in-order pipeline stalls for
                    # the full miss, not just dependents.
                    issue += cfg.miss_penalty
                    stall_mem += cfg.miss_penalty
                    ledger.charge("memory.miss", cfg.energy_per_miss_j)
                if instr.opcode is Opcode.LOAD:
                    latency += cfg.load_use_penalty
            else:
                ledger.charge("execute", cfg.energy_per_alu_j)

            if instr.is_branch:
                correct = self.predictor.update(
                    pc=instr.pc, taken=bool(instr.taken)
                )
                if not correct:
                    stall_branch += cfg.mispredict_penalty
                    issue += cfg.mispredict_penalty

            if instr.dst is not None:
                ready[instr.dst] = issue + latency - 1
            cycles = issue

        return InOrderResult(
            instructions=len(trace),
            cycles=cycles,
            stall_cycles_exec=stall_exec,
            stall_cycles_branch=stall_branch,
            stall_cycles_memory=stall_mem,
            ledger=ledger,
        )


def analytic_cpi(
    mix_load: float = 0.25,
    mix_store: float = 0.10,
    mix_branch: float = 0.15,
    miss_rate: float = 0.03,
    miss_penalty: float = 50.0,
    mispredict_rate: float = 0.08,
    mispredict_penalty: float = 5.0,
    base_cpi: float = 1.1,
) -> float:
    """Closed-form CPI: base + memory stalls + branch stalls.

    CPI = base
        + (f_mem * m * penalty_mem)
        + (f_branch * mp * penalty_branch)

    The standard back-of-envelope model; the trace-driven core should
    land near it, and tests cross-check the two.
    """
    for name, v in [
        ("mix_load", mix_load), ("mix_store", mix_store),
        ("mix_branch", mix_branch), ("miss_rate", miss_rate),
        ("mispredict_rate", mispredict_rate),
    ]:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    if base_cpi < 1.0:
        raise ValueError("base_cpi must be >= 1 for a scalar pipeline")
    if miss_penalty < 0 or mispredict_penalty < 0:
        raise ValueError("penalties must be non-negative")
    f_mem = mix_load + mix_store
    return (
        base_cpi
        + f_mem * miss_rate * miss_penalty
        + mix_branch * mispredict_rate * mispredict_penalty
    )
