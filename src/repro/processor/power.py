"""Core power/energy model tied to the technology node database.

Bridges the processor models to :mod:`repro.technology`: given a node
and a core description (transistor count, activity, frequency), produce
watts and joules-per-instruction, including the speculation overheads
(fetch/decode/predict/window) that make big OoO cores energy-expensive —
the quantitative half of the paper's "energy first" pivot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..technology.node import TechnologyNode, get_node


@dataclass(frozen=True)
class CoreDescriptor:
    """A core's physical footprint and microarchitectural class.

    ``overhead_fraction`` is the share of switched energy spent on
    *instruction delivery and speculation* (fetch, decode, rename,
    predict, wakeup/select) rather than useful execution — ~60-75% for
    an aggressive OoO core, ~25-40% for a simple in-order core
    (published breakdowns; e.g. Horowitz ISSCC'14 keynote numbers).
    """

    name: str
    transistors: float
    activity: float = 0.1
    overhead_fraction: float = 0.6
    ipc: float = 1.5

    def __post_init__(self) -> None:
        if self.transistors <= 0:
            raise ValueError("transistors must be positive")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if not 0.0 <= self.overhead_fraction < 1.0:
            raise ValueError("overhead_fraction must be in [0, 1)")
        if self.ipc <= 0:
            raise ValueError("ipc must be positive")


#: Representative cores (transistor counts are order-of-magnitude).
BIG_OOO_CORE = CoreDescriptor(
    name="big-ooo", transistors=250e6, activity=0.12,
    overhead_fraction=0.70, ipc=2.5,
)
LITTLE_INORDER_CORE = CoreDescriptor(
    name="little-inorder", transistors=25e6, activity=0.10,
    overhead_fraction=0.35, ipc=1.0,
)
MICROCONTROLLER_CORE = CoreDescriptor(
    name="microcontroller", transistors=0.5e6, activity=0.08,
    overhead_fraction=0.20, ipc=0.8,
)


@dataclass(frozen=True)
class CorePowerReport:
    """Power/energy figures for one core on one node."""

    frequency_hz: float
    dynamic_power_w: float
    leakage_power_w: float
    total_power_w: float
    instructions_per_second: float
    energy_per_instruction_j: float
    useful_energy_per_instruction_j: float

    @property
    def ops_per_watt(self) -> float:
        if self.total_power_w <= 0:
            return float("inf")
        return self.instructions_per_second / self.total_power_w


class CorePowerModel:
    """Evaluate a :class:`CoreDescriptor` on a :class:`TechnologyNode`."""

    def __init__(self, node: TechnologyNode | str) -> None:
        self.node = get_node(node) if isinstance(node, str) else node

    def evaluate(
        self,
        core: CoreDescriptor,
        frequency_hz: Optional[float] = None,
        vdd_v: Optional[float] = None,
    ) -> CorePowerReport:
        """Power/energy at ``frequency_hz`` (default node nominal).

        Voltage override scales dynamic power by (V/Vnom)^2 and
        leakage by (V/Vnom); callers pairing low V with high f are on
        their own (that's what the NTV model's error analysis is for).
        """
        node = self.node
        f = node.max_frequency_ghz() * 1e9 if frequency_hz is None else frequency_hz
        if f <= 0:
            raise ValueError("frequency must be positive")
        v_scale = 1.0
        leak_scale = 1.0
        if vdd_v is not None:
            if vdd_v <= 0:
                raise ValueError("vdd must be positive")
            v_scale = (vdd_v / node.vdd_v) ** 2
            leak_scale = vdd_v / node.vdd_v
        dyn = node.dynamic_power_w(core.transistors, f, core.activity) * v_scale
        leak = node.leakage_power_w(core.transistors) * leak_scale
        total = dyn + leak
        ips = core.ipc * f
        epi = total / ips if ips > 0 else float("inf")
        useful = epi * (1.0 - core.overhead_fraction)
        return CorePowerReport(
            frequency_hz=f,
            dynamic_power_w=dyn,
            leakage_power_w=leak,
            total_power_w=total,
            instructions_per_second=ips,
            energy_per_instruction_j=epi,
            useful_energy_per_instruction_j=useful,
        )

    def overhead_ratio(
        self, big: CoreDescriptor, little: CoreDescriptor
    ) -> float:
        """Energy-per-instruction ratio big/little at nominal frequency.

        The first-order argument for heterogeneous multicore: the same
        instruction costs several times more on the big core.
        """
        return (
            self.evaluate(big).energy_per_instruction_j
            / self.evaluate(little).energy_per_instruction_j
        )
