"""Branch predictors.

The ILP era the paper retires (Table 2) was built on speculation; its
energy cost is part of why "current hardware must try to glean [intent]
on its own ... at great energy expense" (Section 2.4).  These predictors
feed the in-order/out-of-order core models and the E21 agenda bench,
which charges prediction structures to the energy ledger.

Implemented: static, last-value, bimodal (2-bit counters), gshare
(global history xor PC), and a tournament chooser.  All share the
:class:`BranchPredictor` interface: ``predict(pc) -> bool`` then
``update(pc, taken)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class BranchPredictor(ABC):
    """Common predict/update interface; tracks its own accuracy."""

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def _train(self, pc: int, taken: bool) -> None:
        """Update internal state with the resolved outcome."""

    def update(self, pc: int, taken: bool) -> bool:
        """Score the last prediction for ``pc`` and train; returns
        whether the prediction was correct."""
        predicted = self.predict(pc)
        correct = predicted == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self._train(pc, taken)
        return correct

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return float("nan")
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0


class StaticPredictor(BranchPredictor):
    """Always predicts one direction (default: taken)."""

    def __init__(self, taken: bool = True) -> None:
        super().__init__()
        self._taken = taken

    def predict(self, pc: int) -> bool:
        return self._taken

    def _train(self, pc: int, taken: bool) -> None:
        pass


class LastValuePredictor(BranchPredictor):
    """Predicts each branch repeats its previous outcome (1-bit)."""

    def __init__(self, table_bits: int = 10) -> None:
        super().__init__()
        if table_bits < 1:
            raise ValueError("table_bits must be >= 1")
        self._mask = (1 << table_bits) - 1
        self._table = np.ones(1 << table_bits, dtype=bool)

    def predict(self, pc: int) -> bool:
        return bool(self._table[pc & self._mask])

    def _train(self, pc: int, taken: bool) -> None:
        self._table[pc & self._mask] = taken


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters — the classic baseline."""

    def __init__(self, table_bits: int = 10) -> None:
        super().__init__()
        if table_bits < 1:
            raise ValueError("table_bits must be >= 1")
        self._mask = (1 << table_bits) - 1
        # Counters start weakly taken (2 of 0..3).
        self._table = np.full(1 << table_bits, 2, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        return bool(self._table[pc & self._mask] >= 2)

    def _train(self, pc: int, taken: bool) -> None:
        idx = pc & self._mask
        if taken:
            self._table[idx] = min(3, self._table[idx] + 1)
        else:
            self._table[idx] = max(0, self._table[idx] - 1)


class GSharePredictor(BranchPredictor):
    """Global-history predictor: counters indexed by PC xor history."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        super().__init__()
        if table_bits < 1 or history_bits < 0:
            raise ValueError("bad gshare geometry")
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = np.full(1 << table_bits, 2, dtype=np.int8)

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return bool(self._table[self._index(pc)] >= 2)

    def _train(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        if taken:
            self._table[idx] = min(3, self._table[idx] + 1)
        else:
            self._table[idx] = max(0, self._table[idx] - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class TournamentPredictor(BranchPredictor):
    """Chooser between a local (bimodal) and global (gshare) component."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        super().__init__()
        self._local = BimodalPredictor(table_bits)
        self._global = GSharePredictor(table_bits, history_bits)
        self._mask = (1 << table_bits) - 1
        self._chooser = np.full(1 << table_bits, 2, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        use_global = self._chooser[pc & self._mask] >= 2
        return (
            self._global.predict(pc) if use_global else self._local.predict(pc)
        )

    def _train(self, pc: int, taken: bool) -> None:
        local_pred = self._local.predict(pc)
        global_pred = self._global.predict(pc)
        idx = pc & self._mask
        if local_pred != global_pred:
            if global_pred == taken:
                self._chooser[idx] = min(3, self._chooser[idx] + 1)
            else:
                self._chooser[idx] = max(0, self._chooser[idx] - 1)
        self._local._train(pc, taken)
        self._global._train(pc, taken)


@dataclass(frozen=True)
class PredictorEvaluation:
    """Accuracy of one predictor on one outcome stream."""

    name: str
    accuracy: float
    mpki: float  # mispredictions per thousand instructions


def evaluate_predictor(
    predictor: BranchPredictor,
    pcs: np.ndarray,
    outcomes: np.ndarray,
    instructions_per_branch: float = 6.0,
) -> PredictorEvaluation:
    """Run a (pc, outcome) stream through a predictor."""
    if len(pcs) != len(outcomes):
        raise ValueError("pcs and outcomes must have equal length")
    if instructions_per_branch <= 0:
        raise ValueError("instructions_per_branch must be positive")
    predictor.reset_stats()
    for pc, taken in zip(pcs, outcomes):
        predictor.update(int(pc), bool(taken))
    n = predictor.predictions
    mpki = (
        1000.0 * predictor.mispredictions / (n * instructions_per_branch)
        if n
        else float("nan")
    )
    return PredictorEvaluation(
        name=type(predictor).__name__,
        accuracy=predictor.accuracy,
        mpki=mpki,
    )
