"""Synthetic program/trace generation.

Real SPEC-style traces are unavailable offline, so core and memory models
run on synthetic traces with controlled statistics: instruction mix,
register dependency distance, branch bias/patterns, and memory address
locality.  These four knobs are what first-order CPI/ILP/cache behaviour
actually depends on, which is why limit studies (Wall, 1991) were framed
in exactly these terms.

Address streams come in the canonical flavors (sequential, strided,
random, Zipf-reuse) used by the cache and memory-energy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..core.rng import RngLike, resolve_rng
from .isa import NUM_REGISTERS, Instruction, Opcode


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of each instruction class; must sum to 1.

    Defaults are a generic integer-code mix (loads ~25%, branches ~15%),
    the textbook SPECint-like blend.
    """

    alu: float = 0.40
    mul: float = 0.03
    div: float = 0.01
    fpu: float = 0.05
    fma: float = 0.01
    load: float = 0.25
    store: float = 0.10
    branch: float = 0.15

    def __post_init__(self) -> None:
        total = (
            self.alu + self.mul + self.div + self.fpu + self.fma
            + self.load + self.store + self.branch
        )
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"mix must sum to 1, got {total}")
        if min(
            self.alu, self.mul, self.div, self.fpu, self.fma,
            self.load, self.store, self.branch,
        ) < 0:
            raise ValueError("mix fractions must be non-negative")

    def as_items(self) -> list[tuple[Opcode, float]]:
        return [
            (Opcode.ALU, self.alu),
            (Opcode.MUL, self.mul),
            (Opcode.DIV, self.div),
            (Opcode.FPU, self.fpu),
            (Opcode.FMA, self.fma),
            (Opcode.LOAD, self.load),
            (Opcode.STORE, self.store),
            (Opcode.BRANCH, self.branch),
        ]


#: Compute-heavy mix for FP kernels (high FMA, low branch).
FP_KERNEL_MIX = InstructionMix(
    alu=0.20, mul=0.02, div=0.01, fpu=0.15, fma=0.25,
    load=0.25, store=0.10, branch=0.02,
)

#: Pointer-chasing / control-heavy mix (big-data graph traversal).
POINTER_CHASE_MIX = InstructionMix(
    alu=0.30, mul=0.01, div=0.00, fpu=0.00, fma=0.00,
    load=0.40, store=0.09, branch=0.20,
)


def generate_trace(
    n: int,
    mix: InstructionMix = InstructionMix(),
    dependency_distance: float = 4.0,
    branch_taken_bias: float = 0.6,
    address_stream: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> list[Instruction]:
    """Generate a synthetic dynamic trace of ``n`` instructions.

    ``dependency_distance`` is the mean geometric gap (in instructions)
    between a value's producer and consumer; small values serialize the
    code, large values expose ILP.  Source registers are chosen to point
    at the destinations of recent instructions accordingly.

    ``address_stream`` supplies load/store addresses (cycled if shorter
    than needed); default is a Zipf-reuse stream.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if dependency_distance <= 0:
        raise ValueError("dependency_distance must be positive")
    if not 0.0 <= branch_taken_bias <= 1.0:
        raise ValueError("branch_taken_bias must be in [0, 1]")
    gen = resolve_rng(rng)

    opcodes, probs = zip(*[(op, p) for op, p in mix.as_items()])
    probs_arr = np.asarray(probs)
    probs_arr = probs_arr / probs_arr.sum()
    choices = gen.choice(len(opcodes), size=n, p=probs_arr)

    if address_stream is None:
        address_stream = zipf_addresses(max(n, 1), rng=gen)
    addr_idx = 0

    # Ring of recent destination registers for dependency construction.
    recent_dst: list[int] = []
    trace: list[Instruction] = []
    p_geom = min(1.0, 1.0 / dependency_distance)
    # Static-branch pool: dynamic branches map onto a small set of
    # "static" PCs (loop/if sites) so predictors can learn per-site bias.
    n_static_branches = 32
    branch_bias_per_site = gen.random(n_static_branches) * 0.6 + 0.3

    for i in range(n):
        opcode = opcodes[choices[i]]
        srcs: tuple[int, ...] = ()
        if opcode is not Opcode.NOP and recent_dst:
            n_srcs = 2 if opcode in (Opcode.ALU, Opcode.MUL, Opcode.FPU) else (
                3 if opcode is Opcode.FMA else 1
            )
            picked = []
            for _ in range(n_srcs):
                back = int(gen.geometric(p_geom))
                if back <= len(recent_dst):
                    picked.append(recent_dst[-back])
                else:
                    picked.append(int(gen.integers(NUM_REGISTERS)))
            srcs = tuple(picked)

        dst = None
        address = None
        taken = None
        if opcode in (Opcode.ALU, Opcode.MUL, Opcode.DIV, Opcode.FPU,
                      Opcode.FMA, Opcode.LOAD):
            dst = int(gen.integers(NUM_REGISTERS))
        if opcode in (Opcode.LOAD, Opcode.STORE):
            address = int(address_stream[addr_idx % len(address_stream)])
            addr_idx += 1
        pc = i * 4
        if opcode is Opcode.BRANCH:
            site = int(gen.integers(n_static_branches))
            pc = site * 4
            # Mix the global bias with the per-site bias so streams have
            # both predictable sites and global skew.
            p_taken = 0.5 * branch_taken_bias + 0.5 * branch_bias_per_site[site]
            taken = bool(gen.random() < p_taken)

        trace.append(
            Instruction(opcode=opcode, dst=dst, srcs=srcs,
                        address=address, taken=taken, pc=pc)
        )
        if dst is not None:
            recent_dst.append(dst)
            if len(recent_dst) > 64:
                recent_dst.pop(0)
    return trace


# ---------------------------------------------------------------------------
# Address streams
# ---------------------------------------------------------------------------


def sequential_addresses(
    n: int, start: int = 0, stride: int = 8
) -> np.ndarray:
    """Unit-stride streaming access (STREAM-like), byte addresses."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if stride <= 0:
        raise ValueError("stride must be positive")
    return start + stride * np.arange(n, dtype=np.int64)


def strided_addresses(
    n: int, stride_bytes: int, start: int = 0
) -> np.ndarray:
    """Fixed-stride access (column-major matrix walk)."""
    if stride_bytes <= 0:
        raise ValueError("stride must be positive")
    return start + stride_bytes * np.arange(n, dtype=np.int64)


def random_addresses(
    n: int,
    footprint_bytes: int = 1 << 24,
    align: int = 8,
    rng: RngLike = None,
) -> np.ndarray:
    """Uniform random access over a footprint (worst-case locality)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if footprint_bytes <= 0 or align <= 0:
        raise ValueError("footprint and align must be positive")
    gen = resolve_rng(rng)
    slots = max(footprint_bytes // align, 1)
    return (gen.integers(0, slots, size=n) * align).astype(np.int64)


def zipf_addresses(
    n: int,
    unique: int = 4096,
    exponent: float = 1.2,
    line_bytes: int = 64,
    rng: RngLike = None,
) -> np.ndarray:
    """Zipf-distributed reuse over ``unique`` cache lines.

    The canonical model for skewed reuse (hot data structures); gives
    realistic cache hit-rate curves.  Addresses are line-aligned and
    hot lines are scattered across the address space (hashed) so that
    popularity does not correlate with adjacency.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if unique <= 0 or line_bytes <= 0:
        raise ValueError("unique and line_bytes must be positive")
    if exponent <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    gen = resolve_rng(rng)
    ranks = gen.zipf(exponent, size=n)
    ranks = np.minimum(ranks, unique) - 1  # 0-based, clamped
    # Hash rank -> line id so popular lines are not spatially adjacent.
    scattered = (ranks * 2654435761) % unique
    return (scattered * line_bytes).astype(np.int64)


def working_set_addresses(
    n: int,
    working_set_bytes: int,
    line_bytes: int = 64,
    locality: float = 0.9,
    rng: RngLike = None,
) -> np.ndarray:
    """Two-level locality: fraction ``locality`` of accesses hit a hot
    eighth of the working set, the rest wander the whole set."""
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if working_set_bytes <= 0 or line_bytes <= 0:
        raise ValueError("sizes must be positive")
    gen = resolve_rng(rng)
    lines = max(working_set_bytes // line_bytes, 8)
    hot_lines = max(lines // 8, 1)
    hot = gen.random(n) < locality
    ids = np.where(
        hot,
        gen.integers(0, hot_lines, size=n),
        gen.integers(0, lines, size=n),
    )
    return (ids * line_bytes).astype(np.int64)


def branch_outcome_stream(
    n: int,
    bias: float = 0.9,
    pattern: Optional[Iterable[bool]] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Branch outcomes: biased Bernoulli, or a repeating pattern
    (e.g. loop branches: ``[True]*k + [False]``)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if pattern is not None:
        base = np.array(list(pattern), dtype=bool)
        if base.size == 0:
            raise ValueError("pattern must be non-empty")
        reps = int(np.ceil(n / base.size))
        return np.tile(base, reps)[:n]
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    gen = resolve_rng(rng)
    return gen.random(n) < bias
