"""Pollack's rule and core sizing economics.

Pollack's observation — single-core performance grows roughly as the
square root of its area/complexity — underpins both the Hill-Marty
multicore models (:mod:`repro.parallel.hillmarty`) and the paper's call
for "simpler, low-power cores" (Section 2.2): doubling a core's area
buys ~41% more speed but ~100% more power, so under a power cap many
small cores beat one big one whenever parallelism exists.
"""

from __future__ import annotations

import numpy as np


def core_performance(area: np.ndarray | float, exponent: float = 0.5) -> np.ndarray | float:
    """Relative single-thread performance of a core of relative ``area``.

    Normalized so area=1 gives performance=1 ("base core equivalent",
    Hill-Marty's BCE).
    """
    area_arr = np.asarray(area, dtype=float)
    if np.any(area_arr <= 0):
        raise ValueError("area must be positive")
    if not 0 < exponent <= 1:
        raise ValueError("Pollack exponent must be in (0, 1]")
    result = area_arr**exponent
    return float(result) if np.isscalar(area) else result


def core_power(
    area: np.ndarray | float,
    dynamic_fraction: float = 0.7,
    dynamic_exponent: float = 1.0,
    leakage_exponent: float = 1.0,
) -> np.ndarray | float:
    """Relative power of a core of relative ``area``.

    Dynamic power tracks switched capacitance (~area); leakage tracks
    total transistor count (~area).  Exponents exposed for sensitivity
    studies (e.g. dynamic_exponent > 1 when bigger cores also clock
    higher).
    """
    area_arr = np.asarray(area, dtype=float)
    if np.any(area_arr <= 0):
        raise ValueError("area must be positive")
    if not 0.0 <= dynamic_fraction <= 1.0:
        raise ValueError("dynamic_fraction must be in [0, 1]")
    result = (
        dynamic_fraction * area_arr**dynamic_exponent
        + (1.0 - dynamic_fraction) * area_arr**leakage_exponent
    )
    return float(result) if np.isscalar(area) else result


def efficiency_vs_area(
    areas: np.ndarray, exponent: float = 0.5
) -> dict[str, np.ndarray]:
    """Performance, power, and perf/W across core sizes.

    perf/W ~ area^(exponent - 1): strictly decreasing for exponent < 1 —
    the quantitative case for small cores.
    """
    areas = np.asarray(areas, dtype=float)
    perf = core_performance(areas, exponent)
    power = core_power(areas)
    return {
        "area": areas,
        "performance": np.asarray(perf),
        "power": np.asarray(power),
        "perf_per_watt": np.asarray(perf) / np.asarray(power),
    }


def equal_power_core_count(big_core_area: float) -> float:
    """Number of base cores that fit in one big core's power budget.

    A base core has unit power, so the count equals the big core's
    relative power (~its area).
    """
    if big_core_area <= 0:
        raise ValueError("area must be positive")
    return float(core_power(big_core_area))


def throughput_ratio_many_small_vs_one_big(
    big_core_area: float,
    parallel_fraction: float = 1.0,
    pollack_exponent: float = 0.5,
) -> float:
    """Throughput of area-equivalent small cores over one big core.

    With area A spent on one big core vs A unit cores: big does A^e,
    small do f*A + (1-f)*1 work-rate under Amdahl with serial work on a
    unit core.  Ratio > 1 means the multicore wins.
    """
    if big_core_area < 1:
        raise ValueError("big core must be at least one base core")
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel_fraction must be in [0, 1]")
    big = core_performance(big_core_area, pollack_exponent)
    # Amdahl on n unit cores (speedup relative to one unit core):
    n = big_core_area
    f = parallel_fraction
    small = 1.0 / ((1.0 - f) + f / n) if n > 0 else 1.0
    return small / big
