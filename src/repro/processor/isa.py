"""A tiny RISC-style ISA for trace-driven core models.

The paper's Table 2 contrasts "performance through software-invisible
ILP" (20th century) with the energy-first era.  To *measure* that
contrast we need programs; this module defines the minimal instruction
vocabulary the trace generator (:mod:`repro.processor.program`) emits and
the core models consume.

Instructions are value objects; traces are lists or structured NumPy
arrays of them.  Latencies are representative single-issue latencies in
cycles and can be overridden per core model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class Opcode(Enum):
    """Instruction classes, coarse enough for first-order CPI/ILP models."""

    ALU = "alu"  # integer add/sub/logic
    MUL = "mul"  # integer multiply
    DIV = "div"  # integer divide
    FPU = "fpu"  # floating add/mul
    FMA = "fma"  # fused multiply-add
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


#: Default execution latencies [cycles].
DEFAULT_LATENCIES = {
    Opcode.ALU: 1,
    Opcode.MUL: 3,
    Opcode.DIV: 20,
    Opcode.FPU: 4,
    Opcode.FMA: 5,
    Opcode.LOAD: 2,  # L1-hit latency; misses modeled by the memory system
    Opcode.STORE: 1,
    Opcode.BRANCH: 1,
    Opcode.NOP: 1,
}

#: Architectural register count for generated traces.
NUM_REGISTERS = 32


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction in a trace.

    ``dst`` is None for stores/branches/nops.  ``address`` is the
    memory address for loads/stores (None otherwise).  ``taken`` is the
    branch outcome (None for non-branches).
    """

    opcode: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    address: Optional[int] = None
    taken: Optional[bool] = None
    pc: int = 0

    def __post_init__(self) -> None:
        if self.dst is not None and not 0 <= self.dst < NUM_REGISTERS:
            raise ValueError(f"dst register {self.dst} out of range")
        for src in self.srcs:
            if not 0 <= src < NUM_REGISTERS:
                raise ValueError(f"src register {src} out of range")
        if self.opcode in (Opcode.LOAD, Opcode.STORE) and self.address is None:
            raise ValueError(f"{self.opcode.value} requires an address")
        if self.opcode is Opcode.BRANCH and self.taken is None:
            raise ValueError("branch requires a taken outcome")
        if self.pc < 0:
            raise ValueError("pc must be non-negative")

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRANCH

    def latency(self, table: Optional[dict] = None) -> int:
        """Execution latency under ``table`` (default table if None)."""
        lookup = DEFAULT_LATENCIES if table is None else table
        return lookup[self.opcode]


def validate_trace(trace) -> int:
    """Cheap structural validation of a trace; returns its length."""
    n = 0
    for instr in trace:
        if not isinstance(instr, Instruction):
            raise TypeError(
                f"trace element {n} is {type(instr).__name__}, "
                "expected Instruction"
            )
        n += 1
    return n
