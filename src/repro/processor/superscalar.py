"""Out-of-order / ILP limit study (paper Table 2, left column).

"Performance through software-invisible instruction level parallelism"
is the 20th-century strategy the paper retires.  This module quantifies
why: a classic Wall-style limit study.  Instructions are scheduled by
dataflow within a finite instruction window and issue width; plotting
achieved IPC against window size exposes the diminishing returns that,
combined with the superlinear energy cost of bigger windows, ended the
ILP era.

The scheduler is exact for the abstraction: each instruction starts at
``max(ready(srcs), fetch_constraint)`` subject to at most ``width``
issues per cycle, with branch mispredictions flushing the window edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .branch import BranchPredictor
from .isa import DEFAULT_LATENCIES, Instruction


@dataclass(frozen=True)
class WindowConfig:
    """Out-of-order engine geometry."""

    window: int = 64  # in-flight instruction limit
    width: int = 4  # issue width per cycle
    mispredict_penalty: int = 10
    miss_rate: float = 0.0  # optional memory-system coupling
    miss_penalty: int = 50

    def __post_init__(self) -> None:
        if self.window < 1 or self.width < 1:
            raise ValueError("window and width must be >= 1")
        if self.mispredict_penalty < 0 or self.miss_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError("miss_rate must be in [0, 1]")


@dataclass
class ILPResult:
    instructions: int
    cycles: float

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return float("nan")
        return self.instructions / self.cycles


def schedule_trace(
    trace: Sequence[Instruction],
    config: WindowConfig = WindowConfig(),
    predictor: Optional[BranchPredictor] = None,
) -> ILPResult:
    """Dataflow-schedule ``trace`` through a finite window.

    Algorithm (single pass, O(n * srcs)):

    * ``reg_ready[r]`` — cycle register r's value is available.
    * ``issue[i] = max(dep_ready, window_stall, fetch_serialization)``;
      the window constraint means instruction i cannot issue until
      instruction ``i - window`` has completed (simplified ROB drain),
      and the width constraint serializes fetch at ``width``/cycle.
    * Branch mispredictions (scored by the optional predictor; without
      one, every branch with ``taken`` toggled... none, i.e. perfect
      speculation) add a fetch bubble after the branch resolves.
    * Memory misses (deterministic fraction, as in the in-order model)
      extend load latency.
    """
    if predictor is None and config.miss_rate == 0.0:
        pass  # pure ILP limit study
    n = len(trace)
    if n == 0:
        return ILPResult(0, 0.0)

    reg_ready = np.zeros(32, dtype=np.int64)
    completion = np.zeros(n, dtype=np.int64)
    fetch_available = 0.0  # earliest fetch cycle for next instruction
    miss_accumulator = 0.0
    next_fetch_block = 0.0

    for i, instr in enumerate(trace):
        # Width: instruction i cannot fetch before i/width cycles.
        fetch_cycle = max(next_fetch_block, i / config.width)
        # Window: cannot dispatch until instr i-window completed.
        if i >= config.window:
            fetch_cycle = max(fetch_cycle, float(completion[i - config.window]))

        dep_ready = 0.0
        if instr.srcs:
            dep_ready = float(max(reg_ready[s] for s in instr.srcs))
        start = max(fetch_cycle, dep_ready)

        latency = instr.latency(DEFAULT_LATENCIES)
        if instr.is_memory and config.miss_rate > 0.0:
            miss_accumulator += config.miss_rate
            if miss_accumulator >= 1.0:
                miss_accumulator -= 1.0
                latency += config.miss_penalty

        done = start + latency
        completion[i] = int(done)
        if instr.dst is not None:
            reg_ready[instr.dst] = int(done)

        if instr.is_branch and predictor is not None:
            correct = predictor.update(pc=instr.pc, taken=bool(instr.taken))
            if not correct:
                # Fetch stalls until the branch resolves + redirect.
                next_fetch_block = done + config.mispredict_penalty

    cycles = float(completion.max())
    return ILPResult(instructions=n, cycles=cycles)


def ilp_vs_window(
    trace: Sequence[Instruction],
    windows: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512),
    width: Optional[int] = None,
    predictor_factory=None,
) -> dict[str, np.ndarray]:
    """IPC across window sizes — the diminishing-returns curve.

    ``width`` defaults to the window size (pure dataflow limit);
    ``predictor_factory`` (if given) builds a fresh predictor per point
    so history does not leak between runs.
    """
    if not windows:
        raise ValueError("windows must be non-empty")
    ipcs = []
    for w in windows:
        cfg = WindowConfig(window=w, width=width if width else w)
        pred = predictor_factory() if predictor_factory else None
        ipcs.append(schedule_trace(trace, cfg, pred).ipc)
    return {
        "window": np.array(windows, dtype=float),
        "ipc": np.array(ipcs),
    }


def marginal_ipc_gain(curve: dict[str, np.ndarray]) -> np.ndarray:
    """Relative IPC gain per window doubling; the ILP-era death
    certificate is this series tending to ~1.0."""
    ipc = curve["ipc"]
    if len(ipc) < 2:
        raise ValueError("need at least two points")
    return ipc[1:] / ipc[:-1]


def window_energy_cost(
    window: int,
    base_energy_per_instr_j: float = 20e-12,
    wakeup_exponent: float = 1.5,
    reference_window: int = 32,
) -> float:
    """Energy per instruction as a function of window size.

    Wakeup/select and register-file ports scale superlinearly with
    window size; ``E(w) = E0 * (w / w_ref)^k`` with k ~ 1.5 is the
    standard first-order fit.  Combined with the flattening IPC curve
    this yields the energy-inefficiency of deep speculation that the
    paper's Table 2 invokes.
    """
    if window < 1 or reference_window < 1:
        raise ValueError("window sizes must be >= 1")
    if base_energy_per_instr_j < 0:
        raise ValueError("energy must be non-negative")
    if wakeup_exponent < 0:
        raise ValueError("exponent must be non-negative")
    return base_energy_per_instr_j * (window / reference_window) ** wakeup_exponent
