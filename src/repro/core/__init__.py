"""Core substrate: simulation kernel, energy accounting, design-space tools.

These are the shared primitives every paper-facing model builds on:

* :mod:`repro.core.units` — SI constants plus the paper's platform
  power/throughput targets.
* :mod:`repro.core.rng` — seeded, stream-splitting RNG policy.
* :mod:`repro.core.events` — deterministic discrete-event kernel, the
  single simulation substrate every event-driven model runs on.
* :mod:`repro.core.macro` / :mod:`repro.core.fastpath` — macro-event
  batch twins and the guarded trace-JIT policy behind the kernel's
  fast-path drain (``REPRO_FASTPATH``).
* :mod:`repro.core.instrument` — counters/gauges/quantile histograms and
  trace sinks threaded through the kernel and every migrated simulator.
* :mod:`repro.core.energy` — hierarchical energy ledger ("energy first").
* :mod:`repro.core.design` / :mod:`repro.core.dse` — design points,
  Pareto frontiers, and sweep drivers.
* :mod:`repro.core.agenda` — the full-system, energy-first design-space
  model that ties the substrates together (the paper's agenda rendered
  executable).
"""

from .design import (
    DesignPoint,
    Direction,
    Metrics,
    Objective,
    best_under_budget,
    dominated_fraction,
    knee_point,
    pareto_front,
    pareto_mask,
)
from .dse import (
    ContinuousParam,
    DiscreteParam,
    Explorer,
    SweepResult,
    grid_configs,
    local_search,
    random_configs,
)
from .energy import (
    EnergyCost,
    EnergyLedger,
    combine_ledgers,
    energy_delay_product,
    energy_delay_squared,
)
from .events import (
    SNAPSHOT_VERSION,
    CancelToken,
    Checkpointable,
    Event,
    FunctionCheckpoint,
    KernelSnapshot,
    PeriodicSource,
    SimModel,
    SimStats,
    Simulator,
    trace_events,
)
from .fastpath import FastPathStats
from .instrument import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceSink,
    default_registry,
    disable_session,
    enable_session,
)
from .macro import MacroRun, as_macro
from .rng import DEFAULT_SEED, resolve_rng, spawn_rngs, stream_for

__all__ = [
    "CancelToken",
    "Checkpointable",
    "ContinuousParam",
    "Counter",
    "DEFAULT_SEED",
    "DesignPoint",
    "Direction",
    "DiscreteParam",
    "EnergyCost",
    "EnergyLedger",
    "Event",
    "Explorer",
    "FastPathStats",
    "FunctionCheckpoint",
    "Gauge",
    "Histogram",
    "KernelSnapshot",
    "MacroRun",
    "Metrics",
    "MetricsRegistry",
    "Objective",
    "PeriodicSource",
    "SNAPSHOT_VERSION",
    "SimModel",
    "SimStats",
    "Simulator",
    "SweepResult",
    "TraceSink",
    "as_macro",
    "best_under_budget",
    "combine_ledgers",
    "default_registry",
    "disable_session",
    "dominated_fraction",
    "enable_session",
    "energy_delay_product",
    "energy_delay_squared",
    "grid_configs",
    "knee_point",
    "local_search",
    "pareto_front",
    "pareto_mask",
    "random_configs",
    "resolve_rng",
    "spawn_rngs",
    "stream_for",
    "trace_events",
]
