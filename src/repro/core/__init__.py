"""Core substrate: simulation kernel, energy accounting, design-space tools.

These are the shared primitives every paper-facing model builds on:

* :mod:`repro.core.units` — SI constants plus the paper's platform
  power/throughput targets.
* :mod:`repro.core.rng` — seeded, stream-splitting RNG policy.
* :mod:`repro.core.events` — deterministic discrete-event kernel.
* :mod:`repro.core.energy` — hierarchical energy ledger ("energy first").
* :mod:`repro.core.design` / :mod:`repro.core.dse` — design points,
  Pareto frontiers, and sweep drivers.
* :mod:`repro.core.agenda` — the full-system, energy-first design-space
  model that ties the substrates together (the paper's agenda rendered
  executable).
"""

from .design import (
    DesignPoint,
    Direction,
    Metrics,
    Objective,
    best_under_budget,
    dominated_fraction,
    knee_point,
    pareto_front,
    pareto_mask,
)
from .dse import (
    ContinuousParam,
    DiscreteParam,
    Explorer,
    SweepResult,
    grid_configs,
    local_search,
    random_configs,
)
from .energy import (
    EnergyCost,
    EnergyLedger,
    combine_ledgers,
    energy_delay_product,
    energy_delay_squared,
)
from .events import CancelToken, Event, PeriodicSource, SimStats, Simulator
from .rng import DEFAULT_SEED, resolve_rng, spawn_rngs, stream_for

__all__ = [
    "CancelToken",
    "ContinuousParam",
    "DEFAULT_SEED",
    "DesignPoint",
    "Direction",
    "DiscreteParam",
    "EnergyCost",
    "EnergyLedger",
    "Event",
    "Explorer",
    "Metrics",
    "Objective",
    "PeriodicSource",
    "SimStats",
    "Simulator",
    "SweepResult",
    "best_under_budget",
    "combine_ledgers",
    "dominated_fraction",
    "energy_delay_product",
    "energy_delay_squared",
    "grid_configs",
    "knee_point",
    "local_search",
    "pareto_front",
    "pareto_mask",
    "random_configs",
    "resolve_rng",
    "spawn_rngs",
    "stream_for",
]
