"""Guarded kernel fast paths: macro-batch dispatch + trace-JIT (PR8).

This module holds the policy half of the kernel's fast-path layer; the
mechanism (run detection, guard checks, the drain-loop gate) lives in
``events.Simulator``.  Two fast paths share one executor protocol:

* **macro-events** — a handler author supplied a batch twin via
  :func:`repro.core.macro.as_macro`; :func:`adapt_macro` wraps it into
  an executor.
* **trace-JIT** — no batch twin exists, but the drain keeps meeting
  long homogeneous runs of one handler.  :class:`TraceRecorder` decides
  when the handler is *hot*; :func:`synthesize` then builds a guarded
  specialized executor: a tight loop over the span that re-checks, per
  event, (a) handler identity, (b) cancellation quiescence (a non-empty
  cancel log means some pending event somewhere was cancelled — the
  general path must purge), (c) heap emptiness (a callback scheduled
  out-of-order work that may interleave), and (d) the deopt epoch (an
  observer arrived mid-batch: probe added, tracer attached, fault
  injector armed).  Any guard failure aborts the loop cleanly; the
  events already executed are committed and everything after resumes on
  the general path — the speculate/commit/abort shape of trace-based
  speculation, with the commit unit being a single event.

Executor protocol
-----------------
``executor(sim, lane, pos, end) -> consumed`` executes some prefix of
``lane[pos:end]`` (a homogeneous, cancellation-free span the kernel
already validated) and returns how many entries it consumed.  The
kernel commits clock/stats for exactly that prefix.  Synthesized
executors additionally write their progress into ``sim._fp_prog[0]``
(a one-cell list) from a ``finally`` so that an exception escaping a
callback mid-batch still yields exact accounting; author batches are
atomic instead (an exception means nothing was consumed).

Mode selection
--------------
``REPRO_FASTPATH`` ∈ ``off`` | ``auto`` | ``on`` (default ``auto``),
read once per :class:`~repro.core.events.Simulator` construction and
overridable per instance (``Simulator(fastpath=...)`` /
``set_fastpath``).  ``off`` is the escape hatch: zero fast-path
bookkeeping, the PR3 drain byte-for-byte.  ``on`` forces immediate
trace specialization (no hotness warmup) — the golden determinism
suite runs all three modes and pins identical executed streams.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict

from .macro import MacroRun

__all__ = [
    "ENV_VAR",
    "MODES",
    "FastPathStats",
    "TraceRecorder",
    "adapt_macro",
    "resolve_mode",
    "synthesize",
]

ENV_VAR = "REPRO_FASTPATH"
MODES = ("off", "auto", "on")

#: Smallest remaining span worth a batch attempt: below this the
#: per-attempt overhead (record lookup + guard checks) exceeds the
#: dispatch saved.
MIN_RUN = 16
#: Events to drain generally before re-attempting after a declined or
#: empty attempt — bounds attempt overhead on self-chaining handlers
#: whose run record grows one entry ahead of the cursor forever.
RETRY_BACKOFF = 64
#: auto-mode hotness: a single span this long is hot immediately …
TRACE_HOT_RUN = 4096
#: … or the same handler presenting ≥ MIN_RUN spans this many times.
TRACE_HOT_COUNT = 3


def resolve_mode(explicit: "str | None" = None) -> str:
    """Validated fast-path mode: ``explicit`` if given, else ``$REPRO_FASTPATH``,
    else ``auto``."""
    raw = explicit if explicit is not None else os.environ.get(ENV_VAR, "auto")
    mode = str(raw).strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"fastpath mode must be one of {MODES}, got {raw!r}"
            f" (set {ENV_VAR} or Simulator(fastpath=...))"
        )
    return mode


@dataclass
class FastPathStats:
    """Counters describing fast-path behavior (``sim.fastpath_stats``).

    ``batches``/``batched_events`` count committed macro executions;
    ``aborts`` counts batches that stopped early (guard failure or
    hazard horizon — the tail ran on the general path); ``deopts``
    counts attempts refused up front because an observer or pending
    cancellation made batching unsafe; ``declines`` counts spans with
    neither a batch twin nor trace heat.
    """

    batches: int = 0
    batched_events: int = 0
    traces_installed: int = 0
    aborts: int = 0
    deopts: int = 0
    declines: int = 0


class TraceRecorder:
    """Watches the drain loop's run attempts and declares handlers hot.

    Per-simulator (a ``restore()`` resets it — restored queues replay on
    the general path until re-proven hot).  Hotness in ``auto`` mode:
    one span ≥ :data:`TRACE_HOT_RUN`, or :data:`TRACE_HOT_COUNT`
    sightings of qualifying spans.  ``on`` mode skips the warmup.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[Any, int] = {}

    def hot(self, cb: Callable, span: int, mode: str) -> bool:
        if mode == "on":
            return True
        if span >= TRACE_HOT_RUN:
            return True
        count = self._counts.get(cb, 0) + 1
        if count >= TRACE_HOT_COUNT:
            self._counts.pop(cb, None)
            return True
        if len(self._counts) > 512:  # bound: callbacks are often closures
            self._counts.clear()
        self._counts[cb] = count
        return False

    def reset(self) -> None:
        self._counts.clear()


def adapt_macro(cb: Callable, batch: Callable) -> Callable:
    """Executor wrapping an author-supplied macro batch twin.

    The batch sees a :class:`MacroRun` view (no copying) and is trusted
    to be atomic-or-exact per the contract in ``repro.core.macro``.
    """

    def _exec(sim, lane: list, pos: int, end: int, _batch=batch) -> int:
        consumed = _batch(sim, MacroRun(lane, pos, end))
        return end - pos if consumed is None else consumed

    return _exec


def synthesize(cb: Callable) -> Callable:
    """Build a trace-specialized executor for the scalar handler ``cb``.

    The loop commits one event at a time, so any guard failure —
    handler mismatch, a cancellation landing anywhere, out-of-order
    work appearing in the heap, an observer arriving (epoch bump) —
    simply stops the loop with everything executed so far committed,
    and the kernel's general path takes over at the next entry.
    Progress is mirrored into ``sim._fp_prog`` from ``finally`` so a
    raising callback still gets exact executed-count accounting.
    """

    def _exec(sim, lane: list, pos: int, end: int, _cb=cb) -> int:
        heap = sim._heap
        log = sim._cancel_log
        epoch = sim._fp_epoch
        prog = sim._fp_prog
        n = 0
        try:
            for i in range(pos, end):
                entry = lane[i]
                if entry[3] is not _cb or log:
                    break
                sim._now = entry[0]
                _cb(sim, entry[4])
                n += 1
                if heap or sim._fp_epoch != epoch:
                    break
        finally:
            prog[0] = n
        return n

    return _exec
