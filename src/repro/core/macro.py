"""Macro-events: batch execution of homogeneous event runs (PR8).

A *macro-event* is a contiguous run of pending events that share one
handler, executed as a single operation instead of one kernel dispatch
per event.  The kernel (``events.Simulator``) detects such runs in the
sorted in-order lane at drain time — they form naturally whenever a
model bulk-loads a train via :meth:`Simulator.schedule_many` /
:meth:`Simulator.schedule_batch`, or schedules the same callback
repeatedly in timestamp order — and hands the whole span to a *batch
implementation* the handler author attached with :func:`as_macro`::

    def arrive(sim, i):            # scalar handler, the semantic truth
        ...
    def arrive_batch(sim, run):    # batch twin: consume a MacroRun
        for t, i in run:
            ...
        return len(run)
    as_macro(arrive, arrive_batch)

Contract for batch implementations
----------------------------------
The batch twin must be **observationally identical** to calling the
scalar handler once per consumed entry, in order.  Specifically:

* Consume entries front-to-back and return how many were consumed
  (``None`` means "all of them").  Partial consumption is the *hazard
  horizon* mechanism: stop before the first entry whose outcome could
  be affected by something the batch itself did — typically an event it
  scheduled whose timestamp does not exceed the next entry's (the
  kernel re-interleaves and retries after the intervening event runs).
  Ties are safe to consume: run entries carry older sequence numbers
  than anything scheduled during the batch, so at equal timestamps the
  run entry executes first in scalar order too.
* ``sim.now`` is **stale** inside the batch (the kernel commits the
  clock after the batch returns).  Read per-entry times from the run
  and use absolute scheduling (``sim.schedule_at``), never
  relative-delay scheduling against ``sim.now``.
* Scheduling new events is allowed; attaching observers (probes,
  tracers), ``snapshot()``/``restore()``, and cancelling entries inside
  the run are not.
* Be atomic or be exact: return ``k`` only after the side effects of
  exactly the first ``k`` entries are applied.  An exception must leave
  **zero** entries' side effects applied — the kernel treats a raising
  batch as having consumed nothing and re-raises.
* Return ``0`` to decline (e.g. an attached model-level tracer needs
  per-event hooks); the kernel falls back to the general path and backs
  off before retrying.

The kernel never offers a batch a span containing a cancelled entry, a
span crossing an out-of-order (heap) event, or any span at all while
kernel observers (probes, span tracer, armed fault injector) are
active — those guards live in ``events.py``, not here.

Vectorization: :meth:`MacroRun.times_array` returns the span's
timestamps as a numpy array when numpy is importable, falling back to a
plain list otherwise, so batch twins can be written numpy-vectorized
with a pure-python scalar fallback and still run on minimal installs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Tuple

try:  # numpy is optional at this layer: scalar fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = ["MacroRun", "as_macro"]

#: Attribute under which :func:`as_macro` stores the batch twin.  Bound
#: methods proxy attribute reads to their function, so a batch attached
#: to a plain function is found through any closure or direct reference.
MACRO_ATTR = "__macro_batch__"


class MacroRun:
    """Read-only view of one homogeneous span of pending lane entries.

    Iterating yields ``(time, payload)`` pairs in execution order.  The
    view aliases the kernel's live lane — it is only valid for the
    duration of the batch call that received it.
    """

    __slots__ = ("_lane", "_start", "_stop")

    def __init__(self, lane: list, start: int, stop: int) -> None:
        self._lane = lane
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        lane = self._lane
        for i in range(self._start, self._stop):
            entry = lane[i]
            yield entry[0], entry[4]

    def __getitem__(self, i: int) -> Tuple[float, Any]:
        if not 0 <= i < self._stop - self._start:
            raise IndexError(i)
        entry = self._lane[self._start + i]
        return entry[0], entry[4]

    def times(self) -> List[float]:
        """The span's timestamps, oldest first, as a plain list."""
        return [e[0] for e in self._lane[self._start:self._stop]]

    def times_array(self):
        """Timestamps as ``numpy.ndarray`` (list fallback without numpy)."""
        times = self.times()
        if _np is not None:
            return _np.asarray(times)
        return times

    def payloads(self) -> List[Any]:
        """The span's payloads, in execution order."""
        return [e[4] for e in self._lane[self._start:self._stop]]


def as_macro(
    scalar: Callable[..., Any], batch: Callable[..., Any]
) -> Callable[..., Any]:
    """Attach ``batch(sim, run) -> consumed`` as the macro twin of the
    scalar event handler ``scalar``; returns ``scalar`` for chaining.

    See the module docstring for the equivalence contract the batch
    implementation must honor.
    """
    setattr(scalar, MACRO_ATTR, batch)
    return scalar
