"""Cross-layer instrumentation: counters, gauges, quantile histograms,
and structured trace events shared by every simulator.

The paper's agenda ("21st Century Computer Architecture") leans on
event-driven simulation for its quantitative claims, and the lesson of
long-lived architecture simulators (gem5's unified stats/probe system)
is that a *single* metrics substrate — not per-model ad-hoc counters —
is what keeps a growing simulator trustworthy.  This module provides
that substrate:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Gauge` — last-value samples (queue depths, stored energy).
* :class:`Histogram` — streaming distribution summary with bounded
  memory: exact count/sum/min/max plus a fixed-size deterministic
  reservoir for quantiles.
* :class:`TraceSink` — bounded buffer of structured trace events for
  post-mortem debugging and visualisation.
* :class:`MetricsRegistry` — the factory/namespace that owns them all.

**Near-zero overhead when disabled**: a disabled registry hands out
shared null instruments whose mutators are empty methods, so model code
can instrument unconditionally (``self.stats.requests.inc()``) without
guarding every call site.  The event kernel's hot path adds only a
single attribute check per event (see :mod:`repro.core.events`).

A process-wide *session* registry supports the CLI's ``--instrument``
flag: models default to :func:`default_registry`, which is the shared
null registry unless a session has been enabled.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TraceEvent",
    "TraceSink",
    "current_session",
    "default_registry",
    "disable_session",
    "enable_session",
    "install_session",
]


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-value metric (queue depth, stored joules, fleet size)."""

    __slots__ = ("name", "value", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.samples += 1

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "samples": self.samples}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming distribution summary with bounded memory.

    Tracks exact ``count``/``sum``/``min``/``max`` and keeps a
    fixed-size uniform random reservoir (Vitter's algorithm R) for
    quantile estimates.  The reservoir's RNG is a private xorshift64
    seeded from the metric name, so identical runs produce identical
    quantile estimates without touching any NumPy stream the models
    depend on for their own reproducibility.
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "_reservoir", "_capacity",
        "_rng_state", "_sorted_cache",
    )

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._capacity = capacity
        self._reservoir: list[float] = []
        # Seed from the name so streams are stable per metric.
        self._rng_state = (hash(name) & 0xFFFFFFFFFFFFFFFF) or 0x9E3779B97F4A7C15
        self._sorted_cache: Optional[list[float]] = None

    def _next_rand(self) -> int:
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x
        return x

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._sorted_cache = None
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            j = self._next_rand() % self.count
            if j < self._capacity:
                self._reservoir[j] = value

    def observe_many(self, values) -> None:
        """Vectorized bulk :meth:`observe` for models that batch.

        Matches the scalar loop exactly for ``count``, ``min``/``max``,
        and the quantile reservoir (same xorshift stream, same
        replacement decisions); ``total`` is accumulated with one
        vectorized sum, which can differ from sequential scalar adds in
        the last ulp.
        """
        arr = np.asarray(values, dtype=float).ravel()
        n = arr.size
        if n == 0:
            return
        self._sorted_cache = None
        self.total += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        res = self._reservoir
        cap = self._capacity
        start = 0
        if len(res) < cap:
            # Fill phase draws no randomness, exactly like observe().
            take = min(cap - len(res), n)
            res.extend(arr[:take].tolist())
            self.count += take
            start = take
        if start < n:
            count = self.count
            nr = self._next_rand
            for v in arr[start:].tolist():
                count += 1
                j = nr() % count
                if j < cap:
                    res[j] = v
            self.count = count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return float("nan")
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._reservoir)
        data = self._sorted_cache
        idx = q * (len(data) - 1)
        lo = int(math.floor(idx))
        hi = int(math.ceil(idx))
        if lo == hi:
            return data[lo]
        frac = idx - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    # -- mergeable state (cross-process telemetry) -------------------------

    def to_state(self) -> dict:
        """Serializable state for shipping across a process boundary."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "capacity": self._capacity,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`to_state` into this one.

        ``count``/``total`` add and ``min``/``max`` combine exactly, so
        the merge is associative and commutative for those fields.  The
        quantile reservoirs are merged as a sorted multiset; when the
        union exceeds capacity it is reduced by a deterministic
        systematic subsample over the sorted values, which keeps the
        merge commutative (the sorted union is order-free) and
        associative as long as the union stays within capacity.
        """
        if not state["count"]:
            return
        self.count += state["count"]
        self.total += state["total"]
        if state["min"] < self.min:
            self.min = state["min"]
        if state["max"] > self.max:
            self.max = state["max"]
        combined = sorted(self._reservoir + [float(v) for v in state["reservoir"]])
        m = len(combined)
        cap = self._capacity
        if m > cap:
            combined = [combined[int((i + 0.5) * m / cap)] for i in range(cap)]
        self._reservoir = combined
        self._sorted_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


TraceEvent = Tuple[float, str, str, Any]
"""A structured trace record: ``(time, category, name, payload)``."""


class TraceSink:
    """Bounded in-memory buffer of :data:`TraceEvent` records.

    Oldest events are evicted first once ``capacity`` is reached, so a
    long simulation keeps the *tail* of its history — the part that
    explains how it ended up in its final state.
    """

    __slots__ = ("capacity", "_events", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, time: float, category: str, name: str, payload: Any = None) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append((time, category, name, payload))

    def events(self, category: Optional[str] = None) -> list[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e[1] == category]

    def __len__(self) -> int:
        return len(self._events)


class ScopedMetrics:
    """A per-component view onto a registry (names share one prefix)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", capacity)

    def trace(self, time: float, name: str, payload: Any = None) -> None:
        self._registry.trace(time, self._prefix, name, payload)


class MetricsRegistry:
    """Factory and namespace for all instruments of one simulation.

    ``enabled=False`` (the shared :data:`NULL_REGISTRY`) returns null
    instruments from every factory method, making instrumentation calls
    in model code effectively free; check :attr:`enabled` only around
    genuinely expensive preparation (building a payload dict, say), not
    around plain ``inc``/``observe`` calls.
    """

    _NULL_COUNTER = _NullCounter("null")
    _NULL_GAUGE = _NullGauge("null")
    _NULL_HISTOGRAM = _NullHistogram("null")

    def __init__(self, enabled: bool = True, trace_capacity: int = 0) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.trace_sink: Optional[TraceSink] = (
            TraceSink(trace_capacity) if (enabled and trace_capacity) else None
        )
        # Optional span tracer (see repro.obs.spans).  The kernel reads
        # this once per run() call — not per event — so a None tracer
        # costs one getattr per drain.
        self.tracer: Optional[Any] = None

    # -- factories ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return self._NULL_COUNTER
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return self._NULL_GAUGE
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        if not self.enabled:
            return self._NULL_HISTOGRAM
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name, capacity)
            return h

    def scoped(self, prefix: str) -> ScopedMetrics:
        """Per-component namespace, e.g. ``registry.scoped("cluster")``."""
        if not prefix:
            raise ValueError("prefix must be non-empty")
        return ScopedMetrics(self, prefix)

    def trace(self, time: float, category: str, name: str, payload: Any = None) -> None:
        if self.trace_sink is not None:
            self.trace_sink.emit(time, category, name, payload)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as a plain nested dict (stable key order)."""
        out: dict = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].snapshot()
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].snapshot()
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].snapshot()
        return out

    def health(self, prefix: str = "resilience") -> dict:
        """Flat name->value view of counters/gauges under one prefix.

        The resilience layer publishes its operational signals
        (``resilience.checkpoints_taken``, ``resilience.checkpoint_
        pending_events``, the exec engine's ``exec.jobs.resumed``, ...)
        as ordinary instruments; this accessor is the one-call health
        read-out the campaign CLI embeds in its report.  Histograms are
        summarised by their snapshot dict.
        """
        if not prefix:
            raise ValueError("prefix must be non-empty")
        dot = prefix + "."
        out: dict = {}
        for name, ctr in self._counters.items():
            if name == prefix or name.startswith(dot):
                out[name] = ctr.value
        for name, gauge in self._gauges.items():
            if name == prefix or name.startswith(dot):
                out[name] = gauge.value
        for name, hist in self._histograms.items():
            if name == prefix or name.startswith(dot):
                out[name] = hist.snapshot()
        return dict(sorted(out.items()))

    def report(self) -> str:
        """Human-readable metrics table (the CLI's --instrument output)."""
        lines = []
        fmt = "{:.4g}".format
        for name, snap in self.snapshot().items():
            if snap["type"] == "counter":
                lines.append(f"  {name:<44s} {snap['value']}")
            elif snap["type"] == "gauge":
                lines.append(f"  {name:<44s} {fmt(snap['value'])}")
            else:
                lines.append(
                    f"  {name:<44s} n={snap['count']} mean={fmt(snap['mean'])}"
                    f" p50={fmt(snap['p50'])} p90={fmt(snap['p90'])}"
                    f" p99={fmt(snap['p99'])} max={fmt(snap['max'])}"
                )
        if self.trace_sink is not None:
            lines.append(
                f"  [trace] {len(self.trace_sink)} events buffered"
                f" ({self.trace_sink.dropped} dropped)"
            )
        if not lines:
            return "  (no instruments registered)"
        return "\n".join(lines)

    def merge_counts(self, pairs: Iterable[tuple[str, int]]) -> None:
        """Bulk-add counter deltas (used by models that batch locally)."""
        for name, delta in pairs:
            self.counter(name).inc(delta)

    # -- mergeable state (cross-process telemetry) -------------------------

    @staticmethod
    def _gauge_key(value: float) -> float:
        # NaN (the unset value) sorts below every real sample.
        return -math.inf if math.isnan(value) else value

    def to_state(self) -> dict:
        """Picklable/JSON-able state of every instrument, stable order.

        The inverse is :meth:`merge_state`; together they let worker
        processes ship their registries over the result pipe and the
        engine fold them into one report deterministically.
        """
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {
                n: {"value": self._gauges[n].value, "samples": self._gauges[n].samples}
                for n in sorted(self._gauges)
            },
            "histograms": {
                n: self._histograms[n].to_state() for n in sorted(self._histograms)
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`to_state` into this one.

        Merge semantics are conflict-free and order-independent:

        * counters add;
        * gauges keep the maximum observed value (NaN counts as unset)
          and sum their sample counts — across processes there is no
          meaningful "last" value, so the merged gauge reads as the peak
          across contributors;
        * histograms merge exactly for count/total/min/max and by
          deterministic sorted-multiset union for the quantile
          reservoir (see :meth:`Histogram.merge_state`).

        Names are visited in sorted order so repeated merges create
        instruments in a stable order.
        """
        for name in sorted(state.get("counters", ())):
            self.counter(name).inc(state["counters"][name])
        for name in sorted(state.get("gauges", ())):
            st = state["gauges"][name]
            g = self.gauge(name)
            if st["samples"]:
                if g.samples == 0 or self._gauge_key(st["value"]) > self._gauge_key(g.value):
                    g.value = float(st["value"])
                g.samples += st["samples"]
        for name in sorted(state.get("histograms", ())):
            st = state["histograms"][name]
            self.histogram(name, capacity=st["capacity"]).merge_state(st)

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        """A fresh enabled registry rebuilt from :meth:`to_state`."""
        reg = cls(enabled=True)
        reg.merge_state(state)
        return reg


NULL_REGISTRY = MetricsRegistry(enabled=False)
"""Shared disabled registry; every factory method returns a null
instrument and ``trace`` is a no-op."""

_session: Optional[MetricsRegistry] = None


def enable_session(trace_capacity: int = 0) -> MetricsRegistry:
    """Install a process-wide live registry (CLI ``--instrument``).

    Simulators constructed without an explicit ``metrics=`` argument
    report into the session registry from then on.  Returns it so the
    caller can print :meth:`MetricsRegistry.report` afterwards.
    """
    global _session
    _session = MetricsRegistry(enabled=True, trace_capacity=trace_capacity)
    return _session


def disable_session() -> None:
    """Drop the session registry; models fall back to the null registry."""
    global _session
    _session = None


def install_session(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Swap in a specific session registry, returning the previous one.

    Worker processes use this to scope a private registry around one job
    attempt (``prev = install_session(mine) ... install_session(prev)``)
    so telemetry from the job never leaks into — or picks up — whatever
    session the surrounding process had.
    """
    global _session
    prev = _session
    _session = registry
    return prev


def current_session() -> Optional[MetricsRegistry]:
    """The installed session registry, or None when instrumentation is off."""
    return _session


def default_registry() -> MetricsRegistry:
    """The session registry if enabled, else the shared null registry."""
    return _session if _session is not None else NULL_REGISTRY
