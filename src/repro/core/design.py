"""Design points, metrics, and Pareto-frontier machinery.

The paper reframes architecture as multi-objective design — "performance
plus security, privacy, availability, programmability" under hard power
envelopes (Table 2).  This module gives the library one shared vocabulary
for that: a :class:`DesignPoint` is an arbitrary configuration dict plus
a :class:`Metrics` record; :func:`pareto_front` extracts non-dominated
sets; :class:`Objective` declares per-metric direction (minimize energy,
maximize throughput, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence

import numpy as np


class Direction(Enum):
    """Whether larger or smaller is better for a metric."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass(frozen=True)
class Objective:
    """A named optimization objective over a metric key."""

    metric: str
    direction: Direction = Direction.MINIMIZE

    def oriented(self, value: float) -> float:
        """Map the metric so that smaller is always better."""
        return value if self.direction is Direction.MINIMIZE else -value


@dataclass
class Metrics:
    """A flat bag of named scalar results for one evaluated design.

    Common keys used across the library (by convention, SI units):
    ``throughput_ops`` (ops/s), ``power_w``, ``energy_j``, ``latency_s``,
    ``area_mm2``, ``availability``, ``efficiency_ops_per_watt``.
    """

    values: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def __setitem__(self, key: str, value: float) -> None:
        self.values[key] = float(value)

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def get(self, key: str, default: float = float("nan")) -> float:
        return self.values.get(key, default)

    def derive_efficiency(self) -> None:
        """Fill ``efficiency_ops_per_watt`` from throughput and power."""
        if "throughput_ops" in self.values and "power_w" in self.values:
            power = self.values["power_w"]
            self.values["efficiency_ops_per_watt"] = (
                self.values["throughput_ops"] / power if power > 0 else 0.0
            )


@dataclass
class DesignPoint:
    """One configuration in a design space, optionally evaluated."""

    config: Dict[str, Any]
    metrics: Optional[Metrics] = None
    label: str = ""

    def is_evaluated(self) -> bool:
        return self.metrics is not None

    def metric(self, key: str) -> float:
        if self.metrics is None:
            raise ValueError(f"design point {self.label!r} not yet evaluated")
        return self.metrics[key]


EvaluateFn = Callable[[Dict[str, Any]], Metrics]


def _oriented_matrix(
    points: Sequence[DesignPoint], objectives: Sequence[Objective]
) -> np.ndarray:
    """Stack objective values, oriented so smaller is better."""
    rows = np.empty((len(points), len(objectives)), dtype=float)
    for i, point in enumerate(points):
        for j, obj in enumerate(objectives):
            rows[i, j] = obj.oriented(point.metric(obj.metric))
    return rows


def pareto_mask(oriented: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (smaller-is-better matrix).

    A row is dominated if some other row is <= in every column and < in
    at least one.  O(n^2 d) pairwise check, vectorized over one axis —
    fine for the sweep sizes this library produces (<= tens of
    thousands of points).
    """
    if oriented.ndim != 2:
        raise ValueError("expected a 2-D objective matrix")
    n = oriented.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominates_i = np.all(oriented <= oriented[i], axis=1) & np.any(
            oriented < oriented[i], axis=1
        )
        if np.any(dominates_i):
            mask[i] = False
        else:
            # i survives; anything i dominates can be ruled out early.
            dominated_by_i = np.all(oriented >= oriented[i], axis=1) & np.any(
                oriented > oriented[i], axis=1
            )
            mask &= ~dominated_by_i
            mask[i] = True
    return mask


def pareto_front(
    points: Sequence[DesignPoint], objectives: Sequence[Objective]
) -> list[DesignPoint]:
    """Non-dominated subset of ``points`` under ``objectives``.

    Ties (exactly equal objective vectors) are all retained.
    """
    if not points:
        return []
    if not objectives:
        raise ValueError("at least one objective is required")
    oriented = _oriented_matrix(points, objectives)
    mask = pareto_mask(oriented)
    return [p for p, keep in zip(points, mask) if keep]


def knee_point(
    points: Sequence[DesignPoint], objectives: Sequence[Objective]
) -> DesignPoint:
    """Pick the 'knee' of a Pareto front: closest to the utopia point
    after per-objective min-max normalization.  A pragmatic default for
    "give me one balanced design" queries.
    """
    front = pareto_front(points, objectives)
    if not front:
        raise ValueError("no points supplied")
    oriented = _oriented_matrix(front, objectives)
    lo = oriented.min(axis=0)
    span = oriented.max(axis=0) - lo
    span[span == 0] = 1.0
    norm = (oriented - lo) / span
    distances = np.linalg.norm(norm, axis=1)
    return front[int(np.argmin(distances))]


def dominated_fraction(
    points: Sequence[DesignPoint], objectives: Sequence[Objective]
) -> float:
    """Fraction of points strictly dominated — a density diagnostic."""
    if not points:
        return 0.0
    oriented = _oriented_matrix(points, objectives)
    mask = pareto_mask(oriented)
    return 1.0 - float(mask.sum()) / len(points)


def best_under_budget(
    points: Iterable[DesignPoint],
    maximize: str,
    budgets: Mapping[str, float],
) -> Optional[DesignPoint]:
    """Best point on ``maximize`` subject to metric <= budget constraints.

    This is the paper's canonical question: "most ops/s under 10 W".
    Returns None when nothing fits the budget.
    """
    feasible = [
        p
        for p in points
        if all(p.metric(k) <= v for k, v in budgets.items())
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda p: p.metric(maximize))
