"""Design-space exploration driver.

Sweeps a parameter space, evaluates each configuration with a
user-supplied model, and returns evaluated :class:`DesignPoint` lists
ready for Pareto analysis.  Supports exhaustive grids over discrete
parameter sets and Latin-hypercube random sweeps over continuous boxes;
both are deterministic given a seed.

This is the workhorse behind the "agenda" experiments (E06/E21): each
full-system design — technology node x core mix x memory stack x
accelerator allocation — is a configuration dict, and the evaluator
composes the relevant subsystem models into Metrics.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from .design import DesignPoint, EvaluateFn, Metrics, Objective, pareto_front
from .rng import RngLike, resolve_rng, sobol_like_grid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec import ResultCache, Runner, RunReport


@dataclass(frozen=True)
class ContinuousParam:
    """A continuous design parameter with an inclusive range."""

    name: str
    low: float
    high: float
    log_scale: bool = False

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"{self.name}: high < low")
        if self.log_scale and self.low <= 0:
            raise ValueError(f"{self.name}: log-scale range must be positive")


@dataclass(frozen=True)
class DiscreteParam:
    """A discrete design parameter with an explicit choice set."""

    name: str
    choices: tuple

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"{self.name}: choices must be non-empty")


@dataclass
class SweepResult:
    """Evaluated design points plus bookkeeping from one exploration.

    ``report`` carries the engine's :class:`~repro.exec.RunReport`
    (per-config status, attempts, cache provenance) when the sweep ran
    through :mod:`repro.exec`; it is ``None`` for plain serial sweeps.
    """

    points: list[DesignPoint] = field(default_factory=list)
    failures: list[tuple[Dict[str, Any], str]] = field(default_factory=list)
    report: Optional["RunReport"] = None

    def front(self, objectives: Sequence[Objective]) -> list[DesignPoint]:
        return pareto_front(self.points, objectives)

    def best(self, metric: str, maximize: bool = True) -> DesignPoint:
        if not self.points:
            raise ValueError("sweep produced no evaluated points")
        key = lambda p: p.metric(metric)  # noqa: E731
        return max(self.points, key=key) if maximize else min(self.points, key=key)

    def column(self, metric: str) -> np.ndarray:
        """Vector of one metric across all evaluated points."""
        return np.array([p.metric(metric) for p in self.points], dtype=float)

    def config_column(self, key: str) -> list:
        return [p.config.get(key) for p in self.points]


def grid_configs(params: Sequence[DiscreteParam]) -> Iterable[Dict[str, Any]]:
    """Cartesian product of discrete parameter choices."""
    names = [p.name for p in params]
    if len(set(names)) != len(names):
        raise ValueError("duplicate parameter names in grid")
    for combo in itertools.product(*(p.choices for p in params)):
        yield dict(zip(names, combo))


def random_configs(
    params: Sequence[ContinuousParam],
    n: int,
    rng: RngLike = None,
) -> list[Dict[str, float]]:
    """Latin-hypercube sample of continuous parameters.

    Log-scaled parameters are sampled uniformly in log space, the right
    default for ranges spanning decades (cache sizes, target volumes).
    """
    names = [p.name for p in params]
    if len(set(names)) != len(names):
        raise ValueError("duplicate parameter names in sweep")
    lows = [np.log10(p.low) if p.log_scale else p.low for p in params]
    highs = [np.log10(p.high) if p.log_scale else p.high for p in params]
    samples = sobol_like_grid(lows, highs, n, rng=rng)
    configs = []
    for row in samples:
        cfg = {}
        for value, p in zip(row, params):
            cfg[p.name] = float(10**value) if p.log_scale else float(value)
        configs.append(cfg)
    return configs


def _evaluate_to_values(evaluate: EvaluateFn, config: Dict[str, Any]) -> Dict[str, float]:
    """Engine-side evaluator wrapper: Metrics in, plain JSON-able dict out.

    Module-level so ``functools.partial(_evaluate_to_values, evaluate)``
    survives pickling for process runners, and returning ``dict`` (not
    :class:`Metrics`) keeps sweep results cacheable as JSON artifacts.
    """
    metrics = evaluate(dict(config))
    if not isinstance(metrics, Metrics):
        raise TypeError(
            f"evaluator must return Metrics, got {type(metrics).__name__}"
        )
    metrics.derive_efficiency()
    return dict(metrics.values)


class Explorer:
    """Evaluate configurations against a model, collecting results.

    The evaluator maps a config dict to :class:`Metrics`.  Evaluation
    errors are captured per-config (not raised) so a sweep over a space
    with infeasible corners still completes; failures are reported in
    :attr:`SweepResult.failures`.

    By default configs are evaluated serially in-process.  Pass a
    :class:`repro.exec.Runner` (e.g. ``ProcessPoolRunner(4)``) and/or a
    :class:`repro.exec.ResultCache` to fan the sweep out over worker
    processes with fault containment and artifact reuse; in that mode a
    raising evaluator — of *any* exception type — becomes a failure row
    rather than an exception.
    """

    def __init__(self, evaluate: EvaluateFn, label_key: Optional[str] = None):
        self._evaluate = evaluate
        self._label_key = label_key

    def _label(self, config: Mapping[str, Any]) -> str:
        if self._label_key and self._label_key in config:
            return str(config[self._label_key])
        return ", ".join(f"{k}={v}" for k, v in sorted(config.items()))

    def run(
        self,
        configs: Iterable[Dict[str, Any]],
        runner: Optional["Runner"] = None,
        cache: Optional["ResultCache"] = None,
        backend: Optional[str] = None,
        jobs: int = 1,
    ) -> SweepResult:
        """Evaluate every config; ``runner``/``cache``/``backend`` route
        the sweep through :mod:`repro.exec` (an explicit ``runner`` wins
        over ``backend``, which names one of ``serial``/``pool``/
        ``socket``/``array`` built with ``jobs`` as its parallelism)."""
        if runner is None and backend is not None:
            from ..exec.backends import make_backend

            runner = make_backend(backend, jobs=jobs)
        if runner is not None or cache is not None:
            return self._run_engine(configs, runner, cache)
        result = SweepResult()
        for config in configs:
            try:
                metrics = self._evaluate(dict(config))
            except (ValueError, ArithmeticError, KeyError) as exc:
                result.failures.append((dict(config), f"{type(exc).__name__}: {exc}"))
                continue
            if not isinstance(metrics, Metrics):
                raise TypeError(
                    "evaluator must return Metrics, got "
                    f"{type(metrics).__name__}"
                )
            metrics.derive_efficiency()
            result.points.append(
                DesignPoint(
                    config=dict(config),
                    metrics=metrics,
                    label=self._label(config),
                )
            )
        return result

    def _run_engine(
        self,
        configs: Iterable[Dict[str, Any]],
        runner: Optional["Runner"],
        cache: Optional["ResultCache"],
    ) -> SweepResult:
        """Sweep through :mod:`repro.exec` (parallel/cached/contained)."""
        from ..exec import ExecutionEngine, Job, JobGraph, JobStatus

        config_list = [dict(c) for c in configs]
        evaluate_job = functools.partial(_evaluate_to_values, self._evaluate)
        graph = JobGraph(
            Job(id=f"cfg-{i:06d}", fn=evaluate_job, config=cfg)
            for i, cfg in enumerate(config_list)
        )
        engine = ExecutionEngine(runner=runner, cache=cache)
        report = engine.run(graph)
        result = SweepResult(report=report)
        for i, cfg in enumerate(config_list):
            record = report[f"cfg-{i:06d}"]
            if record.status is JobStatus.SUCCEEDED:
                metrics = Metrics(
                    {k: float(v) for k, v in record.result.items()}
                )
                result.points.append(
                    DesignPoint(config=cfg, metrics=metrics, label=self._label(cfg))
                )
            else:
                result.failures.append(
                    (cfg, record.error or record.status.value)
                )
        return result

    def grid(
        self,
        params: Sequence[DiscreteParam],
        runner: Optional["Runner"] = None,
        cache: Optional["ResultCache"] = None,
    ) -> SweepResult:
        return self.run(grid_configs(params), runner=runner, cache=cache)

    def random(
        self,
        params: Sequence[ContinuousParam],
        n: int,
        rng: RngLike = None,
        runner: Optional["Runner"] = None,
        cache: Optional["ResultCache"] = None,
    ) -> SweepResult:
        return self.run(
            random_configs(params, n, rng=rng), runner=runner, cache=cache
        )


def local_search(
    evaluate: EvaluateFn,
    start: Dict[str, float],
    params: Sequence[ContinuousParam],
    metric: str,
    maximize: bool = True,
    iterations: int = 100,
    step_frac: float = 0.1,
    rng: RngLike = None,
) -> DesignPoint:
    """Simple stochastic hill climber for continuous sub-spaces.

    Perturbs one random parameter per step by a Gaussian proportional to
    its range; accepts improvements.  Meant for polishing a sweep winner,
    not as a serious optimizer.
    """
    gen = resolve_rng(rng)
    by_name = {p.name: p for p in params}
    for name in start:
        if name not in by_name:
            raise KeyError(f"start key {name!r} not among parameters")

    def clamp(name: str, value: float) -> float:
        p = by_name[name]
        return float(min(max(value, p.low), p.high))

    current = {k: clamp(k, v) for k, v in start.items()}
    current_metrics = evaluate(dict(current))
    current_metrics.derive_efficiency()
    sign = 1.0 if maximize else -1.0
    best_score = sign * current_metrics[metric]

    names = list(current)
    for _ in range(iterations):
        name = names[int(gen.integers(len(names)))]
        p = by_name[name]
        span = p.high - p.low
        candidate = dict(current)
        candidate[name] = clamp(name, current[name] + gen.normal(0, step_frac * span))
        try:
            metrics = evaluate(dict(candidate))
        except (ValueError, ArithmeticError):
            continue
        metrics.derive_efficiency()
        score = sign * metrics[metric]
        if score > best_score:
            best_score = score
            current = candidate
            current_metrics = metrics
    return DesignPoint(config=current, metrics=current_metrics, label="local-search")
