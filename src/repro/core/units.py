"""SI units, prefixes, and physical constants used across the toolkit.

Everything in the library is expressed in base SI units (seconds, joules,
watts, meters, bits, operations).  This module centralizes the prefix
constants and a handful of convenience converters so that models never
embed magic powers of ten.

The paper's energy-efficiency goal — "an exa-op data center that consumes
no more than 10 megawatts (MW), a peta-op departmental server ... 10
kilowatts, a tera-op portable device ... 10 watts, and a giga-op sensor
system ... 10 milliwatts" (Section 2.2) — works out to the single figure
of merit :data:`PAPER_TARGET_OPS_PER_WATT` = 1e11 ops/s/W (100 GOPS/W).
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# SI prefixes (as plain floats; multiply to convert *to* base units)
# ---------------------------------------------------------------------------

YOCTO = 1e-24
ZEPTO = 1e-21
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15
EXA = 1e18
ZETTA = 1e21

# Binary prefixes for capacities.
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Thermal voltage kT/q at 300 K [V] — sets the subthreshold slope floor
#: that near-threshold-voltage models run up against.
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / ELEMENTARY_CHARGE

#: Speed of light in vacuum [m/s]; photonic link models divide by the
#: group index of the waveguide.
SPEED_OF_LIGHT = 299_792_458.0

# ---------------------------------------------------------------------------
# Paper-anchored constants
# ---------------------------------------------------------------------------

#: The Section 2.2 platform targets all reduce to 100 GOPS/W.
PAPER_TARGET_OPS_PER_WATT = 100.0 * GIGA

#: "today's ~10 giga-operations/watt" for portable devices (Section 2.1).
PAPER_CIRCA_2012_MOBILE_OPS_PER_WATT = 10.0 * GIGA

#: Paper power envelopes per platform class [W] (Section 2.2).
PAPER_POWER_ENVELOPES = {
    "sensor": 10.0 * MILLI,
    "portable": 10.0,
    "departmental": 10.0 * KILO,
    "datacenter": 10.0 * MEGA,
}

#: Paper throughput targets per platform class [ops/s] (Section 2.2).
PAPER_THROUGHPUT_TARGETS = {
    "sensor": GIGA,
    "portable": TERA,
    "departmental": PETA,
    "datacenter": EXA,
}

#: "five 9's or 99.999% availability (all but five minutes per year)".
FIVE_NINES = 0.99999

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

# ---------------------------------------------------------------------------
# Converters
# ---------------------------------------------------------------------------


def db(ratio: float) -> float:
    """Express a power ratio in decibels."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def joules_per_op(ops_per_watt: float) -> float:
    """Invert an efficiency (ops/s/W) into an energy per operation [J].

    ops/s/W == ops/J, so this is a plain reciprocal, but naming the
    conversion keeps call sites legible.
    """
    if ops_per_watt <= 0:
        raise ValueError(f"ops_per_watt must be positive, got {ops_per_watt}")
    return 1.0 / ops_per_watt


def ops_per_watt(energy_per_op_j: float) -> float:
    """Invert an energy per operation [J] into an efficiency (ops/s/W)."""
    if energy_per_op_j <= 0:
        raise ValueError(
            f"energy_per_op_j must be positive, got {energy_per_op_j}"
        )
    return 1.0 / energy_per_op_j


def downtime_seconds_per_year(availability: float) -> float:
    """Expected downtime per year for a given availability fraction."""
    if not 0.0 <= availability <= 1.0:
        raise ValueError(f"availability must be in [0, 1], got {availability}")
    return (1.0 - availability) * SECONDS_PER_YEAR


def availability_from_downtime(downtime_s_per_year: float) -> float:
    """Availability fraction implied by a yearly downtime budget."""
    if downtime_s_per_year < 0:
        raise ValueError("downtime cannot be negative")
    frac = 1.0 - downtime_s_per_year / SECONDS_PER_YEAR
    return max(0.0, frac)


def si_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Render ``value`` with an SI prefix, e.g. ``si_format(3.2e9, 'op/s')``.

    Chooses the largest prefix with magnitude <= value; values below
    1e-24 or zero render without a prefix.
    """
    prefixes = [
        (EXA, "E"), (PETA, "P"), (TERA, "T"), (GIGA, "G"), (MEGA, "M"),
        (KILO, "k"), (1.0, ""), (MILLI, "m"), (MICRO, "u"), (NANO, "n"),
        (PICO, "p"), (FEMTO, "f"), (ATTO, "a"),
    ]
    if value == 0 or not math.isfinite(value):
        return f"{value:.{digits}g} {unit}".rstrip()
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
