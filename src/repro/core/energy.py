"""Energy accounting — the ledger behind "energy first" (Section 2.2).

The paper's central reorientation is that *energy*, not time, is the
scarce resource; every simulator in this library therefore charges its
work to an :class:`EnergyLedger` so cross-layer totals (compute vs.
communication vs. storage) can be compared the way the paper argues they
must be ("energy is largely spent moving data").

The ledger is a hierarchical multiset of named accounts.  Accounts use
dotted paths (``"memory.dram.activate"``); queries can aggregate any
prefix, so a model can ask "total interconnect energy" without knowing
which links exist.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from . import units


class EnergyLedger:
    """Hierarchical energy (and operation-count) accounting.

    >>> ledger = EnergyLedger()
    >>> ledger.charge("compute.fma", 50e-12, ops=1)
    >>> ledger.charge("memory.dram.read", 20e-9)
    >>> ledger.total()
    2.005e-08
    >>> ledger.total("compute")
    5e-11
    """

    def __init__(self) -> None:
        self._energy_j: Dict[str, float] = defaultdict(float)
        self._ops: Dict[str, int] = defaultdict(int)

    # -- mutation ----------------------------------------------------------

    def charge(self, account: str, energy_j: float, ops: int = 0) -> None:
        """Add ``energy_j`` joules (and optionally ``ops`` operations)."""
        if energy_j < 0:
            raise ValueError(f"energy cannot be negative, got {energy_j}")
        if ops < 0:
            raise ValueError(f"ops cannot be negative, got {ops}")
        if not account:
            raise ValueError("account name must be non-empty")
        self._energy_j[account] += float(energy_j)
        if ops:
            self._ops[account] += int(ops)

    def merge(self, other: "EnergyLedger", prefix: str = "") -> None:
        """Fold ``other`` into this ledger, optionally under ``prefix``.

        Lets a subsystem simulate with a private ledger and then report
        into its parent (e.g. a NoC merging under ``"interconnect"``).
        """
        joiner = f"{prefix}." if prefix else ""
        for account, energy in other._energy_j.items():
            self._energy_j[joiner + account] += energy
        for account, ops in other._ops.items():
            self._ops[joiner + account] += ops

    def reset(self) -> None:
        self._energy_j.clear()
        self._ops.clear()

    # -- queries -----------------------------------------------------------

    @staticmethod
    def _matches(account: str, prefix: Optional[str]) -> bool:
        if prefix is None or prefix == "":
            return True
        return account == prefix or account.startswith(prefix + ".")

    def total(self, prefix: Optional[str] = None) -> float:
        """Total joules charged under ``prefix`` (all accounts if None)."""
        return sum(
            e for a, e in self._energy_j.items() if self._matches(a, prefix)
        )

    def ops(self, prefix: Optional[str] = None) -> int:
        """Total operations recorded under ``prefix``."""
        return sum(o for a, o in self._ops.items() if self._matches(a, prefix))

    def accounts(self) -> list[str]:
        """Sorted list of leaf account names with nonzero energy."""
        return sorted(a for a, e in self._energy_j.items() if e > 0)

    def breakdown(self, depth: int = 1) -> Dict[str, float]:
        """Aggregate energy by the first ``depth`` path components.

        ``breakdown(1)`` gives the classic compute/memory/interconnect
        pie; deeper depths drill in.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        out: Dict[str, float] = defaultdict(float)
        for account, energy in self._energy_j.items():
            key = ".".join(account.split(".")[:depth])
            out[key] += energy
        return dict(out)

    def efficiency_ops_per_watt(self, prefix: Optional[str] = None) -> float:
        """ops/J (== ops/s/W) for the accounts under ``prefix``.

        Returns 0.0 when no energy has been charged, and ``inf`` when ops
        were recorded at zero energy (an ideal/free operation).
        """
        energy = self.total(prefix)
        ops = self.ops(prefix)
        if energy == 0.0:
            return float("inf") if ops else 0.0
        return ops / energy

    def meets_paper_target(self, prefix: Optional[str] = None) -> bool:
        """Does this ledger hit the paper's 100 GOPS/W goal?"""
        return (
            self.efficiency_ops_per_watt(prefix)
            >= units.PAPER_TARGET_OPS_PER_WATT
        )

    def as_dict(self) -> Dict[str, float]:
        """Copy of the raw per-account energy map."""
        return dict(self._energy_j)

    def report(self, depth: int = 1) -> str:
        """Human-readable breakdown, largest accounts first."""
        rows = sorted(
            self.breakdown(depth).items(), key=lambda kv: -kv[1]
        )
        total = self.total()
        lines = [f"{'account':<32}{'energy':>12}{'share':>8}"]
        for account, energy in rows:
            share = energy / total if total else 0.0
            lines.append(
                f"{account:<32}{units.si_format(energy, 'J'):>12}"
                f"{share:>7.1%}"
            )
        lines.append(f"{'TOTAL':<32}{units.si_format(total, 'J'):>12}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EnergyCost:
    """A named static+dynamic energy cost for one class of operation.

    ``per_event_j`` is charged each time the operation occurs;
    ``leakage_w`` accrues with wall-clock time via :meth:`idle_energy`.
    """

    name: str
    per_event_j: float
    leakage_w: float = 0.0

    def __post_init__(self) -> None:
        if self.per_event_j < 0 or self.leakage_w < 0:
            raise ValueError("energy costs must be non-negative")

    def dynamic_energy(self, events: int) -> float:
        if events < 0:
            raise ValueError("events cannot be negative")
        return self.per_event_j * events

    def idle_energy(self, duration_s: float) -> float:
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        return self.leakage_w * duration_s

    def total_energy(self, events: int, duration_s: float) -> float:
        return self.dynamic_energy(events) + self.idle_energy(duration_s)


def energy_delay_product(energy_j: float, delay_s: float) -> float:
    """EDP — the classic single-number energy/performance fusion."""
    if energy_j < 0 or delay_s < 0:
        raise ValueError("energy and delay must be non-negative")
    return energy_j * delay_s


def energy_delay_squared(energy_j: float, delay_s: float) -> float:
    """ED^2P — weighs performance more, standard for voltage scaling."""
    if energy_j < 0 or delay_s < 0:
        raise ValueError("energy and delay must be non-negative")
    return energy_j * delay_s * delay_s


def combine_ledgers(
    parts: Mapping[str, EnergyLedger] | Iterable[tuple[str, EnergyLedger]],
) -> EnergyLedger:
    """Merge several subsystem ledgers under their given prefixes."""
    items = parts.items() if isinstance(parts, Mapping) else parts
    merged = EnergyLedger()
    for prefix, ledger in items:
        merged.merge(ledger, prefix=prefix)
    return merged
