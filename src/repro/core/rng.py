"""Seeded random-number-generation policy.

Every stochastic component in the library accepts either a
:class:`numpy.random.Generator`, an integer seed, or ``None`` and resolves
it through :func:`resolve_rng`.  No module touches NumPy's legacy global
state, so simulations are reproducible and independent streams can be
spawned for parallel sub-simulations (e.g. per-server latency draws in the
datacenter cluster simulator).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Library-wide default seed; chosen arbitrarily, fixed for reproducibility.
DEFAULT_SEED = 0x21C3


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    *every* default run of the library is deterministic — an intentional
    departure from NumPy's fresh-entropy default, appropriate for a
    reproduction toolkit.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Produce ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` (PCG64 stream splitting) so
    child streams do not overlap regardless of how much each consumes —
    the standard approach for per-worker streams in parallel Monte Carlo.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = resolve_rng(rng)
    return list(parent.spawn(n))


def stream_for(seed: Optional[int], *key: Union[str, int]) -> np.random.Generator:
    """Derive a named substream, stable under unrelated code changes.

    ``stream_for(seed, "server", 17)`` always returns the same stream for
    the same seed and key, regardless of the order in which other streams
    were created.  Keys are hashed into the seed sequence's spawn key, so
    two distinct keys yield independent streams.
    """
    base_entropy = DEFAULT_SEED if seed is None else int(seed)
    digest = 0
    for part in key:
        for byte in str(part).encode():
            digest = (digest * 131 + byte) % (2**63)
    seq = np.random.SeedSequence(
        entropy=base_entropy, spawn_key=(digest % (2**31),)
    )
    return np.random.default_rng(seq)


def sobol_like_grid(
    lows: Sequence[float],
    highs: Sequence[float],
    n: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Latin-hypercube sample of ``n`` points in a box, shape ``(n, d)``.

    Used by the design-space explorer for space-filling random sweeps.
    Each dimension is stratified into ``n`` equal slices and one sample is
    drawn per slice, then slices are permuted independently per dimension.
    """
    lows_arr = np.asarray(lows, dtype=float)
    highs_arr = np.asarray(highs, dtype=float)
    if lows_arr.shape != highs_arr.shape or lows_arr.ndim != 1:
        raise ValueError("lows and highs must be 1-D and the same length")
    if np.any(highs_arr < lows_arr):
        raise ValueError("each high must be >= the matching low")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    gen = resolve_rng(rng)
    d = lows_arr.size
    u = (np.arange(n)[:, None] + gen.random((n, d))) / n
    for j in range(d):
        gen.shuffle(u[:, j])
    return lows_arr + u * (highs_arr - lows_arr)
