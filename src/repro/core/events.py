"""Discrete-event simulation kernel — the shared substrate.

Every event-driven simulator in the library runs on this kernel: the
datacenter cluster queues (:mod:`repro.datacenter.cluster`), kernel-path
hedging (:mod:`repro.datacenter.hedging`), autoscaling fleet dynamics
(:mod:`repro.datacenter.autoscale`), the mesh NoC
(:mod:`repro.interconnect.noc`), and the intermittent/duty-cycled sensor
models (:mod:`repro.sensor.harvest`, :mod:`repro.sensor.duty`).  Design
points:

* Events are ``(time, sequence, callback, payload)`` tuples in a binary
  heap.  The monotonically increasing sequence number makes ordering
  total and deterministic even when timestamps tie, which matters for
  reproducibility of coherence races and queueing ties.
* Callbacks may schedule further events; the kernel runs until the queue
  drains, a time horizon passes, or an event budget is exhausted.
* No global state: a :class:`Simulator` instance owns its clock.
* **Observability**: each simulator carries a
  :class:`~repro.core.instrument.MetricsRegistry` (``sim.metrics``) for
  per-component counters/gauges/quantile histograms, plus probe hooks
  (:meth:`Simulator.add_probe`) called after every executed event and
  periodic samplers (:meth:`Simulator.sample_every`).  With
  instrumentation disabled the hot path pays only one emptiness check
  per event.
* **Fault injection**: because all simulators share the one event loop,
  :class:`repro.crosscut.faults.KernelFaultInjector` can drive faults
  into any model through the same scheduling interface.

Models plug in through the :class:`SimModel` protocol — ``bind(sim)``,
``reset()``, ``finish()`` — so generic machinery (fault injectors,
samplers, reporters) can treat them uniformly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, runtime_checkable

from .instrument import MetricsRegistry, default_registry

EventCallback = Callable[["Simulator", Any], None]
ProbeCallback = Callable[["Simulator", "Event"], None]


@dataclass(frozen=True)
class Event:
    """A scheduled event (exposed for introspection/testing/probes)."""

    time: float
    seq: int
    callback: EventCallback
    payload: Any = None


class CancelToken:
    """Handle returned by :meth:`Simulator.schedule`; cancels lazily.

    Cancellation marks the token; the kernel discards cancelled events
    when they reach the head of the heap (the standard lazy-deletion
    idiom, O(1) cancel without heap surgery).
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class SimStats:
    """Counters describing a simulation run."""

    events_executed: int = 0
    events_cancelled: int = 0
    end_time: float = 0.0


@runtime_checkable
class SimModel(Protocol):
    """Protocol for components that live on the event kernel.

    ``bind(sim)`` attaches the model to a simulator (acquire metrics
    scopes, stash the handle); ``reset()`` clears per-run state so a
    model can be reused across runs; ``finish()`` flushes end-of-run
    summary metrics.  :meth:`Simulator.attach` calls ``bind`` and
    records the model so samplers/fault injectors can enumerate the
    components of a simulation.
    """

    def bind(self, sim: "Simulator") -> None: ...

    def reset(self) -> None: ...

    def finish(self) -> None: ...


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s, p: fired.append((s.now, p)), "late")
    <repro.core.events.CancelToken object at ...>
    >>> sim.schedule(1.0, lambda s, p: fired.append((s.now, p)), "early")
    <repro.core.events.CancelToken object at ...>
    >>> stats = sim.run()
    >>> fired
    [(1.0, 'early'), (2.0, 'late')]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        self._seq = itertools.count()
        self._running = False
        self.stats = SimStats()
        #: Instrumentation registry; defaults to the process session
        #: registry (a shared no-op unless ``--instrument``-style code
        #: called :func:`repro.core.instrument.enable_session`).
        self.metrics = metrics if metrics is not None else default_registry()
        self._probes: List[ProbeCallback] = []
        self.models: List[SimModel] = []

    @property
    def now(self) -> float:
        """Current simulation time [s or cycles, caller's choice]."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (possibly cancelled) events."""
        return len(self._heap)

    # -- model / probe registration ---------------------------------------

    def attach(self, model: SimModel) -> SimModel:
        """Bind a :class:`SimModel` to this simulator and track it."""
        model.bind(self)
        self.models.append(model)
        return model

    def finish_models(self) -> None:
        """Call ``finish()`` on every attached model (end-of-run flush)."""
        for model in self.models:
            model.finish()

    def add_probe(self, probe: ProbeCallback) -> ProbeCallback:
        """Register ``probe(sim, event)``, called after each executed event.

        Probes are the kernel's observation point: tracing, event-type
        accounting, and fault triggers all hang off this hook.  With no
        probes registered the per-event cost is a single emptiness
        check.
        """
        self._probes.append(probe)
        return probe

    def remove_probe(self, probe: ProbeCallback) -> None:
        self._probes.remove(probe)

    def sample_every(
        self,
        period: float,
        sampler: Callable[["Simulator"], None],
        initial_delay: Optional[float] = None,
    ) -> CancelToken:
        """Run ``sampler(sim)`` every ``period`` until cancelled.

        The standard way to feed gauges (queue depth, stored energy)
        without touching model hot paths.  Returns the token for the
        *chain*: cancelling it stops all future samples.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        pending: list[CancelToken] = []

        class _ChainToken(CancelToken):
            """Cancels the whole chain, including the pending firing."""

            __slots__ = ()

            def cancel(self) -> None:
                CancelToken.cancel(self)
                if pending:
                    pending[-1].cancel()

        chain = _ChainToken()

        def _tick(sim: "Simulator", _payload: Any) -> None:
            if chain.cancelled:
                return
            sampler(sim)
            if not chain.cancelled:  # the sampler itself may cancel
                pending[:] = [sim.schedule(period, _tick)]

        pending[:] = [
            self.schedule(
                period if initial_delay is None else initial_delay, _tick
            )
        ]
        return chain

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
    ) -> CancelToken:
        """Schedule ``callback(sim, payload)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        token = CancelToken()
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._seq), token, callback, payload),
        )
        return token

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        payload: Any = None,
    ) -> CancelToken:
        """Schedule at an absolute timestamp ``time >= now``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        token = CancelToken()
        heapq.heappush(
            self._heap, (float(time), next(self._seq), token, callback, payload)
        )
        return token

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        while self._heap:
            time, _seq, token, _cb, _payload = self._heap[0]
            if token.cancelled:
                heapq.heappop(self._heap)
                self.stats.events_cancelled += 1
                continue
            return time
        return None

    def step(self) -> bool:
        """Execute the single next live event; return False if drained."""
        while self._heap:
            time, seq, token, callback, payload = heapq.heappop(self._heap)
            if token.cancelled:
                self.stats.events_cancelled += 1
                continue
            self._now = time
            callback(self, payload)
            self.stats.events_executed += 1
            if self._probes:
                event = Event(time=time, seq=seq, callback=callback,
                              payload=payload)
                for probe in self._probes:
                    probe(self, event)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> SimStats:
        """Run until the queue drains, ``until`` passes, or budget is hit.

        ``until`` is inclusive: events stamped exactly at ``until`` run.
        On a horizon stop the clock advances to ``until`` so back-to-back
        ``run`` calls behave like one longer run.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run)")
        self._running = True
        executed_this_run = 0
        try:
            while True:
                if max_events is not None and executed_this_run >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                self.step()
                executed_this_run += 1
        finally:
            self._running = False
        self.stats.end_time = self._now
        return self.stats


def trace_events(sim: Simulator, category: str = "kernel") -> ProbeCallback:
    """Attach a probe that mirrors every executed event into the trace
    sink of ``sim.metrics`` (no-op sink unless tracing is enabled).

    Returns the probe so callers can :meth:`Simulator.remove_probe` it.
    """
    metrics = sim.metrics

    def _probe(s: Simulator, event: Event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        metrics.trace(event.time, category, name, event.payload)

    return sim.add_probe(_probe)


@dataclass
class PeriodicSource:
    """Helper that re-schedules itself every ``period``.

    Used by traffic generators, sensor duty cycles, and autoscaler
    ticks.  The callback receives the simulator and this source's
    ``payload``.

    Stopping
    --------
    * ``stop_after`` is an **inclusive** deadline: a firing stamped
      exactly at ``stop_after`` still runs; the first firing strictly
      beyond it is suppressed (and nothing further is scheduled).
    * :meth:`stop` cancels the pending firing immediately via the
      kernel's :class:`CancelToken` (lazy deletion — the dead event is
      discarded when it surfaces).  :meth:`start` also returns that
      token for callers that prefer to hold it directly.
    """

    period: float
    callback: EventCallback
    payload: Any = None
    stop_after: Optional[float] = None
    fires: int = field(default=0, init=False)
    _token: Optional[CancelToken] = field(
        default=None, init=False, repr=False, compare=False
    )

    def start(self, sim: Simulator, initial_delay: float = 0.0) -> CancelToken:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        self._token = sim.schedule(initial_delay, self._fire)
        return self._token

    def stop(self) -> None:
        """Cancel the pending firing; the source goes quiet immediately."""
        if self._token is not None:
            self._token.cancel()
            self._token = None

    @property
    def active(self) -> bool:
        """True while a future firing is scheduled."""
        return self._token is not None and not self._token.cancelled

    def _fire(self, sim: Simulator, _payload: Any) -> None:
        if self.stop_after is not None and sim.now > self.stop_after:
            self._token = None
            return
        self.callback(sim, self.payload)
        self.fires += 1
        self._token = sim.schedule(self.period, self._fire)
