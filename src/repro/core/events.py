"""Discrete-event simulation kernel — the shared substrate.

Every event-driven simulator in the library runs on this kernel: the
datacenter cluster queues (:mod:`repro.datacenter.cluster`), kernel-path
hedging (:mod:`repro.datacenter.hedging`), autoscaling fleet dynamics
(:mod:`repro.datacenter.autoscale`), the mesh NoC
(:mod:`repro.interconnect.noc`), and the intermittent/duty-cycled sensor
models (:mod:`repro.sensor.harvest`, :mod:`repro.sensor.duty`).  Design
points:

* Events are ``(time, sequence, token, callback, payload)`` tuples in a
  binary heap.  The monotonically increasing sequence number makes
  ordering total and deterministic even when timestamps tie, which
  matters for reproducibility of coherence races and queueing ties.
  Because every entry's ``(time, sequence)`` key is unique, the executed
  order is a pure function of the *set* of scheduled events — never of
  the heap's internal layout — so batch loading (:meth:`Simulator.
  schedule_many`) cannot perturb determinism.
* Callbacks may schedule further events; the kernel runs until the queue
  drains, a time horizon passes, or an event budget is exhausted.
* **Hot path**: the event queue is two lanes.  In-order schedules (bulk
  arrival trains via :meth:`Simulator.schedule_many`, self-chaining
  sources whose next firing never precedes the previous tail) land in a
  *sorted lane* popped by index in O(1); out-of-order schedules fall
  back to the binary heap.  Each pop takes the global ``(time, seq)``
  minimum of the two lane heads, so the executed order is byte-identical
  to a single heap — only cheaper.  :meth:`Simulator.run` drains in one
  tight loop (single head scan per event, locally aliased ``heappop``),
  the common fire-and-forget case skips :class:`CancelToken` allocation
  entirely (``schedule(..., cancellable=False)``), and ``sim.stats`` is
  synchronized when ``run`` returns (and on exceptions), not per event —
  use a probe for live event counting.
* No global state: a :class:`Simulator` instance owns its clock.
* **Observability**: each simulator carries a
  :class:`~repro.core.instrument.MetricsRegistry` (``sim.metrics``) for
  per-component counters/gauges/quantile histograms, plus probe hooks
  (:meth:`Simulator.add_probe`) called after every executed event and
  periodic samplers (:meth:`Simulator.sample_every`).  With
  instrumentation disabled the hot path pays only one emptiness check
  per event.
* **Fault injection**: because all simulators share the one event loop,
  :class:`repro.crosscut.faults.KernelFaultInjector` can drive faults
  into any model through the same scheduling interface.
* **Checkpoint/restart**: :meth:`Simulator.snapshot` captures the clock,
  both event lanes, the sequence counter, cancellation flags, exact
  stats, and the state of every registered :class:`Checkpointable`;
  :meth:`Simulator.restore` rolls all of it back, and a resumed run
  replays the identical event stream.  Snapshots cost nothing on the
  per-event hot path — mid-run accounting is derived structurally from
  the sequence counter (see :meth:`Simulator.snapshot`).
* **Fast paths** (:mod:`repro.core.fastpath`, :mod:`repro.core.macro`):
  contiguous same-handler runs in the in-order lane are executed as one
  *macro-event* batch (an author-supplied batch twin, or a synthesized
  trace-specialized loop once a handler proves hot), detected in O(1)
  from run records maintained at schedule time.  Guards keep the
  executed stream byte-identical to the general path: batches are
  refused while kernel observers are active (probes, span tracer,
  armed fault injector), while any cancellation is pending in the run's
  sequence span, and never across an out-of-order (heap) event; a guard
  failure mid-batch commits what ran and falls back to the general path
  for the rest.  ``REPRO_FASTPATH=off`` (or ``Simulator(fastpath=
  "off")``) disables all of it.

Models plug in through the :class:`SimModel` protocol — ``bind(sim)``,
``reset()``, ``finish()`` — so generic machinery (fault injectors,
samplers, reporters) can treat them uniformly.
"""

from __future__ import annotations

import heapq
import itertools
import math
import weakref
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, Tuple, runtime_checkable

from . import fastpath as _fastpath
from .instrument import MetricsRegistry, default_registry
from .macro import MACRO_ATTR

EventCallback = Callable[["Simulator", Any], None]
ProbeCallback = Callable[["Simulator", "Event"], None]

#: Version tag written into every :class:`KernelSnapshot`; bump when the
#: snapshot layout changes so stale snapshots are rejected loudly.
SNAPSHOT_VERSION = 1

#: Sentinel lane index meaning "no fast-path attempt pending".
_FP_INF = float("inf")
#: Shared frozen wake cell used when fast paths are disabled for a run;
#: the drain gate reads it but nothing ever writes it.
_FP_NEVER: list = [_FP_INF]
_FP_MIN_RUN = _fastpath.MIN_RUN
_FP_RETRY = _fastpath.RETRY_BACKOFF


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled event (exposed for introspection/testing/probes)."""

    time: float
    seq: int
    callback: EventCallback
    payload: Any = None


class CancelToken:
    """Handle returned by :meth:`Simulator.schedule`; cancels lazily.

    Cancellation marks the token; the kernel discards cancelled events
    when they reach the head of the heap (the standard lazy-deletion
    idiom, O(1) cancel without heap surgery).

    Queue-backed tokens also carry their event's sequence number and the
    owning simulator's cancel log, so ``cancel()`` records the seq in
    O(1).  That log is what lets :meth:`Simulator.snapshot` capture the
    cancelled-pending set without scanning every pending entry — the
    scan was O(pending) per snapshot and dominated checkpoint overhead
    on large queues.
    """

    __slots__ = ("cancelled", "_log", "_seq")

    def __init__(self, log: Optional[set] = None, seq: int = -1) -> None:
        self.cancelled = False
        self._log = log
        self._seq = seq

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._log is not None:
            self._log.add(self._seq)


class _ChainToken(CancelToken):
    """Token for a :meth:`Simulator.sample_every` chain.

    Cancelling it also cancels the chain's single pending firing; the
    one reused ``_tick`` closure re-arms ``pending`` each period, so a
    long-lived sampler allocates one token per tick and nothing else.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        super().__init__()
        self.pending: Optional[CancelToken] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self.pending is not None:
            self.pending.cancel()


@dataclass
class SimStats:
    """Counters describing a simulation run."""

    events_executed: int = 0
    events_cancelled: int = 0
    end_time: float = 0.0


@runtime_checkable
class Checkpointable(Protocol):
    """Protocol for state that participates in kernel snapshots.

    ``snapshot_state()`` returns an opaque value capturing the object's
    mutable simulation state *by value* (copy anything that will mutate
    after the snapshot); ``restore_state(state)`` rolls the object back
    to exactly that state.  ``restore_state`` must be repeatable: the
    same snapshot may be restored more than once, so it must not consume
    or alias the saved value destructively.

    Models implementing both methods are auto-registered by
    :meth:`Simulator.attach`; run-local closure state registers through
    :meth:`Simulator.register_checkpointable`, typically via
    :class:`FunctionCheckpoint`.
    """

    def snapshot_state(self) -> Any: ...

    def restore_state(self, state: Any) -> None: ...


class FunctionCheckpoint:
    """Adapter pairing two closures into a :class:`Checkpointable`.

    The model ``run()`` functions keep their hot state in locals and
    closures (``nonlocal`` counters, lists aliased by event callbacks).
    A ``FunctionCheckpoint`` created inside such a function can read and
    rebind that state directly, which lets a model join checkpointing
    without moving anything off its fast path::

        def _snap():             # copy-by-value
            return (busy, list(qlen))
        def _restore(state):
            nonlocal busy
            busy = state[0]
            qlen[:] = state[1]
        sim.register_checkpointable(FunctionCheckpoint(_snap, _restore))
    """

    __slots__ = ("_snapshot_fn", "_restore_fn")

    def __init__(
        self,
        snapshot_fn: Callable[[], Any],
        restore_fn: Callable[[Any], None],
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self._restore_fn = restore_fn

    def snapshot_state(self) -> Any:
        return self._snapshot_fn()

    def restore_state(self, state: Any) -> None:
        self._restore_fn(state)


class KernelSnapshot:
    """A restorable point-in-time capture of a :class:`Simulator`.

    Holds the clock, the sequence counter, every pending event entry
    (with each entry's cancellation flag as of snapshot time), exact
    :class:`SimStats`, and one ``(object, state)`` pair per registered
    :class:`Checkpointable`.  Event entries reference live callback and
    token objects, so a snapshot is restorable **within the process that
    took it** — cross-process durability is layered above the kernel
    (see ``repro.resilience``), which persists model- and job-level
    state instead of closures.

    Copy-on-write: the in-order lane is append-only while a run drains,
    so a mid-run snapshot records a ``(lane, start, end)`` *view* of the
    pending tail instead of copying it (the copy was O(pending) and
    dominated checkpoint overhead on large queues).  The view is
    materialized into a private list the first time :attr:`entries` is
    read — or by the kernel, just before it compacts the lane (see
    ``Simulator._flush_lazy_snapshots``).  A snapshot evicted from a
    bounded ring before either happens never pays for the copy at all.
    """

    __slots__ = (
        "version", "label", "now", "next_seq", "burned", "_entries",
        "cancelled_seqs", "events_executed", "events_cancelled", "states",
        "_lane_ref", "_lane_start", "_lane_end", "__weakref__",
    )

    def __init__(
        self,
        *,
        version: int,
        label: Optional[str],
        now: float,
        next_seq: int,
        burned: int,
        entries: List[tuple],
        cancelled_seqs: frozenset,
        events_executed: int,
        events_cancelled: int,
        states: List[Tuple[Any, Any]],
        lane_ref: Optional[list] = None,
        lane_start: int = 0,
        lane_end: int = 0,
    ) -> None:
        #: Snapshot layout version (checked by restore()).
        self.version = version
        self.label = label
        self.now = now
        #: Value the sequence counter restarts from on restore.
        self.next_seq = next_seq
        #: Sequence numbers consumed by ``snapshot()`` itself (see
        #: :meth:`Simulator.snapshot`); needed for exact executed-count
        #: accounting across repeated snapshots.
        self.burned = burned
        # Heap-lane entries (always copied eagerly: the heap mutates in
        # place); the in-order-lane tail rides in the lazy view.
        self._entries = entries
        #: Seqs of pending entries whose token was cancelled at snapshot
        #: time; restore() resets every pending token's flag from this
        #: set.  May contain stale seqs of already-executed events whose
        #: token was cancelled late; those never match a pending entry,
        #: so they are inert on restore.
        self.cancelled_seqs = cancelled_seqs
        self.events_executed = events_executed
        self.events_cancelled = events_cancelled
        #: ``(checkpointable, state)`` pairs, in registration order.
        self.states = states
        self._lane_ref = lane_ref
        self._lane_start = lane_start
        self._lane_end = lane_end

    def materialize(self) -> None:
        """Detach from the live lane by copying the viewed tail (idempotent)."""
        lane = self._lane_ref
        if lane is not None:
            self._entries = self._entries + lane[self._lane_start:self._lane_end]
            self._lane_ref = None

    @property
    def entries(self) -> List[tuple]:
        """Pending entries from both lanes, each ``(time, seq, token,
        cb, payload)``.  Reading this materializes a lazy snapshot."""
        self.materialize()
        return self._entries

    @property
    def pending(self) -> int:
        """Number of pending entries captured (including cancelled).

        Computable without materializing the lazy lane view.
        """
        n = len(self._entries)
        if self._lane_ref is not None:
            n += self._lane_end - self._lane_start
        return n


@runtime_checkable
class SimModel(Protocol):
    """Protocol for components that live on the event kernel.

    ``bind(sim)`` attaches the model to a simulator (acquire metrics
    scopes, stash the handle); ``reset()`` clears per-run state so a
    model can be reused across runs; ``finish()`` flushes end-of-run
    summary metrics.  :meth:`Simulator.attach` calls ``bind`` and
    records the model so samplers/fault injectors can enumerate the
    components of a simulation.
    """

    def bind(self, sim: "Simulator") -> None: ...

    def reset(self) -> None: ...

    def finish(self) -> None: ...


_INIT_HOOKS: List[Callable[["Simulator"], None]] = []


def add_init_hook(hook: Callable[["Simulator"], None]) -> Callable[["Simulator"], None]:
    """Register ``hook(sim)`` to run at the end of every ``Simulator()``.

    This is the attachment point for process-wide observability (the
    session tracer registers its span sink as a checkpointable on each
    new simulator, the sim-profiler attaches its probe) without the
    kernel importing any of it.  Hooks run in registration order; with
    none registered the constructor pays a single emptiness check.
    """
    _INIT_HOOKS.append(hook)
    return hook


def remove_init_hook(hook: Callable[["Simulator"], None]) -> None:
    """Unregister a hook added by :func:`add_init_hook` (missing is a no-op)."""
    try:
        _INIT_HOOKS.remove(hook)
    except ValueError:
        pass


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s, p: fired.append((s.now, p)), "late")
    <repro.core.events.CancelToken object at ...>
    >>> sim.schedule(1.0, lambda s, p: fired.append((s.now, p)), "early")
    <repro.core.events.CancelToken object at ...>
    >>> stats = sim.run()
    >>> fired
    [(1.0, 'early'), (2.0, 'late')]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        fastpath: Optional[str] = None,
    ) -> None:
        self._now = float(start_time)
        #: Out-of-order lane: a binary heap of (time, seq, token, cb, payload).
        self._heap: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        #: In-order lane: entries sorted by (time, seq), consumed by index.
        #: Schedules whose time is >= the lane tail append here in O(1)
        #: and pop in O(1); everything else falls back to the heap.  Pops
        #: always take the global (time, seq) minimum of both lane heads,
        #: so the merged order equals a single heap's.
        self._lane: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        self._lane_pos = 0
        self._seq = itertools.count()
        self._running = False
        self.stats = SimStats()
        #: Instrumentation registry; defaults to the process session
        #: registry (a shared no-op unless ``--instrument``-style code
        #: called :func:`repro.core.instrument.enable_session`).
        self.metrics = metrics if metrics is not None else default_registry()
        self._probes: List[ProbeCallback] = []
        self.models: List[SimModel] = []
        #: Objects whose state rides along in kernel snapshots.
        self._checkpointables: List[Checkpointable] = []
        #: Seq numbers consumed by snapshot() itself (never assigned to
        #: an event); tracked so executed-count accounting stays exact.
        self._burned = 0
        #: Seqs of cancelled-but-still-queued events, maintained eagerly
        #: by CancelToken.cancel() and pruned when purges discard the
        #: entry.  snapshot() reads this instead of scanning every
        #: pending entry.  The object identity is stable for the
        #: simulator's lifetime (tokens hold a reference), so restore()
        #: mutates it in place.
        self._cancel_log: set[int] = set()
        #: Weak refs to copy-on-write snapshots still viewing ``_lane``;
        #: materialized (copied out) just before any lane compaction
        #: invalidates their indices.  Snapshots evicted from a bounded
        #: ring die here silently and never pay for the copy.
        self._lazy_snaps: list[weakref.ref[KernelSnapshot]] = []
        #: Heap entries parked by run()'s bulk-lane mode (see run()):
        #: still pending, just held out of the heap so the inner drain
        #: can detect new schedules with a bare truthiness check.
        #: Always empty outside run(); snapshot() counts these as
        #: pending alongside the heap.
        self._parked: list[tuple[float, int, Any, EventCallback, Any]] = []
        # -- fast-path layer (see repro.core.fastpath) -----------------
        #: Mode: "off" | "auto" | "on"; explicit arg wins over the
        #: REPRO_FASTPATH environment variable, default "auto".
        self._fp_mode = _fastpath.resolve_mode(fastpath)
        #: True when run records are maintained at schedule time.
        self._fp_record = self._fp_mode != "off"
        #: Open tail run: ``[callback, start, end)`` in lane indices,
        #: extended in place while consecutive lane appends share one
        #: callback.  Closed (moved to ``_fp_runs`` if long enough) when
        #: the callback changes.
        self._fp_tail: Optional[list] = None
        #: Closed runs awaiting the drain cursor, FIFO by position.
        self._fp_runs: deque = deque()
        #: One-cell list holding the lane index of the next position
        #: worth a batch attempt (``_FP_INF`` = none).  The drain loop
        #: compares its cursor against this cell once per event — the
        #: entire per-event cost of the fast-path layer.
        self._fp_wake: list = [_FP_INF]
        #: Executor cache keyed by callback identity (weak: model
        #: callbacks are usually per-run closures).
        self._fp_execs: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._fp_recorder = _fastpath.TraceRecorder()
        #: Deopt epoch: bumped whenever an observer arrives (probe
        #: added, tracer attached, fault injector armed) or a restore
        #: happens.  Synthesized executors re-check it per event and
        #: abort on change, so a mid-batch observer arrival sees every
        #: subsequent event exactly once.
        self._fp_epoch = 0
        #: Count of active observers that must veto batching entirely
        #: (armed KernelFaultInjector; see fastpath_block()).
        self._fp_blockers = 0
        #: Progress cell written by synthesized executors from finally;
        #: run() folds it into its accounting when an exception escapes
        #: a callback mid-batch.
        self._fp_prog: list = [0]
        #: Behavior counters (batches committed, aborts, deopts, …).
        self.fastpath_stats = _fastpath.FastPathStats()
        if _INIT_HOOKS:
            for hook in list(_INIT_HOOKS):
                hook(self)

    def _flush_lazy_snapshots(self) -> None:
        """Materialize outstanding copy-on-write snapshots.

        Called before every lane compaction (``del lane[:pos]`` /
        ``lane.clear()``): those shift or drop lane indices, so any
        snapshot still holding a ``(lane, start, end)`` view must copy
        its tail out first.  Appends never invalidate a view, so the
        hot scheduling paths stay flush-free.
        """
        snaps = self._lazy_snaps
        if snaps:
            for ref in snaps:
                snap = ref()
                if snap is not None:
                    snap.materialize()
            snaps.clear()

    @property
    def now(self) -> float:
        """Current simulation time [s or cycles, caller's choice]."""
        return self._now

    def __len__(self) -> int:
        """Number of pending entries, **including** lazily-cancelled events.

        Cancellation is lazy (tokens are marked, dead entries are only
        discarded when they surface at a queue head), so ``len(sim)``
        over-counts by however many cancelled events have not yet been
        purged.  Use :meth:`pending_live` for the exact number of events
        that will still fire.

        Both counts include entries parked by ``run()``'s bulk-lane mode
        (still pending, just held out of the heap) and are exact between
        runs; from *inside* a callback they may additionally include
        already-consumed lane entries, because the run loop keeps its
        lane cursor in a local until it returns.
        """
        return len(self._heap) + len(self._parked) + len(self._lane) - self._lane_pos

    def pending_live(self) -> int:
        """Number of pending events that are *not* cancelled (O(n))."""
        live = sum(
            1 for _t, _s, token, _cb, _p in self._heap
            if token is None or not token.cancelled
        )
        live += sum(
            1 for _t, _s, token, _cb, _p in self._parked
            if token is None or not token.cancelled
        )
        lane = self._lane
        for i in range(self._lane_pos, len(lane)):
            token = lane[i][2]
            if token is None or not token.cancelled:
                live += 1
        return live

    def __repr__(self) -> str:
        """Debugging summary; ``live`` is the count that will actually fire.

        ``pending`` is ``len(self)`` (lazily-cancelled entries included),
        ``live`` is :meth:`pending_live` — shown separately because the
        two legitimately disagree while cancellations await purge.
        """
        return (
            f"<Simulator t={self._now:g} pending={len(self)}"
            f" live={self.pending_live()}"
            f" executed={self.stats.events_executed}>"
        )

    # -- model / probe registration ---------------------------------------

    def attach(self, model: SimModel) -> SimModel:
        """Bind a :class:`SimModel` to this simulator and track it.

        Models that also implement :class:`Checkpointable` are
        auto-registered for kernel snapshots.
        """
        model.bind(self)
        self.models.append(model)
        if isinstance(model, Checkpointable):
            self.register_checkpointable(model)
        return model

    def register_checkpointable(self, obj: Checkpointable) -> Checkpointable:
        """Include ``obj``'s state in every subsequent :meth:`snapshot`.

        Registration is idempotent per object (identity-deduplicated),
        so models that re-register on every ``run()`` call don't snapshot
        the same state twice.
        """
        if not any(existing is obj for existing in self._checkpointables):
            self._checkpointables.append(obj)
        return obj

    def finish_models(self) -> None:
        """Call ``finish()`` on every attached model (end-of-run flush)."""
        for model in self.models:
            model.finish()

    def add_probe(self, probe: ProbeCallback) -> ProbeCallback:
        """Register ``probe(sim, event)``, called after each executed event.

        Probes are the kernel's observation point: tracing, event-type
        accounting, and fault triggers all hang off this hook.  With no
        probes registered the per-event cost is a single emptiness
        check.
        """
        self._probes.append(probe)
        # Observer arrival: a batch in flight must stop before the next
        # event so this probe observes every subsequent event.
        self._fp_epoch += 1
        return probe

    def remove_probe(self, probe: ProbeCallback) -> None:
        self._probes.remove(probe)

    # -- fast-path control (see repro.core.fastpath) -----------------------

    @property
    def fastpath_mode(self) -> str:
        """Active fast-path mode: ``"off"``, ``"auto"``, or ``"on"``."""
        return self._fp_mode

    def set_fastpath(self, mode: str) -> None:
        """Switch fast-path mode; ``"off"`` also drops all run records."""
        self._fp_mode = _fastpath.resolve_mode(mode)
        self._fp_record = self._fp_mode != "off"
        self._fp_epoch += 1
        if not self._fp_record:
            self._fp_runs.clear()
            self._fp_tail = None
            self._fp_wake[0] = _FP_INF

    def fastpath_block(self) -> None:
        """Veto batching until :meth:`fastpath_unblock` (re-entrant).

        Used by observers that need per-event visibility but don't hang
        off the probe list — the armed :class:`~repro.crosscut.faults.
        KernelFaultInjector` calls this so fault timing can never land
        inside a committed batch.  The epoch bump aborts any batch
        already in flight.
        """
        self._fp_blockers += 1
        self._fp_epoch += 1

    def fastpath_unblock(self) -> None:
        if self._fp_blockers > 0:
            self._fp_blockers -= 1

    def fastpath_notify_observer(self) -> None:
        """Signal that an observer arrived: abort any batch in flight.

        Called by :func:`repro.obs.spans.attach_tracer` (and anything
        else that starts consuming per-event hooks mid-run) so the
        observer sees every subsequent event exactly once.  Batch
        attempts re-check observer presence up front, so the epoch bump
        is only needed for a batch already executing.
        """
        self._fp_epoch += 1

    def _fp_note_extend(self, callback: EventCallback, start: int, end: int) -> None:
        """Record ``lane[start:end)`` as (part of) a run of ``callback``.

        Slow half of run-record maintenance: called when the open tail's
        callback changes (the hot same-callback increment is inlined at
        the append sites).  Closes the old tail into the run deque when
        long enough, opens the new one, and arms the drain-gate wake
        cell once a run is worth attempting.
        """
        t = self._fp_tail
        if t is not None and t[0] is callback:
            t[2] = end
        else:
            if t is not None and t[2] - t[1] >= _FP_MIN_RUN:
                self._fp_runs.append(t)
            t = self._fp_tail = [callback, start, end]
        if t[2] - t[1] >= _FP_MIN_RUN:
            wake = self._fp_wake
            if t[1] < wake[0]:
                wake[0] = t[1]

    def _fp_shift(self, n: int) -> None:
        """Re-base run records after a lane compaction (``del lane[:n]``)."""
        runs = self._fp_runs
        while runs and runs[0][2] <= n:
            runs.popleft()
        for r in runs:
            r[1] = r[1] - n if r[1] >= n else 0
            r[2] -= n
        t = self._fp_tail
        if t is not None:
            if t[2] <= n:
                self._fp_tail = None
            else:
                t[1] = t[1] - n if t[1] >= n else 0
                t[2] -= n
        wake = self._fp_wake
        if wake[0] != _FP_INF:
            wake[0] = wake[0] - n if wake[0] >= n else 0

    def _fp_reset_records(self) -> None:
        """Drop all run records (queue rebuilt or fully consumed)."""
        self._fp_runs.clear()
        self._fp_tail = None
        self._fp_wake[0] = _FP_INF

    def _fp_attempt(self, lane: list, pos: int, boundary: int) -> Tuple[int, int]:
        """Try to execute a macro batch at ``lane[pos]``; ``(new_pos, n)``.

        Called from the drain loop when the cursor reaches the wake
        cell.  Validates the span (run record covering ``pos``, clipped
        to ``boundary`` — the first out-of-order event), checks the
        guards (no probes, no tracer, no blockers, no cancellation in
        the span's seq range), resolves an executor (author batch twin
        via ``__macro_batch__``, else a synthesized trace once the
        recorder calls the handler hot), runs it, and commits clock +
        wake state.  Every exit re-arms ``_fp_wake`` so the per-event
        gate stays O(1) and always makes progress.
        """
        wake = self._fp_wake
        runs = self._fp_runs
        while runs and runs[0][2] <= pos:
            runs.popleft()
        if runs:
            rec = runs[0]
            if rec[1] > pos:  # heterogeneous gap before the next run
                wake[0] = rec[1]
                return pos, 0
        else:
            rec = self._fp_tail
            if rec is None or not rec[1] <= pos < rec[2]:
                if rec is not None and rec[1] > pos and rec[2] - rec[1] >= _FP_MIN_RUN:
                    wake[0] = rec[1]
                else:
                    wake[0] = _FP_INF
                return pos, 0
        end = rec[2] if rec[2] < boundary else boundary
        if end - pos < _FP_MIN_RUN:
            # Too short to pay for a batch (often a self-chaining
            # handler staying one entry ahead of the cursor): back off.
            wake[0] = pos + _FP_RETRY
            return pos, 0
        cb = rec[0]
        if lane[pos][3] is not cb:  # defensive: records out of sync
            self._fp_reset_records()
            return pos, 0
        stats = self.fastpath_stats
        if (
            self._probes
            or self._fp_blockers
            or getattr(self.metrics, "tracer", None) is not None
        ):
            stats.deopts += 1
            wake[0] = rec[2]
            return pos, 0
        log = self._cancel_log
        if log:
            lo = lane[pos][1]
            hi = lane[end - 1][1]
            if any(lo <= s <= hi for s in log):
                # A cancellation is pending somewhere in the span's seq
                # range: let the general path purge at full precision.
                stats.deopts += 1
                wake[0] = rec[2]
                return pos, 0
        exec_ = self._fp_execs.get(cb)
        if exec_ is None:
            batch = getattr(cb, MACRO_ATTR, None)
            if batch is not None:
                exec_ = _fastpath.adapt_macro(cb, batch)
            elif self._fp_recorder.hot(cb, end - pos, self._fp_mode):
                exec_ = _fastpath.synthesize(cb)
                stats.traces_installed += 1
            else:
                stats.declines += 1
                wake[0] = rec[2]
                return pos, 0
            self._fp_execs[cb] = exec_
        n = exec_(self, lane, pos, end)
        self._fp_prog[0] = 0
        if not 0 <= n <= end - pos:
            raise RuntimeError(
                f"macro batch for {cb!r} consumed {n} of {end - pos} "
                "offered entries — batch twin violates its contract"
            )
        if n:
            new_pos = pos + n
            self._now = lane[new_pos - 1][0]
            stats.batches += 1
            stats.batched_events += n
            if n < end - pos:
                stats.aborts += 1
            # Re-attempt as soon as the cursor returns (intervening
            # heap events drain generally first).
            wake[0] = new_pos
            return new_pos, n
        wake[0] = pos + _FP_RETRY
        return pos, 0

    def sample_every(
        self,
        period: float,
        sampler: Callable[["Simulator"], None],
        initial_delay: Optional[float] = None,
    ) -> CancelToken:
        """Run ``sampler(sim)`` every ``period`` until cancelled.

        The standard way to feed gauges (queue depth, stored energy)
        without touching model hot paths.  Returns the token for the
        *chain*: cancelling it stops all future samples.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        chain = _ChainToken()

        def _tick(sim: "Simulator", _payload: Any) -> None:
            if chain.cancelled:
                return
            sampler(sim)
            if not chain.cancelled:  # the sampler itself may cancel
                chain.pending = sim.schedule(period, _tick)

        chain.pending = self.schedule(
            period if initial_delay is None else initial_delay, _tick
        )
        return chain

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
        cancellable: bool = True,
    ) -> Optional[CancelToken]:
        """Schedule ``callback(sim, payload)`` at ``now + delay``.

        ``cancellable=False`` is the fire-and-forget fast path: it skips
        the per-event :class:`CancelToken` allocation (the common case —
        arrival trains, completions, self-rescheduling ticks) and
        returns ``None``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = next(self._seq)
        token = CancelToken(self._cancel_log, seq) if cancellable else None
        entry = (self._now + delay, seq, token, callback, payload)
        lane = self._lane
        if not lane or entry[0] >= lane[-1][0]:
            lane.append(entry)  # in-order: O(1) append, O(1) pop later
            if self._fp_record:
                t = self._fp_tail
                if t is not None and t[0] is callback:
                    t[2] += 1
                    if t[2] - t[1] == _FP_MIN_RUN and t[1] < self._fp_wake[0]:
                        self._fp_wake[0] = t[1]
                else:
                    self._fp_note_extend(callback, len(lane) - 1, len(lane))
        else:
            heapq.heappush(self._heap, entry)
        return token

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        payload: Any = None,
        cancellable: bool = True,
    ) -> Optional[CancelToken]:
        """Schedule at an absolute timestamp ``time >= now``.

        ``cancellable=False`` skips token allocation and returns
        ``None`` (see :meth:`schedule`).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = next(self._seq)
        token = CancelToken(self._cancel_log, seq) if cancellable else None
        entry = (float(time), seq, token, callback, payload)
        lane = self._lane
        if not lane or entry[0] >= lane[-1][0]:
            lane.append(entry)
            if self._fp_record:
                t = self._fp_tail
                if t is not None and t[0] is callback:
                    t[2] += 1
                    if t[2] - t[1] == _FP_MIN_RUN and t[1] < self._fp_wake[0]:
                        self._fp_wake[0] = t[1]
                else:
                    self._fp_note_extend(callback, len(lane) - 1, len(lane))
        else:
            heapq.heappush(self._heap, entry)
        return token

    def schedule_tagged(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
    ) -> Tuple[CancelToken, int]:
        """Like :meth:`schedule`, but also return the event's sequence
        number: ``(token, seq)``.

        An event that knows its own ``(time, seq)`` key knows its exact
        position in the total execution order, which is what a mid-run
        :meth:`snapshot` needs to split the in-order lane into consumed
        and pending halves without any per-event bookkeeping.  This is
        how ``repro.resilience.CheckpointManager`` schedules its ticks.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = next(self._seq)
        token = CancelToken(self._cancel_log, seq)
        entry = (self._now + delay, seq, token, callback, payload)
        lane = self._lane
        if not lane or entry[0] >= lane[-1][0]:
            lane.append(entry)
            if self._fp_record:
                t = self._fp_tail
                if t is not None and t[0] is callback:
                    t[2] += 1
                    if t[2] - t[1] == _FP_MIN_RUN and t[1] < self._fp_wake[0]:
                        self._fp_wake[0] = t[1]
                else:
                    self._fp_note_extend(callback, len(lane) - 1, len(lane))
        else:
            heapq.heappush(self._heap, entry)
        return token, seq

    def schedule_many(
        self,
        times,
        callback: EventCallback,
        payloads=None,
    ) -> int:
        """Bulk-schedule ``callback`` at absolute ``times`` (fire-and-forget).

        ``payloads``, when given, pairs one payload with each timestamp
        (lengths must match).  Events are non-cancellable; sequence
        numbers are assigned in iteration order, so ties break exactly
        as if each event had been scheduled with :meth:`schedule_at` in
        a loop.  Returns the number of events scheduled.

        Fast paths: a nondecreasing batch whose first timestamp does not
        precede the in-order lane's tail extends the lane in O(n) and
        will pop in O(1) per event; a large out-of-order batch is merged
        into the heap with one ``heapify``.  Either way the executed
        order is identical — ``(time, seq)`` keys are unique, so pop
        order never depends on which lane holds an entry.
        """
        now = self._now
        heap = self._heap
        cls = type(times)
        if cls.__module__ == "numpy" and cls.__name__ == "ndarray":
            # Vectorized load for numpy trains: validation via array ops,
            # entry tuples built in C by ``zip`` over a reserved sequence
            # range.  The tuples — ``(time, seq, None, callback,
            # payload)`` with seqs in iteration order — are exactly what
            # the generic loop below builds, so the executed stream is
            # unchanged; only the per-event Python overhead goes away.
            import numpy as _np

            ts = _np.asarray(times, dtype=float)
            if ts.ndim != 1:
                raise ValueError("times must be one-dimensional")
            n = len(ts)
            if n == 0:
                return 0
            if ts.min() < now:
                bad = float(ts[ts < now][0])
                raise ValueError(
                    f"cannot schedule at {bad} before current time {now}"
                )
            if payloads is None:
                payload_seq: Any = itertools.repeat(None, n)
            else:
                payload_seq = list(payloads)
                if len(payload_seq) != n:
                    raise ValueError(
                        "times and payloads must have equal lengths"
                    )
            in_order = not bool((_np.diff(ts) < 0).any()) if n > 1 else True
            start_seq = next(self._seq)
            self._seq = itertools.count(start_seq + n)
            entries = list(zip(
                ts.tolist(),
                range(start_seq, start_seq + n),
                itertools.repeat(None, n),
                itertools.repeat(callback, n),
                payload_seq,
            ))
            lane = self._lane
            if in_order and (not lane or entries[0][0] >= lane[-1][0]):
                start = len(lane)
                lane.extend(entries)
                if self._fp_record:
                    self._fp_note_extend(callback, start, len(lane))
            elif len(entries) * 4 > len(heap):
                heap.extend(entries)
                heapq.heapify(heap)
            else:
                push = heapq.heappush
                for entry in entries:
                    push(heap, entry)
            return len(entries)
        next_seq = self._seq.__next__
        entries: list[tuple[float, int, None, EventCallback, Any]] = []
        append = entries.append
        prev = -math.inf
        in_order = True
        if payloads is None:
            for t in times:
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule at {t} before current time {now}"
                    )
                if t < prev:
                    in_order = False
                prev = t
                append((t, next_seq(), None, callback, None))
        else:
            for t, payload in zip(times, payloads, strict=True):
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule at {t} before current time {now}"
                    )
                if t < prev:
                    in_order = False
                prev = t
                append((t, next_seq(), None, callback, payload))
        if not entries:
            return 0
        lane = self._lane
        if in_order and (not lane or entries[0][0] >= lane[-1][0]):
            start = len(lane)
            lane.extend(entries)  # stays sorted: O(n) load, O(1) pops
            if self._fp_record:
                self._fp_note_extend(callback, start, len(lane))
        elif len(entries) * 4 > len(heap):
            heap.extend(entries)
            heapq.heapify(heap)  # O(n+m) beats m pushes for large m
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return len(entries)

    def schedule_batch(
        self,
        times,
        callback: EventCallback,
        payloads=None,
    ) -> int:
        """Bulk-load a train intended for macro-batch execution.

        Identical scheduling semantics to :meth:`schedule_many`; the
        name declares intent.  An in-order train lands in the sorted
        lane as one contiguous same-handler run, which is exactly what
        the drain's macro fast path consumes in one shot when
        ``callback`` carries a batch twin (:func:`repro.core.macro.
        as_macro`) or gets trace-specialized once hot.  Works — just
        without batching — when fast paths are off; the executed stream
        is identical either way.
        """
        return self.schedule_many(times, callback, payloads)

    def _next_entry(self, pop: bool):
        """The next live event across both lanes (or ``None`` if drained).

        Purges cancelled entries from whichever lane surfaces them,
        counting them in ``stats``; pops the returned entry iff ``pop``.
        """
        if self._running:
            # run() holds the lane consumption index in a local; mutating
            # it from a callback would desync the drain loop.
            raise RuntimeError(
                "peek_time()/step() cannot be called while run() is active"
            )
        heap = self._heap
        lane = self._lane
        while True:
            pos = self._lane_pos
            lane_head = lane[pos] if pos < len(lane) else None
            if heap and (lane_head is None or heap[0] < lane_head):
                entry = heap[0]
                from_heap = True
            elif lane_head is not None:
                entry = lane_head
                from_heap = False
            else:
                if pos and not self._running:
                    self._flush_lazy_snapshots()
                    if self._fp_record:
                        self._fp_reset_records()
                    lane.clear()  # fully consumed: reclaim
                    self._lane_pos = 0
                return None
            token = entry[2]
            if (token is not None and token.cancelled) or pop:
                if from_heap:
                    heapq.heappop(heap)
                else:
                    self._lane_pos = pos + 1
            if token is not None and token.cancelled:
                self.stats.events_cancelled += 1
                self._cancel_log.discard(entry[1])
                continue
            return entry

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        entry = self._next_entry(pop=False)
        return None if entry is None else entry[0]

    def step(self) -> bool:
        """Execute the single next live event; return False if drained."""
        entry = self._next_entry(pop=True)
        if entry is None:
            return False
        time, seq, _token, callback, payload = entry
        self._now = time
        callback(self, payload)
        self.stats.events_executed += 1
        if self._probes:
            event = Event(time=time, seq=seq, callback=callback,
                          payload=payload)
            for probe in self._probes:
                probe(self, event)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> SimStats:
        """Run until the queue drains, ``until`` passes, or budget is hit.

        ``until`` is inclusive: events stamped exactly at ``until`` run.
        On a horizon stop the clock advances to ``until`` so back-to-back
        ``run`` calls behave like one longer run.

        The drain is one tight loop: each event costs a single heap pop
        (plus one head peek when a horizon/budget is set), with
        ``heappop``/the heap/the probe list held in locals.  ``stats``
        counters accumulate in locals and synchronize when ``run``
        returns — including on an exception escaping a callback — so
        code that needs per-event counts live should use a probe.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run)")
        self._running = True
        heap = self._heap
        lane = self._lane
        pos = self._lane_pos
        heappop = heapq.heappop
        probes = self._probes
        stats_obj = self.stats
        clog = self._cancel_log
        executed = 0
        # Span tracing costs one attribute probe per run() call, never
        # per event: with no tracer attached the drain below is untouched.
        tracer = getattr(self.metrics, "tracer", None)
        run_span = (
            tracer.begin("kernel.run", sim_time=self._now, category="kernel")
            if tracer is not None else None
        )
        # Fast-path gate: one `cursor >= fpw[0]` compare per event.  A
        # run that starts with observers attached (probes, tracer) never
        # batches, so it aliases the frozen never-wakes cell and pays
        # nothing beyond the compare; observers arriving mid-run are
        # caught by the per-attempt guards and the deopt epoch instead.
        fpw = (
            self._fp_wake
            if self._fp_record
            and not probes
            and not self._fp_blockers
            and tracer is None
            else _FP_NEVER
        )
        completed = False
        try:
            if until is None and max_events is None:
                # Fastest path: unconditional drain, merged two-lane pop.
                # The lane is append-only while running (schedule/
                # schedule_many only ever append or heappush), so the
                # local consumption index cannot desync.
                parked = self._parked
                heappush = heapq.heappush
                while True:
                    if pos < len(lane):
                        if heap:
                            if heap[0] < lane[pos]:
                                entry = heappop(heap)
                            elif len(heap) <= 8:
                                # Bulk-lane mode: a small far-off heap
                                # (e.g. one pending checkpoint tick)
                                # would otherwise tax EVERY lane pop
                                # with a tuple compare.  Park the heap
                                # in a side list (still visible to
                                # mid-run snapshot()), binary-search
                                # how far the lane runs before the
                                # parked head, and drain that stretch
                                # with only a heap-emptiness check per
                                # event — any schedule into the (now
                                # empty) heap makes it truthy, which
                                # breaks the loop before the next pop,
                                # preserving exact (time, seq) order.
                                while heap:
                                    parked.append(heappop(heap))
                                boundary = bisect_left(
                                    lane, parked[0], pos
                                )
                                while pos < boundary:
                                    if fpw[0] <= pos:
                                        pos, n = self._fp_attempt(
                                            lane, pos, boundary
                                        )
                                        executed += n
                                        if heap:
                                            break
                                        if n:
                                            continue
                                    entry = lane[pos]
                                    pos += 1
                                    if clog:
                                        token = entry[2]
                                        if token is not None and token.cancelled:
                                            stats_obj.events_cancelled += 1
                                            clog.discard(entry[1])
                                            continue
                                    self._now = entry[0]
                                    callback = entry[3]
                                    callback(self, entry[4])
                                    executed += 1
                                    if probes:
                                        event = Event(
                                            time=entry[0], seq=entry[1],
                                            callback=callback,
                                            payload=entry[4],
                                        )
                                        for probe in probes:
                                            probe(self, event)
                                    if heap:
                                        break
                                while parked:
                                    heappush(heap, parked.pop())
                                if pos >= 262144 and pos * 2 >= len(lane):
                                    self._flush_lazy_snapshots()
                                    if self._fp_record:
                                        self._fp_shift(pos)
                                    del lane[:pos]
                                    pos = 0
                                continue
                            else:
                                if fpw[0] <= pos:
                                    # Lane entries up to the heap head
                                    # are safe to batch even with a
                                    # large heap pending.
                                    pos, n = self._fp_attempt(
                                        lane, pos,
                                        bisect_left(lane, heap[0], pos),
                                    )
                                    executed += n
                                    if n:
                                        continue
                                entry = lane[pos]
                                pos += 1
                        else:
                            if fpw[0] <= pos:
                                pos, n = self._fp_attempt(
                                    lane, pos, len(lane)
                                )
                                executed += n
                                if n:
                                    continue
                            entry = lane[pos]
                            pos += 1
                            # Amortized compaction: self-chaining sims
                            # append one event per pop, so the consumed
                            # prefix would otherwise grow without bound.
                            if pos >= 262144 and pos * 2 >= len(lane):
                                self._flush_lazy_snapshots()
                                if self._fp_record:
                                    self._fp_shift(pos)
                                del lane[:pos]
                                pos = 0
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                    if clog:
                        token = entry[2]
                        if token is not None and token.cancelled:
                            # Purge accounting is live (not batched in a
                            # local) so a mid-run snapshot() can read an
                            # exact count; purges are off the hot path
                            # (an empty cancel log proves no pending
                            # event is cancelled), so this costs nothing
                            # on cancel-free drains.
                            stats_obj.events_cancelled += 1
                            clog.discard(entry[1])
                            continue
                    self._now = entry[0]
                    callback = entry[3]
                    callback(self, entry[4])
                    executed += 1
                    if probes:
                        event = Event(time=entry[0], seq=entry[1],
                                      callback=callback, payload=entry[4])
                        for probe in probes:
                            probe(self, event)
            else:
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    if fpw[0] <= pos and pos < len(lane) and max_events is None:
                        # Horizon-bounded batching: the span is clipped
                        # at the first entry beyond ``until`` (events at
                        # exactly ``until`` are inclusive, and seqs are
                        # always < inf, so the probe tuple sorts after
                        # every entry stamped at the horizon).
                        boundary = (
                            bisect_left(lane, heap[0], pos)
                            if heap else len(lane)
                        )
                        if until is not None:
                            clip = bisect_left(
                                lane, (until, _FP_INF), pos
                            )
                            if clip < boundary:
                                boundary = clip
                        pos, n = self._fp_attempt(lane, pos, boundary)
                        executed += n
                        if n:
                            continue
                    lane_head = lane[pos] if pos < len(lane) else None
                    if heap and (lane_head is None or heap[0] < lane_head):
                        entry = heap[0]
                        from_heap = True
                    elif lane_head is not None:
                        entry = lane_head
                        from_heap = False
                    else:
                        break
                    token = entry[2]
                    if token is not None and token.cancelled:
                        if from_heap:
                            heappop(heap)
                        else:
                            pos += 1
                        stats_obj.events_cancelled += 1
                        self._cancel_log.discard(entry[1])
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        if until > self._now:
                            self._now = until
                        break
                    if from_heap:
                        heappop(heap)
                    else:
                        pos += 1
                        if pos >= 262144 and pos * 2 >= len(lane):
                            self._flush_lazy_snapshots()
                            if self._fp_record:
                                self._fp_shift(pos)
                            del lane[:pos]
                            pos = 0
                    self._now = time
                    callback = entry[3]
                    callback(self, entry[4])
                    executed += 1
                    if probes:
                        event = Event(time=time, seq=entry[1],
                                      callback=callback, payload=entry[4])
                        for probe in probes:
                            probe(self, event)
            completed = True
        finally:
            self._running = False
            prog = self._fp_prog
            if prog[0]:
                # An exception escaped a callback inside a synthesized
                # batch: the executor mirrored its progress here, so
                # the events it committed are accounted exactly.
                executed += prog[0]
                pos += prog[0]
                prog[0] = 0
            if self._parked:
                # A callback raised out of bulk-lane mode: the parked
                # heap entries are still pending — put them back.
                for entry in self._parked:
                    heapq.heappush(heap, entry)
                del self._parked[:]
            if pos:
                self._flush_lazy_snapshots()
                if self._fp_record:
                    self._fp_shift(pos)
                del lane[:pos]  # compact the consumed prefix
            self._lane_pos = 0
            stats_obj.events_executed += executed
            if run_span is not None:
                tracer.end(
                    run_span,
                    sim_time=self._now,
                    status="ok" if completed else "error",
                    events=executed,
                )
        stats_obj.end_time = self._now
        return stats_obj

    # -- checkpoint / restart ---------------------------------------------

    def snapshot(
        self,
        label: Optional[str] = None,
        *,
        current_seq: Optional[int] = None,
    ) -> KernelSnapshot:
        """Capture a restorable :class:`KernelSnapshot` of this simulator.

        Works both between runs and **mid-run, from inside an event
        callback** — the latter requires ``current_seq``, the sequence
        number of the event currently executing (obtain it by scheduling
        the checkpoint event with :meth:`schedule_tagged`).  Pop order is
        the global ``(time, seq)`` minimum across both lanes, so every
        entry with key <= ``(now, current_seq)`` has been consumed and
        every entry above it is pending; a binary search on that key
        recovers the lane split exactly, with zero per-event cost on
        uncheckpointed runs.

        Accounting: ``snapshot()`` consumes one sequence number (a
        deterministic side effect — a run that takes checkpoints and a
        crash-resume run replay the identical seq stream).  The executed
        count is derived structurally — every seq ever issued is either
        executed, purged-as-cancelled, still pending, or burned by a
        snapshot — so mid-run snapshots get exact :class:`SimStats`
        without the run loop syncing counters per event.

        The snapshot holds live object references (callbacks, tokens,
        payloads); it is valid within this process only.
        """
        nxt = next(self._seq)
        self._seq = itertools.count(nxt + 1)
        prior_burned = self._burned
        self._burned = prior_burned + 1
        lane = self._lane
        if self._running:
            if current_seq is None:
                raise RuntimeError(
                    "mid-run snapshot() requires current_seq (the executing "
                    "event's sequence number; schedule checkpoint events "
                    "via schedule_tagged, as CheckpointManager does)"
                )
            key = (self._now, current_seq)
            lo, hi = 0, len(lane)
            while lo < hi:
                mid = (lo + hi) // 2
                if (lane[mid][0], lane[mid][1]) <= key:
                    lo = mid + 1
                else:
                    hi = mid
            pos = lo
        else:
            pos = self._lane_pos
        # Copy-on-write: only the (small, mutated-in-place) heap is
        # copied now; the lane tail is recorded as a (lane, start, end)
        # view and copied lazily — on first entries access or just
        # before a lane compaction (see _flush_lazy_snapshots).  This
        # makes snapshot() O(heap + cancelled) instead of O(pending),
        # which is what keeps periodic-checkpoint overhead low on
        # large-queue drains.
        heap_part = list(self._heap)
        if self._parked:
            # run()'s bulk-lane mode holds heap entries in a side list;
            # they are pending all the same.
            heap_part += self._parked
        n_pending = len(heap_part) + (len(lane) - pos)
        # O(cancelled), not O(pending): the cancel log is maintained
        # eagerly by CancelToken.cancel() and pruned on purge.  A token
        # cancelled *after* its event already fired can leave a stale
        # seq here; restore() only applies the set to pending entries,
        # so stale seqs are inert.
        cancelled_seqs = frozenset(self._cancel_log)
        created = nxt - prior_burned
        executed = created - n_pending - self.stats.events_cancelled
        snap = KernelSnapshot(
            version=SNAPSHOT_VERSION,
            label=label,
            now=self._now,
            next_seq=nxt + 1,
            burned=prior_burned + 1,
            entries=heap_part,
            cancelled_seqs=cancelled_seqs,
            events_executed=executed,
            events_cancelled=self.stats.events_cancelled,
            states=[
                (obj, obj.snapshot_state()) for obj in self._checkpointables
            ],
            lane_ref=lane,
            lane_start=pos,
            lane_end=len(lane),
        )
        snaps = self._lazy_snaps
        if len(snaps) >= 64:  # drop refs to ring-evicted snapshots
            snaps[:] = [ref for ref in snaps if ref() is not None]
        snaps.append(weakref.ref(snap))
        return snap

    def restore(self, snap: KernelSnapshot) -> None:
        """Roll this simulator back to ``snap``.

        Rebuilds the pending-event structure, resets every pending
        token's cancellation flag to its snapshot-time value, restores
        the clock / sequence counter / stats, and calls
        ``restore_state`` on each captured :class:`Checkpointable`.
        Restoring the same snapshot more than once is supported.  A
        subsequent ``run()`` replays exactly the event stream the
        original run executed after the snapshot point (same seeds
        assumed), which is the determinism guarantee the golden
        crash-resume tests pin.
        """
        if self._running:
            raise RuntimeError("cannot restore() while run() is active")
        if snap.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snap.version} != kernel "
                f"SNAPSHOT_VERSION {SNAPSHOT_VERSION}"
            )
        self._now = snap.now
        self._seq = itertools.count(snap.next_seq)
        self._burned = snap.burned
        cancelled_seqs = snap.cancelled_seqs
        for entry in snap.entries:
            token = entry[2]
            if token is not None:
                token.cancelled = entry[1] in cancelled_seqs
        # Tokens alias the cancel log by reference, so reset it in
        # place to the snapshot-time set.
        self._cancel_log.clear()
        self._cancel_log.update(cancelled_seqs)
        # Rebuild into the sorted in-order lane (ties impossible: seqs
        # are unique, so sorted() never compares tokens).  Replay then
        # drains through the O(1)-pop lane fast path instead of paying
        # a heap pop per event — this is what makes resume-after-crash
        # cheaper than restart in the resilience benchmarks.
        self._heap = []
        del self._parked[:]  # always empty outside run(); belt and braces
        self._lane = sorted(snap.entries)
        self._lane_pos = 0
        # A restore invalidates recorded traces and run records: the
        # rebuilt lane's indices have nothing to do with the records'
        # positions, and replay must re-prove handlers hot.  Replay
        # therefore drains on the general path until new schedules form
        # fresh runs — determinism is unconditional either way.
        self._fp_reset_records()
        self._fp_execs = weakref.WeakKeyDictionary()
        self._fp_recorder.reset()
        self._fp_epoch += 1
        self.stats.events_executed = snap.events_executed
        self.stats.events_cancelled = snap.events_cancelled
        self.stats.end_time = snap.now
        for obj, state in snap.states:
            obj.restore_state(state)


def trace_events(sim: Simulator, category: str = "kernel") -> ProbeCallback:
    """Attach a probe that mirrors every executed event into the trace
    sink of ``sim.metrics`` (no-op sink unless tracing is enabled).

    Returns the probe so callers can :meth:`Simulator.remove_probe` it.
    """
    metrics = sim.metrics

    def _probe(s: Simulator, event: Event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        metrics.trace(event.time, category, name, event.payload)

    return sim.add_probe(_probe)


@dataclass(slots=True)
class PeriodicSource:
    """Helper that re-schedules itself every ``period``.

    Used by traffic generators, sensor duty cycles, and autoscaler
    ticks.  The callback receives the simulator and this source's
    ``payload``.

    Stopping
    --------
    * ``stop_after`` is an **inclusive** deadline: a firing stamped
      exactly at ``stop_after`` still runs; the first firing strictly
      beyond it is suppressed (and nothing further is scheduled).
    * :meth:`stop` cancels the pending firing immediately via the
      kernel's :class:`CancelToken` (lazy deletion — the dead event is
      discarded when it surfaces).  :meth:`start` also returns that
      token for callers that prefer to hold it directly.
    """

    period: float
    callback: EventCallback
    payload: Any = None
    stop_after: Optional[float] = None
    fires: int = field(default=0, init=False)
    _token: Optional[CancelToken] = field(
        default=None, init=False, repr=False, compare=False
    )

    def start(self, sim: Simulator, initial_delay: float = 0.0) -> CancelToken:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        self._token = sim.schedule(initial_delay, self._fire)
        return self._token

    def stop(self) -> None:
        """Cancel the pending firing; the source goes quiet immediately."""
        if self._token is not None:
            self._token.cancel()
            self._token = None

    @property
    def active(self) -> bool:
        """True while a future firing is scheduled."""
        return self._token is not None and not self._token.cancelled

    def _fire(self, sim: Simulator, _payload: Any) -> None:
        if self.stop_after is not None and sim.now > self.stop_after:
            self._token = None
            return
        self.callback(sim, self.payload)
        self.fires += 1
        self._token = sim.schedule(self.period, self._fire)
