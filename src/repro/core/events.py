"""Discrete-event simulation kernel — the shared substrate.

Every event-driven simulator in the library runs on this kernel: the
datacenter cluster queues (:mod:`repro.datacenter.cluster`), kernel-path
hedging (:mod:`repro.datacenter.hedging`), autoscaling fleet dynamics
(:mod:`repro.datacenter.autoscale`), the mesh NoC
(:mod:`repro.interconnect.noc`), and the intermittent/duty-cycled sensor
models (:mod:`repro.sensor.harvest`, :mod:`repro.sensor.duty`).  Design
points:

* Events are ``(time, sequence, token, callback, payload)`` tuples in a
  binary heap.  The monotonically increasing sequence number makes
  ordering total and deterministic even when timestamps tie, which
  matters for reproducibility of coherence races and queueing ties.
  Because every entry's ``(time, sequence)`` key is unique, the executed
  order is a pure function of the *set* of scheduled events — never of
  the heap's internal layout — so batch loading (:meth:`Simulator.
  schedule_many`) cannot perturb determinism.
* Callbacks may schedule further events; the kernel runs until the queue
  drains, a time horizon passes, or an event budget is exhausted.
* **Hot path**: the event queue is two lanes.  In-order schedules (bulk
  arrival trains via :meth:`Simulator.schedule_many`, self-chaining
  sources whose next firing never precedes the previous tail) land in a
  *sorted lane* popped by index in O(1); out-of-order schedules fall
  back to the binary heap.  Each pop takes the global ``(time, seq)``
  minimum of the two lane heads, so the executed order is byte-identical
  to a single heap — only cheaper.  :meth:`Simulator.run` drains in one
  tight loop (single head scan per event, locally aliased ``heappop``),
  the common fire-and-forget case skips :class:`CancelToken` allocation
  entirely (``schedule(..., cancellable=False)``), and ``sim.stats`` is
  synchronized when ``run`` returns (and on exceptions), not per event —
  use a probe for live event counting.
* No global state: a :class:`Simulator` instance owns its clock.
* **Observability**: each simulator carries a
  :class:`~repro.core.instrument.MetricsRegistry` (``sim.metrics``) for
  per-component counters/gauges/quantile histograms, plus probe hooks
  (:meth:`Simulator.add_probe`) called after every executed event and
  periodic samplers (:meth:`Simulator.sample_every`).  With
  instrumentation disabled the hot path pays only one emptiness check
  per event.
* **Fault injection**: because all simulators share the one event loop,
  :class:`repro.crosscut.faults.KernelFaultInjector` can drive faults
  into any model through the same scheduling interface.

Models plug in through the :class:`SimModel` protocol — ``bind(sim)``,
``reset()``, ``finish()`` — so generic machinery (fault injectors,
samplers, reporters) can treat them uniformly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, runtime_checkable

from .instrument import MetricsRegistry, default_registry

EventCallback = Callable[["Simulator", Any], None]
ProbeCallback = Callable[["Simulator", "Event"], None]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled event (exposed for introspection/testing/probes)."""

    time: float
    seq: int
    callback: EventCallback
    payload: Any = None


class CancelToken:
    """Handle returned by :meth:`Simulator.schedule`; cancels lazily.

    Cancellation marks the token; the kernel discards cancelled events
    when they reach the head of the heap (the standard lazy-deletion
    idiom, O(1) cancel without heap surgery).
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _ChainToken(CancelToken):
    """Token for a :meth:`Simulator.sample_every` chain.

    Cancelling it also cancels the chain's single pending firing; the
    one reused ``_tick`` closure re-arms ``pending`` each period, so a
    long-lived sampler allocates one token per tick and nothing else.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        super().__init__()
        self.pending: Optional[CancelToken] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self.pending is not None:
            self.pending.cancel()


@dataclass
class SimStats:
    """Counters describing a simulation run."""

    events_executed: int = 0
    events_cancelled: int = 0
    end_time: float = 0.0


@runtime_checkable
class SimModel(Protocol):
    """Protocol for components that live on the event kernel.

    ``bind(sim)`` attaches the model to a simulator (acquire metrics
    scopes, stash the handle); ``reset()`` clears per-run state so a
    model can be reused across runs; ``finish()`` flushes end-of-run
    summary metrics.  :meth:`Simulator.attach` calls ``bind`` and
    records the model so samplers/fault injectors can enumerate the
    components of a simulation.
    """

    def bind(self, sim: "Simulator") -> None: ...

    def reset(self) -> None: ...

    def finish(self) -> None: ...


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s, p: fired.append((s.now, p)), "late")
    <repro.core.events.CancelToken object at ...>
    >>> sim.schedule(1.0, lambda s, p: fired.append((s.now, p)), "early")
    <repro.core.events.CancelToken object at ...>
    >>> stats = sim.run()
    >>> fired
    [(1.0, 'early'), (2.0, 'late')]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._now = float(start_time)
        #: Out-of-order lane: a binary heap of (time, seq, token, cb, payload).
        self._heap: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        #: In-order lane: entries sorted by (time, seq), consumed by index.
        #: Schedules whose time is >= the lane tail append here in O(1)
        #: and pop in O(1); everything else falls back to the heap.  Pops
        #: always take the global (time, seq) minimum of both lane heads,
        #: so the merged order equals a single heap's.
        self._lane: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        self._lane_pos = 0
        self._seq = itertools.count()
        self._running = False
        self.stats = SimStats()
        #: Instrumentation registry; defaults to the process session
        #: registry (a shared no-op unless ``--instrument``-style code
        #: called :func:`repro.core.instrument.enable_session`).
        self.metrics = metrics if metrics is not None else default_registry()
        self._probes: List[ProbeCallback] = []
        self.models: List[SimModel] = []

    @property
    def now(self) -> float:
        """Current simulation time [s or cycles, caller's choice]."""
        return self._now

    def __len__(self) -> int:
        """Number of pending entries, **including** lazily-cancelled events.

        Cancellation is lazy (tokens are marked, dead entries are only
        discarded when they surface at a queue head), so ``len(sim)``
        over-counts by however many cancelled events have not yet been
        purged.  Use :meth:`pending_live` for the exact number of events
        that will still fire.
        """
        return len(self._heap) + len(self._lane) - self._lane_pos

    def pending_live(self) -> int:
        """Number of pending events that are *not* cancelled (O(n))."""
        live = sum(
            1 for _t, _s, token, _cb, _p in self._heap
            if token is None or not token.cancelled
        )
        lane = self._lane
        for i in range(self._lane_pos, len(lane)):
            token = lane[i][2]
            if token is None or not token.cancelled:
                live += 1
        return live

    # -- model / probe registration ---------------------------------------

    def attach(self, model: SimModel) -> SimModel:
        """Bind a :class:`SimModel` to this simulator and track it."""
        model.bind(self)
        self.models.append(model)
        return model

    def finish_models(self) -> None:
        """Call ``finish()`` on every attached model (end-of-run flush)."""
        for model in self.models:
            model.finish()

    def add_probe(self, probe: ProbeCallback) -> ProbeCallback:
        """Register ``probe(sim, event)``, called after each executed event.

        Probes are the kernel's observation point: tracing, event-type
        accounting, and fault triggers all hang off this hook.  With no
        probes registered the per-event cost is a single emptiness
        check.
        """
        self._probes.append(probe)
        return probe

    def remove_probe(self, probe: ProbeCallback) -> None:
        self._probes.remove(probe)

    def sample_every(
        self,
        period: float,
        sampler: Callable[["Simulator"], None],
        initial_delay: Optional[float] = None,
    ) -> CancelToken:
        """Run ``sampler(sim)`` every ``period`` until cancelled.

        The standard way to feed gauges (queue depth, stored energy)
        without touching model hot paths.  Returns the token for the
        *chain*: cancelling it stops all future samples.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        chain = _ChainToken()

        def _tick(sim: "Simulator", _payload: Any) -> None:
            if chain.cancelled:
                return
            sampler(sim)
            if not chain.cancelled:  # the sampler itself may cancel
                chain.pending = sim.schedule(period, _tick)

        chain.pending = self.schedule(
            period if initial_delay is None else initial_delay, _tick
        )
        return chain

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
        cancellable: bool = True,
    ) -> Optional[CancelToken]:
        """Schedule ``callback(sim, payload)`` at ``now + delay``.

        ``cancellable=False`` is the fire-and-forget fast path: it skips
        the per-event :class:`CancelToken` allocation (the common case —
        arrival trains, completions, self-rescheduling ticks) and
        returns ``None``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        token = CancelToken() if cancellable else None
        entry = (self._now + delay, next(self._seq), token, callback, payload)
        lane = self._lane
        if not lane or entry[0] >= lane[-1][0]:
            lane.append(entry)  # in-order: O(1) append, O(1) pop later
        else:
            heapq.heappush(self._heap, entry)
        return token

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        payload: Any = None,
        cancellable: bool = True,
    ) -> Optional[CancelToken]:
        """Schedule at an absolute timestamp ``time >= now``.

        ``cancellable=False`` skips token allocation and returns
        ``None`` (see :meth:`schedule`).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        token = CancelToken() if cancellable else None
        entry = (float(time), next(self._seq), token, callback, payload)
        lane = self._lane
        if not lane or entry[0] >= lane[-1][0]:
            lane.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return token

    def schedule_many(
        self,
        times,
        callback: EventCallback,
        payloads=None,
    ) -> int:
        """Bulk-schedule ``callback`` at absolute ``times`` (fire-and-forget).

        ``payloads``, when given, pairs one payload with each timestamp
        (lengths must match).  Events are non-cancellable; sequence
        numbers are assigned in iteration order, so ties break exactly
        as if each event had been scheduled with :meth:`schedule_at` in
        a loop.  Returns the number of events scheduled.

        Fast paths: a nondecreasing batch whose first timestamp does not
        precede the in-order lane's tail extends the lane in O(n) and
        will pop in O(1) per event; a large out-of-order batch is merged
        into the heap with one ``heapify``.  Either way the executed
        order is identical — ``(time, seq)`` keys are unique, so pop
        order never depends on which lane holds an entry.
        """
        now = self._now
        heap = self._heap
        next_seq = self._seq.__next__
        entries: list[tuple[float, int, None, EventCallback, Any]] = []
        append = entries.append
        prev = -math.inf
        in_order = True
        if payloads is None:
            for t in times:
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule at {t} before current time {now}"
                    )
                if t < prev:
                    in_order = False
                prev = t
                append((t, next_seq(), None, callback, None))
        else:
            for t, payload in zip(times, payloads, strict=True):
                t = float(t)
                if t < now:
                    raise ValueError(
                        f"cannot schedule at {t} before current time {now}"
                    )
                if t < prev:
                    in_order = False
                prev = t
                append((t, next_seq(), None, callback, payload))
        if not entries:
            return 0
        lane = self._lane
        if in_order and (not lane or entries[0][0] >= lane[-1][0]):
            lane.extend(entries)  # stays sorted: O(n) load, O(1) pops
        elif len(entries) * 4 > len(heap):
            heap.extend(entries)
            heapq.heapify(heap)  # O(n+m) beats m pushes for large m
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return len(entries)

    def _next_entry(self, pop: bool):
        """The next live event across both lanes (or ``None`` if drained).

        Purges cancelled entries from whichever lane surfaces them,
        counting them in ``stats``; pops the returned entry iff ``pop``.
        """
        if self._running:
            # run() holds the lane consumption index in a local; mutating
            # it from a callback would desync the drain loop.
            raise RuntimeError(
                "peek_time()/step() cannot be called while run() is active"
            )
        heap = self._heap
        lane = self._lane
        while True:
            pos = self._lane_pos
            lane_head = lane[pos] if pos < len(lane) else None
            if heap and (lane_head is None or heap[0] < lane_head):
                entry = heap[0]
                from_heap = True
            elif lane_head is not None:
                entry = lane_head
                from_heap = False
            else:
                if pos and not self._running:
                    lane.clear()  # fully consumed: reclaim
                    self._lane_pos = 0
                return None
            token = entry[2]
            if (token is not None and token.cancelled) or pop:
                if from_heap:
                    heapq.heappop(heap)
                else:
                    self._lane_pos = pos + 1
            if token is not None and token.cancelled:
                self.stats.events_cancelled += 1
                continue
            return entry

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        entry = self._next_entry(pop=False)
        return None if entry is None else entry[0]

    def step(self) -> bool:
        """Execute the single next live event; return False if drained."""
        entry = self._next_entry(pop=True)
        if entry is None:
            return False
        time, seq, _token, callback, payload = entry
        self._now = time
        callback(self, payload)
        self.stats.events_executed += 1
        if self._probes:
            event = Event(time=time, seq=seq, callback=callback,
                          payload=payload)
            for probe in self._probes:
                probe(self, event)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> SimStats:
        """Run until the queue drains, ``until`` passes, or budget is hit.

        ``until`` is inclusive: events stamped exactly at ``until`` run.
        On a horizon stop the clock advances to ``until`` so back-to-back
        ``run`` calls behave like one longer run.

        The drain is one tight loop: each event costs a single heap pop
        (plus one head peek when a horizon/budget is set), with
        ``heappop``/the heap/the probe list held in locals.  ``stats``
        counters accumulate in locals and synchronize when ``run``
        returns — including on an exception escaping a callback — so
        code that needs per-event counts live should use a probe.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run)")
        self._running = True
        heap = self._heap
        lane = self._lane
        pos = self._lane_pos
        heappop = heapq.heappop
        probes = self._probes
        executed = 0
        cancelled = 0
        try:
            if until is None and max_events is None:
                # Fastest path: unconditional drain, merged two-lane pop.
                # The lane is append-only while running (schedule/
                # schedule_many only ever append or heappush), so the
                # local consumption index cannot desync.
                while True:
                    if pos < len(lane):
                        if heap and heap[0] < lane[pos]:
                            entry = heappop(heap)
                        else:
                            entry = lane[pos]
                            pos += 1
                            # Amortized compaction: self-chaining sims
                            # append one event per pop, so the consumed
                            # prefix would otherwise grow without bound.
                            if pos >= 262144 and pos * 2 >= len(lane):
                                del lane[:pos]
                                pos = 0
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                    token = entry[2]
                    if token is not None and token.cancelled:
                        cancelled += 1
                        continue
                    self._now = entry[0]
                    callback = entry[3]
                    callback(self, entry[4])
                    executed += 1
                    if probes:
                        event = Event(time=entry[0], seq=entry[1],
                                      callback=callback, payload=entry[4])
                        for probe in probes:
                            probe(self, event)
            else:
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    lane_head = lane[pos] if pos < len(lane) else None
                    if heap and (lane_head is None or heap[0] < lane_head):
                        entry = heap[0]
                        from_heap = True
                    elif lane_head is not None:
                        entry = lane_head
                        from_heap = False
                    else:
                        break
                    token = entry[2]
                    if token is not None and token.cancelled:
                        if from_heap:
                            heappop(heap)
                        else:
                            pos += 1
                        cancelled += 1
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        if until > self._now:
                            self._now = until
                        break
                    if from_heap:
                        heappop(heap)
                    else:
                        pos += 1
                        if pos >= 262144 and pos * 2 >= len(lane):
                            del lane[:pos]
                            pos = 0
                    self._now = time
                    callback = entry[3]
                    callback(self, entry[4])
                    executed += 1
                    if probes:
                        event = Event(time=time, seq=entry[1],
                                      callback=callback, payload=entry[4])
                        for probe in probes:
                            probe(self, event)
        finally:
            self._running = False
            if pos:
                del lane[:pos]  # compact the consumed prefix
            self._lane_pos = 0
            self.stats.events_executed += executed
            self.stats.events_cancelled += cancelled
        self.stats.end_time = self._now
        return self.stats


def trace_events(sim: Simulator, category: str = "kernel") -> ProbeCallback:
    """Attach a probe that mirrors every executed event into the trace
    sink of ``sim.metrics`` (no-op sink unless tracing is enabled).

    Returns the probe so callers can :meth:`Simulator.remove_probe` it.
    """
    metrics = sim.metrics

    def _probe(s: Simulator, event: Event) -> None:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        metrics.trace(event.time, category, name, event.payload)

    return sim.add_probe(_probe)


@dataclass(slots=True)
class PeriodicSource:
    """Helper that re-schedules itself every ``period``.

    Used by traffic generators, sensor duty cycles, and autoscaler
    ticks.  The callback receives the simulator and this source's
    ``payload``.

    Stopping
    --------
    * ``stop_after`` is an **inclusive** deadline: a firing stamped
      exactly at ``stop_after`` still runs; the first firing strictly
      beyond it is suppressed (and nothing further is scheduled).
    * :meth:`stop` cancels the pending firing immediately via the
      kernel's :class:`CancelToken` (lazy deletion — the dead event is
      discarded when it surfaces).  :meth:`start` also returns that
      token for callers that prefer to hold it directly.
    """

    period: float
    callback: EventCallback
    payload: Any = None
    stop_after: Optional[float] = None
    fires: int = field(default=0, init=False)
    _token: Optional[CancelToken] = field(
        default=None, init=False, repr=False, compare=False
    )

    def start(self, sim: Simulator, initial_delay: float = 0.0) -> CancelToken:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        self._token = sim.schedule(initial_delay, self._fire)
        return self._token

    def stop(self) -> None:
        """Cancel the pending firing; the source goes quiet immediately."""
        if self._token is not None:
            self._token.cancel()
            self._token = None

    @property
    def active(self) -> bool:
        """True while a future firing is scheduled."""
        return self._token is not None and not self._token.cancelled

    def _fire(self, sim: Simulator, _payload: Any) -> None:
        if self.stop_after is not None and sim.now > self.stop_after:
            self._token = None
            return
        self.callback(sim, self.payload)
        self.fires += 1
        self._token = sim.schedule(self.period, self._fire)
