"""Discrete-event simulation kernel.

A minimal, fast event loop shared by the cycle-approximate simulators in
the library (NoC routers, datacenter cluster, intermittent sensor
execution).  Design points:

* Events are ``(time, sequence, callback, payload)`` tuples in a binary
  heap.  The monotonically increasing sequence number makes ordering
  total and deterministic even when timestamps tie, which matters for
  reproducibility of coherence races and queueing ties.
* Callbacks may schedule further events; the kernel runs until the queue
  drains, a time horizon passes, or an event budget is exhausted.
* No global state: a :class:`Simulator` instance owns its clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

EventCallback = Callable[["Simulator", Any], None]


@dataclass(frozen=True)
class Event:
    """A scheduled event (exposed for introspection/testing)."""

    time: float
    seq: int
    callback: EventCallback
    payload: Any = None


class CancelToken:
    """Handle returned by :meth:`Simulator.schedule`; cancels lazily.

    Cancellation marks the token; the kernel discards cancelled events
    when they reach the head of the heap (the standard lazy-deletion
    idiom, O(1) cancel without heap surgery).
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class SimStats:
    """Counters describing a simulation run."""

    events_executed: int = 0
    events_cancelled: int = 0
    end_time: float = 0.0


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s, p: fired.append((s.now, p)), "late")
    <repro.core.events.CancelToken object at ...>
    >>> sim.schedule(1.0, lambda s, p: fired.append((s.now, p)), "early")
    <repro.core.events.CancelToken object at ...>
    >>> stats = sim.run()
    >>> fired
    [(1.0, 'early'), (2.0, 'late')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, CancelToken, EventCallback, Any]] = []
        self._seq = itertools.count()
        self._running = False
        self.stats = SimStats()

    @property
    def now(self) -> float:
        """Current simulation time [s or cycles, caller's choice]."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (possibly cancelled) events."""
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
    ) -> CancelToken:
        """Schedule ``callback(sim, payload)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        token = CancelToken()
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._seq), token, callback, payload),
        )
        return token

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        payload: Any = None,
    ) -> CancelToken:
        """Schedule at an absolute timestamp ``time >= now``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        token = CancelToken()
        heapq.heappush(
            self._heap, (float(time), next(self._seq), token, callback, payload)
        )
        return token

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        while self._heap:
            time, _seq, token, _cb, _payload = self._heap[0]
            if token.cancelled:
                heapq.heappop(self._heap)
                self.stats.events_cancelled += 1
                continue
            return time
        return None

    def step(self) -> bool:
        """Execute the single next live event; return False if drained."""
        while self._heap:
            time, _seq, token, callback, payload = heapq.heappop(self._heap)
            if token.cancelled:
                self.stats.events_cancelled += 1
                continue
            self._now = time
            callback(self, payload)
            self.stats.events_executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> SimStats:
        """Run until the queue drains, ``until`` passes, or budget is hit.

        ``until`` is inclusive: events stamped exactly at ``until`` run.
        On a horizon stop the clock advances to ``until`` so back-to-back
        ``run`` calls behave like one longer run.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run)")
        self._running = True
        executed_this_run = 0
        try:
            while True:
                if max_events is not None and executed_this_run >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                self.step()
                executed_this_run += 1
        finally:
            self._running = False
        self.stats.end_time = self._now
        return self.stats


@dataclass
class PeriodicSource:
    """Helper that re-schedules itself every ``period`` until ``stop_after``.

    Used by traffic generators and sensor duty cycles.  The callback
    receives the simulator and this source's ``payload``.
    """

    period: float
    callback: EventCallback
    payload: Any = None
    stop_after: Optional[float] = None
    fires: int = field(default=0, init=False)

    def start(self, sim: Simulator, initial_delay: float = 0.0) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        sim.schedule(initial_delay, self._fire)

    def _fire(self, sim: Simulator, _payload: Any) -> None:
        if self.stop_after is not None and sim.now > self.stop_after:
            return
        self.callback(sim, self.payload)
        self.fires += 1
        sim.schedule(self.period, self._fire)
