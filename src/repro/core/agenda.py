"""The paper's agenda as an executable model (experiments E06/E21).

Composes the substrate models into whole-system design points — a
technology node, a core mix (big out-of-order / little in-order), an
accelerator allocation, a voltage regime, and a memory system — and
evaluates them against the paper's platform classes and their power
envelopes (10 mW sensor / 10 W portable / 10 kW departmental / 10 MW
datacenter, Section 2.2).

Two canned designs make Table 2 executable:

* :func:`twentieth_century_design` — one big ILP core at nominal
  voltage, performance-first (the left column of Table 2).
* :func:`twenty_first_century_design` — heterogeneous little cores plus
  specialized accelerators, energy-first (the right column).

:func:`agenda_comparison` evaluates both under the same power envelope;
:func:`platform_gap_table` measures how far each platform class sits
from the paper's 100 GOPS/W target and what combination of levers
(specialization x NTV x memory efficiency) closes it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..accelerator.specialization import system_energy_gain
from ..memory.energy import energy_table
from ..processor.power import (
    BIG_OOO_CORE,
    LITTLE_INORDER_CORE,
    CoreDescriptor,
    CorePowerModel,
)
from ..technology.node import get_node
from ..technology.ntv import NTVModel
from . import units
from .design import Metrics


@dataclass(frozen=True)
class PlatformClass:
    """One of the paper's four platform classes."""

    name: str
    power_budget_w: float
    target_ops: float

    def __post_init__(self) -> None:
        if self.power_budget_w <= 0 or self.target_ops <= 0:
            raise ValueError("budget and target must be positive")


def paper_platforms() -> Dict[str, PlatformClass]:
    """Section 2.2's sensor/portable/departmental/datacenter classes."""
    return {
        name: PlatformClass(
            name=name,
            power_budget_w=units.PAPER_POWER_ENVELOPES[name],
            target_ops=units.PAPER_THROUGHPUT_TARGETS[name],
        )
        for name in units.PAPER_POWER_ENVELOPES
    }


@dataclass(frozen=True)
class SystemConfig:
    """A full-system design point."""

    node_name: str = "22nm"
    core: CoreDescriptor = LITTLE_INORDER_CORE
    n_cores: int = 4
    accelerator_coverage: float = 0.0
    accelerator_gain: float = 50.0
    near_threshold: bool = False
    memory_bytes_per_op: float = 0.5
    memory_efficiency_gain: float = 1.0  # compression/stacking/scratchpads
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if not 0.0 <= self.accelerator_coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if self.accelerator_gain <= 0:
            raise ValueError("accelerator gain must be positive")
        if self.memory_bytes_per_op < 0:
            raise ValueError("memory traffic must be non-negative")
        if self.memory_efficiency_gain < 1.0:
            raise ValueError("memory efficiency gain must be >= 1")


def evaluate_system(
    config: SystemConfig,
    power_budget_w: float,
) -> Metrics:
    """Throughput/power/efficiency of a design under a power envelope.

    Energy per operation composes three parts:

    * core energy/instruction from the node-aware core power model
      (optionally scaled by the NTV operating point's energy gain and
      slowdown),
    * accelerator coverage via Amdahl-for-energy
      (:func:`~repro.accelerator.specialization.system_energy_gain`),
    * memory-system energy from per-byte DRAM-class access costs,
      divided by any memory-efficiency lever (compression, 3D
      stacking, scratchpads).

    Throughput is the lesser of the power-limited rate
    (budget / energy_per_op) and the structural peak
    (cores x IPC x frequency, inflated by accelerator speedup).
    """
    if power_budget_w <= 0:
        raise ValueError("power budget must be positive")
    node = get_node(config.node_name)
    core_model = CorePowerModel(node)

    ntv_energy_gain = 1.0
    ntv_slowdown = 1.0
    if config.near_threshold:
        ntv = NTVModel(node)
        v_opt = ntv.optimal_vdd()
        ntv_energy_gain = float(
            ntv.energy_per_op(node.vdd_v)[0] / ntv.energy_per_op(v_opt)[0]
        )
        ntv_slowdown = float(ntv.relative_delay(v_opt)[0])

    report = core_model.evaluate(config.core)
    core_epi = report.energy_per_instruction_j / ntv_energy_gain

    # Accelerators cut the *core* energy on covered work.
    accel_gain = system_energy_gain(
        config.accelerator_gain, config.accelerator_coverage
    )
    compute_energy = core_epi / accel_gain

    table = energy_table(config.node_name)
    per_byte = table.storage["dram_64b"] / 8.0  # J per byte
    memory_energy = (
        config.memory_bytes_per_op * per_byte / config.memory_efficiency_gain
    )

    energy_per_op = compute_energy + memory_energy

    peak_ips = (
        config.n_cores
        * report.instructions_per_second
        / ntv_slowdown
        * accel_gain  # covered work also finishes faster
    )
    power_limited = power_budget_w / energy_per_op
    throughput = min(peak_ips, power_limited)
    power = throughput * energy_per_op

    metrics = Metrics(
        {
            "throughput_ops": throughput,
            "power_w": power,
            "energy_per_op_j": energy_per_op,
            "peak_ops": peak_ips,
            "power_limited_ops": power_limited,
            "compute_energy_j": compute_energy,
            "memory_energy_j": memory_energy,
        }
    )
    metrics.derive_efficiency()
    return metrics


# ---------------------------------------------------------------------------
# Table 2 executable: 20th vs 21st century designs
# ---------------------------------------------------------------------------


def twentieth_century_design(node_name: str = "22nm") -> SystemConfig:
    """Single big ILP core, nominal voltage, generic memory path."""
    return SystemConfig(
        node_name=node_name,
        core=BIG_OOO_CORE,
        n_cores=1,
        accelerator_coverage=0.0,
        near_threshold=False,
        memory_bytes_per_op=1.0,  # cache-oblivious, worst-case traffic
        memory_efficiency_gain=1.0,
        label="20th-century (ILP-first)",
    )


def twenty_first_century_design(
    node_name: str = "22nm",
    n_cores: int = 64,
    accelerator_coverage: float = 0.6,
    accelerator_gain: float = 50.0,
) -> SystemConfig:
    """Many little cores + accelerators + locality-optimized memory."""
    return SystemConfig(
        node_name=node_name,
        core=LITTLE_INORDER_CORE,
        n_cores=n_cores,
        accelerator_coverage=accelerator_coverage,
        accelerator_gain=accelerator_gain,
        near_threshold=False,
        memory_bytes_per_op=0.25,  # locality-managed traffic
        memory_efficiency_gain=2.0,  # compression + stacking
        label="21st-century (energy-first)",
    )


def agenda_comparison(
    node_name: str = "22nm",
    power_budget_w: float = 10.0,
) -> dict[str, float]:
    """Head-to-head under the portable 10 W envelope (E21).

    Returns both designs' throughput and efficiency plus the
    energy-first gain — the executable content of Table 2.
    """
    old = evaluate_system(twentieth_century_design(node_name), power_budget_w)
    new = evaluate_system(
        twenty_first_century_design(node_name), power_budget_w
    )
    return {
        "old_throughput_ops": old["throughput_ops"],
        "new_throughput_ops": new["throughput_ops"],
        "old_ops_per_watt": old["efficiency_ops_per_watt"],
        "new_ops_per_watt": new["efficiency_ops_per_watt"],
        "efficiency_gain": (
            new["efficiency_ops_per_watt"] / old["efficiency_ops_per_watt"]
        ),
        "old_energy_per_op_j": old["energy_per_op_j"],
        "new_energy_per_op_j": new["energy_per_op_j"],
    }


def platform_gap_table(
    node_name: str = "22nm",
    design: Optional[SystemConfig] = None,
) -> dict[str, dict[str, float]]:
    """Each platform class vs the paper's 100 GOPS/W goal (E06).

    Evaluates one design per class (scaled to the class's envelope) and
    reports achieved ops, the paper target, and the remaining gap —
    the "two-to-three orders of magnitude" the paper demands.
    """
    base = design if design is not None else twenty_first_century_design(
        node_name
    )
    # Evaluate one chip at its own scale, then replicate chips to fill
    # each envelope (how real facilities scale out); achieved ops are
    # therefore efficiency x budget.
    chip = evaluate_system(base, power_budget_w=10.0)
    ops_per_watt = chip["efficiency_ops_per_watt"]
    out: dict[str, dict[str, float]] = {}
    for name, platform in paper_platforms().items():
        achieved = ops_per_watt * platform.power_budget_w
        out[name] = {
            "power_budget_w": platform.power_budget_w,
            "achieved_ops": achieved,
            "target_ops": platform.target_ops,
            "gap": platform.target_ops / achieved if achieved else float("inf"),
            "ops_per_watt": ops_per_watt,
        }
    return out


def levers_to_close_gap(
    node_name: str = "22nm",
    power_budget_w: float = 10.0,
) -> dict[str, float]:
    """How far each agenda lever moves efficiency, applied cumulatively.

    Order: baseline little-core -> +many cores (power-limited, so no
    efficiency change but structural peak) -> +specialization -> +NTV ->
    +memory efficiency.  The E06 narrative: no single lever reaches
    100 GOPS/W; the stack of them approaches it.
    """
    steps: dict[str, float] = {}
    cfg = SystemConfig(node_name=node_name, n_cores=1, label="baseline")
    steps["baseline_little_core"] = evaluate_system(cfg, power_budget_w)[
        "efficiency_ops_per_watt"
    ]
    cfg = replace(cfg, n_cores=256)
    steps["many_cores"] = evaluate_system(cfg, power_budget_w)[
        "efficiency_ops_per_watt"
    ]
    cfg = replace(cfg, accelerator_coverage=0.7, accelerator_gain=100.0)
    steps["plus_specialization"] = evaluate_system(cfg, power_budget_w)[
        "efficiency_ops_per_watt"
    ]
    cfg = replace(cfg, near_threshold=True)
    steps["plus_ntv"] = evaluate_system(cfg, power_budget_w)[
        "efficiency_ops_per_watt"
    ]
    cfg = replace(cfg, memory_bytes_per_op=0.1, memory_efficiency_gain=4.0)
    steps["plus_memory_efficiency"] = evaluate_system(cfg, power_budget_w)[
        "efficiency_ops_per_watt"
    ]
    steps["paper_target"] = units.PAPER_TARGET_OPS_PER_WATT
    return steps
