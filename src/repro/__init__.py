"""repro — a 21st Century Computer Architecture modeling toolkit.

Executable reproduction of the community white paper *"21st Century
Computer Architecture"* (PPoPP 2014 keynote; Hill et al., May 2012).

The paper is an agenda: energy-first design, architecture as
infrastructure from sensors to clouds, specialization, new technologies,
and cross-cutting "ilities".  This library renders that agenda as code —
a family of laptop-scale simulators and first-order analytic models, one
per substrate the paper invokes, plus a cross-layer design-space explorer
(:mod:`repro.core.agenda`) that evaluates whole systems against the
paper's 10 mW / 10 W / 10 kW / 10 MW platform envelopes.

Subpackages
-----------
core
    Discrete-event kernel + cross-layer instrumentation, energy ledger,
    Pareto/DSE machinery, agenda.
technology
    Moore/Dennard scaling, node database, CPU-DB attribution, reliability,
    near-threshold voltage, dark silicon.
processor
    Tiny RISC ISA, trace generation, in-order and out-of-order core
    models, branch prediction, Pollack's rule, core power.
memory
    Caches, hierarchies, MESI coherence, DRAM, NVM (PCM/STT-RAM/...),
    wear leveling, compression, per-access energy.
interconnect
    Topologies, event-driven mesh NoC (on the shared kernel), traffic,
    electrical/photonic/3D link energy models.
parallel
    Amdahl/Gustafson/Hill-Marty laws, communication-aware scaling,
    task DAGs, work stealing, synchronization, transactional memory.
accelerator
    Specialization economics, coverage-limited Amdahl, CGRA/FPGA/GPU
    models, NRE amortization, mobile-cloud offload.
datacenter
    Tail latency at scale, hedged requests, cluster queueing simulation,
    power provisioning, availability, TCO.
exec
    Experiment execution engine: job graphs with deterministic seeds,
    serial/multiprocess runners with timeout+retry fault containment,
    content-addressed on-disk result cache, structured run reports.
sensor
    Sensor-node energy, energy harvesting and intermittent computing,
    duty cycling, approximate computing, synthetic biometric signals.
crosscut
    Information-flow tracking, invariant checking, fault injection,
    SECDED ECC, QoS partitioning.
workloads
    Synthetic kernels, instruction mixes, big-data streams, human-network
    analytics graphs.
analysis
    Experiment registry, table renderers, statistics helpers.
"""

__version__ = "1.6.0"

from . import (  # noqa: E402 - __version__ must exist before subpackages load
    accelerator,
    analysis,
    core,
    crosscut,
    datacenter,
    exec,  # noqa: A004 - deliberate: the execution-engine subpackage
    interconnect,
    memory,
    parallel,
    processor,
    sensor,
    technology,
    workloads,
)

__all__ = [
    "accelerator",
    "analysis",
    "core",
    "crosscut",
    "datacenter",
    "exec",
    "interconnect",
    "memory",
    "parallel",
    "processor",
    "sensor",
    "technology",
    "workloads",
    "__version__",
]
