"""Sensor substrate: biometric signals, node energy, harvesting and
intermittent computing, duty cycling, approximate computing
(Section 2.1, Appendix A; experiments E14/E15).
"""

from .approximate import (
    energy_quality_frontier,
    precision_energy_scale,
    precision_sweep,
    quantize,
    snr_db,
    subsample_sweep,
    unreliable_storage_noise,
)
from .duty import DutyCycleModel, lifetime_latency_tradeoff, simulate_duty_cycle
from .harvest import (
    Harvester,
    IntermittentConfig,
    IntermittentNode,
    IntermittentResult,
    checkpoint_sweep,
    simulate_intermittent,
)
from .platform import SensorNode, filtering_tradeoff, pipeline_ledger
from .signals import (
    ECGConfig,
    detector_quality,
    event_rate,
    synthetic_ecg,
    threshold_detector,
    zscore_detector,
)

__all__ = [
    "DutyCycleModel",
    "ECGConfig",
    "Harvester",
    "IntermittentConfig",
    "IntermittentNode",
    "IntermittentResult",
    "SensorNode",
    "checkpoint_sweep",
    "detector_quality",
    "energy_quality_frontier",
    "event_rate",
    "filtering_tradeoff",
    "lifetime_latency_tradeoff",
    "pipeline_ledger",
    "precision_energy_scale",
    "precision_sweep",
    "quantize",
    "simulate_duty_cycle",
    "simulate_intermittent",
    "snr_db",
    "subsample_sweep",
    "synthetic_ecg",
    "threshold_detector",
    "unreliable_storage_noise",
    "zscore_detector",
]
