"""Approximate computing on sensor data (experiment E15).

"Given that sensor data is inherently approximate, it opens the
potential to effectively apply approximate computing techniques, which
can lead to significant energy savings (and complexity reduction)"
(Section 2.1); "approximate data types" (Section 2.4).

Three mechanisms, each with an energy model and a measurable quality
cost on real (synthetic) signals:

* **Precision scaling** — quantize to b bits; multiplier energy scales
  ~quadratically with operand width, adders/data movement linearly.
* **Sampling reduction** — process every k-th sample (loop
  perforation's signal-processing cousin).
* **Approximate storage** — let a fraction of bits be unreliable
  (drift-prone MLC cells / low-Vdd SRAM) and measure the SNR hit.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RngLike, resolve_rng


def quantize(signal: np.ndarray, bits: int, full_scale: float = None) -> np.ndarray:
    """Uniform mid-rise quantization to ``bits`` bits."""
    if bits < 1 or bits > 32:
        raise ValueError("bits must be in [1, 32]")
    x = np.asarray(signal, dtype=float)
    fs = float(np.max(np.abs(x))) if full_scale is None else full_scale
    if fs <= 0:
        return np.zeros_like(x)
    levels = 2 ** (bits - 1)
    step = fs / levels
    return np.clip(np.round(x / step), -levels, levels - 1) * step


def snr_db(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Signal-to-noise ratio of an approximation [dB]."""
    ref = np.asarray(reference, dtype=float)
    approx = np.asarray(approximate, dtype=float)
    if ref.shape != approx.shape:
        raise ValueError("shapes must match")
    signal_power = float(np.mean(ref**2))
    noise_power = float(np.mean((ref - approx) ** 2))
    if noise_power == 0:
        return float("inf")
    if signal_power == 0:
        return -float("inf")
    return 10.0 * np.log10(signal_power / noise_power)


def precision_energy_scale(
    bits: int,
    reference_bits: int = 16,
    multiplier_fraction: float = 0.4,
) -> float:
    """Relative compute energy at ``bits`` vs ``reference_bits``.

    Multiplier array energy ~ b^2; adders, registers, and movement ~ b.
    """
    if bits < 1 or reference_bits < 1:
        raise ValueError("bit widths must be >= 1")
    if not 0.0 <= multiplier_fraction <= 1.0:
        raise ValueError("multiplier_fraction must be in [0, 1]")
    quad = (bits / reference_bits) ** 2
    lin = bits / reference_bits
    return multiplier_fraction * quad + (1.0 - multiplier_fraction) * lin


def precision_sweep(
    signal: np.ndarray,
    bit_widths=(4, 6, 8, 10, 12, 16),
    reference_bits: int = 16,
) -> dict[str, np.ndarray]:
    """Energy vs quality across precisions (the E15 curve)."""
    x = np.asarray(signal, dtype=float)
    if x.size == 0:
        raise ValueError("signal must be non-empty")
    widths = list(bit_widths)
    if not widths:
        raise ValueError("need at least one bit width")
    energies, quality = [], []
    for b in widths:
        approx = quantize(x, int(b))
        energies.append(precision_energy_scale(int(b), reference_bits))
        quality.append(snr_db(x, approx))
    return {
        "bits": np.asarray(widths, dtype=float),
        "relative_energy": np.array(energies),
        "snr_db": np.array(quality),
    }


def subsample_sweep(
    signal: np.ndarray,
    factors=(1, 2, 4, 8, 16),
) -> dict[str, np.ndarray]:
    """Energy vs quality for processing every k-th sample.

    Quality is the SNR of the linear-interpolation reconstruction —
    smooth biosignals tolerate aggressive subsampling, which is exactly
    why "sensor data is inherently approximate" pays off.
    """
    x = np.asarray(signal, dtype=float)
    if x.size < 4:
        raise ValueError("signal too short")
    ks = list(factors)
    if not ks or any(k < 1 for k in ks):
        raise ValueError("factors must be >= 1")
    energies, quality = [], []
    idx = np.arange(x.size)
    for k in ks:
        kept = idx[:: int(k)]
        reconstructed = np.interp(idx, kept, x[kept])
        energies.append(1.0 / k)
        quality.append(snr_db(x, reconstructed))
    return {
        "factor": np.asarray(ks, dtype=float),
        "relative_energy": np.array(energies),
        "snr_db": np.array(quality),
    }


def unreliable_storage_noise(
    signal: np.ndarray,
    bit_error_rate: float,
    bits: int = 12,
    rng: RngLike = None,
) -> np.ndarray:
    """Flip stored bits at ``bit_error_rate``; return the corrupted signal.

    Models approximate storage (low-refresh DRAM / drifting MLC): each
    of the ``bits`` positions of each quantized sample flips
    independently.  Errors in high-order bits hurt more — emergent, not
    assumed.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    if bits < 1 or bits > 31:
        raise ValueError("bits must be in [1, 31]")
    gen = resolve_rng(rng)
    x = np.asarray(signal, dtype=float)
    fs = float(np.max(np.abs(x))) or 1.0
    levels = 2 ** (bits - 1)
    step = fs / levels
    codes = np.clip(np.round(x / step) + levels, 0, 2**bits - 1).astype(
        np.int64
    )
    flips = gen.random((x.size, bits)) < bit_error_rate
    flip_mask = np.zeros(x.size, dtype=np.int64)
    for b in range(bits):
        flip_mask |= flips[:, b].astype(np.int64) << b
    corrupted = codes ^ flip_mask
    return (corrupted - levels) * step


def energy_quality_frontier(
    signal: np.ndarray,
    min_snr_db: float = 20.0,
) -> dict[str, float]:
    """Cheapest precision meeting a quality floor.

    The approximate-computing deployment question: how much energy can
    precision scaling save while keeping SNR above ``min_snr_db``?
    """
    sweep = precision_sweep(signal)
    ok = sweep["snr_db"] >= min_snr_db
    if not np.any(ok):
        raise ValueError(
            f"no precision in the sweep meets {min_snr_db} dB"
        )
    i = int(np.argmax(ok))  # first (cheapest) width meeting the floor
    return {
        "bits": float(sweep["bits"][i]),
        "relative_energy": float(sweep["relative_energy"][i]),
        "snr_db": float(sweep["snr_db"][i]),
        "energy_saving": 1.0 - float(sweep["relative_energy"][i]),
    }
