"""Sensor-node energy model: sense / compute / transmit (experiment E14).

"The need for greater computational capability is driven by the
importance of filtering and processing data where it is generated ...
because the energy required to communicate data often outweighs that of
computation" (Section 2.1).

:class:`SensorNode` prices the three activities; the pipeline
comparisons quantify the transmit-raw vs. filter-locally tradeoff on
real (synthetic) signal workloads, including detector quality — the
energy win is only a win if anomalies still get through.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.energy import EnergyLedger
from ..core.rng import RngLike
from .signals import (
    ECGConfig,
    detector_quality,
    event_rate,
    synthetic_ecg,
    zscore_detector,
)


@dataclass(frozen=True)
class SensorNode:
    """Per-activity energy of a wearable-class sensor node.

    Defaults are representative of a BLE-class wearable: radio
    ~50 nJ/bit, microcontroller op ~20 pJ, ADC sample ~1 nJ.
    """

    sense_energy_per_sample_j: float = 1e-9
    compute_energy_per_op_j: float = 20e-12
    radio_energy_per_bit_j: float = 50e-9
    radio_startup_j: float = 5e-6  # per transmission burst
    bits_per_sample: int = 12
    battery_j: float = 1200.0  # coin-cell class (~100 mAh @ 3V)

    def __post_init__(self) -> None:
        if min(self.sense_energy_per_sample_j, self.compute_energy_per_op_j,
               self.radio_energy_per_bit_j, self.radio_startup_j) < 0:
            raise ValueError("energies must be non-negative")
        if self.bits_per_sample < 1:
            raise ValueError("bits_per_sample must be >= 1")
        if self.battery_j <= 0:
            raise ValueError("battery must hold positive energy")

    # -- pipeline energies ---------------------------------------------------

    def transmit_raw_energy_j(
        self, n_samples: int, samples_per_burst: int = 250
    ) -> float:
        """Ship every sample to the cloud (no local processing)."""
        if n_samples < 0 or samples_per_burst < 1:
            raise ValueError("bad sample counts")
        sense = self.sense_energy_per_sample_j * n_samples
        bits = n_samples * self.bits_per_sample
        bursts = int(np.ceil(n_samples / samples_per_burst))
        radio = self.radio_energy_per_bit_j * bits + self.radio_startup_j * bursts
        return sense + radio

    def filter_locally_energy_j(
        self,
        n_samples: int,
        ops_per_sample: float,
        n_events: int,
        bits_per_event: int = 256,
    ) -> float:
        """Process on the node; transmit only detected events."""
        if n_samples < 0 or ops_per_sample < 0 or n_events < 0:
            raise ValueError("bad counts")
        if bits_per_event < 1:
            raise ValueError("bits_per_event must be >= 1")
        sense = self.sense_energy_per_sample_j * n_samples
        compute = self.compute_energy_per_op_j * ops_per_sample * n_samples
        radio = n_events * (
            self.radio_energy_per_bit_j * bits_per_event + self.radio_startup_j
        )
        return sense + compute + radio

    def lifetime_days(self, average_power_w: float) -> float:
        """Battery life at a given average power draw."""
        if average_power_w <= 0:
            raise ValueError("power must be positive")
        return self.battery_j / average_power_w / 86400.0


def filtering_tradeoff(
    node: SensorNode = SensorNode(),
    duration_s: float = 3600.0,
    ops_per_sample: float = 50.0,
    anomaly_rate: float = 0.02,
    rng: RngLike = 0,
) -> dict[str, float]:
    """Run the healthcare pipeline both ways on a synthetic ECG hour.

    Returns energies, the energy ratio (raw / filtered — the paper's
    "communication often outweighs computation" factor), detector
    quality, and implied battery lifetimes.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    config = ECGConfig()
    trace = synthetic_ecg(
        duration_s, config, anomaly_rate=anomaly_rate, rng=rng
    )
    n_samples = trace["signal"].size
    detections = zscore_detector(trace["signal"])
    quality = detector_quality(detections, trace["anomaly_mask"])
    n_events = event_rate(detections)

    raw = node.transmit_raw_energy_j(n_samples)
    filtered = node.filter_locally_energy_j(
        n_samples, ops_per_sample, n_events
    )
    return {
        "n_samples": float(n_samples),
        "n_events": float(n_events),
        "raw_energy_j": raw,
        "filtered_energy_j": filtered,
        "energy_ratio": raw / filtered if filtered > 0 else float("inf"),
        "recall": quality["recall"],
        "precision": quality["precision"],
        "raw_lifetime_days": node.lifetime_days(raw / duration_s),
        "filtered_lifetime_days": node.lifetime_days(filtered / duration_s),
    }


def pipeline_ledger(
    node: SensorNode,
    n_samples: int,
    ops_per_sample: float,
    n_events: int,
) -> EnergyLedger:
    """Itemized ledger for the filter-locally pipeline (for reports)."""
    ledger = EnergyLedger()
    ledger.charge("sense.adc", node.sense_energy_per_sample_j * n_samples,
                  ops=n_samples)
    ledger.charge(
        "compute.filter",
        node.compute_energy_per_op_j * ops_per_sample * n_samples,
        ops=int(ops_per_sample * n_samples),
    )
    ledger.charge(
        "radio.events",
        n_events * (node.radio_energy_per_bit_j * 256 + node.radio_startup_j),
    )
    return ledger
