"""Duty-cycle optimization for battery/harvest-limited sensors.

Sensors "require high performance for short periods followed by
relatively long idle periods" (Section 2.2).  The model: a node wakes at
a chosen rate, samples/processes a burst, and sleeps; lifetime and
detection latency trade off through the duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DutyCycleModel:
    """Energy of a wake/sample/sleep regime."""

    active_power_w: float = 5e-3
    sleep_power_w: float = 5e-6
    wake_cost_j: float = 2e-6  # oscillator/radio warmup per wake
    burst_duration_s: float = 0.05

    def __post_init__(self) -> None:
        if self.active_power_w <= 0 or self.sleep_power_w < 0:
            raise ValueError("bad powers")
        if self.sleep_power_w >= self.active_power_w:
            raise ValueError("sleep power must be below active power")
        if self.wake_cost_j < 0 or self.burst_duration_s <= 0:
            raise ValueError("bad wake/burst parameters")

    def average_power_w(self, wakes_per_s: float) -> float:
        """Mean power at a wake rate (bursts must fit in the period)."""
        if wakes_per_s < 0:
            raise ValueError("wake rate must be non-negative")
        duty = wakes_per_s * self.burst_duration_s
        if duty > 1.0:
            raise ValueError("burst schedule exceeds 100% duty cycle")
        return (
            duty * self.active_power_w
            + (1.0 - duty) * self.sleep_power_w
            + wakes_per_s * self.wake_cost_j
        )

    def lifetime_days(self, wakes_per_s: float, battery_j: float) -> float:
        if battery_j <= 0:
            raise ValueError("battery must be positive")
        power = self.average_power_w(wakes_per_s)
        return battery_j / power / 86400.0

    def detection_latency_s(self, wakes_per_s: float) -> float:
        """Mean delay until an always-present event is noticed: half the
        wake period (event arrival uniform over the period)."""
        if wakes_per_s <= 0:
            return float("inf")
        return 0.5 / wakes_per_s

    def max_wake_rate_for_lifetime(
        self, target_days: float, battery_j: float
    ) -> float:
        """Highest wake rate meeting a lifetime target (closed form).

        P_avg = sleep + r*(burst*(active-sleep) + wake_cost) is linear
        in r, so invert directly; clamps at the 100%-duty ceiling.
        """
        if target_days <= 0 or battery_j <= 0:
            raise ValueError("targets must be positive")
        budget_w = battery_j / (target_days * 86400.0)
        slope = (
            self.burst_duration_s * (self.active_power_w - self.sleep_power_w)
            + self.wake_cost_j
        )
        headroom = budget_w - self.sleep_power_w
        if headroom <= 0:
            return 0.0
        rate = headroom / slope
        return float(min(rate, 1.0 / self.burst_duration_s))


def lifetime_latency_tradeoff(
    model: DutyCycleModel,
    wake_rates: np.ndarray,
    battery_j: float = 1200.0,
) -> dict[str, np.ndarray]:
    """The sensor designer's curve: battery life vs detection latency."""
    rates = np.asarray(wake_rates, dtype=float)
    if np.any(rates <= 0):
        raise ValueError("wake rates must be positive")
    lifetimes = np.array(
        [model.lifetime_days(r, battery_j) for r in rates]
    )
    latencies = np.array([model.detection_latency_s(r) for r in rates])
    return {
        "wakes_per_s": rates,
        "lifetime_days": lifetimes,
        "detection_latency_s": latencies,
    }
