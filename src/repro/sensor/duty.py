"""Duty-cycle optimization for battery/harvest-limited sensors.

Sensors "require high performance for short periods followed by
relatively long idle periods" (Section 2.2).  The model: a node wakes at
a chosen rate, samples/processes a burst, and sleeps; lifetime and
detection latency trade off through the duty cycle.

The closed forms are exact for the steady state;
:func:`simulate_duty_cycle` replays the same regime as wake events on
the shared event kernel (:class:`repro.core.events.Simulator`) so the
energy accounting can be cross-checked and instrumented like every
other simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.events import PeriodicSource, Simulator


@dataclass(frozen=True)
class DutyCycleModel:
    """Energy of a wake/sample/sleep regime."""

    active_power_w: float = 5e-3
    sleep_power_w: float = 5e-6
    wake_cost_j: float = 2e-6  # oscillator/radio warmup per wake
    burst_duration_s: float = 0.05

    def __post_init__(self) -> None:
        if self.active_power_w <= 0 or self.sleep_power_w < 0:
            raise ValueError("bad powers")
        if self.sleep_power_w >= self.active_power_w:
            raise ValueError("sleep power must be below active power")
        if self.wake_cost_j < 0 or self.burst_duration_s <= 0:
            raise ValueError("bad wake/burst parameters")

    def average_power_w(self, wakes_per_s: float) -> float:
        """Mean power at a wake rate (bursts must fit in the period)."""
        if wakes_per_s < 0:
            raise ValueError("wake rate must be non-negative")
        duty = wakes_per_s * self.burst_duration_s
        if duty > 1.0:
            raise ValueError("burst schedule exceeds 100% duty cycle")
        return (
            duty * self.active_power_w
            + (1.0 - duty) * self.sleep_power_w
            + wakes_per_s * self.wake_cost_j
        )

    def lifetime_days(self, wakes_per_s: float, battery_j: float) -> float:
        if battery_j <= 0:
            raise ValueError("battery must be positive")
        power = self.average_power_w(wakes_per_s)
        return battery_j / power / 86400.0

    def detection_latency_s(self, wakes_per_s: float) -> float:
        """Mean delay until an always-present event is noticed: half the
        wake period (event arrival uniform over the period)."""
        if wakes_per_s <= 0:
            return float("inf")
        return 0.5 / wakes_per_s

    def max_wake_rate_for_lifetime(
        self, target_days: float, battery_j: float
    ) -> float:
        """Highest wake rate meeting a lifetime target (closed form).

        P_avg = sleep + r*(burst*(active-sleep) + wake_cost) is linear
        in r, so invert directly; clamps at the 100%-duty ceiling.
        """
        if target_days <= 0 or battery_j <= 0:
            raise ValueError("targets must be positive")
        budget_w = battery_j / (target_days * 86400.0)
        slope = (
            self.burst_duration_s * (self.active_power_w - self.sleep_power_w)
            + self.wake_cost_j
        )
        headroom = budget_w - self.sleep_power_w
        if headroom <= 0:
            return 0.0
        rate = headroom / slope
        return float(min(rate, 1.0 / self.burst_duration_s))


def simulate_duty_cycle(
    model: DutyCycleModel,
    wakes_per_s: float,
    duration_s: float,
    sim: Optional[Simulator] = None,
) -> dict[str, float]:
    """Replay the wake/burst/sleep regime on the event kernel.

    Each wake is a :class:`PeriodicSource` firing; every firing charges
    the wake cost plus the burst's active energy, and the sleep floor
    accrues over the full duration.  Converges on
    :meth:`DutyCycleModel.average_power_w` as whole periods fit the
    duration — the cross-check that the closed form and the event path
    price the same regime.
    """
    if wakes_per_s <= 0:
        raise ValueError("wake rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    period = 1.0 / wakes_per_s
    if model.burst_duration_s > period:
        raise ValueError("burst schedule exceeds 100% duty cycle")

    kernel = sim if sim is not None else Simulator()
    stats = kernel.metrics.scoped("sensor.duty")
    energy = [0.0]
    per_wake_j = model.wake_cost_j + (
        model.burst_duration_s
        * (model.active_power_w - model.sleep_power_w)
    )

    def wake(s: Simulator, _payload) -> None:
        energy[0] += per_wake_j
        stats.counter("wakes").inc()

    source = PeriodicSource(period=period, callback=wake,
                            stop_after=duration_s - model.burst_duration_s)
    source.start(kernel)
    kernel.run(until=duration_s)
    source.stop()
    energy[0] += model.sleep_power_w * duration_s
    stats.gauge("average_power_w").set(energy[0] / duration_s)
    return {
        "wakes": float(source.fires),
        "energy_j": energy[0],
        "average_power_w": energy[0] / duration_s,
        "closed_form_power_w": model.average_power_w(wakes_per_s),
    }


def lifetime_latency_tradeoff(
    model: DutyCycleModel,
    wake_rates: np.ndarray,
    battery_j: float = 1200.0,
) -> dict[str, np.ndarray]:
    """The sensor designer's curve: battery life vs detection latency."""
    rates = np.asarray(wake_rates, dtype=float)
    if np.any(rates <= 0):
        raise ValueError("wake rates must be positive")
    lifetimes = np.array(
        [model.lifetime_days(r, battery_j) for r in rates]
    )
    latencies = np.array([model.detection_latency_s(r) for r in rates])
    return {
        "wakes_per_s": rates,
        "lifetime_days": lifetimes,
        "detection_latency_s": latencies,
    }
