"""Energy harvesting and intermittent computing (paper Section 2.1).

"This environment brings exciting new opportunities like designing
systems that can leverage intermittent power (e.g., from harvested
energy)."

The simulator models a harvester charging a small capacitor; the node
executes a task in chunks, checkpointing progress to NVM.  When the
capacitor drains below the operating threshold, execution dies and
resumes from the last checkpoint once recharged.  The classic
intermittent-computing tradeoff falls out: frequent checkpoints waste
energy, rare checkpoints waste re-executed work; forward progress peaks
in between.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class Harvester:
    """Stochastic power source (solar/RF-class)."""

    mean_power_w: float = 2e-3
    variability: float = 0.5  # coefficient of variation
    blackout_prob: float = 0.05  # per interval: zero harvest

    def __post_init__(self) -> None:
        if self.mean_power_w <= 0:
            raise ValueError("mean power must be positive")
        if self.variability < 0:
            raise ValueError("variability must be non-negative")
        if not 0.0 <= self.blackout_prob <= 1.0:
            raise ValueError("blackout_prob must be in [0, 1]")

    def sample_power(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Harvest power per interval [W]."""
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = resolve_rng(rng)
        if self.variability == 0:
            power = np.full(n, self.mean_power_w)
        else:
            sigma = np.sqrt(np.log(1 + self.variability**2))
            mu = np.log(self.mean_power_w) - sigma**2 / 2
            power = gen.lognormal(mu, sigma, size=n)
        power[gen.random(n) < self.blackout_prob] = 0.0
        return power


@dataclass(frozen=True)
class IntermittentConfig:
    """Node capacitor + task parameters."""

    capacitor_j: float = 1e-3
    turn_on_j: float = 6e-4  # start executing above this
    brown_out_j: float = 1e-4  # die below this
    active_power_w: float = 5e-3
    checkpoint_cost_j: float = 2e-5
    work_per_interval_j: float = 5e-5  # energy for one work quantum
    interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.capacitor_j <= 0:
            raise ValueError("capacitor must be positive")
        if not 0 <= self.brown_out_j < self.turn_on_j <= self.capacitor_j:
            raise ValueError("need brown_out < turn_on <= capacitor")
        if self.active_power_w <= 0 or self.interval_s <= 0:
            raise ValueError("power and interval must be positive")
        if self.checkpoint_cost_j < 0 or self.work_per_interval_j <= 0:
            raise ValueError("bad checkpoint/work energies")


@dataclass
class IntermittentResult:
    total_quanta_completed: int
    committed_quanta: int
    re_executed_quanta: int
    checkpoints: int
    power_failures: int
    intervals: int

    @property
    def forward_progress_rate(self) -> float:
        """Committed work quanta per interval."""
        if self.intervals == 0:
            return float("nan")
        return self.committed_quanta / self.intervals

    @property
    def waste_fraction(self) -> float:
        total = self.total_quanta_completed
        if total == 0:
            return 0.0
        return self.re_executed_quanta / total


def simulate_intermittent(
    harvester: Harvester,
    config: IntermittentConfig,
    checkpoint_interval_quanta: int,
    n_intervals: int = 20_000,
    rng: RngLike = None,
) -> IntermittentResult:
    """Run the charge-execute-die-resume loop.

    ``checkpoint_interval_quanta`` work quanta execute between
    checkpoints; on a brown-out everything since the last checkpoint is
    lost and re-executed after recharge.
    """
    if checkpoint_interval_quanta < 1:
        raise ValueError("checkpoint interval must be >= 1")
    if n_intervals < 1:
        raise ValueError("need at least one interval")
    gen = resolve_rng(rng)
    harvest = harvester.sample_power(n_intervals, rng=gen) * config.interval_s

    stored = 0.0
    executing = False
    uncommitted = 0
    committed = 0
    total_done = 0
    re_executed = 0
    checkpoints = 0
    failures = 0

    for i in range(n_intervals):
        stored = min(stored + harvest[i], config.capacitor_j)
        if not executing and stored >= config.turn_on_j:
            executing = True
        if not executing:
            continue
        # Execute one quantum if energy allows.
        needed = config.work_per_interval_j
        if stored - needed < config.brown_out_j:
            # Brown-out: lose uncommitted work.
            executing = False
            failures += 1
            re_executed += uncommitted
            uncommitted = 0
            continue
        stored -= needed
        uncommitted += 1
        total_done += 1
        if uncommitted >= checkpoint_interval_quanta:
            if stored - config.checkpoint_cost_j >= config.brown_out_j:
                stored -= config.checkpoint_cost_j
                committed += uncommitted
                uncommitted = 0
                checkpoints += 1
            else:
                executing = False
                failures += 1
                re_executed += uncommitted
                uncommitted = 0
    return IntermittentResult(
        total_quanta_completed=total_done,
        committed_quanta=committed,
        re_executed_quanta=re_executed,
        checkpoints=checkpoints,
        power_failures=failures,
        intervals=n_intervals,
    )


def checkpoint_sweep(
    intervals_quanta,
    harvester: Harvester = Harvester(),
    config: IntermittentConfig = IntermittentConfig(),
    n_intervals: int = 20_000,
    rng: RngLike = 0,
) -> dict[str, np.ndarray]:
    """Forward progress vs. checkpoint interval — the canonical
    intermittent-computing U-curve (too often = overhead; too rarely =
    lost work)."""
    ks = list(intervals_quanta)
    if not ks:
        raise ValueError("need at least one interval setting")
    progress, waste = [], []
    for k in ks:
        result = simulate_intermittent(
            harvester, config, int(k), n_intervals=n_intervals, rng=rng
        )
        progress.append(result.forward_progress_rate)
        waste.append(result.waste_fraction)
    return {
        "checkpoint_interval": np.asarray(ks, dtype=float),
        "forward_progress": np.array(progress),
        "waste_fraction": np.array(waste),
    }
