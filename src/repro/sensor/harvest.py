"""Energy harvesting and intermittent computing (paper Section 2.1).

"This environment brings exciting new opportunities like designing
systems that can leverage intermittent power (e.g., from harvested
energy)."

The simulator models a harvester charging a small capacitor; the node
executes a task in chunks, checkpointing progress to NVM.  When the
capacitor drains below the operating threshold, execution dies and
resumes from the last checkpoint once recharged.  The classic
intermittent-computing tradeoff falls out: frequent checkpoints waste
energy, rare checkpoints waste re-executed work; forward progress peaks
in between.

Time advances on the shared event kernel: each harvest interval is one
tick event on a :class:`repro.core.events.Simulator`, bulk-loaded as a
pre-computed train via :meth:`~repro.core.events.Simulator.
schedule_batch`, so the node's charge state, checkpoints, and power
failures are observable through the kernel's instrumentation like every
other simulator in the library — and the whole train executes as one
macro-batch (:func:`repro.core.macro.as_macro`) when the kernel's fast
paths are enabled and no observers are attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.events import Simulator
from ..core.macro import as_macro
from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class Harvester:
    """Stochastic power source (solar/RF-class)."""

    mean_power_w: float = 2e-3
    variability: float = 0.5  # coefficient of variation
    blackout_prob: float = 0.05  # per interval: zero harvest

    def __post_init__(self) -> None:
        if self.mean_power_w <= 0:
            raise ValueError("mean power must be positive")
        if self.variability < 0:
            raise ValueError("variability must be non-negative")
        if not 0.0 <= self.blackout_prob <= 1.0:
            raise ValueError("blackout_prob must be in [0, 1]")

    def sample_power(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Harvest power per interval [W]."""
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = resolve_rng(rng)
        if self.variability == 0:
            power = np.full(n, self.mean_power_w)
        else:
            sigma = np.sqrt(np.log(1 + self.variability**2))
            mu = np.log(self.mean_power_w) - sigma**2 / 2
            power = gen.lognormal(mu, sigma, size=n)
        power[gen.random(n) < self.blackout_prob] = 0.0
        return power


@dataclass(frozen=True)
class IntermittentConfig:
    """Node capacitor + task parameters."""

    capacitor_j: float = 1e-3
    turn_on_j: float = 6e-4  # start executing above this
    brown_out_j: float = 1e-4  # die below this
    active_power_w: float = 5e-3
    checkpoint_cost_j: float = 2e-5
    work_per_interval_j: float = 5e-5  # energy for one work quantum
    interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.capacitor_j <= 0:
            raise ValueError("capacitor must be positive")
        if not 0 <= self.brown_out_j < self.turn_on_j <= self.capacitor_j:
            raise ValueError("need brown_out < turn_on <= capacitor")
        if self.active_power_w <= 0 or self.interval_s <= 0:
            raise ValueError("power and interval must be positive")
        if self.checkpoint_cost_j < 0 or self.work_per_interval_j <= 0:
            raise ValueError("bad checkpoint/work energies")


@dataclass
class IntermittentResult:
    total_quanta_completed: int
    committed_quanta: int
    re_executed_quanta: int
    checkpoints: int
    power_failures: int
    intervals: int

    @property
    def forward_progress_rate(self) -> float:
        """Committed work quanta per interval."""
        if self.intervals == 0:
            return float("nan")
        return self.committed_quanta / self.intervals

    @property
    def waste_fraction(self) -> float:
        total = self.total_quanta_completed
        if total == 0:
            return 0.0
        return self.re_executed_quanta / total


class IntermittentNode:
    """Charge-execute-die-resume state machine (a kernel model).

    Each tick of the driving interval train is one harvest interval:
    charge the capacitor, execute a work quantum if above the brown-out
    floor, checkpoint every ``checkpoint_interval_quanta`` quanta.
    State lives on the instance so fault injectors and samplers can
    observe (or perturb) it mid-run.
    """

    def __init__(
        self,
        harvester: Harvester,
        config: IntermittentConfig,
        checkpoint_interval_quanta: int,
        harvest_j: np.ndarray,
    ) -> None:
        if checkpoint_interval_quanta < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.harvester = harvester
        self.config = config
        self.checkpoint_interval_quanta = checkpoint_interval_quanta
        self._harvest_j = harvest_j
        self._stats = None
        self._tracer = None
        self.reset()

    # -- SimModel protocol -------------------------------------------------

    def bind(self, sim: Simulator) -> None:
        self._stats = sim.metrics.scoped("sensor.intermittent")
        self._tracer = getattr(sim.metrics, "tracer", None)

    def reset(self) -> None:
        self.stored_j = 0.0
        self.executing = False
        self.uncommitted = 0
        self.committed = 0
        self.total_done = 0
        self.re_executed = 0
        self.checkpoints = 0
        self.failures = 0
        self.ticks = 0
        self.faults_injected = 0

    def finish(self) -> None:
        if self._stats is not None:
            self._stats.counter("checkpoints").inc(self.checkpoints)
            self._stats.counter("power_failures").inc(self.failures)
            self._stats.counter("quanta_committed").inc(self.committed)
            self._stats.gauge("stored_j").set(self.stored_j)

    # -- Checkpointable protocol -------------------------------------------

    def snapshot_state(self):
        return (
            self.stored_j,
            self.executing,
            self.uncommitted,
            self.committed,
            self.total_done,
            self.re_executed,
            self.checkpoints,
            self.failures,
            self.ticks,
            self.faults_injected,
        )

    def restore_state(self, state) -> None:
        (
            self.stored_j,
            self.executing,
            self.uncommitted,
            self.committed,
            self.total_done,
            self.re_executed,
            self.checkpoints,
            self.failures,
            self.ticks,
            self.faults_injected,
        ) = state

    # -- fault-injection hook ----------------------------------------------

    def inject_fault(self, sim: Simulator, rng) -> str:
        """Transient energy fault: lose a random fraction of stored charge.

        Models a harvesting glitch / capacitor leakage burst.  If the
        drain pulls the node below the brown-out floor while executing,
        uncommitted work is lost exactly as on a natural power failure.
        """
        fraction = float(rng.uniform(0.5, 1.0))
        lost = self.stored_j * fraction
        self.stored_j -= lost
        if self.executing and self.stored_j < self.config.brown_out_j:
            self._brown_out(sim.now)
        self.faults_injected += 1
        if self._stats is not None:
            self._stats.counter("faults").inc()
        return f"energy drain {fraction:.0%} ({lost:.2e} J lost)"

    def _brown_out(self, now: Optional[float] = None) -> None:
        self.executing = False
        self.failures += 1
        lost = self.uncommitted
        self.re_executed += lost
        self.uncommitted = 0
        if self._tracer is not None and now is not None:
            # Zero-length mark in sim-time; attrs are pure model state,
            # so the span replays identically after a restore.
            self._tracer.emit("harvest.brownout", now, now, lost_quanta=lost)

    def tick(self, sim: Simulator, _payload=None) -> None:
        config = self.config
        harvest = self._harvest_j[self.ticks]
        self.ticks += 1
        self.stored_j = min(self.stored_j + harvest, config.capacitor_j)
        if not self.executing and self.stored_j >= config.turn_on_j:
            self.executing = True
        if not self.executing:
            return
        # Execute one quantum if energy allows.
        needed = config.work_per_interval_j
        if self.stored_j - needed < config.brown_out_j:
            self._brown_out(sim.now)  # lose uncommitted work
            return
        self.stored_j -= needed
        self.uncommitted += 1
        self.total_done += 1
        if self.uncommitted >= self.checkpoint_interval_quanta:
            if self.stored_j - config.checkpoint_cost_j >= config.brown_out_j:
                self.stored_j -= config.checkpoint_cost_j
                self.committed += self.uncommitted
                self.uncommitted = 0
                self.checkpoints += 1
                if self._tracer is not None:
                    self._tracer.emit("harvest.commit", sim.now, sim.now,
                                      committed=self.committed,
                                      checkpoints=self.checkpoints)
            else:
                self._brown_out(sim.now)

    def tick_batch(self, sim: Simulator, run) -> int:
        """Macro twin of :meth:`tick`: consume a whole tick span at once.

        Sound because a tick never schedules, cancels, or observes
        ``sim.now`` — except to stamp tracer spans, which is exactly
        why an attached model tracer declines the batch (per-event
        spans need the kernel clock committed per event).  State
        accumulates in locals and writes back only after the loop, so
        an exception leaves zero entries applied (the atomic half of
        the macro contract in ``repro.core.macro``).
        """
        if self._tracer is not None:
            return 0
        config = self.config
        cap = config.capacitor_j
        turn_on = config.turn_on_j
        floor = config.brown_out_j
        work = config.work_per_interval_j
        ckpt_cost = config.checkpoint_cost_j
        ckpt_every = self.checkpoint_interval_quanta
        harvest_j = self._harvest_j
        stored = self.stored_j
        executing = self.executing
        uncommitted = self.uncommitted
        committed = self.committed
        total_done = self.total_done
        re_executed = self.re_executed
        checkpoints = self.checkpoints
        failures = self.failures
        ticks = self.ticks
        for _ in range(len(run)):
            stored = min(stored + harvest_j[ticks], cap)
            ticks += 1
            if not executing:
                if stored < turn_on:
                    continue
                executing = True
            if stored - work < floor:
                executing = False  # brown-out: lose uncommitted work
                failures += 1
                re_executed += uncommitted
                uncommitted = 0
                continue
            stored -= work
            uncommitted += 1
            total_done += 1
            if uncommitted >= ckpt_every:
                if stored - ckpt_cost >= floor:
                    stored -= ckpt_cost
                    committed += uncommitted
                    uncommitted = 0
                    checkpoints += 1
                else:
                    executing = False
                    failures += 1
                    re_executed += uncommitted
                    uncommitted = 0
        self.stored_j = stored
        self.executing = executing
        self.uncommitted = uncommitted
        self.committed = committed
        self.total_done = total_done
        self.re_executed = re_executed
        self.checkpoints = checkpoints
        self.failures = failures
        self.ticks = ticks
        return len(run)

    def result(self, n_intervals: int) -> IntermittentResult:
        return IntermittentResult(
            total_quanta_completed=self.total_done,
            committed_quanta=self.committed,
            re_executed_quanta=self.re_executed,
            checkpoints=self.checkpoints,
            power_failures=self.failures,
            intervals=n_intervals,
        )


def simulate_intermittent(
    harvester: Harvester,
    config: IntermittentConfig,
    checkpoint_interval_quanta: int,
    n_intervals: int = 20_000,
    rng: RngLike = None,
    sim: Optional[Simulator] = None,
) -> IntermittentResult:
    """Run the charge-execute-die-resume loop on the event kernel.

    ``checkpoint_interval_quanta`` work quanta execute between
    checkpoints; on a brown-out everything since the last checkpoint is
    lost and re-executed after recharge.  Pass ``sim`` to co-simulate
    with other kernel models or to collect instrumentation.
    """
    if checkpoint_interval_quanta < 1:
        raise ValueError("checkpoint interval must be >= 1")
    if n_intervals < 1:
        raise ValueError("need at least one interval")
    gen = resolve_rng(rng)
    harvest = harvester.sample_power(n_intervals, rng=gen) * config.interval_s

    kernel = sim if sim is not None else Simulator()
    node = IntermittentNode(
        harvester, config, checkpoint_interval_quanta, harvest
    )
    kernel.attach(node)

    def tick(s: Simulator, _payload=None) -> None:
        node.tick(s, _payload)

    def tick_batch(s: Simulator, run) -> int:
        return node.tick_batch(s, run)

    as_macro(tick, tick_batch)
    # Pre-scheduled tick train.  A self-chaining periodic source stays
    # one event ahead of the clock and can never form a macro run;
    # bulk-loading the train gives the kernel one contiguous
    # same-handler span to batch.  The timestamps accumulate
    # (t_{i+1} = t_i + interval_s) exactly as the self-chaining source
    # accumulated them, so tick times are bit-identical floats.
    times = []
    t = kernel.now
    for _ in range(n_intervals):
        times.append(t)
        t += config.interval_s
    kernel.schedule_batch(times, tick)
    tracer = getattr(kernel.metrics, "tracer", None)
    horizon = (n_intervals - 0.5) * config.interval_s
    # Tick i fires at ~i * interval_s (accumulated float addition), so
    # put the horizon half an interval past the last tick: exactly
    # n_intervals fire regardless of rounding (co-simulating models may
    # keep scheduling beyond the train; the horizon bounds the run).
    if tracer is not None:
        with tracer.span("harvest.run", sim=kernel, category="model",
                         intervals=n_intervals):
            kernel.run(until=horizon)
    else:
        kernel.run(until=horizon)
    node.finish()
    return node.result(n_intervals)


def checkpoint_sweep(
    intervals_quanta,
    harvester: Harvester = Harvester(),
    config: IntermittentConfig = IntermittentConfig(),
    n_intervals: int = 20_000,
    rng: RngLike = 0,
) -> dict[str, np.ndarray]:
    """Forward progress vs. checkpoint interval — the canonical
    intermittent-computing U-curve (too often = overhead; too rarely =
    lost work)."""
    ks = list(intervals_quanta)
    if not ks:
        raise ValueError("need at least one interval setting")
    progress, waste = [], []
    for k in ks:
        result = simulate_intermittent(
            harvester, config, int(k), n_intervals=n_intervals, rng=rng
        )
        progress.append(result.forward_progress_rate)
        waste.append(result.waste_fraction)
    return {
        "checkpoint_interval": np.asarray(ks, dtype=float),
        "forward_progress": np.array(progress),
        "waste_fraction": np.array(waste),
    }
