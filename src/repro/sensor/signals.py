"""Synthetic biometric signals and on-sensor anomaly detection.

Appendix A's "Data-centric Personalized Healthcare" scenario needs a
signal source: an ECG-like quasi-periodic waveform with injected
anomalies (arrhythmia-style irregular beats), plus the lightweight
detectors a sensor node would actually run ("distinguishing a nominal
biometric signal from an anomaly", Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class ECGConfig:
    """Synthetic ECG-like generator parameters."""

    sample_rate_hz: float = 250.0
    heart_rate_bpm: float = 70.0
    qrs_amplitude: float = 1.0
    noise_std: float = 0.03
    baseline_wander_amp: float = 0.05

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0 or self.heart_rate_bpm <= 0:
            raise ValueError("rates must be positive")
        if self.qrs_amplitude <= 0:
            raise ValueError("amplitude must be positive")
        if self.noise_std < 0 or self.baseline_wander_amp < 0:
            raise ValueError("noise terms must be non-negative")


def synthetic_ecg(
    duration_s: float,
    config: ECGConfig = ECGConfig(),
    anomaly_rate: float = 0.0,
    anomaly_amplitude: float = 2.5,
    rng: RngLike = None,
) -> dict[str, np.ndarray]:
    """Generate an ECG-like trace with optional ectopic-beat anomalies.

    Each beat is a Gaussian-bump QRS complex; anomalies are beats with
    abnormal amplitude and timing jitter.  Returns the signal, the
    sample times, and a boolean per-sample anomaly mask (ground truth
    for detector evaluation).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= anomaly_rate <= 1.0:
        raise ValueError("anomaly_rate must be in [0, 1]")
    if anomaly_amplitude <= 0:
        raise ValueError("anomaly_amplitude must be positive")
    gen = resolve_rng(rng)
    n = int(round(duration_s * config.sample_rate_hz))
    t = np.arange(n) / config.sample_rate_hz
    signal = np.zeros(n)
    truth = np.zeros(n, dtype=bool)

    beat_period = 60.0 / config.heart_rate_bpm
    qrs_width = 0.03  # seconds
    # Beyond ~39 sigma the bump's exponent is past the smallest
    # subnormal and np.exp returns exactly 0.0, so restricting each
    # beat's add to that window is byte-identical to the full-array
    # version while costing O(window) instead of O(n) per beat.
    cut = 39.0 * qrs_width
    truth_cut = 3 * qrs_width
    beat_time = 0.0
    while beat_time < duration_s:
        is_anomaly = gen.random() < anomaly_rate
        amp = config.qrs_amplitude * (
            anomaly_amplitude if is_anomaly else 1.0
        )
        center = beat_time + (
            gen.normal(0, 0.15 * beat_period) if is_anomaly else 0.0
        )
        lo = np.searchsorted(t, center - cut, side="left")
        hi = np.searchsorted(t, center + cut, side="right")
        if lo < hi:
            tw = t[lo:hi]
            signal[lo:hi] += amp * np.exp(
                -0.5 * ((tw - center) / qrs_width) ** 2
            )
        if is_anomaly:
            tlo = np.searchsorted(t, center - truth_cut, side="left")
            thi = np.searchsorted(t, center + truth_cut, side="right")
            if tlo < thi:
                truth[tlo:thi] |= np.abs(t[tlo:thi] - center) < truth_cut
        beat_time += beat_period * float(gen.uniform(0.95, 1.05))

    signal += config.baseline_wander_amp * np.sin(2 * np.pi * 0.3 * t)
    signal += gen.normal(0, config.noise_std, size=n)
    return {"t": t, "signal": signal, "anomaly_mask": truth}


def threshold_detector(
    signal: np.ndarray, threshold: float
) -> np.ndarray:
    """Flag samples whose absolute value exceeds ``threshold``."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return np.abs(np.asarray(signal, dtype=float)) > threshold


def zscore_detector(
    signal: np.ndarray, window: int = 250, z: float = 4.0
) -> np.ndarray:
    """Moving-window z-score detector (sensor-grade: O(1) per sample).

    Uses a causal running mean/variance over ``window`` samples
    (computed via cumulative sums — vectorized, no Python loop).
    """
    x = np.asarray(signal, dtype=float)
    if window < 2:
        raise ValueError("window must be >= 2")
    if z <= 0:
        raise ValueError("z must be positive")
    if x.size == 0:
        return np.zeros(0, dtype=bool)
    csum = np.cumsum(np.insert(x, 0, 0.0))
    csum2 = np.cumsum(np.insert(x * x, 0, 0.0))
    idx = np.arange(x.size)
    lo = np.maximum(idx - window + 1, 0)
    count = idx - lo + 1
    mean = (csum[idx + 1] - csum[lo]) / count
    var = np.maximum((csum2[idx + 1] - csum2[lo]) / count - mean**2, 1e-12)
    return np.abs(x - mean) > z * np.sqrt(var)


def detector_quality(
    predicted: np.ndarray, truth: np.ndarray
) -> dict[str, float]:
    """Precision / recall / F1 of a per-sample detector."""
    pred = np.asarray(predicted, dtype=bool)
    true = np.asarray(truth, dtype=bool)
    if pred.shape != true.shape:
        raise ValueError("predicted and truth must have the same shape")
    tp = float(np.sum(pred & true))
    fp = float(np.sum(pred & ~true))
    fn = float(np.sum(~pred & true))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def event_rate(mask: np.ndarray, min_gap: int = 25) -> int:
    """Count distinct events in a per-sample detection mask.

    Consecutive flagged samples (within ``min_gap``) merge into one
    event — this is what the sensor actually transmits.
    """
    m = np.asarray(mask, dtype=bool)
    if min_gap < 1:
        raise ValueError("min_gap must be >= 1")
    flagged = np.nonzero(m)[0]
    if flagged.size == 0:
        return 0
    gaps = np.diff(flagged)
    return int(1 + np.sum(gaps > min_gap))
