"""repro.resilience — checkpoint/restart, watchdog resume, fault campaigns.

The paper's cross-cutting "ilities" agenda (Section 2.4) demands that
reliability mechanisms span the stack.  This package is that layer for
the library itself:

* :mod:`repro.resilience.checkpoint` — periodic in-process kernel
  snapshots (:class:`CheckpointManager`, the substrate of the golden
  crash-resume determinism guarantee) and durable cross-process job
  progress (:class:`JobCheckpointStore`, the substrate of watchdog
  resume in :mod:`repro.exec`).
* :mod:`repro.resilience.campaign` — fleet-wide fault-campaign
  orchestration over every :class:`~repro.crosscut.faults.FaultTarget`
  model, producing a machine-readable :class:`ResilienceReport`
  (``python -m repro resilience``).
"""

from .campaign import (
    ALL_MODELS,
    DEFAULT_INTENSITIES,
    ResilienceReport,
    architectural_campaign,
    campaign_job,
    run_campaign,
)
from .checkpoint import (
    STORE_VERSION,
    CheckpointManager,
    JobCheckpointStore,
    SimulatedCrash,
    schedule_crash,
)

__all__ = [
    "ALL_MODELS",
    "CheckpointManager",
    "DEFAULT_INTENSITIES",
    "JobCheckpointStore",
    "ResilienceReport",
    "STORE_VERSION",
    "SimulatedCrash",
    "architectural_campaign",
    "campaign_job",
    "run_campaign",
    "schedule_crash",
]
