"""Checkpoint management: periodic kernel snapshots + durable job state.

Two layers, deliberately separate:

* :class:`CheckpointManager` — **in-process** periodic
  :class:`~repro.core.events.KernelSnapshot` capture.  Snapshots hold
  live callback/token references, so they restore only within the
  process that took them; this is the layer the golden crash-resume
  determinism tests exercise (run-straight-through == crash-and-resume,
  same executed-event-stream hash and SimStats).
* :class:`JobCheckpointStore` — **durable, cross-process** job progress.
  A worker process persists small JSON-serializable progress records
  (e.g. "reps 0..k done, partial aggregates") with atomic writes and a
  sha256 checksum; after the watchdog kills a hung worker, the *next*
  attempt of the same job — a fresh process — resumes from the record
  instead of restarting from scratch.  Corruption or version mismatch
  reads as "no checkpoint" (same corruption-as-miss stance as the
  result cache).

:class:`SimulatedCrash`/:func:`schedule_crash` are the test/benchmark
hooks for killing a simulation mid-run at a deterministic simulated
time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import deque
from typing import Any, Deque, Optional

from ..core.events import CancelToken, KernelSnapshot, Simulator

#: Version tag for persisted job-checkpoint records.
STORE_VERSION = 1


class SimulatedCrash(RuntimeError):
    """Raised by a scheduled crash event to kill a run mid-simulation.

    Escapes ``Simulator.run()`` (whose ``finally`` still synchronizes
    stats and lane state), leaving the simulator restorable via
    :meth:`~repro.core.events.Simulator.restore`.
    """


def _crash(sim: Simulator, message: Any) -> None:
    raise SimulatedCrash(message or f"simulated crash at t={sim.now:g}")


def schedule_crash(
    sim: Simulator, at: float, message: Optional[str] = None
) -> Optional[CancelToken]:
    """Schedule a :class:`SimulatedCrash` at absolute simulated time ``at``."""
    return sim.schedule_at(at, _crash, message)


class CheckpointManager:
    """Takes a kernel snapshot every ``period`` of simulated time.

    Arm on a simulator *before* starting the model run::

        mgr = CheckpointManager(period=5.0)
        mgr.arm(sim)
        try:
            model.run(..., sim=sim)
        except SomeCrash:
            sim.restore(mgr.latest)
            sim.run()   # resumes; replays the identical event stream

    The manager schedules its ticks with
    :meth:`~repro.core.events.Simulator.schedule_tagged` so each tick
    knows its own sequence number (what a mid-run snapshot needs), and
    it re-arms the *next* tick **before** snapshotting, so the pending
    tick is inside every snapshot and the checkpoint chain survives a
    restore.  The manager itself is checkpointable — its tick token and
    pending sequence number roll back with the kernel — while the
    ``snapshots`` ring deliberately does not (you keep your checkpoints
    across a restore).

    ``keep`` bounds the snapshot ring; ``keep=1`` retains only the most
    recent (the common resume-from-latest case).
    """

    def __init__(self, period: float, keep: int = 1) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.period = float(period)
        self.snapshots: Deque[KernelSnapshot] = deque(maxlen=keep)
        self.taken = 0
        self._sim: Optional[Simulator] = None
        self._token: Optional[CancelToken] = None
        self._pending_seq: Optional[int] = None

    # -- Checkpointable (tick chain state rides in each snapshot) ---------

    def snapshot_state(self) -> Any:
        return (self._token, self._pending_seq, self.taken)

    def restore_state(self, state: Any) -> None:
        self._token, self._pending_seq, self.taken = state

    # -- lifecycle ---------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._sim is not None

    @property
    def latest(self) -> KernelSnapshot:
        """Most recent snapshot; raises if none has been taken yet."""
        if not self.snapshots:
            raise RuntimeError("no checkpoint taken yet")
        return self.snapshots[-1]

    def arm(
        self, sim: Simulator, initial_delay: Optional[float] = None
    ) -> "CheckpointManager":
        """Start the periodic checkpoint chain on ``sim``.

        Raises on double-arm (one manager drives one simulator); use
        :meth:`disarm` first to move it.
        """
        if self._sim is not None:
            raise RuntimeError(
                "CheckpointManager is already armed; disarm() first"
            )
        self._sim = sim
        sim.register_checkpointable(self)
        delay = self.period if initial_delay is None else initial_delay
        self._token, self._pending_seq = sim.schedule_tagged(delay, self._tick)
        return self

    def disarm(self) -> None:
        """Stop the chain; idempotent.  Taken snapshots are kept."""
        if self._token is not None:
            self._token.cancel()
        self._token = None
        self._pending_seq = None
        self._sim = None

    def _tick(self, sim: Simulator, _payload: Any) -> None:
        my_seq = self._pending_seq
        # Re-arm first: the next tick must be pending *inside* the
        # snapshot, so the chain keeps firing after a restore.
        self._token, self._pending_seq = sim.schedule_tagged(
            self.period, self._tick
        )
        # Count *before* snapshotting: the manager's snapshot_state then
        # carries the post-tick count, so a restore rolls ``taken`` back
        # to exactly the number of checkpoint marks in the (also
        # checkpointable) span sink — resumed runs continue the mark
        # sequence instead of re-issuing the last number.
        self.taken += 1
        tracer = getattr(sim.metrics, "tracer", None)
        if tracer is not None:
            # Spans ride checkpoints: emitted *before* the snapshot so
            # the mark is captured inside it.  A restore truncates the
            # span sink back to exactly this point, and since the
            # consumed tick never replays, emitting after the snapshot
            # would lose the mark on every resumed run.
            tracer.emit("resilience.checkpoint", sim.now, sim.now,
                        taken=self.taken)
        snap = sim.snapshot(label=f"t={sim.now:g}", current_seq=my_seq)
        self.snapshots.append(snap)
        scope = sim.metrics.scoped("resilience")
        scope.counter("checkpoints_taken").inc()
        scope.gauge("checkpoint_pending_events").set(snap.pending)
        # Stop the chain once our own tick is the only live pending
        # event: an armed manager must not keep a drained kernel
        # running forever.  The snapshot gives the exact live count
        # (the kernel's lane cursor is stale inside a callback).  The
        # decision replays identically after a restore, so straight and
        # crash-resume runs stay in lockstep.
        live_others = snap.pending - len(snap.cancelled_seqs) - 1
        if live_others <= 0:
            self._token.cancel()
            self._token = None
            self._pending_seq = None


class JobCheckpointStore:
    """Durable JSON progress records, one file per key, corruption-safe.

    Records are written atomically (temp file + ``os.replace``) with an
    embedded sha256 over the canonical payload; a torn, corrupted, or
    version-mismatched file loads as ``None`` ("no checkpoint"), so the
    worst a bad record can do is cost recomputation — never wrong
    results.  This is the persistence layer behind watchdog resume:
    worker processes save progress as they go, and a replacement attempt
    of the same job (fresh process, after a hang or crash) starts from
    the last record.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def _path(self, key: str) -> str:
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in str(key)
        )
        return os.path.join(self.root, f"{safe}.ckpt.json")

    def save(self, key: str, state: Any) -> str:
        """Atomically persist ``state`` (JSON-serializable) under ``key``."""
        payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
        record = {
            "version": STORE_VERSION,
            "key": str(key),
            "sha256": hashlib.sha256(payload.encode()).hexdigest(),
            "state": state,
        }
        path = self._path(key)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".ckpt"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load(self, key: str) -> Optional[Any]:
        """Return the state saved under ``key``, or ``None`` if absent,
        corrupt, or from an incompatible store version."""
        path = self._path(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("version") != STORE_VERSION:
            return None
        state = record.get("state")
        payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
        if hashlib.sha256(payload.encode()).hexdigest() != record.get(
            "sha256"
        ):
            return None
        return state

    def discard(self, key: str) -> None:
        """Remove the record for ``key`` (no-op if absent)."""
        try:
            os.unlink(self._path(key))
        except OSError:
            pass
