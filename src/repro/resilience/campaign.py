"""Fleet-wide fault-campaign orchestration.

The paper's Section 2.4 ("Verifiability and Reliability") argues that
the "ilities" must be designed — and therefore *measured* — across the
stack, not bolted onto one layer.  This module is that measurement
harness: it sweeps every kernel-hosted :class:`~repro.crosscut.faults.
FaultTarget` model (cluster, NoC, intermittent sensor node) across
fault intensities on the :mod:`repro.exec` engine, replays the
architectural bit-flip campaign under each protection scheme, and
folds both into one machine-readable :class:`ResilienceReport`:

* **Degradation curves** — throughput / tail / energy vs. fault
  intensity, normalized to the fault-free baseline.
* **Fault-outcome rates** — masked / SDC / detected fractions from the
  architectural campaign, per protection scheme.
* **Intervention cadence** — mean kernel events between fault
  deliveries, the DES analogue of mean-time-between-interventions.
* **Health gauges** — the resilience layer's own operational counters
  (checkpoints taken, watchdog resumes) read off the instrumentation
  registry.

Campaign jobs are module-level picklable functions, so the sweep runs
identically under :class:`~repro.exec.runners.SerialRunner` and
:class:`~repro.exec.runners.ProcessPoolRunner`; each job heartbeats
per repetition and checkpoints completed repetitions to a
:class:`~repro.resilience.checkpoint.JobCheckpointStore`, so a killed
or hung worker resumes mid-sweep instead of replaying from scratch.

CLI: ``python -m repro resilience --models all`` (see :func:`main`).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import instrument
from ..core.events import Simulator
from ..core.rng import resolve_rng
from ..crosscut.faults import KernelFaultInjector, Outcome, injection_campaign
from ..crosscut.invariants import compare_protection_schemes
from ..exec.engine import ExecutionEngine, RunReport
from ..exec.heartbeat import heartbeat
from ..exec.job import Job, JobGraph
from ..exec.runners import ProcessPoolRunner, SerialRunner
from ..processor.program import generate_trace
from .checkpoint import JobCheckpointStore, SimulatedCrash

__all__ = [
    "ALL_MODELS",
    "DEFAULT_INTENSITIES",
    "ResilienceReport",
    "architectural_campaign",
    "campaign_job",
    "main",
    "run_campaign",
]

#: Every kernel model implementing the FaultTarget protocol.
ALL_MODELS: Tuple[str, ...] = ("cluster", "noc", "harvest")

#: Fault-rate multipliers; 0 is the fault-free baseline every curve is
#: normalized against.
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)

#: Expected fault count over the horizon at intensity 1.0.
_BASE_FAULTS = 4.0

_SCALES: Dict[str, Dict[str, int]] = {
    # CI / chaos-smoke sizing: seconds, not minutes.
    "smoke": {
        "cluster_requests": 400,
        "noc_packets": 150,
        "harvest_intervals": 2_000,
        "flips": 60,
    },
    "full": {
        "cluster_requests": 2_000,
        "noc_packets": 600,
        "harvest_intervals": 8_000,
        "flips": 200,
    },
}


def _armed_injector(
    intensity: float, horizon: float, seed: int, target, sim: Simulator
) -> Optional[KernelFaultInjector]:
    """Arm a Poisson fault train at ``intensity`` x the base rate."""
    if intensity <= 0:
        return None
    injector = KernelFaultInjector(
        mean_interval=horizon / (_BASE_FAULTS * intensity), rng=seed + 1
    )
    injector.register(target)
    injector.arm(sim, horizon=horizon)
    return injector


def _cluster_trial(seed: int, intensity: float, scale: Dict[str, int]) -> dict:
    from ..datacenter.cluster import ClusterConfig, ClusterSimulator

    n_requests = scale["cluster_requests"]
    arrival_rate = 6.0
    horizon = n_requests / arrival_rate
    sim = Simulator()
    model = ClusterSimulator(ClusterConfig(n_servers=8))
    _armed_injector(intensity, horizon, seed, model, sim)
    result = model.run(arrival_rate, n_requests, rng=seed, sim=sim)
    makespan = sim.now if sim.now > 0 else float("nan")
    return {
        "throughput": n_requests / makespan,
        "tail": result.p99,
        "energy": float("nan"),
        "faults": model.faults_injected,
        "events": sim.stats.events_executed,
    }


def _noc_trial(seed: int, intensity: float, scale: Dict[str, int]) -> dict:
    from ..interconnect.noc import MeshNoC, NoCConfig
    from ..interconnect.traffic import uniform_random_pairs

    n_packets = scale["noc_packets"]
    gen = resolve_rng(seed)
    pairs = uniform_random_pairs(n_packets, 4, 4, rng=gen)
    times = np.cumsum(gen.exponential(0.8, n_packets))
    horizon = float(times[-1]) + 50.0
    sim = Simulator()
    model = MeshNoC(NoCConfig(width=4, height=4))
    _armed_injector(intensity, horizon, seed, model, sim)
    result = model.run(
        pairs, injection_times=times,
        max_cycles=int(horizon * 20), sim=sim,
    )
    return {
        "throughput": result.throughput_packets_per_cycle,
        "tail": result.p99_latency,
        "energy": result.energy_per_packet_j(),
        "faults": model.faults_injected,
        "events": sim.stats.events_executed,
    }


def _harvest_trial(seed: int, intensity: float, scale: Dict[str, int]) -> dict:
    from ..core.events import PeriodicSource
    from ..sensor.harvest import (
        Harvester, IntermittentConfig, IntermittentNode,
    )

    n_intervals = scale["harvest_intervals"]
    config = IntermittentConfig()
    harvester = Harvester()
    gen = resolve_rng(seed)
    harvest = harvester.sample_power(n_intervals, rng=gen) * config.interval_s
    sim = Simulator()
    node = IntermittentNode(harvester, config, 8, harvest)
    sim.attach(node)
    horizon = n_intervals * config.interval_s
    _armed_injector(intensity, horizon, seed, node, sim)
    source = PeriodicSource(period=config.interval_s, callback=node.tick)
    source.start(sim)
    sim.run(until=(n_intervals - 0.5) * config.interval_s)
    source.stop()
    node.finish()
    result = node.result(n_intervals)
    committed = result.committed_quanta
    return {
        "throughput": result.forward_progress_rate,
        "tail": result.waste_fraction,
        "energy": (
            float(harvest.sum()) / committed if committed else float("nan")
        ),
        "faults": node.faults_injected,
        "events": sim.stats.events_executed,
    }


_MODEL_TRIALS = {
    "cluster": _cluster_trial,
    "noc": _noc_trial,
    "harvest": _harvest_trial,
}


def campaign_job(config: dict) -> dict:
    """One sweep cell: ``reps`` trials of one model at one intensity.

    Module-level and config-driven so it pickles into worker processes.
    Emits a heartbeat after every repetition (the pool runner's hang
    watchdog feeds on these) and, when the engine injected a
    ``checkpoint_path``, persists completed repetitions to a
    :class:`JobCheckpointStore` so a killed attempt resumes from the
    last finished rep — which is what turns a crash into a *free*
    resume in the engine's lost-progress retry accounting.

    Chaos hooks (used by the chaos-smoke tests, inert otherwise):
    ``crash_once_path`` — raise :class:`SimulatedCrash` after the first
    rep, once (a marker file makes the retry run clean);
    ``hang_once_path`` — heartbeat once, then sleep ``hang_sleep_s``,
    once (lets the watchdog catch and kill a live-but-silent worker).
    """
    model = config["model"]
    intensity = float(config["intensity"])
    reps = int(config["reps"])
    seed = int(config["seed"])
    scale = _SCALES[config.get("scale", "smoke")]
    trial = _MODEL_TRIALS[model]

    store: Optional[JobCheckpointStore] = None
    store_key = f"{model}-i{intensity:g}"
    done: list = []
    if config.get("checkpoint_path"):
        store = JobCheckpointStore(config["checkpoint_path"])
        saved = store.load(store_key)
        if isinstance(saved, list):
            done = saved

    hang_marker = config.get("hang_once_path")
    if hang_marker and not os.path.exists(hang_marker):
        with open(hang_marker, "w", encoding="utf-8") as fh:
            fh.write("hung\n")
        heartbeat(0.0)
        time.sleep(float(config.get("hang_sleep_s", 30.0)))

    crash_marker = config.get("crash_once_path")
    for rep in range(len(done), reps):
        metrics = trial(seed + 1_000 * rep, intensity, scale)
        done.append(metrics)
        heartbeat(float(rep + 1))
        if store is not None:
            store.save(store_key, done)
        if crash_marker and not os.path.exists(crash_marker):
            with open(crash_marker, "w", encoding="utf-8") as fh:
                fh.write("crashed\n")
            raise SimulatedCrash(
                f"injected crash after rep {rep + 1} of {store_key}"
            )
    if store is not None:
        store.discard(store_key)
    return {"model": model, "intensity": intensity, "trials": done}


# ---------------------------------------------------------------------------
# Aggregation and the report
# ---------------------------------------------------------------------------


def _strict_json(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``None``."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {key: _strict_json(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_strict_json(value) for value in obj]
    return obj


def _mean(values: Sequence[float]) -> float:
    vals = [float(v) for v in values if not math.isnan(float(v))]
    return sum(vals) / len(vals) if vals else float("nan")


def _ratio(value: float, baseline: float) -> float:
    if math.isnan(value) or math.isnan(baseline) or baseline == 0:
        return float("nan")
    return value / baseline


@dataclass
class ResilienceReport:
    """Machine-readable outcome of one resilience campaign.

    ``models[name]`` holds the per-intensity degradation curves;
    ``architectural`` the bit-flip outcome rates per protection scheme;
    ``health`` the resilience layer's instrumentation gauges;
    ``exec_summary`` the engine's per-job accounting (statuses,
    attempts, watchdog resumes).
    """

    meta: Dict[str, Any] = field(default_factory=dict)
    models: Dict[str, Any] = field(default_factory=dict)
    architectural: Dict[str, Any] = field(default_factory=dict)
    health: Dict[str, Any] = field(default_factory=dict)
    exec_summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        statuses = self.exec_summary.get("statuses", {})
        return bool(statuses) and all(
            s == "succeeded" for s in statuses.values()
        )

    def as_dict(self) -> dict:
        return {
            "meta": self.meta,
            "models": self.models,
            "architectural": self.architectural,
            "health": self.health,
            "exec_summary": self.exec_summary,
        }

    def to_json(self, indent: int = 2) -> str:
        # NaN/inf become null: the report must stay strict JSON (CI
        # artifact consumers like jq reject bare NaN tokens).
        return json.dumps(
            _strict_json(self.as_dict()), indent=indent, sort_keys=True,
            allow_nan=False,
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def summary(self) -> str:
        """Human-readable campaign table (the CLI's stdout)."""
        fmt = "{:.4g}".format
        lines = [
            f"Resilience campaign: models={','.join(self.models) or '-'}"
            f" intensities={self.meta.get('intensities')}"
            f" reps={self.meta.get('reps')} scale={self.meta.get('scale')}"
        ]
        for name, data in self.models.items():
            lines.append(f"\n[{name}]")
            lines.append(
                f"  {'intensity':<11}{'throughput':<12}{'tail':<12}"
                f"{'energy':<12}{'faults':<8}{'events/fault':<14}status"
            )
            curves = data["curves"]
            for i, intensity in enumerate(data["intensities"]):
                lines.append(
                    f"  {intensity:<11g}{fmt(curves['throughput'][i]):<12}"
                    f"{fmt(curves['tail'][i]):<12}"
                    f"{fmt(curves['energy'][i]):<12}"
                    f"{fmt(curves['faults'][i]):<8}"
                    f"{fmt(curves['events_per_fault'][i]):<14}"
                    f"{data['status'][i]}"
                )
            deg = data["degradation"]
            lines.append(
                "  degradation at max intensity: "
                f"throughput {fmt(deg['throughput'][-1])}x, "
                f"tail {fmt(deg['tail'][-1])}x, "
                f"energy {fmt(deg['energy'][-1])}x"
            )
        if self.architectural:
            lines.append("\n[architectural bit-flips]")
            base = self.architectural.get("outcome_rates", {})
            lines.append(
                f"  baseline: masked {fmt(base.get('masked', float('nan')))}"
                f" sdc {fmt(base.get('sdc', float('nan')))}"
                f" detected {fmt(base.get('detected', float('nan')))}"
            )
            for scheme, row in self.architectural.get("schemes", {}).items():
                lines.append(
                    f"  {scheme:<18} sdc {fmt(row['sdc_rate'])}"
                    f" coverage {fmt(row['coverage'])}"
                    f" overhead {fmt(row['energy_overhead'])}"
                )
        if self.health:
            lines.append("\n[health]")
            for name, value in self.health.items():
                lines.append(f"  {name:<44s} {value}")
        if self.exec_summary:
            lines.append(f"\n-- exec: {self.exec_summary.get('one_line', '')}")
        return "\n".join(lines)


def architectural_campaign(n_flips: int = 200, seed: int = 0) -> dict:
    """Bit-flip outcome rates, bare and per protection scheme (E19)."""
    trace = generate_trace(400, rng=seed)
    base = injection_campaign(trace, n_injections=n_flips, rng=seed)
    schemes = compare_protection_schemes(
        trace, n_injections=n_flips, rng=seed
    )
    return {
        "n_flips": n_flips,
        "outcome_rates": {
            "masked": base.rate(Outcome.MASKED),
            "sdc": base.rate(Outcome.SDC),
            "detected": base.rate(Outcome.DETECTED),
        },
        "schemes": schemes,
    }


def run_campaign(
    models: Sequence[str] = ALL_MODELS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    reps: int = 2,
    scale: str = "smoke",
    jobs: int = 1,
    seed: int = 0,
    checkpoint_root: Optional[str] = None,
    hang_timeout_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    runner=None,
    skip_architectural: bool = False,
    backend: Optional[str] = None,
) -> ResilienceReport:
    """Sweep every requested model x intensity on the execution engine.

    Each sweep cell is one engine job (seeded deterministically via
    ``seed_key``, checkpointed via ``checkpoint_key`` when
    ``checkpoint_root`` is given); a cell that keeps failing becomes a
    FAILED row in the report while the rest of the sweep completes —
    the fault campaign is itself fault-tolerant.  ``backend`` names an
    execution backend (``serial``/``pool``/``socket``/``array``) built
    with ``jobs`` as its parallelism; an explicit ``runner`` wins.
    """
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r} (want one of {sorted(_SCALES)})")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    chosen = list(models)
    for model in chosen:
        if model not in _MODEL_TRIALS:
            raise ValueError(
                f"unknown model {model!r} (FaultTarget models: {ALL_MODELS})"
            )
    levels = [float(x) for x in intensities]
    if not chosen or not levels:
        raise ValueError("need at least one model and one intensity")
    if any(x < 0 for x in levels):
        raise ValueError("intensities must be non-negative")

    graph = JobGraph()
    for model in chosen:
        for intensity in levels:
            graph.add(Job(
                id=f"{model}-i{intensity:g}",
                fn=campaign_job,
                config={
                    "model": model,
                    "intensity": intensity,
                    "reps": int(reps),
                    "scale": scale,
                },
                seed_key="seed",
                checkpoint_key="checkpoint_path",
            ))

    if runner is None and backend is not None:
        from ..exec.backends import make_backend

        runner = make_backend(backend, jobs=jobs)
    if runner is None:
        runner = ProcessPoolRunner(jobs) if jobs > 1 else SerialRunner()
    engine = ExecutionEngine(
        runner=runner,
        base_seed=seed,
        default_timeout_s=timeout_s,
        default_retries=retries,
        hang_timeout_s=hang_timeout_s,
        checkpoint_root=checkpoint_root,
    )
    run_report = engine.run(graph)

    report = ResilienceReport(
        meta={
            "models": chosen,
            "intensities": levels,
            "reps": int(reps),
            "scale": scale,
            "seed": int(seed),
            "jobs": int(jobs),
            "backend": backend or ("pool" if jobs > 1 else "serial"),
        },
    )
    for model in chosen:
        report.models[model] = _model_rows(model, levels, run_report)
    if not skip_architectural:
        report.architectural = architectural_campaign(
            n_flips=_SCALES[scale]["flips"], seed=seed
        )
    registry = instrument.default_registry()
    report.health = {
        **registry.health("resilience"),
        **registry.health("exec"),
        **registry.health("faults"),
    }
    report.exec_summary = {
        "one_line": run_report.one_line(),
        "statuses": {
            jid: rec.status.value for jid, rec in run_report.records.items()
        },
        "attempts": {
            jid: rec.attempts for jid, rec in run_report.records.items()
        },
        "resumes": {
            jid: rec.resumes for jid, rec in run_report.records.items()
        },
    }
    return report


def _model_rows(
    model: str, levels: Sequence[float], run_report: RunReport
) -> dict:
    curves: Dict[str, list] = {
        "throughput": [], "tail": [], "energy": [],
        "faults": [], "events_per_fault": [],
    }
    status: list = []
    for intensity in levels:
        record = run_report.records[f"{model}-i{intensity:g}"]
        status.append(record.status.value)
        if not record.ok:
            for series in curves.values():
                series.append(float("nan"))
            continue
        trials = record.result["trials"]
        faults = _mean([t["faults"] for t in trials])
        events = _mean([t["events"] for t in trials])
        curves["throughput"].append(_mean([t["throughput"] for t in trials]))
        curves["tail"].append(_mean([t["tail"] for t in trials]))
        curves["energy"].append(_mean([t["energy"] for t in trials]))
        curves["faults"].append(faults)
        # Mean kernel events between fault interventions: the DES
        # analogue of mean-time-between-interventions.  Infinite-free
        # baselines report NaN rather than inf (JSON-safe).
        curves["events_per_fault"].append(
            events / faults if faults else float("nan")
        )
    baseline = {key: series[0] for key, series in curves.items()}
    degradation = {
        key: [_ratio(v, baseline[key]) for v in curves[key]]
        for key in ("throughput", "tail", "energy")
    }
    return {
        "intensities": list(levels),
        "curves": curves,
        "degradation": degradation,
        "status": status,
    }


# ---------------------------------------------------------------------------
# CLI (dispatched by ``python -m repro resilience``)
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro resilience",
        description=(
            "Fleet-wide fault campaign: sweep every FaultTarget model "
            "across fault intensities and report degradation curves, "
            "fault-outcome rates, and resilience health gauges."
        ),
    )
    parser.add_argument(
        "--models", default="all", metavar="NAMES",
        help=f"'all' or comma-separated subset of {','.join(ALL_MODELS)}",
    )
    parser.add_argument(
        "--intensities", default="0,0.5,1,2", metavar="X,Y,...",
        help="fault-rate multipliers; 0 is the baseline (default 0,0.5,1,2)",
    )
    parser.add_argument(
        "--reps", type=int, default=2, metavar="N",
        help="repetitions (distinct seeds) per sweep cell (default 2)",
    )
    parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="smoke",
        help="workload sizing (default smoke)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial in-process)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "pool", "socket", "array"),
        default=None, metavar="B",
        help=(
            "execution backend for the sweep (socket: elastic TCP "
            "workers, --jobs loopback workers spawned; array: batch "
            "manifests); default: serial, or pool when --jobs > 1"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock timeout (seconds)",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=None, metavar="S",
        help="watchdog: kill a worker silent for S seconds (needs --jobs > 1)",
    )
    parser.add_argument(
        "--checkpoint-root", default=None, metavar="DIR",
        help="durable per-job checkpoint directory (enables mid-sweep resume)",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write the ResilienceReport as JSON",
    )
    parser.add_argument(
        "--no-architectural", action="store_true",
        help="skip the bit-flip outcome campaign",
    )
    parser.add_argument(
        "--instrument", action="store_true",
        help="enable the session metrics registry (health gauges)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.reps < 1:
        parser.error("--reps must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.hang_timeout is not None and args.hang_timeout <= 0:
        parser.error("--hang-timeout must be positive")

    if args.instrument:
        instrument.enable_session()
    models = (
        list(ALL_MODELS) if args.models == "all"
        else [tok for tok in args.models.split(",") if tok]
    )
    try:
        intensities = [
            float(tok) for tok in args.intensities.split(",") if tok
        ]
        report = run_campaign(
            models=models,
            intensities=intensities,
            reps=args.reps,
            scale=args.scale,
            jobs=args.jobs,
            seed=args.seed,
            checkpoint_root=args.checkpoint_root,
            hang_timeout_s=args.hang_timeout,
            timeout_s=args.timeout,
            skip_architectural=args.no_architectural,
            backend=args.backend,
        )
    except ValueError as exc:
        parser.error(str(exc))
        return 2
    print(report.summary())
    if args.output:
        report.save(args.output)
        print(f"-- report written to {args.output}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    import sys

    sys.exit(main())
