"""Software transactional memory simulator (paper Section 2.4).

"Transactional memory (TM) is a recent example that seeks to
significantly simplify parallelization and synchronization in
multithreaded code ... and is now entering the commercial mainstream."

The simulator executes transactions with explicit read/write sets under
optimistic concurrency control (lazy versioning, commit-time validation):
transactions run in overlapping windows; at commit, a transaction aborts
if any location it read was committed-written by a transaction that
committed during its window.  Committed history is checked for
serializability by construction (commit order is the serial order).

Throughput comparisons against a single global lock reproduce the
published shape (experiment E16): TM wins at low conflict rates and
loses its advantage as conflicts (aborted/wasted work) climb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class Transaction:
    """A transaction's footprint and cost."""

    read_set: FrozenSet[int]
    write_set: FrozenSet[int]
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class STMStats:
    commits: int = 0
    aborts: int = 0
    wasted_time: float = 0.0
    useful_time: float = 0.0
    makespan: float = 0.0

    @property
    def abort_rate(self) -> float:
        total = self.commits + self.aborts
        return self.aborts / total if total else float("nan")

    @property
    def throughput(self) -> float:
        return self.commits / self.makespan if self.makespan > 0 else float("nan")


class STMSimulator:
    """Optimistic STM with commit-time validation and retry.

    Threads round-robin through a shared queue of transactions.  Each
    execution attempt occupies a window [start, start + duration); on
    commit, the attempt validates its read set against writes committed
    within its window; failure wastes the window and retries (with a
    small exponential backoff).
    """

    def __init__(
        self,
        n_threads: int,
        backoff_base: float = 0.1,
        max_retries: int = 100,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if backoff_base < 0 or max_retries < 1:
            raise ValueError("bad backoff/retry parameters")
        self.n_threads = n_threads
        self.backoff_base = backoff_base
        self.max_retries = max_retries

    def run(
        self, transactions: list[Transaction], rng: RngLike = None
    ) -> STMStats:
        gen = resolve_rng(rng)
        stats = STMStats()
        clocks = np.zeros(self.n_threads)
        # Committed writes: location -> list of commit times (sorted).
        commit_log: list[tuple[float, FrozenSet[int]]] = []

        def conflicts(start: float, end: float, read_set: FrozenSet[int]) -> bool:
            for t_commit, writes in reversed(commit_log):
                if t_commit <= start:
                    break
                if t_commit < end and writes & read_set:
                    return True
            return False

        for i, txn in enumerate(transactions):
            thread = i % self.n_threads
            retries = 0
            while True:
                start = clocks[thread]
                end = start + txn.duration
                if conflicts(start, end, txn.read_set | txn.write_set):
                    stats.aborts += 1
                    stats.wasted_time += txn.duration
                    backoff = self.backoff_base * (
                        2.0 ** min(retries, 6)
                    ) * gen.random()
                    clocks[thread] = end + backoff
                    retries += 1
                    if retries >= self.max_retries:
                        # Fall back to committing anyway (serialized by
                        # this point in real systems via a global lock).
                        clocks[thread] += txn.duration
                        commit_log.append((clocks[thread], txn.write_set))
                        commit_log.sort(key=lambda kv: kv[0])
                        stats.commits += 1
                        stats.useful_time += txn.duration
                        break
                    continue
                # Successful commit at `end`.
                clocks[thread] = end
                if txn.write_set:
                    commit_log.append((end, txn.write_set))
                    commit_log.sort(key=lambda kv: kv[0])
                stats.commits += 1
                stats.useful_time += txn.duration
                break
        stats.makespan = float(clocks.max()) if len(clocks) else 0.0
        return stats


def global_lock_makespan(transactions: list[Transaction]) -> float:
    """Coarse-grain lock baseline: everything serializes."""
    return float(sum(t.duration for t in transactions))


def generate_transactions(
    n: int,
    n_locations: int = 1024,
    reads_per_txn: int = 4,
    writes_per_txn: int = 2,
    hot_fraction: float = 0.0,
    hot_locations: int = 8,
    duration: float = 1.0,
    rng: RngLike = None,
) -> list[Transaction]:
    """Synthetic transaction workload with a tunable conflict knob.

    ``hot_fraction`` of accesses target a small hot region; raising it
    raises the conflict (and therefore abort) rate.  Durations get
    +-20% jitter so concurrent windows genuinely interleave (identical
    durations would let every commit land exactly on a window boundary
    and never conflict).
    """
    if n < 0 or n_locations < 1:
        raise ValueError("bad workload geometry")
    if reads_per_txn < 0 or writes_per_txn < 0:
        raise ValueError("set sizes must be non-negative")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    if hot_locations < 1 or hot_locations > n_locations:
        raise ValueError("bad hot_locations")
    gen = resolve_rng(rng)
    out = []
    for _ in range(n):
        def draw(k):
            locs = set()
            for _ in range(k):
                if gen.random() < hot_fraction:
                    locs.add(int(gen.integers(hot_locations)))
                else:
                    locs.add(int(gen.integers(n_locations)))
            return frozenset(locs)

        out.append(
            Transaction(
                read_set=draw(reads_per_txn),
                write_set=draw(writes_per_txn),
                duration=duration * float(gen.uniform(0.8, 1.2)),
            )
        )
    return out


def tm_vs_lock_comparison(
    n_threads_list: list[int],
    hot_fraction: float = 0.1,
    n_transactions: int = 400,
    rng: RngLike = 0,
) -> dict[str, np.ndarray]:
    """Throughput scaling: STM vs a global lock (experiment E16)."""
    if not n_threads_list:
        raise ValueError("n_threads_list must be non-empty")
    txns = generate_transactions(
        n_transactions, hot_fraction=hot_fraction, rng=rng
    )
    lock_time = global_lock_makespan(txns)
    tm_speedup, abort_rates = [], []
    for p in n_threads_list:
        stats = STMSimulator(p).run(txns, rng=rng)
        tm_speedup.append(lock_time / stats.makespan)
        abort_rates.append(stats.abort_rate)
    return {
        "threads": np.asarray(n_threads_list, dtype=float),
        "tm_speedup_vs_lock": np.array(tm_speedup),
        "abort_rate": np.array(abort_rates),
    }
