"""Communication-aware parallel scaling — "1,000-way parallelism".

Paper, Section 1.2: "while parallelism will abound in future
applications (big data = big parallelism), communication energy will
outgrow computation energy and will require rethinking how we design for
1,000-way parallelism."

This module couples Amdahl-style time scaling with an energy model in
which each unit of work requires data movement whose cost *grows* with
the number of cores (more cores = more cross-chip/cross-node traffic),
while per-op compute energy is constant.  The result is the paper's
argument rendered quantitative: time keeps (weakly) improving with more
cores, but energy per unit work grows, so an energy-constrained design
has a finite optimal parallelism — and pushing to 1,000-way requires
cutting communication energy, not adding cores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .amdahl import _check_fraction


@dataclass(frozen=True)
class CommunicationModel:
    """Energy/time cost of communication as a function of core count.

    ``distance_exponent`` controls how average communication distance
    grows with n (0.5 for a 2-D mesh: diameter ~ sqrt(n)).
    ``traffic_fraction`` is the share of operations that communicate.
    """

    compute_energy_per_op_j: float = 1e-12
    comm_energy_per_op_base_j: float = 5e-12
    distance_exponent: float = 0.5
    traffic_fraction: float = 0.2

    def __post_init__(self) -> None:
        if min(self.compute_energy_per_op_j, self.comm_energy_per_op_base_j) < 0:
            raise ValueError("energies must be non-negative")
        if self.distance_exponent < 0:
            raise ValueError("distance exponent must be non-negative")
        if not 0.0 <= self.traffic_fraction <= 1.0:
            raise ValueError("traffic fraction must be in [0, 1]")

    def comm_energy_per_op_j(self, n) -> np.ndarray:
        """Average communication energy per operation on n cores."""
        arr = np.asarray(n, dtype=float)
        if np.any(arr < 1):
            raise ValueError("core count must be >= 1")
        return (
            self.comm_energy_per_op_base_j
            * self.traffic_fraction
            * arr**self.distance_exponent
        )

    def energy_per_op_j(self, n) -> np.ndarray:
        """Total (compute + communication) energy per operation."""
        return self.compute_energy_per_op_j + self.comm_energy_per_op_j(n)


def energy_constrained_throughput(
    n,
    power_budget_w: float,
    model: CommunicationModel = CommunicationModel(),
    parallel_fraction: float = 0.9999,
    core_ops_per_s: float = 1e9,
) -> np.ndarray:
    """Sustained ops/s on n cores under a power budget.

    Two ceilings apply: Amdahl-limited parallel rate
    (n effective cores x per-core rate x efficiency) and the power
    ceiling budget / energy_per_op(n).  Throughput is their minimum —
    the crossing point is where communication energy, not core count,
    starts setting performance.
    """
    _check_fraction(parallel_fraction)
    if power_budget_w <= 0 or core_ops_per_s <= 0:
        raise ValueError("budget and core rate must be positive")
    arr = np.asarray(n, dtype=float)
    if np.any(arr < 1):
        raise ValueError("core count must be >= 1")
    from .amdahl import amdahl_speedup

    compute_rate = core_ops_per_s * amdahl_speedup(arr, parallel_fraction)
    power_rate = power_budget_w / model.energy_per_op_j(arr)
    return np.minimum(compute_rate, power_rate)


def optimal_parallelism(
    power_budget_w: float,
    model: CommunicationModel = CommunicationModel(),
    parallel_fraction: float = 0.9999,
    core_ops_per_s: float = 1e9,
    n_max: int = 65536,
) -> dict[str, float]:
    """Core count maximizing energy-constrained throughput.

    Returns the optimum, its throughput, and the communication share of
    energy there — the quantitative "rethink 1,000-way parallelism"
    statement.  When the throughput curve plateaus (Amdahl-limited),
    the *smallest* core count within 2% of the peak is reported — more
    cores that buy nothing are not "more parallelism".
    """
    ns = np.unique(np.round(np.geomspace(1, n_max, 256))).astype(float)
    thr = energy_constrained_throughput(
        ns, power_budget_w, model, parallel_fraction, core_ops_per_s
    )
    peak = float(np.max(thr))
    i = int(np.argmax(thr >= 0.98 * peak))
    n_opt = float(ns[i])
    comm = float(model.comm_energy_per_op_j(n_opt))
    total = float(model.energy_per_op_j(n_opt))
    return {
        "n_optimal": n_opt,
        "throughput_ops": float(thr[i]),
        "comm_energy_share": comm / total,
    }


def required_comm_reduction_for_target(
    target_n: float,
    power_budget_w: float,
    model: CommunicationModel = CommunicationModel(),
    parallel_fraction: float = 0.9999,
    core_ops_per_s: float = 1e9,
) -> float:
    """Factor by which communication energy must drop so that the
    energy-optimal parallelism reaches ``target_n``.

    Searches over scaling factors on ``comm_energy_per_op_base_j``;
    returns the smallest reduction factor (>= 1) achieving
    n_optimal >= target_n, or inf if even zero communication energy
    doesn't get there (Amdahl-limited).
    """
    if target_n < 1:
        raise ValueError("target_n must be >= 1")
    # Check feasibility with free communication.
    free = CommunicationModel(
        compute_energy_per_op_j=model.compute_energy_per_op_j,
        comm_energy_per_op_base_j=0.0,
        distance_exponent=model.distance_exponent,
        traffic_fraction=model.traffic_fraction,
    )
    if (
        optimal_parallelism(
            power_budget_w, free, parallel_fraction, core_ops_per_s
        )["n_optimal"]
        < target_n
    ):
        return float("inf")
    lo, hi = 1.0, 1.0
    while hi < 1e9:
        reduced = CommunicationModel(
            compute_energy_per_op_j=model.compute_energy_per_op_j,
            comm_energy_per_op_base_j=model.comm_energy_per_op_base_j / hi,
            distance_exponent=model.distance_exponent,
            traffic_fraction=model.traffic_fraction,
        )
        if (
            optimal_parallelism(
                power_budget_w, reduced, parallel_fraction, core_ops_per_s
            )["n_optimal"]
            >= target_n
        ):
            break
        lo = hi
        hi *= 2.0
    else:
        return float("inf")
    # Bisect between lo and hi.
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        reduced = CommunicationModel(
            compute_energy_per_op_j=model.compute_energy_per_op_j,
            comm_energy_per_op_base_j=model.comm_energy_per_op_base_j / mid,
            distance_exponent=model.distance_exponent,
            traffic_fraction=model.traffic_fraction,
        )
        ok = (
            optimal_parallelism(
                power_budget_w, reduced, parallel_fraction, core_ops_per_s
            )["n_optimal"]
            >= target_n
        )
        if ok:
            hi = mid
        else:
            lo = mid
    return hi
