"""Hill-Marty multicore speedup models ("Amdahl's Law in the Multicore
Era", IEEE Computer 2008).

The white paper's lead author co-wrote the canonical model for exactly
the question the paper poses — how to organize n base-core equivalents
(BCEs) of silicon: many small cores, one big core, or a big core plus
many small ones.  Implemented: symmetric, asymmetric, and dynamic chips,
with Pollack-rule core performance ``perf(r) = sqrt(r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..processor.pollack import core_performance
from .amdahl import _check_fraction

PerfFn = Callable[[float], float]


def _default_perf(r: float) -> float:
    return float(core_performance(r))


def symmetric_speedup(
    f: float, n: int, r: float, perf: PerfFn = _default_perf
) -> float:
    """n BCEs as n/r cores of r BCEs each.

    S = 1 / ( (1-f)/perf(r) + f*r / (perf(r)*n) )
    """
    _check_fraction(f, "f")
    if n < 1 or r < 1 or r > n:
        raise ValueError("need 1 <= r <= n")
    p = perf(r)
    return 1.0 / ((1.0 - f) / p + f * r / (p * n))


def asymmetric_speedup(
    f: float, n: int, r: float, perf: PerfFn = _default_perf
) -> float:
    """One big core of r BCEs plus (n - r) base cores.

    Serial work runs on the big core; parallel work uses everything:
    S = 1 / ( (1-f)/perf(r) + f/(perf(r) + n - r) )
    """
    _check_fraction(f, "f")
    if n < 1 or r < 1 or r > n:
        raise ValueError("need 1 <= r <= n")
    p = perf(r)
    return 1.0 / ((1.0 - f) / p + f / (p + (n - r)))


def dynamic_speedup(
    f: float, n: int, r: float, perf: PerfFn = _default_perf
) -> float:
    """Dynamically reconfigurable chip: serial phases get perf(r),
    parallel phases get all n BCEs.

    S = 1 / ( (1-f)/perf(r) + f/n )
    """
    _check_fraction(f, "f")
    if n < 1 or r < 1 or r > n:
        raise ValueError("need 1 <= r <= n")
    return 1.0 / ((1.0 - f) / perf(r) + f / n)


@dataclass(frozen=True)
class BestDesign:
    """Optimal core size and the speedup it achieves."""

    r: float
    speedup: float
    organization: str


def best_symmetric(
    f: float, n: int, perf: PerfFn = _default_perf
) -> BestDesign:
    """Best r for a symmetric chip (grid search over divisors-ish r)."""
    candidates = _r_grid(n)
    speedups = [symmetric_speedup(f, n, r, perf) for r in candidates]
    i = int(np.argmax(speedups))
    return BestDesign(candidates[i], speedups[i], "symmetric")


def best_asymmetric(
    f: float, n: int, perf: PerfFn = _default_perf
) -> BestDesign:
    candidates = _r_grid(n)
    speedups = [asymmetric_speedup(f, n, r, perf) for r in candidates]
    i = int(np.argmax(speedups))
    return BestDesign(candidates[i], speedups[i], "asymmetric")


def best_dynamic(
    f: float, n: int, perf: PerfFn = _default_perf
) -> BestDesign:
    # Dynamic speedup is monotone in r (bigger serial core never hurts),
    # so r = n is always optimal; kept as a search for symmetry.
    candidates = _r_grid(n)
    speedups = [dynamic_speedup(f, n, r, perf) for r in candidates]
    i = int(np.argmax(speedups))
    return BestDesign(candidates[i], speedups[i], "dynamic")


def _r_grid(n: int) -> list[float]:
    if n < 1:
        raise ValueError("n must be >= 1")
    rs = sorted({float(r) for r in np.unique(np.round(np.geomspace(1, n, 64)))})
    return [r for r in rs if 1 <= r <= n]


def organization_comparison(
    f: float, n: int = 256, perf: PerfFn = _default_perf
) -> dict[str, BestDesign]:
    """Hill-Marty's headline figure: best speedup per organization.

    Published shape: dynamic >= asymmetric >= symmetric for all f, with
    asymmetric's advantage largest at moderate f — the case for
    heterogeneous chips (paper Table 2 "heterogeneous clusters").
    """
    return {
        "symmetric": best_symmetric(f, n, perf),
        "asymmetric": best_asymmetric(f, n, perf),
        "dynamic": best_dynamic(f, n, perf),
    }


def speedup_surface(
    fs: np.ndarray, n: int = 256
) -> dict[str, np.ndarray]:
    """Best-achievable speedup vs parallel fraction per organization."""
    fs_arr = np.asarray(fs, dtype=float)
    out = {"f": fs_arr}
    for name, fn in (
        ("symmetric", best_symmetric),
        ("asymmetric", best_asymmetric),
        ("dynamic", best_dynamic),
    ):
        out[name] = np.array([fn(float(f), n).speedup for f in fs_arr])
    return out
