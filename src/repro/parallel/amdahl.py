"""Amdahl's law, Gustafson's law, and friends.

The scalar algebra behind every parallelism argument in the paper
(Section 2.2 "Exploiting Parallelism").  All functions are vectorized
over the processor count.
"""

from __future__ import annotations

import numpy as np


def _check_fraction(f: float, name: str = "parallel_fraction") -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {f}")


def _check_n(n) -> np.ndarray:
    arr = np.asarray(n, dtype=float)
    if np.any(arr < 1):
        raise ValueError("processor count must be >= 1")
    return arr


def amdahl_speedup(n, parallel_fraction: float) -> np.ndarray | float:
    """Fixed-workload speedup on ``n`` processors."""
    _check_fraction(parallel_fraction)
    arr = _check_n(n)
    result = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / arr)
    return float(result) if np.isscalar(n) else result


def amdahl_limit(parallel_fraction: float) -> float:
    """Speedup ceiling as n -> infinity: 1 / (1 - f)."""
    _check_fraction(parallel_fraction)
    if parallel_fraction == 1.0:
        return float("inf")
    return 1.0 / (1.0 - parallel_fraction)


def gustafson_speedup(n, parallel_fraction: float) -> np.ndarray | float:
    """Scaled-workload speedup: S = (1-f) + f*n.

    The "big data = big parallelism" reading: problem size grows with
    the machine, so the serial share shrinks.
    """
    _check_fraction(parallel_fraction)
    arr = _check_n(n)
    result = (1.0 - parallel_fraction) + parallel_fraction * arr
    return float(result) if np.isscalar(n) else result


def karp_flatt_metric(speedup, n) -> np.ndarray | float:
    """Experimentally determined serial fraction from measured speedup.

    e = (1/S - 1/n) / (1 - 1/n).  Rising e with n exposes overheads
    beyond inherent serial work.
    """
    s_arr = np.asarray(speedup, dtype=float)
    n_arr = _check_n(n)
    if np.any(s_arr <= 0):
        raise ValueError("speedup must be positive")
    if np.any(n_arr <= 1):
        raise ValueError("Karp-Flatt undefined at n = 1")
    result = (1.0 / s_arr - 1.0 / n_arr) / (1.0 - 1.0 / n_arr)
    return float(result) if np.isscalar(speedup) and np.isscalar(n) else result


def parallel_efficiency(n, parallel_fraction: float) -> np.ndarray | float:
    """Speedup / n — the utilization of the added processors."""
    arr = _check_n(n)
    result = amdahl_speedup(arr, parallel_fraction) / arr
    return float(result) if np.isscalar(n) else result


def amdahl_with_overhead(
    n, parallel_fraction: float, overhead_per_proc: float
) -> np.ndarray | float:
    """Amdahl plus a per-processor coordination cost.

    T(n) = (1-f) + f/n + c*n (normalized to T(1) = 1); speedup now has
    an interior optimum — the first-order model of synchronization and
    communication killing scaling.
    """
    _check_fraction(parallel_fraction)
    if overhead_per_proc < 0:
        raise ValueError("overhead must be non-negative")
    arr = _check_n(n)
    time = (1.0 - parallel_fraction) + parallel_fraction / arr + (
        overhead_per_proc * arr
    )
    result = 1.0 / time
    return float(result) if np.isscalar(n) else result


def optimal_processors_with_overhead(
    parallel_fraction: float, overhead_per_proc: float
) -> float:
    """Processor count maximizing :func:`amdahl_with_overhead`.

    dT/dn = -f/n^2 + c = 0 => n* = sqrt(f / c).
    """
    _check_fraction(parallel_fraction)
    if overhead_per_proc <= 0:
        return float("inf")
    return float(np.sqrt(parallel_fraction / overhead_per_proc))
