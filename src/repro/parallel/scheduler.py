"""Work-stealing task scheduler simulator.

Simulates a randomized work-stealing runtime (Cilk/TBB-style) executing
a task DAG on P workers: each worker runs its local deque; idle workers
steal from random victims; steals cost time.  Results are validated
against the Brent/Graham greedy bounds from :mod:`repro.parallel.tasks`,
and the steal-cost knob quantifies the "fine-grain multitasking"
overhead the paper's runtime agenda worries about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import networkx as nx
import numpy as np

from ..core.rng import RngLike, resolve_rng
from .tasks import greedy_bound, span, total_work


@dataclass(frozen=True)
class SchedulerConfig:
    n_workers: int = 4
    steal_cost: float = 0.1  # time per steal attempt
    rng: RngLike = 0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.steal_cost < 0:
            raise ValueError("steal cost must be non-negative")


@dataclass
class ScheduleResult:
    makespan: float
    steals: int
    steal_attempts: int
    worker_busy_time: np.ndarray
    task_finish: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        total = self.makespan * len(self.worker_busy_time)
        if total == 0:
            return float("nan")
        return float(self.worker_busy_time.sum() / total)

    def within_greedy_bounds(self, g: nx.DiGraph, slack: float = 1.25) -> bool:
        """Makespan within [lower, slack * upper].

        ``slack`` absorbs steal-cost overhead, which the Graham bound
        does not model.
        """
        lower, upper = greedy_bound(g, len(self.worker_busy_time))
        return lower - 1e-9 <= self.makespan <= slack * upper + 1e-9


class WorkStealingScheduler:
    """Event-driven work-stealing simulation.

    Time advances worker-by-worker: each worker owns a clock; when it
    finishes a task it pushes newly-ready children onto its own deque
    (LIFO); when empty it attempts steals (FIFO from a random victim's
    deque) at ``steal_cost`` per attempt.  This is the standard
    simulation abstraction — not cycle-accurate, but it reproduces the
    provable behaviour (makespan near T1/P + O(T_inf)).
    """

    def __init__(self, config: SchedulerConfig = SchedulerConfig()) -> None:
        self.config = config

    def run(self, g: nx.DiGraph) -> ScheduleResult:
        cfg = self.config
        gen = resolve_rng(cfg.rng)
        p = cfg.n_workers
        indegree = {n: g.in_degree(n) for n in g.nodes}
        ready = [n for n, d in indegree.items() if d == 0]
        deques: list[list] = [[] for _ in range(p)]
        # Seed worker 0 with the roots (program start).
        deques[0].extend(ready)
        clocks = np.zeros(p)
        busy = np.zeros(p)
        finish: dict = {}
        steals = 0
        attempts = 0
        remaining = g.number_of_nodes()

        # A task may only start after its last parent finished, even if
        # the executing worker's own clock is earlier (it stole it).
        ready_time: dict = {n: 0.0 for n in g.nodes}

        def execute(w: int, task) -> None:
            nonlocal remaining
            work = g.nodes[task]["work"]
            start = max(clocks[w], ready_time[task])
            clocks[w] = start + work
            busy[w] += work
            finish[task] = clocks[w]
            remaining -= 1
            for child in g.successors(task):
                indegree[child] -= 1
                ready_time[child] = max(ready_time[child], clocks[w])
                if indegree[child] == 0:
                    deques[w].append(child)

        while remaining > 0:
            # Pick the worker with the earliest clock.
            w = int(np.argmin(clocks))
            if deques[w]:
                execute(w, deques[w].pop())  # LIFO own-end
            else:
                # Steal attempt from a random victim.  A successful
                # thief runs the stolen task immediately (otherwise
                # idle peers can steal it back forever — livelock).
                attempts += 1
                clocks[w] += cfg.steal_cost
                victims = [v for v in range(p) if v != w and deques[v]]
                if victims:
                    victim = victims[int(gen.integers(len(victims)))]
                    steals += 1
                    execute(w, deques[victim].pop(0))  # FIFO victim-end
                else:
                    # Nothing stealable: fast-forward this worker past
                    # the next busy worker's completion to avoid spin.
                    others = clocks[np.arange(p) != w]
                    ahead = others[others > clocks[w] - cfg.steal_cost]
                    if ahead.size:
                        clocks[w] = float(ahead.min())
        makespan = float(np.max(list(finish.values()))) if finish else 0.0
        return ScheduleResult(
            makespan=makespan,
            steals=steals,
            steal_attempts=attempts,
            worker_busy_time=busy,
            task_finish=finish,
        )


def speedup_curve(
    g: nx.DiGraph,
    worker_counts: list[int],
    steal_cost: float = 0.05,
    rng: RngLike = 0,
) -> dict[str, np.ndarray]:
    """Measured speedup vs workers, with the greedy upper/lower bounds."""
    if not worker_counts:
        raise ValueError("worker_counts must be non-empty")
    t1 = total_work(g)
    measured, lower, upper = [], [], []
    for p in worker_counts:
        result = WorkStealingScheduler(
            SchedulerConfig(n_workers=p, steal_cost=steal_cost, rng=rng)
        ).run(g)
        measured.append(t1 / result.makespan)
        lo, hi = greedy_bound(g, p)
        lower.append(t1 / hi)
        upper.append(t1 / lo)
    return {
        "workers": np.asarray(worker_counts, dtype=float),
        "speedup": np.array(measured),
        "greedy_lower": np.array(lower),
        "greedy_upper": np.array(upper),
    }
