"""Synchronization cost models: locks and barriers.

"We also need more research on synchronization support" (Section 2.2);
"Programmers are plagued by synchronization subtleties ... load
imbalance" (Section 2.4).  Two first-order models:

* **Lock contention** — an M/M/1-style critical-section queue: threads
  arrive at a lock at some rate; throughput saturates at the critical
  section's service rate, and waiting time diverges as utilization
  approaches 1 (the "serialization bottleneck" picture behind Amdahl).
* **Barrier skew** — with per-phase work drawn from a distribution, the
  barrier waits for the max of P draws; expected slack grows with P
  (extreme-value statistics), the load-imbalance cost of bulk-
  synchronous programs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class LockModel:
    """Critical-section queueing model.

    Each thread iterates: compute (mean ``compute_time``) then acquire
    the lock and hold it for ``critical_time``.  With P threads, the
    offered utilization of the lock is
    ``rho = P * critical / (compute + critical)``; beyond rho = 1 the
    lock is the system bottleneck.
    """

    compute_time: float = 1.0
    critical_time: float = 0.1

    def __post_init__(self) -> None:
        if self.compute_time < 0 or self.critical_time <= 0:
            raise ValueError("bad timing parameters")

    def utilization(self, p) -> np.ndarray:
        arr = np.asarray(p, dtype=float)
        if np.any(arr < 1):
            raise ValueError("thread count must be >= 1")
        cycle = self.compute_time + self.critical_time
        return np.minimum(1.0, arr * self.critical_time / cycle)

    def throughput(self, p) -> np.ndarray:
        """Completed iterations per unit time across all threads.

        min(P / cycle_time, 1 / critical_time): linear until the lock
        saturates, flat afterwards.
        """
        arr = np.asarray(p, dtype=float)
        if np.any(arr < 1):
            raise ValueError("thread count must be >= 1")
        cycle = self.compute_time + self.critical_time
        return np.minimum(arr / cycle, 1.0 / self.critical_time)

    def saturation_threads(self) -> float:
        """Thread count at which the lock saturates."""
        return (self.compute_time + self.critical_time) / self.critical_time

    def speedup(self, p) -> np.ndarray:
        return self.throughput(p) / self.throughput(1)


def barrier_slack(
    p: int,
    mean_work: float = 1.0,
    cv: float = 0.2,
    n_phases: int = 1000,
    distribution: str = "lognormal",
    rng: RngLike = None,
) -> dict[str, float]:
    """Monte-Carlo expected barrier slack for P workers.

    Slack = E[max of P draws] / mean - 1: the fraction of each phase
    wasted waiting for the slowest worker.  Grows with both P and the
    coefficient of variation ``cv``.
    """
    if p < 1 or n_phases < 1:
        raise ValueError("p and n_phases must be >= 1")
    if mean_work <= 0 or cv < 0:
        raise ValueError("bad work distribution parameters")
    gen = resolve_rng(rng)
    if distribution == "lognormal":
        sigma = np.sqrt(np.log(1.0 + cv * cv))
        mu = np.log(mean_work) - 0.5 * sigma * sigma
        draws = gen.lognormal(mu, sigma, size=(n_phases, p))
    elif distribution == "exponential":
        draws = gen.exponential(mean_work, size=(n_phases, p))
    elif distribution == "uniform":
        half = np.sqrt(3.0) * cv * mean_work
        draws = gen.uniform(mean_work - half, mean_work + half,
                            size=(n_phases, p))
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    phase_times = draws.max(axis=1)
    return {
        "mean_phase_time": float(phase_times.mean()),
        "slack_fraction": float(phase_times.mean() / mean_work - 1.0),
        "efficiency": float(mean_work / phase_times.mean()),
    }


def barrier_slack_curve(
    ps: list[int], cv: float = 0.2, rng: RngLike = 0, **kwargs
) -> dict[str, np.ndarray]:
    """Barrier efficiency vs worker count — the BSP scaling tax."""
    if not ps:
        raise ValueError("ps must be non-empty")
    eff = [barrier_slack(p, cv=cv, rng=rng, **kwargs)["efficiency"] for p in ps]
    return {
        "workers": np.asarray(ps, dtype=float),
        "efficiency": np.array(eff),
    }
