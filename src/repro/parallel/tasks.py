"""Task DAGs: work, span, and schedulability bounds.

The substrate for the paper's "runtimes that ... orchestrate fine-grain
multitasking" (Section 2.2).  A task graph is a networkx DiGraph whose
nodes carry a ``work`` attribute (execution time); work/span analysis
gives the classic greedy-scheduling bounds the work-stealing simulator
is validated against: T1/P <= T_P <= T1/P + T_inf (Brent/Graham).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from ..core.rng import RngLike, resolve_rng


def make_task_graph(
    edges: Iterable[tuple[int, int]],
    work: dict[int, float],
) -> nx.DiGraph:
    """Build a validated task DAG with ``work`` per node."""
    g = nx.DiGraph()
    for node, w in work.items():
        if w <= 0:
            raise ValueError(f"task {node} must have positive work")
        g.add_node(node, work=float(w))
    for u, v in edges:
        if u not in g.nodes or v not in g.nodes:
            raise ValueError(f"edge ({u}, {v}) references unknown task")
        g.add_edge(u, v)
    if not nx.is_directed_acyclic_graph(g):
        raise ValueError("task graph must be acyclic")
    return g


def total_work(g: nx.DiGraph) -> float:
    """T1: serial execution time."""
    return float(sum(g.nodes[n]["work"] for n in g.nodes))


def span(g: nx.DiGraph) -> float:
    """T_inf: critical-path length (longest weighted path)."""
    if g.number_of_nodes() == 0:
        return 0.0
    finish: dict = {}
    for node in nx.topological_sort(g):
        preds = list(g.predecessors(node))
        start = max((finish[p] for p in preds), default=0.0)
        finish[node] = start + g.nodes[node]["work"]
    return float(max(finish.values()))


def parallelism(g: nx.DiGraph) -> float:
    """T1 / T_inf: the DAG's inherent parallelism."""
    s = span(g)
    if s == 0:
        return float("nan")
    return total_work(g) / s


def greedy_bound(g: nx.DiGraph, p: int) -> tuple[float, float]:
    """(lower, upper) bounds on any greedy P-processor schedule.

    lower = max(T1/P, T_inf); upper = T1/P + T_inf.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    t1, tinf = total_work(g), span(g)
    return max(t1 / p, tinf), t1 / p + tinf


def critical_path(g: nx.DiGraph) -> list:
    """Node sequence realizing the span."""
    if g.number_of_nodes() == 0:
        return []
    finish: dict = {}
    best_pred: dict = {}
    for node in nx.topological_sort(g):
        preds = list(g.predecessors(node))
        if preds:
            p = max(preds, key=lambda q: finish[q])
            start = finish[p]
            best_pred[node] = p
        else:
            start = 0.0
            best_pred[node] = None
        finish[node] = start + g.nodes[node]["work"]
    node = max(finish, key=finish.get)
    path = []
    while node is not None:
        path.append(node)
        node = best_pred[node]
    return list(reversed(path))


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def fork_join_graph(
    n_tasks: int, levels: int = 1, work: float = 1.0,
    serial_work: float = 1.0,
) -> nx.DiGraph:
    """``levels`` rounds of fork-join: serial node -> n parallel -> join."""
    if n_tasks < 1 or levels < 1:
        raise ValueError("n_tasks and levels must be >= 1")
    if work <= 0 or serial_work <= 0:
        raise ValueError("work values must be positive")
    g = nx.DiGraph()
    node_id = 0

    def add(w):
        nonlocal node_id
        g.add_node(node_id, work=float(w))
        node_id += 1
        return node_id - 1

    prev_join = add(serial_work)
    for _ in range(levels):
        children = [add(work) for _ in range(n_tasks)]
        join = add(serial_work)
        for c in children:
            g.add_edge(prev_join, c)
            g.add_edge(c, join)
        prev_join = join
    return g


def random_dag(
    n: int,
    edge_probability: float = 0.1,
    work_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
) -> nx.DiGraph:
    """Random layered DAG (edges only forward in index order)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    lo, hi = work_range
    if lo <= 0 or hi < lo:
        raise ValueError("bad work range")
    gen = resolve_rng(rng)
    g = nx.DiGraph()
    for i in range(n):
        g.add_node(i, work=float(gen.uniform(lo, hi)))
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < edge_probability:
                g.add_edge(i, j)
    return g


def chain_graph(n: int, work: float = 1.0) -> nx.DiGraph:
    """Fully serial chain — zero parallelism."""
    if n < 1:
        raise ValueError("n must be >= 1")
    g = nx.DiGraph()
    for i in range(n):
        g.add_node(i, work=float(work))
        if i:
            g.add_edge(i - 1, i)
    return g
