"""Network topologies for on-chip and system-scale interconnects.

"Fundamental architecture questions include ... networking structures at
different scales" (Section 2.2).  Topologies are plain
:class:`networkx.Graph` objects with node attribute ``pos`` (grid
coordinates where natural); metrics (diameter, average hop count,
bisection width) quantify the latency/energy tradeoffs the NoC and
datacenter models consume.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import networkx as nx
import numpy as np


def mesh2d(width: int, height: int) -> nx.Graph:
    """2-D mesh — the canonical NoC topology."""
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be >= 1")
    g = nx.grid_2d_graph(width, height)
    for node in g.nodes:
        g.nodes[node]["pos"] = node
    return g


def torus2d(width: int, height: int) -> nx.Graph:
    """2-D torus: mesh plus wraparound links."""
    if width < 3 or height < 3:
        raise ValueError("torus dimensions must be >= 3 for distinct wraps")
    g = nx.grid_2d_graph(width, height, periodic=True)
    for node in g.nodes:
        g.nodes[node]["pos"] = node
    return g


def ring(n: int) -> nx.Graph:
    """Ring — cheap wiring, O(n) diameter."""
    if n < 3:
        raise ValueError("ring needs >= 3 nodes")
    g = nx.cycle_graph(n)
    for node in g.nodes:
        g.nodes[node]["pos"] = (node, 0)
    return g


def crossbar(n: int) -> nx.Graph:
    """Full crossbar (complete graph) — one hop, O(n^2) wires."""
    if n < 2:
        raise ValueError("crossbar needs >= 2 nodes")
    g = nx.complete_graph(n)
    for node in g.nodes:
        g.nodes[node]["pos"] = (node, 0)
    return g


def fat_tree(leaves: int, arity: int = 2) -> nx.Graph:
    """Binary-ish fat tree: leaves at the bottom, switches above.

    Leaf nodes are integers 0..leaves-1; internal switches are strings
    ``"s<level>_<index>"``.  Capacity fattening is not modeled in the
    graph structure (links carry a ``capacity`` attribute doubling per
    level instead).
    """
    if leaves < 2:
        raise ValueError("need >= 2 leaves")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    g = nx.Graph()
    level_nodes: list = list(range(leaves))
    for node in level_nodes:
        g.add_node(node, pos=(node, 0))
    level = 0
    capacity = 1.0
    while len(level_nodes) > 1:
        level += 1
        parents = []
        for i in range(0, len(level_nodes), arity):
            parent = f"s{level}_{i // arity}"
            g.add_node(parent, pos=(i, level))
            parents.append(parent)
            for child in level_nodes[i : i + arity]:
                g.add_edge(child, parent, capacity=capacity)
        level_nodes = parents
        capacity *= arity
    return g


def diameter(g: nx.Graph) -> int:
    """Longest shortest path (hops)."""
    return nx.diameter(g)


def average_hops(g: nx.Graph) -> float:
    """Mean shortest-path length over all node pairs."""
    return nx.average_shortest_path_length(g)


def bisection_width(g: nx.Graph, trials: int = 1) -> int:
    """Minimum edges cut to split the network into equal halves.

    For the structured topologies here we use the known formulas when
    recognizable (meshes/tori via node count heuristics are fragile, so
    we compute a true minimum balanced cut for small graphs and fall
    back to a Kernighan-Lin heuristic for large ones).
    """
    n = g.number_of_nodes()
    if n < 2:
        raise ValueError("need >= 2 nodes")
    nodes = list(g.nodes)
    half = n // 2
    if n <= 16:
        best = np.inf
        for combo in itertools.combinations(nodes, half):
            side = set(combo)
            cut = sum(1 for u, v in g.edges if (u in side) != (v in side))
            best = min(best, cut)
        return int(best)
    parts = nx.algorithms.community.kernighan_lin_bisection(g, seed=42)
    side = set(parts[0])
    return sum(1 for u, v in g.edges if (u in side) != (v in side))


def xy_route(src: Tuple[int, int], dst: Tuple[int, int]) -> list[Tuple[int, int]]:
    """Dimension-ordered (X then Y) route on a 2-D mesh.

    Returns the node sequence from ``src`` to ``dst`` inclusive —
    deterministic and deadlock-free on meshes.
    """
    x, y = src
    dx, dy = dst
    path = [(x, y)]
    step = 1 if dx > x else -1
    while x != dx:
        x += step
        path.append((x, y))
    step = 1 if dy > y else -1
    while y != dy:
        y += step
        path.append((x, y))
    return path


def yx_route(src: Tuple[int, int], dst: Tuple[int, int]) -> list[Tuple[int, int]]:
    """Dimension-ordered (Y then X) route on a 2-D mesh.

    The transpose of :func:`xy_route` — equally deadlock-free, but it
    loads the mesh's links differently, which is what makes it a
    distinct baseline in the NoC routing championship.
    """
    x, y = src
    dx, dy = dst
    path = [(x, y)]
    step = 1 if dy > y else -1
    while y != dy:
        y += step
        path.append((x, y))
    step = 1 if dx > x else -1
    while x != dx:
        x += step
        path.append((x, y))
    return path


def topology_summary(g: nx.Graph) -> dict[str, float]:
    """One-line comparison record for a topology."""
    return {
        "nodes": float(g.number_of_nodes()),
        "links": float(g.number_of_edges()),
        "diameter": float(diameter(g)),
        "average_hops": float(average_hops(g)),
        "max_degree": float(max(dict(g.degree).values())),
    }
