"""NoC traffic-pattern generators.

The standard synthetic patterns used to characterize on-chip networks:
uniform random, transpose, bit-complement, hotspot, and nearest
neighbor.  Each generator yields (src, dst) coordinate pairs for a
width x height mesh.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.rng import RngLike, resolve_rng

Coord = Tuple[int, int]


def _check_dims(width: int, height: int) -> None:
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be >= 1")


def uniform_random_pairs(
    n: int, width: int, height: int, rng: RngLike = None
) -> list[tuple[Coord, Coord]]:
    """Each packet picks an independent uniform source and destination
    (self-loops resampled)."""
    _check_dims(width, height)
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = resolve_rng(rng)
    pairs = []
    while len(pairs) < n:
        sx, sy, dx, dy = (
            int(gen.integers(width)),
            int(gen.integers(height)),
            int(gen.integers(width)),
            int(gen.integers(height)),
        )
        if (sx, sy) != (dx, dy):
            pairs.append(((sx, sy), (dx, dy)))
    return pairs


def transpose_pairs(
    n: int, width: int, height: int, rng: RngLike = None
) -> list[tuple[Coord, Coord]]:
    """(x, y) -> (y, x): the classic adversarial pattern for XY routing
    (requires a square mesh)."""
    _check_dims(width, height)
    if width != height:
        raise ValueError("transpose requires a square mesh")
    gen = resolve_rng(rng)
    pairs = []
    while len(pairs) < n:
        x, y = int(gen.integers(width)), int(gen.integers(height))
        if x != y:
            pairs.append(((x, y), (y, x)))
    return pairs


def bit_complement_pairs(
    n: int, width: int, height: int, rng: RngLike = None
) -> list[tuple[Coord, Coord]]:
    """(x, y) -> (W-1-x, H-1-y): all traffic crosses the center."""
    _check_dims(width, height)
    gen = resolve_rng(rng)
    pairs = []
    while len(pairs) < n:
        x, y = int(gen.integers(width)), int(gen.integers(height))
        dst = (width - 1 - x, height - 1 - y)
        if (x, y) != dst:
            pairs.append(((x, y), dst))
    return pairs


def hotspot_pairs(
    n: int,
    width: int,
    height: int,
    hotspot: Coord = None,
    hot_fraction: float = 0.3,
    rng: RngLike = None,
) -> list[tuple[Coord, Coord]]:
    """A fraction of all traffic targets one node (shared cache bank,
    memory controller)."""
    _check_dims(width, height)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    gen = resolve_rng(rng)
    hs = hotspot if hotspot is not None else (width // 2, height // 2)
    if not (0 <= hs[0] < width and 0 <= hs[1] < height):
        raise ValueError("hotspot outside the mesh")
    pairs = []
    while len(pairs) < n:
        src = (int(gen.integers(width)), int(gen.integers(height)))
        if gen.random() < hot_fraction:
            dst = hs
        else:
            dst = (int(gen.integers(width)), int(gen.integers(height)))
        if src != dst:
            pairs.append((src, dst))
    return pairs


def neighbor_pairs(
    n: int, width: int, height: int, rng: RngLike = None
) -> list[tuple[Coord, Coord]]:
    """Nearest-neighbor traffic (stencil exchange): one hop east."""
    _check_dims(width, height)
    if width < 2:
        raise ValueError("neighbor traffic needs width >= 2")
    gen = resolve_rng(rng)
    pairs = []
    for _ in range(n):
        x, y = int(gen.integers(width)), int(gen.integers(height))
        pairs.append(((x, y), ((x + 1) % width, y)))
    return pairs


PATTERNS = {
    "uniform": uniform_random_pairs,
    "transpose": transpose_pairs,
    "bit_complement": bit_complement_pairs,
    "hotspot": hotspot_pairs,
    "neighbor": neighbor_pairs,
}


def make_pattern(
    name: str, n: int, width: int, height: int, rng: RngLike = None, **kwargs
) -> list[tuple[Coord, Coord]]:
    """Dispatch by pattern name."""
    if name not in PATTERNS:
        raise KeyError(f"unknown pattern {name!r}; available: {sorted(PATTERNS)}")
    return PATTERNS[name](n, width, height, rng=rng, **kwargs)


def poisson_injection_times(
    n: int, rate_per_cycle: float, rng: RngLike = None
) -> np.ndarray:
    """Cumulative injection cycles for a Poisson arrival process."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate_per_cycle <= 0:
        raise ValueError("rate must be positive")
    gen = resolve_rng(rng)
    gaps = gen.exponential(1.0 / rate_per_cycle, size=n)
    return np.cumsum(gaps)
