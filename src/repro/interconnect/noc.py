"""Cycle-approximate network-on-chip simulator.

Packet-level, dimension-order-routed 2-D mesh with single-flit packets
and one-packet-per-cycle links — the minimal model that still produces
the canonical NoC behaviours: low-load latency ~ hop count x router
delay, queueing growth with injection rate, and saturation throughput
differences between traffic patterns.

Energy: every hop charges router + link energy to a ledger, connecting
the NoC to the paper's "energy is largely spent moving data" argument
(experiments E04/E21).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.energy import EnergyLedger
from .topology import xy_route

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


@dataclass(frozen=True)
class NoCConfig:
    width: int = 8
    height: int = 8
    router_delay_cycles: int = 2  # pipeline latency per hop
    link_delay_cycles: int = 1
    energy_per_hop_router_j: float = 4e-12
    energy_per_hop_link_j: float = 2e-12

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        if self.router_delay_cycles < 1 or self.link_delay_cycles < 0:
            raise ValueError("bad delays")
        if min(self.energy_per_hop_router_j, self.energy_per_hop_link_j) < 0:
            raise ValueError("energies must be non-negative")

    @property
    def hop_latency(self) -> int:
        return self.router_delay_cycles + self.link_delay_cycles


@dataclass
class Packet:
    src: Coord
    dst: Coord
    injected_at: float
    route: list[Coord] = field(default_factory=list)
    hop_index: int = 0
    delivered_at: Optional[float] = None

    @property
    def latency(self) -> float:
        if self.delivered_at is None:
            raise ValueError("packet not yet delivered")
        return self.delivered_at - self.injected_at

    @property
    def hops(self) -> int:
        return len(self.route) - 1


@dataclass
class NoCResult:
    delivered: list[Packet]
    dropped: int
    cycles: float
    ledger: EnergyLedger

    @property
    def mean_latency(self) -> float:
        if not self.delivered:
            return float("nan")
        return float(np.mean([p.latency for p in self.delivered]))

    @property
    def p99_latency(self) -> float:
        if not self.delivered:
            return float("nan")
        return float(np.percentile([p.latency for p in self.delivered], 99))

    @property
    def throughput_packets_per_cycle(self) -> float:
        if self.cycles <= 0:
            return float("nan")
        return len(self.delivered) / self.cycles

    @property
    def mean_hops(self) -> float:
        if not self.delivered:
            return float("nan")
        return float(np.mean([p.hops for p in self.delivered]))

    def energy_per_packet_j(self) -> float:
        if not self.delivered:
            return float("nan")
        return self.ledger.total() / len(self.delivered)


class MeshNoC:
    """Cycle-stepped mesh NoC with per-link FIFO queues.

    Each directed link serves one packet per ``hop_latency`` cycles
    (modeled as: at each simulation step of one cycle, every link may
    advance one packet whose arrival there is at least ``hop_latency``
    old).  Simple store-and-forward — latency per uncontended hop is
    exactly ``hop_latency``.
    """

    def __init__(self, config: NoCConfig = NoCConfig()) -> None:
        self.config = config

    def run(
        self,
        pairs: Sequence[tuple[Coord, Coord]],
        injection_times: Optional[np.ndarray] = None,
        max_cycles: int = 200_000,
    ) -> NoCResult:
        """Inject packets (``pairs[i]`` at ``injection_times[i]``, default
        all at cycle 0 back-to-back per source) and run to drain."""
        cfg = self.config
        if injection_times is None:
            injection_arr = np.zeros(len(pairs))
        else:
            injection_arr = np.asarray(injection_times, dtype=float)
            if len(injection_arr) != len(pairs):
                raise ValueError("injection_times must match pairs")
        packets: list[Packet] = []
        for (src, dst), t in zip(pairs, injection_arr):
            self._check_coord(src)
            self._check_coord(dst)
            if src == dst:
                raise ValueError("self-loop packet")
            packets.append(
                Packet(src=src, dst=dst, injected_at=float(t),
                       route=xy_route(src, dst))
            )

        # Per-link queue of (ready_cycle, packet).
        queues: Dict[Link, Deque[tuple[float, Packet]]] = {}
        pending = sorted(packets, key=lambda p: p.injected_at)
        pending_idx = 0
        ledger = EnergyLedger()
        delivered: list[Packet] = []
        cycle = 0.0
        hop_lat = cfg.hop_latency
        in_flight = 0

        def enqueue(packet: Packet, now: float) -> None:
            nonlocal in_flight
            link = (packet.route[packet.hop_index],
                    packet.route[packet.hop_index + 1])
            queues.setdefault(link, deque()).append((now, packet))
            in_flight += 1

        while (pending_idx < len(pending) or in_flight) and cycle < max_cycles:
            # Inject everything due this cycle.
            while (
                pending_idx < len(pending)
                and pending[pending_idx].injected_at <= cycle
            ):
                enqueue(pending[pending_idx], cycle)
                pending_idx += 1

            # Each link forwards at most one sufficiently-old packet.
            for link in list(queues):
                q = queues[link]
                if not q:
                    continue
                arrived, packet = q[0]
                if cycle - arrived + 1 < hop_lat:
                    continue
                q.popleft()
                in_flight -= 1
                ledger.charge("noc.router", cfg.energy_per_hop_router_j, ops=1)
                ledger.charge("noc.link", cfg.energy_per_hop_link_j)
                packet.hop_index += 1
                if packet.hop_index == len(packet.route) - 1:
                    packet.delivered_at = cycle + 1
                    delivered.append(packet)
                else:
                    enqueue(packet, cycle + 1)
            cycle += 1.0

        dropped = (len(pending) - pending_idx) + in_flight
        return NoCResult(
            delivered=delivered, dropped=dropped, cycles=cycle, ledger=ledger
        )

    def _check_coord(self, c: Coord) -> None:
        if not (0 <= c[0] < self.config.width and 0 <= c[1] < self.config.height):
            raise ValueError(f"coordinate {c} outside the mesh")


def latency_vs_load(
    config: NoCConfig,
    rates: Sequence[float],
    n_packets: int = 2000,
    pattern: str = "uniform",
    rng=0,
) -> dict[str, np.ndarray]:
    """The canonical latency/throughput curve: sweep injection rate.

    Rate is packets/cycle/node aggregate scaled by node count; latency
    blows up at saturation.
    """
    from .traffic import make_pattern, poisson_injection_times

    if not rates:
        raise ValueError("rates must be non-empty")
    noc = MeshNoC(config)
    n_nodes = config.width * config.height
    lat, thr = [], []
    for rate in rates:
        pairs = make_pattern(pattern, n_packets, config.width, config.height, rng=rng)
        times = poisson_injection_times(
            n_packets, rate_per_cycle=rate * n_nodes, rng=rng
        )
        result = noc.run(pairs, injection_times=times)
        lat.append(result.mean_latency)
        thr.append(result.throughput_packets_per_cycle)
    return {
        "offered_rate": np.asarray(rates, dtype=float),
        "mean_latency": np.array(lat),
        "throughput": np.array(thr),
    }
